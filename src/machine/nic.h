// Simulated Ethernet NIC hardware.
//
// This is the device the encapsulated "Linux" driver (src/dev/linux) drives:
// it exposes register-style programmed I/O — RX ring status, RX dequeue, TX
// start — and raises its IRQ when a frame for this station arrives.  It does
// hardware-level destination filtering (own MAC, broadcast, promiscuous).
//
// Interrupt mitigation: the RX IRQ is governed by coalescing "registers"
// (RxMitigation).  The IRQ fires when `frame_threshold` frames have arrived
// since the last announcement, or when a `holdoff_ns` timer armed by the
// first unannounced frame expires, whichever comes first; `ring_fallback`
// is a ring-occupancy safety net so a deep ring never strands frames behind
// a long holdoff.  The power-on defaults (threshold 1, no holdoff) reproduce
// the classic one-interrupt-per-frame behaviour exactly.  Like real
// hardware, re-enabling the RX interrupt does NOT retroactively announce
// frames that arrived while it was disabled — software running a polled
// receive loop must re-check the ring after re-enabling (the classic NAPI
// race; the Linux glue's poll path does, and tests depend on it).
//
// Fault injection (src/fault): with an environment bound, the NIC honours
//   nic.tx.drop     — frame accepted by the "hardware" but never reaches
//                     the wire (cable/transceiver fault),
//   nic.rx.corrupt  — one byte of the received frame flips in the RX ring
//                     (checksum offload is for later decades),
//   nic.rx.miss_irq — frame lands in the ring but the interrupt is lost
//                     (the classic missed-IRQ race drivers watchdog for);
//                     under coalescing a lost IRQ swallows the whole
//                     announcement, stranding every batched frame,
//   nic.irq.spurious — an extra, causeless IRQ is raised on transmit.

#ifndef OSKIT_SRC_MACHINE_NIC_H_
#define OSKIT_SRC_MACHINE_NIC_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/com/etherdev.h"
#include "src/fault/fault.h"
#include "src/machine/clock.h"
#include "src/machine/pic.h"
#include "src/machine/wire.h"
#include "src/trace/counters.h"

namespace oskit {

class NicHw final : public WireEndpoint {
 public:
  static constexpr int kDefaultIrq = 11;
  static constexpr size_t kRxRingCapacity = 64;

  // RX interrupt coalescing registers (see file comment).  Defaults model
  // the 1997 hardware: every frame announces itself.
  struct RxMitigation {
    size_t frame_threshold = 1;  // raise after N unannounced frames
    uint64_t holdoff_ns = 0;     // ... or this long after the first one
    size_t ring_fallback = kRxRingCapacity * 3 / 4;  // occupancy safety net
  };

  NicHw(EtherLink* link, Pic* pic, SimClock* clock, const EtherAddr& mac,
        int irq = kDefaultIrq)
      : link_(link), pic_(pic), clock_(clock), mac_(mac), irq_(irq) {
    link->Attach(this);
  }
  ~NicHw() override;

  const EtherAddr& mac() const { return mac_; }
  int irq() const { return irq_; }

  void SetPromiscuous(bool on) { promiscuous_ = on; }
  void EnableRxInterrupt(bool on) { rx_interrupt_enabled_ = on; }
  void SetFaultEnv(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

  void SetRxMitigation(const RxMitigation& mit);
  const RxMitigation& rx_mitigation() const { return mit_; }

  // ---- Driver-facing "registers" ----
  bool RxPending() const { return !rx_ring_.empty(); }
  size_t RxFrameSize() const { return rx_ring_.empty() ? 0 : rx_ring_.front().size(); }

  // Copies the head RX frame into `buf` (must hold RxFrameSize() bytes) and
  // advances the ring.  Returns the frame length.
  size_t RxDequeue(uint8_t* buf);

  // Starts transmission of a complete Ethernet frame (header + payload).
  // TxStartVec is the DMA-gather entry point: the descriptor list is handed
  // to the wire-side engine as-is, with no bounce-buffer assembly in the
  // NIC.  Both the BSD-idiom driver and the Linux-idiom driver's
  // hard_start_xmit_vec use it; TxStart is the single-buffer legacy path.
  void TxStart(const uint8_t* frame, size_t len);
  void TxStartVec(const uint8_t* const* chunks, const size_t* lens, size_t count);

  // WireEndpoint
  void FrameArrived(const uint8_t* frame, size_t len) override;

  // Statistics.
  uint64_t rx_frames() const { return rx_frames_; }
  uint64_t rx_overruns() const { return rx_overruns_; }
  uint64_t tx_frames() const { return tx_frames_; }
  uint64_t tx_dropped() const { return tx_dropped_; }
  uint64_t rx_corrupted() const { return rx_corrupted_; }
  uint64_t rx_irqs_missed() const { return rx_irqs_missed_; }
  uint64_t tx_gathers() const { return tx_gathers_; }

  // Coalescing counters, bound into the per-machine registry by KernelEnv
  // under "nic.rx.coalesce.*".
  trace::Counter& rx_coalesce_frames_counter() { return rx_coalesce_frames_; }
  trace::Counter& rx_coalesce_irqs_counter() { return rx_coalesce_irqs_; }
  trace::Counter& rx_coalesce_threshold_counter() { return rx_coalesce_threshold_; }
  trace::Counter& rx_coalesce_holdoff_counter() { return rx_coalesce_holdoff_; }
  trace::Counter& rx_coalesce_ring_counter() { return rx_coalesce_ring_; }

 private:
  bool AcceptsFrame(const uint8_t* frame, size_t len) const;

  // Shared transmit gate: counts the frame and applies the TX fault model.
  // Returns false when the frame is eaten before reaching the wire.
  bool TxGate();

  // Announces pending frames: resets the coalescing state and raises the
  // IRQ (unless the fault model loses it — then the whole batch strands).
  void RaiseRxIrq();
  void HoldoffFired();
  void CancelHoldoff();

  EtherLink* link_;
  Pic* pic_;
  SimClock* clock_;
  EtherAddr mac_;
  int irq_;
  bool promiscuous_ = false;
  bool rx_interrupt_enabled_ = false;
  RxMitigation mit_;
  size_t unannounced_ = 0;  // frames enqueued since the last IRQ
  SimClock::EventId holdoff_event_ = SimClock::kInvalidEvent;
  std::deque<std::vector<uint8_t>> rx_ring_;
  uint64_t rx_frames_ = 0;
  uint64_t rx_overruns_ = 0;
  uint64_t tx_frames_ = 0;
  uint64_t tx_dropped_ = 0;
  uint64_t rx_corrupted_ = 0;
  uint64_t rx_irqs_missed_ = 0;
  uint64_t tx_gathers_ = 0;
  trace::Counter rx_coalesce_frames_;
  trace::Counter rx_coalesce_irqs_;
  trace::Counter rx_coalesce_threshold_;
  trace::Counter rx_coalesce_holdoff_;
  trace::Counter rx_coalesce_ring_;
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_NIC_H_
