// Simulated physical memory.
//
// One contiguous host allocation stands in for the PC's physical address
// space.  "Physical addresses" are offsets into the arena, which lets the
// LMM manage typed regions (the first 16 MB is DMA-reachable for the ISA
// DMA controller — the paper's motivating example in §3.3) and lets device
// models check that DMA buffers really are reachable.

#ifndef OSKIT_SRC_MACHINE_PHYSMEM_H_
#define OSKIT_SRC_MACHINE_PHYSMEM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/error.h"
#include "src/base/panic.h"

namespace oskit {

using PhysAddr = uint64_t;

class MemMonitor;  // src/machine/memmon.h

class PhysMem {
 public:
  static constexpr PhysAddr kBiosAreaEnd = 1 * 1024 * 1024;    // low 1 MB
  static constexpr PhysAddr kDmaLimit = 16 * 1024 * 1024;      // ISA DMA reach

  static constexpr size_t kPageAlign = 4096;

  // The arena is page-aligned so that "physical" offsets and host pointers
  // agree about page boundaries (page tables, DMA and the LMM's AllocPage
  // all rely on this).
  explicit PhysMem(size_t size) : storage_(size + kPageAlign, 0), size_(size) {
    OSKIT_ASSERT_MSG(size >= 2 * 1024 * 1024, "machine needs at least 2 MB");
    uintptr_t raw = reinterpret_cast<uintptr_t>(storage_.data());
    base_ = reinterpret_cast<uint8_t*>((raw + kPageAlign - 1) & ~(kPageAlign - 1));
  }

  size_t size() const { return size_; }
  uint8_t* base() { return base_; }

  void* PtrAt(PhysAddr addr) {
    OSKIT_ASSERT_MSG(addr < size_, "physical address out of range");
    return base_ + addr;
  }

  PhysAddr AddrOf(const void* ptr) const {
    auto p = static_cast<const uint8_t*>(ptr);
    OSKIT_ASSERT_MSG(p >= base_ && p < base_ + size_,
                     "pointer not in physical memory");
    return static_cast<PhysAddr>(p - base_);
  }

  bool Contains(const void* ptr, size_t len) const {
    auto p = static_cast<const uint8_t*>(ptr);
    return p >= base_ && p + len <= base_ + size_;
  }

  // True when [ptr, ptr+len) can be reached by the ISA DMA controller.
  bool IsDmaReachable(const void* ptr, size_t len) const {
    if (!Contains(ptr, len)) {
      return false;
    }
    return AddrOf(ptr) + len <= kDmaLimit;
  }

  // ---- Checked entry points (src/machine/memmon.h) ----
  // With no attached (or not yet enabled) memory monitor these are
  // bounds-checked memcpys — the open 1997 world.  With a monitor they are
  // the kernel-level store and the device DMA write, subject to the
  // per-page protection map: kFault on out-of-range/wrapping spans,
  // kAccess on a protection violation (nothing written; the violation is
  // counted and raised through the trap vectors).  Defined in memmon.cc.
  Error Store(PhysAddr addr, const void* src, size_t len);
  Error Dma(PhysAddr addr, const void* src, size_t len);

  void AttachMonitor(MemMonitor* monitor) { monitor_ = monitor; }
  MemMonitor* monitor() const { return monitor_; }

 private:
  std::vector<uint8_t> storage_;
  uint8_t* base_ = nullptr;
  size_t size_;
  MemMonitor* monitor_ = nullptr;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_PHYSMEM_H_
