#include "src/machine/pic.h"

namespace oskit {

void Pic::RaiseIrq(int irq) {
  OSKIT_ASSERT(irq >= 0 && irq < kIrqLines);
  ++raised_[irq];
  uint16_t bit = static_cast<uint16_t>(1u << irq);
  if (mask_ & bit) {
    pending_ |= bit;
    return;
  }
  cpu_->RaiseInterrupt(kIrqBaseVector + static_cast<uint32_t>(irq));
}

void Pic::Mask(int irq) {
  OSKIT_ASSERT(irq >= 0 && irq < kIrqLines);
  mask_ |= static_cast<uint16_t>(1u << irq);
}

void Pic::Unmask(int irq) {
  OSKIT_ASSERT(irq >= 0 && irq < kIrqLines);
  uint16_t bit = static_cast<uint16_t>(1u << irq);
  mask_ &= static_cast<uint16_t>(~bit);
  if (pending_ & bit) {
    pending_ &= static_cast<uint16_t>(~bit);
    cpu_->RaiseInterrupt(kIrqBaseVector + static_cast<uint32_t>(irq));
  }
}

}  // namespace oskit
