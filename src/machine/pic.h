// Simulated programmable interrupt controller (cascaded 8259 pair).
//
// Sixteen IRQ lines, per-line masking, edge-latched pending state.  Raising
// a masked line latches it; unmasking delivers.  Vectors are remapped to
// kIrqBaseVector+irq as the OSKit kernel support library does on real
// hardware (the power-on BIOS mapping collides with CPU exceptions).

#ifndef OSKIT_SRC_MACHINE_PIC_H_
#define OSKIT_SRC_MACHINE_PIC_H_

#include <cstdint>

#include "src/machine/cpu.h"

namespace oskit {

class Pic {
 public:
  static constexpr int kIrqLines = 16;

  explicit Pic(Cpu* cpu) : cpu_(cpu) {}

  // Device models call this to assert an IRQ line (edge).
  void RaiseIrq(int irq);

  void Mask(int irq);
  void Unmask(int irq);
  bool IsMasked(int irq) const {
    OSKIT_ASSERT(irq >= 0 && irq < kIrqLines);
    return (mask_ & (1u << irq)) != 0;
  }

  uint16_t mask_bits() const { return mask_; }
  uint64_t raised_count(int irq) const {
    OSKIT_ASSERT(irq >= 0 && irq < kIrqLines);
    return raised_[irq];
  }

 private:
  Cpu* cpu_;
  uint16_t mask_ = 0xffff;  // all lines masked until the kernel unmasks
  uint16_t pending_ = 0;
  uint64_t raised_[kIrqLines] = {};
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_PIC_H_
