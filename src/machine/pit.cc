#include "src/machine/pit.h"

namespace oskit {

void Pit::Start(uint32_t hz) {
  OSKIT_ASSERT(hz > 0);
  Stop();
  hz_ = hz;
  period_ns_ = kNsPerSec / hz;
  OSKIT_ASSERT(period_ns_ > 0);
  running_ = true;
  drift_ns_ = 0;
  pending_event_ = clock_->ScheduleAfter(period_ns_, [this] { Tick(); });
}

void Pit::Stop() {
  if (pending_event_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_event_);
    pending_event_ = SimClock::kInvalidEvent;
  }
  running_ = false;
}

void Pit::Tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  SimTime period = period_ns_;
  if (fault_->ShouldFail("pit.skew")) {
    // Oscillator wander: this tick's successor lands early or late by
    // arg% (default 20%) of the nominal period.
    uint64_t pct = fault_->SiteArg("pit.skew");
    if (pct == 0 || pct > 90) {
      pct = 20;
    }
    int64_t delta = static_cast<int64_t>(period_ns_ * pct / 100);
    if (fault_->rng().Percent(50)) {
      delta = -delta;
    }
    period = static_cast<SimTime>(static_cast<int64_t>(period) + delta);
    drift_ns_ += delta;
    ++skew_events_;
  } else if (drift_ns_ != 0) {
    // Steer back toward the nominal tick train, at most half a period per
    // tick so the interval never collapses or doubles.
    int64_t limit = static_cast<int64_t>(period_ns_ / 2);
    int64_t correction = -drift_ns_;
    if (correction > limit) {
      correction = limit;
    } else if (correction < -limit) {
      correction = -limit;
    }
    period = static_cast<SimTime>(static_cast<int64_t>(period) + correction);
    drift_ns_ += correction;
    ++skew_compensations_;
  }
  // Schedule the next tick before raising the IRQ so a handler that stops
  // the timer cancels the right event.
  pending_event_ = clock_->ScheduleAfter(period, [this] { Tick(); });
  pic_->RaiseIrq(kIrq);
}

}  // namespace oskit
