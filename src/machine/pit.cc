#include "src/machine/pit.h"

namespace oskit {

void Pit::Start(uint32_t hz) {
  OSKIT_ASSERT(hz > 0);
  Stop();
  hz_ = hz;
  period_ns_ = kNsPerSec / hz;
  OSKIT_ASSERT(period_ns_ > 0);
  running_ = true;
  pending_event_ = clock_->ScheduleAfter(period_ns_, [this] { Tick(); });
}

void Pit::Stop() {
  if (pending_event_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_event_);
    pending_event_ = SimClock::kInvalidEvent;
  }
  running_ = false;
}

void Pit::Tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  // Schedule the next tick before raising the IRQ so a handler that stops
  // the timer cancels the right event.
  pending_event_ = clock_->ScheduleAfter(period_ns_, [this] { Tick(); });
  pic_->RaiseIrq(kIrq);
}

}  // namespace oskit
