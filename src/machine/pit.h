// Simulated programmable interval timer (8254-style) on IRQ 0.

#ifndef OSKIT_SRC_MACHINE_PIT_H_
#define OSKIT_SRC_MACHINE_PIT_H_

#include "src/machine/clock.h"
#include "src/machine/pic.h"

namespace oskit {

class Pit {
 public:
  static constexpr int kIrq = 0;

  Pit(SimClock* clock, Pic* pic) : clock_(clock), pic_(pic) {}
  ~Pit() { Stop(); }

  // Programs the tick rate and starts periodic IRQ 0 delivery.
  void Start(uint32_t hz);
  void Stop();

  bool running() const { return running_; }
  uint32_t hz() const { return hz_; }
  uint64_t ticks() const { return ticks_; }

 private:
  void Tick();

  SimClock* clock_;
  Pic* pic_;
  bool running_ = false;
  uint32_t hz_ = 0;
  SimTime period_ns_ = 0;
  uint64_t ticks_ = 0;
  SimClock::EventId pending_event_ = SimClock::kInvalidEvent;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_PIT_H_
