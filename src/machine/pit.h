// Simulated programmable interval timer (8254-style) on IRQ 0.
//
// Fault injection (src/fault): the "pit.skew" site models a drifting
// oscillator — a fired tick lands early or late by the site arg percent of
// the nominal period.  The PIT tracks the accumulated drift and steers
// subsequent ticks back toward the nominal timeline (what a periodic-mode
// 8254 does naturally: one late tick does not shift the whole train), so
// protocol timers above stay coarse-grained correct; both the skew events
// and the compensations are counted.

#ifndef OSKIT_SRC_MACHINE_PIT_H_
#define OSKIT_SRC_MACHINE_PIT_H_

#include "src/fault/fault.h"
#include "src/machine/clock.h"
#include "src/machine/pic.h"
#include "src/trace/counters.h"

namespace oskit {

class Pit {
 public:
  static constexpr int kIrq = 0;

  Pit(SimClock* clock, Pic* pic) : clock_(clock), pic_(pic) {}
  ~Pit() { Stop(); }

  // Programs the tick rate and starts periodic IRQ 0 delivery.
  void Start(uint32_t hz);
  void Stop();

  void SetFaultEnv(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

  bool running() const { return running_; }
  uint32_t hz() const { return hz_; }
  uint64_t ticks() const { return ticks_; }

  trace::Counter& skew_events_counter() { return skew_events_; }
  trace::Counter& skew_compensations_counter() { return skew_compensations_; }
  uint64_t skew_events() const { return skew_events_; }
  uint64_t skew_compensations() const { return skew_compensations_; }

 private:
  void Tick();

  SimClock* clock_;
  Pic* pic_;
  bool running_ = false;
  uint32_t hz_ = 0;
  SimTime period_ns_ = 0;
  uint64_t ticks_ = 0;
  int64_t drift_ns_ = 0;  // how far the tick train is ahead (+) of nominal
  SimClock::EventId pending_event_ = SimClock::kInvalidEvent;
  trace::Counter skew_events_;
  trace::Counter skew_compensations_;
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_PIT_H_
