#include "src/machine/simulation.h"

#include "src/base/panic.h"

namespace oskit {

Simulation::RunResult Simulation::Run(SimTime deadline) {
  OSKIT_ASSERT_MSG(scheduler_.current() == nullptr, "Run() called from a fiber");
  for (;;) {
    scheduler_.RunReady();
    if (scheduler_.live_count() == 0) {
      return RunResult::kAllDone;
    }
    SimTime next = clock_.NextEventTime();
    if (next == ~static_cast<SimTime>(0)) {
      return RunResult::kDeadlock;
    }
    if (next > deadline) {
      return RunResult::kDeadline;
    }
    clock_.RunOne();
  }
}

void Simulation::SleepFor(SimTime ns) {
  Fiber* self = scheduler_.current();
  OSKIT_ASSERT_MSG(self != nullptr, "SleepFor outside any fiber");
  clock_.ScheduleAfter(ns, [this, self] { scheduler_.Unblock(self); });
  scheduler_.BlockCurrent();
}

bool Simulation::PollWait(const std::function<bool()>& pred, SimTime quantum,
                          SimTime timeout) {
  SimTime start = clock_.Now();
  while (!pred()) {
    if (clock_.Now() - start >= timeout) {
      return false;
    }
    SleepFor(quantum);
  }
  return true;
}

}  // namespace oskit
