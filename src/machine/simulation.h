// The simulation "world": one shared clock plus one fiber scheduler.
//
// A world holds everything that exists outside any single simulated PC — the
// clock, the Ethernet segment, and the process-level threads of every machine
// in the experiment.  Running the world interleaves fiber execution with
// clock events until everything completes, deadlocks, or a deadline passes.

#ifndef OSKIT_SRC_MACHINE_SIMULATION_H_
#define OSKIT_SRC_MACHINE_SIMULATION_H_

#include "src/machine/clock.h"
#include "src/machine/fiber.h"

namespace oskit {

class Simulation {
 public:
  enum class RunResult {
    kAllDone,    // every fiber ran to completion
    kDeadlock,   // live fibers remain but nothing can make progress
    kDeadline,   // the deadline passed first
  };

  SimClock& clock() { return clock_; }
  FiberScheduler& scheduler() { return scheduler_; }

  Fiber* Spawn(std::string name, std::function<void()> entry) {
    return scheduler_.Spawn(std::move(name), std::move(entry));
  }

  // Drives the world: runs runnable fibers, then clock events, until all
  // fibers finish, no event can unblock anyone, or `deadline` is reached.
  // Must be called from outside any fiber.
  RunResult Run(SimTime deadline = ~static_cast<SimTime>(0));

  // ---- Fiber-side conveniences (call only from inside a fiber) ----

  // Blocks the calling fiber for `ns` of simulated time.
  void SleepFor(SimTime ns);

  // Polls `pred` every `quantum` of simulated time until it holds or
  // `timeout` elapses.  Returns true when the predicate became true.
  bool PollWait(const std::function<bool()>& pred, SimTime quantum = kNsPerUs,
                SimTime timeout = ~static_cast<SimTime>(0));

 private:
  SimClock clock_;
  FiberScheduler scheduler_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_SIMULATION_H_
