#include "src/machine/switch.h"

#include <cstring>
#include <utility>

#include "src/base/panic.h"

namespace oskit {

namespace {

// Packs a 48-bit MAC into the learning-table key.
uint64_t PackMac(const uint8_t* mac) {
  uint64_t key = 0;
  for (int i = 0; i < 6; ++i) {
    key = (key << 8) | mac[i];
  }
  return key;
}

// Group bit (I/G) of the destination address: broadcast and multicast
// frames are never unicast-forwarded, and group source addresses are never
// learned.
bool IsGroupMac(const uint8_t* mac) { return (mac[0] & 0x01) != 0; }

constexpr size_t kMacBytes = 6;
constexpr size_t kHeaderBytes = 14;  // dst + src + ethertype

}  // namespace

VirtualSwitch::VirtualSwitch(SimClock* clock, const Config& config,
                             trace::TraceEnv* trace)
    : clock_(clock), config_(config), rng_(config.fault_seed) {
  trace::TraceEnv* env = trace::ResolveTraceEnv(trace);
  trace_binding_.Bind(&env->registry,
                      {{"switch.frames.in", &frames_in_},
                       {"switch.frames.unicast", &frames_unicast_},
                       {"switch.frames.flooded", &frames_flooded_},
                       {"switch.frames.dropped", &frames_dropped_},
                       {"switch.frames.duplicated", &frames_duplicated_},
                       {"switch.frames.filtered", &frames_filtered_},
                       {"switch.bytes", &bytes_carried_},
                       {"switch.gather_transmits", &gather_transmits_},
                       {"switch.macs.learned", &macs_learned_, /*gauge=*/true},
                       {"switch.macs.moves", &mac_moves_},
                       {"switch.macs.table_full", &mac_table_full_}});
}

void VirtualSwitch::Attach(WireEndpoint* endpoint) {
  ports_.push_back(Port{endpoint, config_.port, /*egress_free_at=*/0});
}

int VirtualSwitch::PortOf(const WireEndpoint* endpoint) const {
  for (size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].endpoint == endpoint) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void VirtualSwitch::SetPortConfig(int port, const PortConfig& config) {
  OSKIT_ASSERT_MSG(port >= 0 && static_cast<size_t>(port) < ports_.size(),
                   "bad switch port");
  ports_[port].config = config;
}

const VirtualSwitch::PortConfig& VirtualSwitch::port_config(int port) const {
  OSKIT_ASSERT_MSG(port >= 0 && static_cast<size_t>(port) < ports_.size(),
                   "bad switch port");
  return ports_[port].config;
}

void VirtualSwitch::Transmit(WireEndpoint* source, const uint8_t* frame,
                             size_t len) {
  int in = PortOf(source);
  OSKIT_ASSERT_MSG(in >= 0, "transmit from unattached endpoint");
  Forward(in, std::vector<uint8_t>(frame, frame + len));
}

void VirtualSwitch::Transmit(WireEndpoint* source, const uint8_t* const* chunks,
                             const size_t* lens, size_t count) {
  int in = PortOf(source);
  OSKIT_ASSERT_MSG(in >= 0, "transmit from unattached endpoint");
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += lens[i];
  }
  std::vector<uint8_t> frame;
  frame.reserve(total);
  for (size_t i = 0; i < count; ++i) {
    frame.insert(frame.end(), chunks[i], chunks[i] + lens[i]);
  }
  ++gather_transmits_;
  Forward(in, std::move(frame));
}

void VirtualSwitch::Forward(int in_port, std::vector<uint8_t> frame) {
  ++frames_in_;
  bytes_carried_ += frame.size();
  OSKIT_ASSERT_MSG(frame.size() >= kHeaderBytes, "runt frame at switch");

  const uint8_t* dst = frame.data();
  const uint8_t* src = frame.data() + kMacBytes;

  // Learn (or migrate) the source address on the ingress port.
  if (!IsGroupMac(src)) {
    uint64_t key = PackMac(src);
    auto it = mac_table_.find(key);
    if (it == mac_table_.end()) {
      if (mac_table_.size() < config_.max_macs) {
        mac_table_.emplace(key, in_port);
        ++macs_learned_;
      } else {
        ++mac_table_full_;  // table saturated: keep flooding for this MAC
      }
    } else if (it->second != in_port) {
      it->second = in_port;  // station moved ports
      ++mac_moves_;
    }
  }

  // Forwarding decision: unicast to the learned port, else flood.
  if (!IsGroupMac(dst)) {
    auto it = mac_table_.find(PackMac(dst));
    if (it != mac_table_.end()) {
      if (it->second == in_port) {
        // Destination lives on the ingress segment; a real switch filters
        // the frame rather than echoing it back.
        ++frames_filtered_;
        return;
      }
      ++frames_unicast_;
      Egress(it->second, frame);
      return;
    }
  }

  ++frames_flooded_;
  for (size_t out = 0; out < ports_.size(); ++out) {
    if (static_cast<int>(out) == in_port) {
      continue;
    }
    Egress(static_cast<int>(out), frame);
  }
}

void VirtualSwitch::Egress(int out, const std::vector<uint8_t>& frame) {
  Port& port = ports_[static_cast<size_t>(out)];
  const PortConfig& cfg = port.config;

  if (cfg.loss_percent != 0 && rng_.Percent(cfg.loss_percent)) {
    ++frames_dropped_;
    return;
  }

  // Per-port serialization: frames leave this egress back to back, but two
  // different ports transmit concurrently (no shared collision domain).
  SimTime start = clock_->Now();
  if (start < port.egress_free_at) {
    start = port.egress_free_at;
  }
  SimTime serialize = 0;
  if (cfg.bits_per_second != 0) {
    serialize = static_cast<SimTime>(frame.size()) * 8 * kNsPerSec /
                cfg.bits_per_second;
  }
  port.egress_free_at = start + serialize;
  SimTime arrival = port.egress_free_at + cfg.propagation_ns;

  SimTime when = arrival;
  if (cfg.reorder_jitter_ns != 0) {
    when += rng_.Below(cfg.reorder_jitter_ns + 1);
  }
  if (cfg.duplicate_percent != 0 && rng_.Percent(cfg.duplicate_percent)) {
    ++frames_duplicated_;
    SimTime dup_when = arrival;
    if (cfg.reorder_jitter_ns != 0) {
      dup_when += rng_.Below(cfg.reorder_jitter_ns + 1);
    }
    ScheduleDelivery(port.endpoint, frame, dup_when);
  }
  ScheduleDelivery(port.endpoint, frame, when);
}

void VirtualSwitch::ScheduleDelivery(WireEndpoint* dest,
                                     std::vector<uint8_t> frame,
                                     SimTime when) {
  SimTime delay = when > clock_->Now() ? when - clock_->Now() : 0;
  clock_->ScheduleAfter(delay, [dest, frame = std::move(frame)] {
    dest->FrameArrived(frame.data(), frame.size());
  });
}

}  // namespace oskit
