// Simulated learning Ethernet switch.
//
// The paper's evaluation wired exactly two Pentium Pro PCs to one shared
// segment (EthernetWire).  Scaling the simulation to N hosts needs a
// switched fabric: every attached NIC gets its own port with a private
// egress queue, the switch learns source MACs per port, forwards unicast
// frames to the learned port only, and floods unknown/broadcast
// destinations.  Unlike the shared medium there is no global
// `medium_free_at_` collision domain — two ports transmit concurrently and
// only contend when their frames converge on one egress.
//
// Each port carries its own serialization rate, propagation delay, and
// fault model (loss / duplication / reorder jitter), so a test can degrade
// one host's uplink while the rest of the fabric stays clean.  Statistics
// report through the trace registry under "switch.*" (§4.6 exposed
// implementation), plus plain getters for harnesses that do not bind a
// registry.

#ifndef OSKIT_SRC_MACHINE_SWITCH_H_
#define OSKIT_SRC_MACHINE_SWITCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/random.h"
#include "src/machine/clock.h"
#include "src/machine/wire.h"
#include "src/trace/trace.h"

namespace oskit {

class VirtualSwitch final : public EtherLink {
 public:
  struct PortConfig {
    // 0 means infinite bandwidth (no serialization delay).
    uint64_t bits_per_second = 0;
    SimTime propagation_ns = 0;
    // Fault model, percentages in [0, 100].
    uint32_t loss_percent = 0;
    uint32_t duplicate_percent = 0;
    // Extra random jitter (uniform in [0, reorder_jitter_ns]) added per
    // frame; nonzero values cause reordering.
    SimTime reorder_jitter_ns = 0;
  };

  struct Config {
    PortConfig port;  // defaults every newly attached port inherits
    uint64_t fault_seed = 1;
    size_t max_macs = 4096;  // learning-table capacity
  };

  // `trace` is the observability environment the switch.* counters bind to;
  // null binds the process-global default.
  VirtualSwitch(SimClock* clock, const Config& config,
                trace::TraceEnv* trace = nullptr);

  // EtherLink: attaching creates the next port (port index = attach order).
  void Attach(WireEndpoint* endpoint) override;
  void Transmit(WireEndpoint* source, const uint8_t* frame,
                size_t len) override;
  void Transmit(WireEndpoint* source, const uint8_t* const* chunks,
                const size_t* lens, size_t count) override;

  size_t port_count() const { return ports_.size(); }
  // -1 when the endpoint is not attached.
  int PortOf(const WireEndpoint* endpoint) const;

  void SetPortConfig(int port, const PortConfig& config);
  const PortConfig& port_config(int port) const;

  // Statistics (also registered as switch.* counters).
  uint64_t frames_in() const { return frames_in_.value(); }
  uint64_t frames_unicast() const { return frames_unicast_.value(); }
  uint64_t frames_flooded() const { return frames_flooded_.value(); }
  uint64_t frames_dropped() const { return frames_dropped_.value(); }
  uint64_t frames_duplicated() const { return frames_duplicated_.value(); }
  uint64_t frames_filtered() const { return frames_filtered_.value(); }
  uint64_t bytes_carried() const { return bytes_carried_.value(); }
  uint64_t gather_transmits() const { return gather_transmits_.value(); }
  uint64_t macs_learned() const { return macs_learned_.value(); }
  uint64_t mac_moves() const { return mac_moves_.value(); }
  uint64_t mac_table_full() const { return mac_table_full_.value(); }

 private:
  struct Port {
    WireEndpoint* endpoint;
    PortConfig config;
    SimTime egress_free_at = 0;  // per-port serialization point
  };

  // Learn the source MAC, pick the output port set, egress.
  void Forward(int in_port, std::vector<uint8_t> frame);
  // Runs one frame copy through port `out`'s egress queue and fault model.
  void Egress(int out, const std::vector<uint8_t>& frame);
  void ScheduleDelivery(WireEndpoint* dest, std::vector<uint8_t> frame,
                        SimTime when);

  SimClock* clock_;
  Config config_;
  Rng rng_;
  std::vector<Port> ports_;
  std::unordered_map<uint64_t, int> mac_table_;  // 48-bit MAC -> port

  // Counters are the single source of truth (a trace::Counter is a plain
  // word); registration is non-owning so the getters above stay cheap.
  trace::Counter frames_in_;
  trace::Counter frames_unicast_;
  trace::Counter frames_flooded_;
  trace::Counter frames_dropped_;
  trace::Counter frames_duplicated_;
  trace::Counter frames_filtered_;  // unicast back out the ingress port
  trace::Counter bytes_carried_;
  trace::Counter gather_transmits_;
  trace::Counter macs_learned_;  // gauge: live learning-table entries
  trace::Counter mac_moves_;
  trace::Counter mac_table_full_;
  trace::CounterBlock trace_binding_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_SWITCH_H_
