#include "src/machine/uart.h"

#include "src/base/panic.h"

namespace oskit {

uint8_t Uart::ReadByte() {
  OSKIT_ASSERT_MSG(!rx_fifo_.empty(), "UART read with empty RX FIFO");
  uint8_t byte = rx_fifo_.front();
  rx_fifo_.pop_front();
  return byte;
}

void Uart::WriteByte(uint8_t byte) {
  if (peer_ == nullptr) {
    captured_output_.push_back(static_cast<char>(byte));
    return;
  }
  if (byte_delay_ns_ == 0) {
    peer_->Deliver(byte);
    return;
  }
  Uart* peer = peer_;
  clock_->ScheduleAfter(byte_delay_ns_, [peer, byte] { peer->Deliver(byte); });
}

void Uart::InjectRx(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    Deliver(bytes[i]);
  }
}

void Uart::Deliver(uint8_t byte) {
  rx_fifo_.push_back(byte);
  if (rx_interrupt_enabled_) {
    pic_->RaiseIrq(irq_);
  }
}

std::string Uart::TakeOutput() {
  std::string out;
  out.swap(captured_output_);
  return out;
}

}  // namespace oskit
