// Simulated serial UART (16550-ish) on IRQ 4.
//
// Carries the console and the GDB remote-debug stub (§3.5).  Two UARTs can
// be cross-connected (kernel under test on one end, debugger model on the
// other); an unconnected UART collects transmitted bytes for inspection.

#ifndef OSKIT_SRC_MACHINE_UART_H_
#define OSKIT_SRC_MACHINE_UART_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/machine/clock.h"
#include "src/machine/pic.h"

namespace oskit {

class Uart {
 public:
  static constexpr int kDefaultIrq = 4;

  Uart(SimClock* clock, Pic* pic, int irq = kDefaultIrq)
      : clock_(clock), pic_(pic), irq_(irq) {}

  // Wires this UART's TX to `peer`'s RX and vice versa.
  void ConnectPeer(Uart* peer) {
    peer_ = peer;
    peer->peer_ = this;
  }

  // Per-byte transmission delay (default: instantaneous).  115200 baud would
  // be ~87 us/byte; tests usually leave this at zero.
  void SetByteDelay(SimTime ns) { byte_delay_ns_ = ns; }

  void EnableRxInterrupt(bool enable) { rx_interrupt_enabled_ = enable; }

  // ---- Programmed I/O (the driver-facing "registers") ----
  bool RxReady() const { return !rx_fifo_.empty(); }
  uint8_t ReadByte();
  void WriteByte(uint8_t byte);

  // ---- Host-side test hooks ----
  // Injects bytes as if they arrived on the line.
  void InjectRx(const void* data, size_t len);

  // Takes everything transmitted so far on an unconnected UART.
  std::string TakeOutput();

 private:
  void Deliver(uint8_t byte);

  SimClock* clock_;
  Pic* pic_;
  int irq_;
  Uart* peer_ = nullptr;
  bool rx_interrupt_enabled_ = false;
  SimTime byte_delay_ns_ = 0;
  std::deque<uint8_t> rx_fifo_;
  std::string captured_output_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_UART_H_
