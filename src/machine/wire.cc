#include "src/machine/wire.h"

namespace oskit {

void EthernetWire::Transmit(WireEndpoint* source, const uint8_t* frame, size_t len) {
  Deliver(source, std::vector<uint8_t>(frame, frame + len));
}

void EthernetWire::Transmit(WireEndpoint* source, const uint8_t* const* chunks,
                            const size_t* lens, size_t count) {
  // Gather DMA: assemble the descriptor list directly into the delivery
  // buffer; on a real NIC this is the DMA engine walking the descriptors.
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += lens[i];
  }
  std::vector<uint8_t> frame;
  frame.reserve(total);
  for (size_t i = 0; i < count; ++i) {
    frame.insert(frame.end(), chunks[i], chunks[i] + lens[i]);
  }
  ++gather_transmits_;
  Deliver(source, std::move(frame));
}

void EthernetWire::Deliver(WireEndpoint* source, std::vector<uint8_t> frame) {
  size_t len = frame.size();
  ++frames_sent_;
  bytes_carried_ += len;

  // Serialization: frames occupy the shared medium back to back.
  SimTime start = clock_->Now();
  if (start < medium_free_at_) {
    start = medium_free_at_;
  }
  SimTime serialize = 0;
  if (config_.bits_per_second != 0) {
    serialize = static_cast<SimTime>(len) * 8 * kNsPerSec / config_.bits_per_second;
  }
  medium_free_at_ = start + serialize;
  SimTime arrival = medium_free_at_ + config_.propagation_ns;

  for (WireEndpoint* dest : endpoints_) {
    if (dest == source) {
      continue;
    }
    if (config_.loss_percent != 0 && rng_.Percent(config_.loss_percent)) {
      ++frames_dropped_;
      continue;
    }
    SimTime when = arrival;
    if (config_.reorder_jitter_ns != 0) {
      when += rng_.Below(config_.reorder_jitter_ns + 1);
    }
    std::vector<uint8_t> copy = frame;
    if (config_.duplicate_percent != 0 && rng_.Percent(config_.duplicate_percent)) {
      ++frames_duplicated_;
      SimTime dup_when = when;
      if (config_.reorder_jitter_ns != 0) {
        dup_when = arrival + rng_.Below(config_.reorder_jitter_ns + 1);
      }
      ScheduleDelivery(dest, copy, dup_when);
    }
    ScheduleDelivery(dest, std::move(copy), when);
  }
}

void EthernetWire::ScheduleDelivery(WireEndpoint* dest, std::vector<uint8_t> frame,
                                    SimTime when) {
  SimTime delay = when > clock_->Now() ? when - clock_->Now() : 0;
  clock_->ScheduleAfter(delay, [dest, frame = std::move(frame)] {
    dest->FrameArrived(frame.data(), frame.size());
  });
}

}  // namespace oskit
