// Simulated Ethernet segment.
//
// Stands in for the paper's 100 Mbps Ethernet between two Pentium Pro PCs.
// Frames transmitted by one attached NIC are delivered to every other NIC
// (the NIC model does its own destination filtering, like real hardware).
// The wire models serialization delay (bandwidth), propagation latency, and
// an optional fault model (loss / duplication / reordering) driven by a
// seeded deterministic RNG — the substrate for the TCP property tests.

#ifndef OSKIT_SRC_MACHINE_WIRE_H_
#define OSKIT_SRC_MACHINE_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/base/random.h"
#include "src/machine/clock.h"

namespace oskit {

// Receiver-side attachment: the NIC model implements this.
class WireEndpoint {
 public:
  virtual ~WireEndpoint() = default;
  virtual void FrameArrived(const uint8_t* frame, size_t len) = 0;
};

// What a NIC plugs into: either the shared-medium EthernetWire below (the
// paper's two-PC segment) or the learning VirtualSwitch (src/machine/switch.h)
// that scales one simulation to N hosts.  The NIC model only ever sees this
// face, so the same machine works on either fabric.
class EtherLink {
 public:
  virtual ~EtherLink() = default;

  virtual void Attach(WireEndpoint* endpoint) = 0;

  // Transmits a complete frame from `source`.
  virtual void Transmit(WireEndpoint* source, const uint8_t* frame,
                        size_t len) = 0;

  // Gather-DMA transmit: the frame is described as an iovec-style chunk list
  // and the link-side engine assembles it straight into the delivery buffer.
  virtual void Transmit(WireEndpoint* source, const uint8_t* const* chunks,
                        const size_t* lens, size_t count) = 0;
};

class EthernetWire : public EtherLink {
 public:
  struct Config {
    // 0 means infinite bandwidth (no serialization delay).
    uint64_t bits_per_second = 0;
    SimTime propagation_ns = 0;
    // Fault model, percentages in [0, 100].
    uint32_t loss_percent = 0;
    uint32_t duplicate_percent = 0;
    // Extra random jitter (uniform in [0, reorder_jitter_ns]) added per
    // frame; nonzero values cause reordering.
    SimTime reorder_jitter_ns = 0;
    uint64_t fault_seed = 1;
  };

  EthernetWire(SimClock* clock, const Config& config)
      : clock_(clock), config_(config), rng_(config.fault_seed) {}

  void Attach(WireEndpoint* endpoint) override { endpoints_.push_back(endpoint); }

  // Runtime fault-model control: lets a test partition the segment
  // (100% loss) and later heal it.
  void set_loss_percent(uint32_t percent) { config_.loss_percent = percent; }

  // Transmits a frame from `source`; delivered to all other endpoints.
  void Transmit(WireEndpoint* source, const uint8_t* frame, size_t len) override;

  // Gather-DMA transmit: the frame is described as an iovec-style chunk
  // list and the wire-side engine assembles it straight into the delivery
  // buffer — the NIC model never stages it through a bounce buffer.
  void Transmit(WireEndpoint* source, const uint8_t* const* chunks,
                const size_t* lens, size_t count) override;

  // Statistics (exposed implementation, §4.6).
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_duplicated() const { return frames_duplicated_; }
  uint64_t bytes_carried() const { return bytes_carried_; }
  uint64_t gather_transmits() const { return gather_transmits_; }

 private:
  // Common fan-out: serialization, fault model, per-destination scheduling.
  void Deliver(WireEndpoint* source, std::vector<uint8_t> frame);

  void ScheduleDelivery(WireEndpoint* dest, std::vector<uint8_t> frame,
                        SimTime when);

  SimClock* clock_;
  Config config_;
  Rng rng_;
  std::vector<WireEndpoint*> endpoints_;
  SimTime medium_free_at_ = 0;  // shared-medium serialization point
  uint64_t frames_sent_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t bytes_carried_ = 0;
  uint64_t gather_transmits_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_WIRE_H_
