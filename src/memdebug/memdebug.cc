#include "src/memdebug/memdebug.h"

#include <cstdio>

#include "src/base/panic.h"
#include "src/libc/string.h"

namespace oskit {
namespace {

void DefaultReporter(void* /*ctx*/, MemDebug::Fault fault, const char* tag,
                     void* ptr) {
  const char* names[] = {"overrun", "underrun",        "double-free",
                         "bad-pointer", "write-after-free", "leak"};
  std::fprintf(stderr, "memdebug: %s at %p (tag: %s)\n",
               names[static_cast<int>(fault)], ptr, tag != nullptr ? tag : "?");
}

constexpr size_t kHeaderSlot = 64;  // Header rounded up, keeps payload aligned

}  // namespace

MemDebug::MemDebug(const libc::MemEnv& env)
    : env_(env), report_(&DefaultReporter), report_ctx_(nullptr) {
  static_assert(sizeof(Header) <= kHeaderSlot, "header must fit its slot");
}

MemDebug::~MemDebug() {
  // Drain the quarantine; live blocks are the caller's leak problem.
  while (!quarantine_.empty()) {
    EvictOneFromQuarantine();
  }
  while (Header* h = live_.PopFront()) {
    size_t raw = kHeaderSlot + kFenceBytes * 2 + h->size;
    env_.free(env_.ctx, h, raw);
  }
}

void MemDebug::SetReporter(ReportFn fn, void* ctx) {
  report_ = fn != nullptr ? fn : &DefaultReporter;
  report_ctx_ = ctx;
}

MemDebug::Header* MemDebug::HeaderOf(void* ptr) {
  return reinterpret_cast<Header*>(static_cast<uint8_t*>(ptr) - kFenceBytes -
                                   kHeaderSlot);
}

uint8_t* MemDebug::FrontFence(Header* h) {
  return reinterpret_cast<uint8_t*>(h) + kHeaderSlot;
}

uint8_t* MemDebug::Payload(Header* h) { return FrontFence(h) + kFenceBytes; }

uint8_t* MemDebug::BackFence(Header* h) { return Payload(h) + h->size; }

void MemDebug::Report(Fault fault, Header* h) {
  ++faults_;
  report_(report_ctx_, fault, h->tag, Payload(h));
}

void* MemDebug::Alloc(size_t size, const char* tag) {
  size_t raw_size = kHeaderSlot + kFenceBytes * 2 + size;
  void* raw = env_.alloc(env_.ctx, raw_size);
  if (raw == nullptr) {
    return nullptr;
  }
  auto* h = static_cast<Header*>(raw);
  h->node = ListNode{};
  h->size = size;
  h->tag = tag;
  h->state = kLive;
  libc::Memset(FrontFence(h), kFencePattern, kFenceBytes);
  libc::Memset(Payload(h), kAllocPoison, size);
  libc::Memset(BackFence(h), kFencePattern, kFenceBytes);
  live_.PushBack(h);
  ++live_blocks_;
  live_bytes_ += size;
  return Payload(h);
}

bool MemDebug::CheckFences(Header* h) {
  bool ok = true;
  uint8_t* front = FrontFence(h);
  for (size_t i = 0; i < kFenceBytes; ++i) {
    if (front[i] != kFencePattern) {
      Report(Fault::kUnderrun, h);
      ok = false;
      break;
    }
  }
  uint8_t* back = BackFence(h);
  for (size_t i = 0; i < kFenceBytes; ++i) {
    if (back[i] != kFencePattern) {
      Report(Fault::kOverrun, h);
      ok = false;
      break;
    }
  }
  return ok;
}

bool MemDebug::CheckFreePoison(Header* h) {
  uint8_t* payload = Payload(h);
  for (size_t i = 0; i < h->size; ++i) {
    if (payload[i] != kFreePoison) {
      Report(Fault::kWriteAfterFree, h);
      return false;
    }
  }
  return true;
}

void MemDebug::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  Header* h = HeaderOf(ptr);
  if (h->state == kFreed) {
    Report(Fault::kDoubleFree, h);
    return;
  }
  if (h->state != kLive) {
    // Not ours at all (or header smashed beyond recognition).
    ++faults_;
    report_(report_ctx_, Fault::kBadPointer, "?", ptr);
    return;
  }
  CheckFences(h);
  live_.Remove(h);
  --live_blocks_;
  live_bytes_ -= h->size;
  h->state = kFreed;
  libc::Memset(Payload(h), kFreePoison, h->size);
  quarantine_.push_back(h);
  while (quarantine_.size() > kQuarantineBlocks) {
    EvictOneFromQuarantine();
  }
}

void MemDebug::EvictOneFromQuarantine() {
  Header* h = quarantine_.front();
  quarantine_.pop_front();
  CheckFreePoison(h);
  CheckFences(h);
  size_t raw = kHeaderSlot + kFenceBytes * 2 + h->size;
  env_.free(env_.ctx, h, raw);
}

size_t MemDebug::CheckAll() {
  uint64_t before = faults_;
  for (Header& h : live_) {
    CheckFences(&h);
  }
  for (Header* h : quarantine_) {
    CheckFences(h);
    CheckFreePoison(h);
  }
  return static_cast<size_t>(faults_ - before);
}

size_t MemDebug::DumpLeaks() {
  size_t count = 0;
  for (Header& h : live_) {
    Report(Fault::kLeak, &h);
    ++count;
  }
  return count;
}

}  // namespace oskit
