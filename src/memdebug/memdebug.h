// Memory-allocation debugging library (paper §3.5).
//
// "Tracks memory allocations and detects common errors such as buffer
// overruns and freeing already-freed memory ... similar functionality to
// many popular application debugging utilities, except that it runs in the
// minimal kernel environment provided by the OSKit."
//
// Design: every allocation is bracketed by guard fences filled with a known
// pattern; the payload is poisoned on alloc and on free; freed blocks sit in
// a quarantine so double frees and use-after-free writes are caught instead
// of recycling the memory immediately.  Faults are reported through a
// client-overridable callback (so tests can assert on them) and counted.

#ifndef OSKIT_SRC_MEMDEBUG_MEMDEBUG_H_
#define OSKIT_SRC_MEMDEBUG_MEMDEBUG_H_

#include <cstddef>
#include <cstdint>
#include <deque>

#include "src/base/intrusive_list.h"
#include "src/libc/malloc.h"

namespace oskit {

class MemDebug {
 public:
  enum class Fault {
    kOverrun,        // bytes after the payload were modified
    kUnderrun,       // bytes before the payload were modified
    kDoubleFree,     // Free() on an already-freed block
    kBadPointer,     // Free() on a pointer this arena never returned
    kWriteAfterFree, // quarantined block modified
    kLeak,           // live block at DumpLeaks time
  };

  using ReportFn = void (*)(void* ctx, Fault fault, const char* tag, void* ptr);

  static constexpr size_t kFenceBytes = 32;
  static constexpr uint8_t kFencePattern = 0xa5;
  static constexpr uint8_t kAllocPoison = 0xd0;
  static constexpr uint8_t kFreePoison = 0xdf;
  static constexpr size_t kQuarantineBlocks = 64;

  explicit MemDebug(const libc::MemEnv& env);
  ~MemDebug();

  // Reports land here; default prints to stderr.
  void SetReporter(ReportFn fn, void* ctx);

  // `tag` identifies the call site in leak dumps (string must outlive the
  // allocation; string literals intended).
  void* Alloc(size_t size, const char* tag);
  void Free(void* ptr);

  // Verifies the fences of every live and quarantined block; returns the
  // number of faults found (each is also reported).
  size_t CheckAll();

  // Reports every live allocation as a leak; returns the count.
  size_t DumpLeaks();

  size_t live_blocks() const { return live_blocks_; }
  size_t live_bytes() const { return live_bytes_; }
  uint64_t faults_detected() const { return faults_; }

 private:
  struct Header {
    ListNode node;
    size_t size;
    const char* tag;
    uint32_t state;  // kLive or kFreed
  };
  static constexpr uint32_t kLive = 0x4c495645;   // "LIVE"
  static constexpr uint32_t kFreed = 0x46524545;  // "FREE"

  static Header* HeaderOf(void* ptr);
  uint8_t* FrontFence(Header* h);
  uint8_t* Payload(Header* h);
  uint8_t* BackFence(Header* h);

  void Report(Fault fault, Header* h);
  bool CheckFences(Header* h);
  bool CheckFreePoison(Header* h);
  void EvictOneFromQuarantine();

  libc::MemEnv env_;
  ReportFn report_;
  void* report_ctx_;
  IntrusiveList<Header, &Header::node> live_;
  std::deque<Header*> quarantine_;
  size_t live_blocks_ = 0;
  size_t live_bytes_ = 0;
  uint64_t faults_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MEMDEBUG_MEMDEBUG_H_
