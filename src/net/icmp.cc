// ICMP: echo request/reply, and the blocking Ping() client API.

#include <cstring>
#include <vector>

#include "src/base/checksum.h"
#include "src/net/stack.h"

namespace oskit::net {

void NetStack::IcmpInput(int ifindex, const Ipv4Header& ip, MBuf* payload) {
  payload = pool_.Pullup(payload, kIcmpHeaderSize);
  if (payload == nullptr) {
    return;
  }
  // Whole-message checksum.
  InetChecksum cksum;
  for (const MBuf* m = payload; m != nullptr; m = m->next) {
    cksum.Add(m->data, m->len);
  }
  if (cksum.Finish() != 0) {
    pool_.FreeChain(payload);
    return;
  }
  uint8_t type = payload->data[0];
  if (type == kIcmpEchoRequest) {
    ++counters_.icmp_echo_in;
    // Build the reply in private storage: the request may sit in foreign
    // external storage (a zero-copy-imported skbuff) we must not mutate.
    size_t len = payload->pkt_len;
    MBuf* reply = pool_.FromData(nullptr, len);
    {
      // Flatten the request into the reply chain.
      std::vector<uint8_t> flat(len);
      pool_.CopyData(payload, 0, len, flat.data());
      flat[0] = kIcmpEchoReply;
      StoreBe16(flat.data() + 2, 0);
      StoreBe16(flat.data() + 2, InetChecksumOf(flat.data(), len));
      size_t off = 0;
      for (MBuf* m = reply; m != nullptr; m = m->next) {
        std::memcpy(m->data, flat.data() + off, m->len);
        off += m->len;
      }
    }
    pool_.FreeChain(payload);
    IpOutput(kIpProtoIcmp, InetAddr{}, ip.src, reply);
    return;
  }
  if (type == kIcmpEchoReply) {
    uint16_t ident = LoadBe16(payload->data + 4);
    uint16_t seq = LoadBe16(payload->data + 6);
    for (PendingEcho& echo : pending_echoes_) {
      if (echo.ident == ident && echo.seq == seq && !echo.done) {
        echo.done = true;
        echo.rtt = clock_->Now() - echo.sent_at;
        sleep_wakeup_.Wakeup(&echo);
        break;
      }
    }
    pool_.FreeChain(payload);
    return;
  }
  pool_.FreeChain(payload);
}

Error NetStack::Ping(InetAddr dst, SimTime timeout_ns, SimTime* out_rtt_ns) {
  PendingEcho echo;
  echo.ident = icmp_ident_++;
  echo.seq = 1;
  echo.sent_at = clock_->Now();
  pending_echoes_.push_back(echo);
  PendingEcho& slot = pending_echoes_.back();

  // 32 payload bytes of pattern, classic ping.
  uint8_t message[kIcmpHeaderSize + 32];
  std::memset(message, 0, sizeof(message));
  message[0] = kIcmpEchoRequest;
  StoreBe16(message + 4, slot.ident);
  StoreBe16(message + 6, slot.seq);
  for (size_t i = 0; i < 32; ++i) {
    message[kIcmpHeaderSize + i] = static_cast<uint8_t>('a' + i % 26);
  }
  StoreBe16(message + 2, InetChecksumOf(message, sizeof(message)));

  MBuf* m = pool_.FromData(message, sizeof(message));
  Error err = IpOutput(kIpProtoIcmp, InetAddr{}, dst, m);
  if (!Ok(err)) {
    pending_echoes_.remove_if([&](const PendingEcho& e) { return &e == &slot; });
    return err;
  }

  // Wait for the reply with a timeout event.
  SimClock::EventId timer = clock_->ScheduleAfter(timeout_ns, [this, &slot] {
    if (!slot.done) {
      slot.done = true;
      slot.timed_out = true;
      sleep_wakeup_.Wakeup(&slot);
    }
  });
  while (!slot.done) {
    sleep_wakeup_.Sleep(&slot);
  }
  clock_->Cancel(timer);
  SimTime rtt = slot.rtt;
  bool timed_out = slot.timed_out;
  pending_echoes_.remove_if([&](const PendingEcho& e) { return &e == &slot; });
  if (timed_out) {
    return Error::kTimedOut;
  }
  *out_rtt_ns = rtt;
  return Error::kOk;
}

}  // namespace oskit::net
