// IPv4: input validation, fragment reassembly, routing, output with
// fragmentation.

#include <cstring>

#include "src/base/checksum.h"
#include "src/base/panic.h"
#include "src/net/stack.h"

namespace oskit::net {

namespace {

constexpr SimTime kFragLifetime = 30 * kNsPerSec;
constexpr size_t kMaxDatagram = 65535;

}  // namespace

int NetStack::RouteFor(InetAddr dst, InetAddr* out_next_hop) {
  // Directly-attached subnet first; otherwise the default gateway.
  for (size_t i = 0; i < ifaces_.size(); ++i) {
    const Iface& iface = ifaces_[i];
    if (!iface.configured) {
      continue;
    }
    if ((dst.value & iface.netmask.value) == (iface.addr.value & iface.netmask.value)) {
      *out_next_hop = dst;
      return static_cast<int>(i);
    }
  }
  if (!gateway_.IsAny()) {
    for (size_t i = 0; i < ifaces_.size(); ++i) {
      const Iface& iface = ifaces_[i];
      if (!iface.configured) {
        continue;
      }
      if ((gateway_.value & iface.netmask.value) ==
          (iface.addr.value & iface.netmask.value)) {
        *out_next_hop = gateway_;
        return static_cast<int>(i);
      }
    }
  }
  return -1;
}

Error NetStack::IpOutput(uint8_t proto, InetAddr src, InetAddr dst, MBuf* payload) {
  // Local delivery (talking to our own address loops back below IP).
  for (const Iface& iface : ifaces_) {
    if (iface.configured && iface.addr == dst) {
      MBuf* dgram = pool_.Prepend(payload, kIpHeaderSize);
      Ipv4Header ip;
      ip.total_len = static_cast<uint16_t>(dgram->pkt_len);
      ip.ident = ip_ident_++;
      ip.proto = proto;
      ip.src = src;
      ip.dst = dst;
      ip.Serialize(dgram->data);
      ++counters_.ip_out;
      IpInput(0, dgram);
      return Error::kOk;
    }
  }

  InetAddr next_hop;
  int ifindex = RouteFor(dst, &next_hop);
  if (ifindex < 0) {
    pool_.FreeChain(payload);
    return Error::kNetUnreach;
  }
  if (src.IsAny()) {
    src = ifaces_[ifindex].addr;
  }
  size_t payload_len = payload->pkt_len;
  if (payload_len + kIpHeaderSize > kMaxDatagram) {
    pool_.FreeChain(payload);
    return Error::kMsgSize;
  }

  uint16_t ident = ip_ident_++;
  size_t mtu_payload = kEtherMtu - kIpHeaderSize;

  if (payload_len + kIpHeaderSize <= kEtherMtu) {
    // Transport payloads arrive with a header mbuf that reserved headroom
    // (see TcpSendSegment), so this prepend — and the Ethernet one below —
    // extends that leading mbuf in place: no new mbufs, no data movement,
    // and the chain reaches the driver in its original shape.
    MBuf* dgram = pool_.Prepend(payload, kIpHeaderSize);
    Ipv4Header ip;
    ip.total_len = static_cast<uint16_t>(dgram->pkt_len);
    ip.ident = ident;
    ip.proto = proto;
    ip.src = src;
    ip.dst = dst;
    ip.Serialize(dgram->data);
    ++counters_.ip_out;
    IpSendViaIface(ifindex, next_hop, dgram);
    return Error::kOk;
  }

  // Fragment: each piece carries a multiple of 8 payload bytes except the
  // last.
  size_t frag_payload = mtu_payload & ~size_t{7};
  size_t offset = 0;
  while (offset < payload_len) {
    size_t n = payload_len - offset;
    bool last = n <= frag_payload;
    if (!last) {
      n = frag_payload;
    }
    MBuf* piece = pool_.CopyChain(payload, offset, n);
    MBuf* dgram = pool_.Prepend(piece, kIpHeaderSize);
    Ipv4Header ip;
    ip.total_len = static_cast<uint16_t>(n + kIpHeaderSize);
    ip.ident = ident;
    ip.frag = static_cast<uint16_t>((offset / 8) | (last ? 0 : kIpFlagMoreFragments));
    ip.proto = proto;
    ip.src = src;
    ip.dst = dst;
    ip.Serialize(dgram->data);
    ++counters_.ip_out;
    ++counters_.ip_frag_out;
    IpSendViaIface(ifindex, next_hop, dgram);
    offset += n;
  }
  pool_.FreeChain(payload);
  return Error::kOk;
}

void NetStack::IpInput(int ifindex, MBuf* packet) {
  ++counters_.ip_in;
  packet = pool_.Pullup(packet, kIpHeaderSize);
  if (packet == nullptr) {
    return;
  }
  Ipv4Header ip;
  if (!Ipv4Header::Parse(packet->data, packet->len, &ip)) {
    pool_.FreeChain(packet);
    return;
  }
  packet = pool_.Pullup(packet, ip.header_len);
  if (packet == nullptr) {
    return;
  }
  // Header checksum: must sum to zero including the stored checksum.
  if (InetChecksumOf(packet->data, ip.header_len) != 0) {
    ++counters_.ip_bad_checksum;
    pool_.FreeChain(packet);
    return;
  }
  if (ip.total_len > packet->pkt_len) {
    pool_.FreeChain(packet);
    return;
  }
  // Drop link-layer padding (minimum Ethernet frame size pads short IP
  // datagrams).
  if (ip.total_len < packet->pkt_len) {
    pool_.TrimTo(packet, ip.total_len);
  }

  // Are we the destination?  (Broadcast accepted for UDP.)
  bool for_us = false;
  bool broadcast = ip.dst == kInetBroadcast;
  for (const Iface& iface : ifaces_) {
    if (iface.configured && iface.addr == ip.dst) {
      for_us = true;
      break;
    }
  }
  if (!for_us && !broadcast) {
    pool_.FreeChain(packet);  // no forwarding: we are a host, not a router
    return;
  }

  // Strip the header, keeping the parsed copy.
  packet = pool_.TrimFront(packet, ip.header_len);

  // Reassembly.
  if (ip.more_fragments() || ip.frag_offset_bytes() != 0) {
    ++counters_.ip_frags_in;
    FragKey key{ip.src.value, ip.dst.value, ip.ident, ip.proto};
    FragQueue& q = frags_[key];
    if (q.deadline == 0) {
      q.deadline = clock_->Now() + kFragLifetime;
      q.data.resize(kMaxDatagram);
      q.have.resize(kMaxDatagram, false);
    }
    size_t off = ip.frag_offset_bytes();
    size_t len = packet->pkt_len;
    if (off + len > kMaxDatagram) {
      pool_.FreeChain(packet);
      frags_.erase(key);
      return;
    }
    pool_.CopyData(packet, 0, len, q.data.data() + off);
    for (size_t i = 0; i < len; ++i) {
      if (!q.have[off + i]) {
        q.have[off + i] = true;
        ++q.bytes_have;
      }
    }
    pool_.FreeChain(packet);
    if (!ip.more_fragments()) {
      q.total_len = off + len;
    }
    if (q.total_len == 0 || q.bytes_have < q.total_len) {
      return;  // still incomplete
    }
    // Complete: verify there are no holes below total_len.
    for (size_t i = 0; i < q.total_len; ++i) {
      if (!q.have[i]) {
        return;
      }
    }
    MBuf* whole = pool_.FromData(q.data.data(), q.total_len);
    frags_.erase(key);
    ++counters_.ip_reassembled;
    packet = whole;
  }

  switch (ip.proto) {
    case kIpProtoIcmp:
      IcmpInput(ifindex, ip, packet);
      break;
    case kIpProtoUdp:
      UdpInput(ip, packet);
      break;
    case kIpProtoTcp:
      TcpInput(ip, packet);
      break;
    default:
      pool_.FreeChain(packet);
      break;
  }
}

void NetStack::FragTimeoutSweep() {
  SimTime now = clock_->Now();
  for (auto it = frags_.begin(); it != frags_.end();) {
    if (now >= it->second.deadline) {
      it = frags_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace oskit::net
