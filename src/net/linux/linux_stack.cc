#include "src/net/linux/linux_stack.h"

#include <cstring>
#include <vector>

#include "src/base/checksum.h"
#include "src/base/panic.h"
#include "src/dev/linux/skbuff.h"

namespace oskit::net::linuxstack {

using linuxdev::dev_alloc_skb;
using linuxdev::kfree_skb;
using linuxdev::skb_pull;
using linuxdev::skb_push;
using linuxdev::skb_put;
using linuxdev::skb_reserve;

namespace {

constexpr int kRexmtTicks = 2;      // 1 s at the 500 ms tick
constexpr int kConnTicks = 60;      // 30 s
constexpr int kTimeWaitTicks = 8;

uint16_t TcpChecksum(InetAddr src, InetAddr dst, const uint8_t* seg, size_t len) {
  InetChecksum cksum;
  uint8_t pseudo[12];
  StoreBe32(pseudo, src.value);
  StoreBe32(pseudo + 4, dst.value);
  pseudo[8] = 0;
  pseudo[9] = kIpProtoTcp;
  StoreBe16(pseudo + 10, static_cast<uint16_t>(len));
  cksum.Add(pseudo, sizeof(pseudo));
  cksum.Add(seg, len);
  return cksum.Finish();
}

}  // namespace

// ---------------------------------------------------------------------------
// ChannelWait
// ---------------------------------------------------------------------------

void LinuxNetStack::ChannelWait::Sleep(const void* chan) {
  Waiter waiter(env_);
  waiter.chan = chan;
  waiter.next = head_;
  head_ = &waiter;
  waiter.record.Sleep();
  Waiter** link = &head_;
  while (*link != nullptr && *link != &waiter) {
    link = &(*link)->next;
  }
  OSKIT_ASSERT(*link == &waiter);
  *link = waiter.next;
}

void LinuxNetStack::ChannelWait::Wakeup(const void* chan) {
  for (Waiter* w = head_; w != nullptr; w = w->next) {
    if (w->chan == chan) {
      w->record.Wakeup();
    }
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

namespace {

void StackNetifRx(void* ctx, linux_device* /*dev*/, sk_buff* skb) {
  static_cast<LinuxNetStack*>(ctx)->NetifRx(skb);
}

}  // namespace

LinuxNetStack::LinuxNetStack(SleepEnv* sleep_env, SimClock* clock, linux_device* dev,
                             trace::TraceEnv* trace)
    : sleep_env_(sleep_env),
      clock_(clock),
      dev_(dev),
      sleep_(sleep_env),
      trace_(trace::ResolveTraceEnv(trace)) {
  trace_binding_.Bind(&trace_->registry,
                      {{"linux.ip.in", &counters_.ip_in},
                       {"linux.ip.out", &counters_.ip_out},
                       {"linux.tcp.in", &counters_.tcp_in},
                       {"linux.tcp.out", &counters_.tcp_out},
                       {"linux.tcp.retransmits", &counters_.tcp_retransmits},
                       {"linux.tcp.drops_ooo", &counters_.drops_ooo},
                       {"linux.arp.in", &counters_.arp_in}});
  dev_->netif_rx = &StackNetifRx;
  dev_->netif_rx_ctx = this;
  tick_event_ = clock_->ScheduleAfter(500 * kNsPerMs, [this] { SlowTick(); });
}

LinuxNetStack::~LinuxNetStack() {
  shutting_down_ = true;
  clock_->Cancel(tick_event_);
  dev_->netif_rx = nullptr;
  for (auto& pcb : pcbs_) {
    FlushPcb(pcb.get());
  }
  for (auto& [ip, entry] : arp_) {
    if (entry.pending != nullptr) {
      kfree_skb(dev_->kenv, entry.pending);
    }
  }
}

void LinuxNetStack::FlushPcb(LTcpPcb* pcb) {
  for (auto& seg : pcb->txq) {
    kfree_skb(dev_->kenv, seg.skb);
  }
  pcb->txq.clear();
  pcb->txq_bytes = 0;
  for (sk_buff* skb : pcb->rxq) {
    kfree_skb(dev_->kenv, skb);
  }
  pcb->rxq.clear();
  pcb->rxq_bytes = 0;
}

Error LinuxNetStack::IfConfig(InetAddr addr, InetAddr netmask) {
  addr_ = addr;
  netmask_ = netmask;
  configured_ = true;
  if (!dev_->opened) {
    dev_->open(dev_);
  }
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Link layer in/out
// ---------------------------------------------------------------------------

void LinuxNetStack::NetifRx(sk_buff* skb) {
  if (skb->len < kEtherHeaderSize) {
    kfree_skb(dev_->kenv, skb);
    return;
  }
  EtherHeader eh = EtherHeader::Parse(skb->data);
  skb_pull(skb, kEtherHeaderSize);
  switch (eh.type) {
    case kEtherTypeArp:
      ArpInput(skb);
      break;
    case kEtherTypeIp:
      IpInput(skb);
      break;
    default:
      kfree_skb(dev_->kenv, skb);
      break;
  }
}

void LinuxNetStack::ArpInput(sk_buff* skb) {
  ++counters_.arp_in;
  ArpPacket arp;
  if (!ArpPacket::Parse(skb->data, skb->len, &arp)) {
    kfree_skb(dev_->kenv, skb);
    return;
  }
  kfree_skb(dev_->kenv, skb);

  ArpEntry& entry = arp_[arp.sender_ip.value];
  entry.mac = arp.sender_mac;
  entry.resolved = true;
  if (entry.pending != nullptr) {
    sk_buff* queued = entry.pending;
    entry.pending = nullptr;
    // Fill in the destination MAC we were waiting for and transmit.
    std::memcpy(queued->data, entry.mac.bytes, kEtherAddrSize);
    dev_->hard_start_xmit(queued, dev_);
  }

  if (arp.op == kArpOpRequest && configured_ && arp.target_ip == addr_) {
    sk_buff* reply = dev_alloc_skb(dev_->kenv, kEtherHeaderSize + kArpPacketSize);
    ArpPacket out;
    out.op = kArpOpReply;
    std::memcpy(out.sender_mac.bytes, dev_->dev_addr, 6);
    out.sender_ip = addr_;
    out.target_mac = arp.sender_mac;
    out.target_ip = arp.sender_ip;
    EtherHeader eh;
    eh.dst = arp.sender_mac;
    std::memcpy(eh.src.bytes, dev_->dev_addr, 6);
    eh.type = kEtherTypeArp;
    eh.Serialize(skb_put(reply, kEtherHeaderSize));
    out.Serialize(skb_put(reply, kArpPacketSize));
    dev_->hard_start_xmit(reply, dev_);
  }
}

void LinuxNetStack::ResolveAndSend(InetAddr next_hop, sk_buff* skb) {
  // `skb` starts at the Ethernet header with the destination MAC unset.
  ArpEntry& entry = arp_[next_hop.value];
  if (entry.resolved) {
    std::memcpy(skb->data, entry.mac.bytes, kEtherAddrSize);
    dev_->hard_start_xmit(skb, dev_);
    return;
  }
  if (entry.pending != nullptr) {
    kfree_skb(dev_->kenv, entry.pending);
  }
  entry.pending = skb;

  sk_buff* request = dev_alloc_skb(dev_->kenv, kEtherHeaderSize + kArpPacketSize);
  ArpPacket arp;
  arp.op = kArpOpRequest;
  std::memcpy(arp.sender_mac.bytes, dev_->dev_addr, 6);
  arp.sender_ip = addr_;
  arp.target_ip = next_hop;
  EtherHeader eh;
  eh.dst = kEtherBroadcast;
  std::memcpy(eh.src.bytes, dev_->dev_addr, 6);
  eh.type = kEtherTypeArp;
  eh.Serialize(skb_put(request, kEtherHeaderSize));
  arp.Serialize(skb_put(request, kArpPacketSize));
  dev_->hard_start_xmit(request, dev_);
}

// ---------------------------------------------------------------------------
// IP
// ---------------------------------------------------------------------------

void LinuxNetStack::IpInput(sk_buff* skb) {
  ++counters_.ip_in;
  Ipv4Header ip;
  if (!Ipv4Header::Parse(skb->data, skb->len, &ip) ||
      InetChecksumOf(skb->data, ip.header_len) != 0 || ip.total_len > skb->len) {
    kfree_skb(dev_->kenv, skb);
    return;
  }
  if (!(configured_ && (ip.dst == addr_ || ip.dst == kInetBroadcast))) {
    kfree_skb(dev_->kenv, skb);
    return;
  }
  if (ip.more_fragments() || ip.frag_offset_bytes() != 0) {
    kfree_skb(dev_->kenv, skb);  // baseline stack: no reassembly
    return;
  }
  // Trim link padding, then strip the IP header.
  skb->len = ip.total_len;
  skb->tail = skb->data + ip.total_len;
  skb_pull(skb, ip.header_len);
  if (ip.proto == kIpProtoTcp) {
    TcpInput(ip, skb);
    return;
  }
  kfree_skb(dev_->kenv, skb);
}

void LinuxNetStack::IpTcpOutput(InetAddr src, InetAddr dst, sk_buff* skb) {
  // skb->data currently points at the TCP header; push IP and Ethernet.
  ++counters_.ip_out;
  size_t tcp_len = skb->len;
  uint8_t* iph = skb_push(skb, kIpHeaderSize);
  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(tcp_len + kIpHeaderSize);
  ip.ident = ip_ident_++;
  ip.frag = kIpFlagDontFragment;
  ip.proto = kIpProtoTcp;
  ip.src = src;
  ip.dst = dst;
  ip.Serialize(iph);

  uint8_t* eth = skb_push(skb, kEtherHeaderSize);
  EtherHeader eh;
  // Destination filled by ResolveAndSend.
  std::memcpy(eh.src.bytes, dev_->dev_addr, 6);
  eh.type = kEtherTypeIp;
  eh.Serialize(eth);

  InetAddr next_hop = dst;
  if (configured_ && (dst.value & netmask_.value) != (addr_.value & netmask_.value)) {
    // Baseline stack: direct subnet only (the benchmark LAN).
    next_hop = dst;
  }
  ResolveAndSend(next_hop, skb);
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

LTcpPcb* LinuxNetStack::Lookup(InetAddr src, uint16_t sport, InetAddr dst,
                               uint16_t dport) {
  LTcpPcb* listener = nullptr;
  for (auto& pcb : pcbs_) {
    if (pcb->lport != dport) {
      continue;
    }
    if (pcb->state == LTcpState::kListen) {
      listener = pcb.get();
      continue;
    }
    if (pcb->faddr == src && pcb->fport == sport) {
      return pcb.get();
    }
  }
  return listener;
}

uint16_t LinuxNetStack::AllocPort() {
  for (;;) {
    uint16_t port = next_port_++;
    if (next_port_ < 40000) {
      next_port_ = 40000;
    }
    bool taken = false;
    for (auto& pcb : pcbs_) {
      if (pcb->lport == port) {
        taken = true;
        break;
      }
    }
    if (!taken) {
      return port;
    }
  }
}

void LinuxNetStack::SendControl(LTcpPcb* pcb, uint8_t flags, bool with_mss) {
  ++counters_.tcp_out;
  size_t hdr = with_mss ? kTcpHeaderSize + 4 : kTcpHeaderSize;
  sk_buff* skb = dev_alloc_skb(dev_->kenv, kHeaderRoom);
  skb_reserve(skb, kHeaderRoom - hdr);
  TcpHeader th;
  th.src_port = pcb->lport;
  th.dst_port = pcb->fport;
  th.flags = flags;
  th.mss_option = pcb->mss;
  uint32_t seq;
  if ((flags & kTcpFlagSyn) != 0) {
    seq = pcb->iss;
  } else if ((flags & kTcpFlagFin) != 0) {
    seq = pcb->snd_nxt;
  } else {
    seq = pcb->snd_nxt;
  }
  th.seq = seq;
  th.ack = pcb->rcv_nxt;
  size_t space = pcb->rcv_hiwat > pcb->rxq_bytes ? pcb->rcv_hiwat - pcb->rxq_bytes : 0;
  th.window = static_cast<uint16_t>(space > 65535 ? 65535 : space);
  th.Serialize(skb_put(skb, hdr), with_mss);
  StoreBe16(skb->data + 16, TcpChecksum(pcb->laddr, pcb->faddr, skb->data, hdr));
  IpTcpOutput(pcb->laddr, pcb->faddr, skb);
}

void LinuxNetStack::TransmitSeg(LTcpPcb* pcb, LTcpPcb::TxSeg& seg) {
  ++counters_.tcp_out;
  // Write the headers into the owning skbuff's reserved headroom, then hand
  // the driver a fake clone sharing the data (Linux 2.0's skb_clone role):
  // the queued original stays for retransmission.
  sk_buff* skb = seg.skb;
  uint8_t* payload = skb->data;
  uint32_t payload_len = skb->len;

  uint8_t* th_bytes = skb_push(skb, kTcpHeaderSize);
  TcpHeader th;
  th.src_port = pcb->lport;
  th.dst_port = pcb->fport;
  th.seq = seg.seq;
  th.ack = pcb->rcv_nxt;
  th.flags = static_cast<uint8_t>(kTcpFlagAck | kTcpFlagPsh |
                                  (seg.fin ? kTcpFlagFin : 0));
  size_t space = pcb->rcv_hiwat > pcb->rxq_bytes ? pcb->rcv_hiwat - pcb->rxq_bytes : 0;
  th.window = static_cast<uint16_t>(space > 65535 ? 65535 : space);
  th.Serialize(th_bytes);
  StoreBe16(th_bytes + 16,
            TcpChecksum(pcb->laddr, pcb->faddr, th_bytes, kTcpHeaderSize + payload_len));

  uint8_t* iph = skb_push(skb, kIpHeaderSize);
  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(kIpHeaderSize + kTcpHeaderSize + payload_len);
  ip.ident = ip_ident_++;
  ip.frag = kIpFlagDontFragment;
  ip.proto = kIpProtoTcp;
  ip.src = pcb->laddr;
  ip.dst = pcb->faddr;
  ip.Serialize(iph);

  uint8_t* eth = skb_push(skb, kEtherHeaderSize);
  EtherHeader eh;
  std::memcpy(eh.src.bytes, dev_->dev_addr, 6);
  eh.type = kEtherTypeIp;
  eh.Serialize(eth);

  // Fake clone over the fully-built frame.
  sk_buff* clone = dev_alloc_skb(dev_->kenv, 0);
  clone->fake = true;
  clone->data = skb->data;
  clone->tail = skb->tail;
  clone->len = skb->len;

  // Restore the original to payload-only view for a later retransmit.
  skb_pull(skb, kEtherHeaderSize + kIpHeaderSize + kTcpHeaderSize);
  OSKIT_ASSERT(skb->data == payload && skb->len == payload_len);

  ArpEntry& entry = arp_[pcb->faddr.value];
  if (entry.resolved) {
    std::memcpy(clone->data, entry.mac.bytes, kEtherAddrSize);
    dev_->hard_start_xmit(clone, dev_);
  } else {
    // Unresolved: the pending slot owns a DEEP copy (the clone's data
    // lives in the retransmit queue and may be rewritten).
    sk_buff* copy = dev_alloc_skb(dev_->kenv, clone->len);
    std::memcpy(skb_put(copy, clone->len), clone->data, clone->len);
    kfree_skb(dev_->kenv, clone);
    ResolveAndSend(pcb->faddr, copy);
    return;
  }
  seg.transmitted = true;
  if (pcb->rexmt_ticks == 0) {
    pcb->rexmt_ticks = kRexmtTicks;
  }
}

void LinuxNetStack::TcpTrySend(LTcpPcb* pcb) {
  uint32_t wnd_edge = pcb->snd_una + pcb->snd_wnd;
  for (auto& seg : pcb->txq) {
    if (seg.transmitted) {
      continue;
    }
    if (SeqGt(seg.seq + seg.len, wnd_edge)) {
      break;  // window closed
    }
    TransmitSeg(pcb, seg);
  }
}

void LinuxNetStack::TcpInput(const Ipv4Header& ip, sk_buff* skb) {
  ++counters_.tcp_in;
  TcpHeader th;
  if (!TcpHeader::Parse(skb->data, skb->len, &th)) {
    kfree_skb(dev_->kenv, skb);
    return;
  }
  if (TcpChecksum(ip.src, ip.dst, skb->data, skb->len) != 0) {
    kfree_skb(dev_->kenv, skb);
    return;
  }
  skb_pull(skb, th.data_off);
  uint32_t data_len = skb->len;

  LTcpPcb* pcb = Lookup(ip.src, th.src_port, ip.dst, th.dst_port);
  if (pcb == nullptr) {
    kfree_skb(dev_->kenv, skb);
    return;  // baseline: silently drop (no RST generation)
  }

  // LISTEN: passive open.
  if (pcb->state == LTcpState::kListen) {
    if ((th.flags & kTcpFlagSyn) == 0 || (th.flags & kTcpFlagAck) != 0) {
      kfree_skb(dev_->kenv, skb);
      return;
    }
    auto child = std::make_unique<LTcpPcb>();
    child->laddr = ip.dst;
    child->lport = th.dst_port;
    child->faddr = ip.src;
    child->fport = th.src_port;
    child->listener = pcb;
    child->iss = iss_counter_ += 32000;
    child->snd_una = child->iss;
    child->snd_nxt = child->iss + 1;
    child->irs = th.seq;
    child->rcv_nxt = th.seq + 1;
    child->snd_wnd = th.window;
    if (th.mss_option != 0 && th.mss_option < child->mss) {
      child->mss = th.mss_option;
    }
    child->state = LTcpState::kSynReceived;
    child->conn_ticks = kConnTicks;
    LTcpPcb* raw = child.get();
    pcbs_.push_back(std::move(child));
    SendControl(raw, kTcpFlagSyn | kTcpFlagAck, /*with_mss=*/true);
    kfree_skb(dev_->kenv, skb);
    return;
  }

  if ((th.flags & kTcpFlagRst) != 0) {
    pcb->so_error = Error::kConnReset;
    pcb->state = LTcpState::kClosed;
    Wake(&pcb->rxq);
    Wake(&pcb->txq);
    PcbFreeIfDone(pcb);
    kfree_skb(dev_->kenv, skb);
    return;
  }

  if (pcb->state == LTcpState::kSynSent) {
    if ((th.flags & (kTcpFlagSyn | kTcpFlagAck)) != (kTcpFlagSyn | kTcpFlagAck) ||
        th.ack != pcb->iss + 1) {
      kfree_skb(dev_->kenv, skb);
      return;
    }
    pcb->irs = th.seq;
    pcb->rcv_nxt = th.seq + 1;
    pcb->snd_una = th.ack;
    pcb->snd_wnd = th.window;
    if (th.mss_option != 0 && th.mss_option < pcb->mss) {
      pcb->mss = th.mss_option;
    }
    pcb->state = LTcpState::kEstablished;
    pcb->conn_ticks = 0;
    pcb->rexmt_ticks = 0;
    SendControl(pcb, kTcpFlagAck, false);
    Wake(&pcb->rxq);
    kfree_skb(dev_->kenv, skb);
    return;
  }

  // ACK processing.
  if ((th.flags & kTcpFlagAck) != 0) {
    pcb->snd_wnd = th.window;
    if (SeqGt(th.ack, pcb->snd_una)) {
      pcb->snd_una = th.ack;
      // Pop fully-acknowledged segments.
      while (!pcb->txq.empty()) {
        LTcpPcb::TxSeg& head = pcb->txq.front();
        uint32_t seg_end = head.seq + head.len + (head.fin ? 1 : 0);
        if (SeqGt(seg_end, pcb->snd_una)) {
          break;
        }
        pcb->txq_bytes -= head.len;
        kfree_skb(dev_->kenv, head.skb);
        pcb->txq.pop_front();
      }
      pcb->rexmt_ticks = pcb->txq.empty() ? 0 : kRexmtTicks;
      Wake(&pcb->txq);

      if (pcb->state == LTcpState::kSynReceived) {
        pcb->state = LTcpState::kEstablished;
        pcb->conn_ticks = 0;
        if (pcb->listener != nullptr) {
          pcb->listener->accept_queue.push_back(pcb);
          Wake(&pcb->listener->accept_queue);
        }
      }
      if (pcb->fin_queued && !pcb->fin_acked && pcb->txq.empty() &&
          SeqGeq(pcb->snd_una, pcb->snd_nxt + 1)) {
        pcb->fin_acked = true;
        switch (pcb->state) {
          case LTcpState::kFinWait1:
            pcb->state = pcb->peer_fin_seen ? LTcpState::kTimeWait
                                            : LTcpState::kFinWait2;
            if (pcb->state == LTcpState::kTimeWait) {
              pcb->time_wait_ticks = kTimeWaitTicks;
            }
            break;
          case LTcpState::kClosing:
            pcb->state = LTcpState::kTimeWait;
            pcb->time_wait_ticks = kTimeWaitTicks;
            break;
          case LTcpState::kLastAck:
            pcb->state = LTcpState::kClosed;
            PcbFreeIfDone(pcb);
            kfree_skb(dev_->kenv, skb);
            return;
          default:
            break;
        }
        Wake(&pcb->rxq);
      }
    }
  }

  // Data: in-order only; out-of-order is dropped and recovered by
  // retransmission (documented baseline simplification).
  bool advanced = false;
  if (data_len > 0) {
    if (th.seq == pcb->rcv_nxt &&
        (pcb->state == LTcpState::kEstablished ||
         pcb->state == LTcpState::kFinWait1 || pcb->state == LTcpState::kFinWait2) &&
        pcb->rxq_bytes + data_len <= pcb->rcv_hiwat) {
      pcb->rxq.push_back(skb);
      pcb->rxq_bytes += data_len;
      pcb->rcv_nxt += data_len;
      advanced = true;
      skb = nullptr;
      Wake(&pcb->rxq);
    } else if (SeqLt(th.seq, pcb->rcv_nxt) &&
               SeqLeq(th.seq + data_len, pcb->rcv_nxt)) {
      // Entirely old duplicate: just re-ACK below.
    } else {
      ++counters_.drops_ooo;
    }
  }

  // FIN.
  uint32_t fin_seq = th.seq + data_len;
  if ((th.flags & kTcpFlagFin) != 0 && !pcb->peer_fin_seen &&
      fin_seq == pcb->rcv_nxt) {
    pcb->peer_fin_seen = true;
    pcb->rcv_nxt += 1;
    advanced = true;
    switch (pcb->state) {
      case LTcpState::kEstablished:
        pcb->state = LTcpState::kCloseWait;
        break;
      case LTcpState::kFinWait1:
        pcb->state = LTcpState::kClosing;
        break;
      case LTcpState::kFinWait2:
        pcb->state = LTcpState::kTimeWait;
        pcb->time_wait_ticks = kTimeWaitTicks;
        break;
      default:
        break;
    }
    Wake(&pcb->rxq);
  }

  if (skb != nullptr) {
    kfree_skb(dev_->kenv, skb);
  }

  if (advanced || data_len > 0) {
    SendControl(pcb, kTcpFlagAck, false);  // Linux 2.0 acked eagerly
  }
  TcpTrySend(pcb);
}

void LinuxNetStack::SlowTick() {
  if (shutting_down_) {
    return;
  }
  std::vector<LTcpPcb*> snapshot;
  for (auto& pcb : pcbs_) {
    snapshot.push_back(pcb.get());
  }
  for (LTcpPcb* pcb : snapshot) {
    bool alive = false;
    for (auto& p : pcbs_) {
      if (p.get() == pcb) {
        alive = true;
        break;
      }
    }
    if (!alive) {
      continue;
    }
    if (pcb->conn_ticks > 0 && --pcb->conn_ticks == 0) {
      pcb->so_error = Error::kTimedOut;
      pcb->state = LTcpState::kClosed;
      Wake(&pcb->rxq);
      Wake(&pcb->txq);
      PcbFreeIfDone(pcb);
      continue;
    }
    if (pcb->rexmt_ticks > 0 && --pcb->rexmt_ticks == 0) {
      ++counters_.tcp_retransmits;
      if (pcb->state == LTcpState::kSynSent) {
        SendControl(pcb, kTcpFlagSyn, /*with_mss=*/true);
        pcb->rexmt_ticks = kRexmtTicks;
      } else if (pcb->state == LTcpState::kSynReceived) {
        SendControl(pcb, kTcpFlagSyn | kTcpFlagAck, /*with_mss=*/true);
        pcb->rexmt_ticks = kRexmtTicks;
      } else {
        // Go-back-N: mark everything unsent and pump the window again.
        for (auto& seg : pcb->txq) {
          seg.transmitted = false;
        }
        TcpTrySend(pcb);
        if (pcb->fin_queued && !pcb->fin_acked && pcb->txq.empty()) {
          SendControl(pcb, kTcpFlagFin | kTcpFlagAck, false);
        }
        pcb->rexmt_ticks = kRexmtTicks;
      }
    }
    if (pcb->state == LTcpState::kTimeWait && --pcb->time_wait_ticks <= 0) {
      pcb->state = LTcpState::kClosed;
      PcbFreeIfDone(pcb);
    }
  }
  tick_event_ = clock_->ScheduleAfter(500 * kNsPerMs, [this] { SlowTick(); });
}

void LinuxNetStack::PcbFreeIfDone(LTcpPcb* pcb) {
  if (!pcb->detached || pcb->state != LTcpState::kClosed) {
    return;
  }
  FlushPcb(pcb);
  for (auto it = pcbs_.begin(); it != pcbs_.end(); ++it) {
    if (it->get() == pcb) {
      pcbs_.erase(it);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Socket layer
// ---------------------------------------------------------------------------

Error LinuxNetStack::SoBind(LTcpPcb* pcb, const SockAddr& addr) {
  for (auto& other : pcbs_) {
    if (other.get() != pcb && other->lport == addr.port) {
      return Error::kAddrInUse;
    }
  }
  pcb->laddr = addr.addr.IsAny() ? addr_ : addr.addr;
  pcb->lport = addr.port;
  return Error::kOk;
}

Error LinuxNetStack::SoConnect(LTcpPcb* pcb, const SockAddr& addr) {
  if (pcb->state != LTcpState::kClosed) {
    return Error::kIsConn;
  }
  if (pcb->lport == 0) {
    pcb->lport = AllocPort();
  }
  pcb->laddr = addr_;
  pcb->faddr = addr.addr;
  pcb->fport = addr.port;
  pcb->iss = iss_counter_ += 32000;
  pcb->snd_una = pcb->iss;
  pcb->snd_nxt = pcb->iss + 1;
  pcb->state = LTcpState::kSynSent;
  pcb->conn_ticks = kConnTicks;
  pcb->rexmt_ticks = kRexmtTicks;
  SendControl(pcb, kTcpFlagSyn, /*with_mss=*/true);
  while (pcb->state == LTcpState::kSynSent || pcb->state == LTcpState::kSynReceived) {
    Block(&pcb->rxq);
  }
  if (pcb->state != LTcpState::kEstablished) {
    return Ok(pcb->so_error) ? Error::kConnRefused : pcb->so_error;
  }
  return Error::kOk;
}

Error LinuxNetStack::SoListen(LTcpPcb* pcb, int backlog) {
  if (pcb->lport == 0) {
    return Error::kInval;
  }
  pcb->laddr = addr_;
  pcb->backlog = backlog < 1 ? 1 : backlog;
  pcb->state = LTcpState::kListen;
  return Error::kOk;
}

Error LinuxNetStack::SoAccept(LTcpPcb* pcb, SockAddr* out_peer, LTcpPcb** out_child) {
  while (pcb->accept_queue.empty()) {
    if (pcb->state != LTcpState::kListen) {
      return Error::kAborted;
    }
    Block(&pcb->accept_queue);
  }
  LTcpPcb* child = pcb->accept_queue.front();
  pcb->accept_queue.pop_front();
  child->listener = nullptr;
  out_peer->addr = child->faddr;
  out_peer->port = child->fport;
  *out_child = child;
  return Error::kOk;
}

Error LinuxNetStack::SoSend(LTcpPcb* pcb, const void* buf, size_t len,
                            size_t* out_actual) {
  *out_actual = 0;
  const auto* in = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < len) {
    if (pcb->state != LTcpState::kEstablished && pcb->state != LTcpState::kCloseWait) {
      if (sent > 0) {
        break;
      }
      return Ok(pcb->so_error) ? Error::kPipe : pcb->so_error;
    }
    if (pcb->txq_bytes >= pcb->snd_hiwat) {
      Block(&pcb->txq);
      continue;
    }
    size_t n = len - sent;
    if (n > pcb->mss) {
      n = pcb->mss;
    }
    // The single user-to-kernel copy into a contiguous skbuff with header
    // room already reserved (tcp_do_sendmsg).
    sk_buff* skb = dev_alloc_skb(dev_->kenv, kHeaderRoom + n);
    if (skb == nullptr) {
      return Error::kNoMem;
    }
    skb_reserve(skb, kHeaderRoom);
    std::memcpy(skb_put(skb, n), in + sent, n);
    LTcpPcb::TxSeg seg;
    seg.skb = skb;
    seg.seq = pcb->snd_nxt;
    seg.len = static_cast<uint32_t>(n);
    pcb->snd_nxt += static_cast<uint32_t>(n);
    pcb->txq.push_back(seg);
    pcb->txq_bytes += n;
    sent += n;
    TcpTrySend(pcb);
  }
  *out_actual = sent;
  return Error::kOk;
}

Error LinuxNetStack::SoRecv(LTcpPcb* pcb, void* buf, size_t len, size_t* out_actual) {
  *out_actual = 0;
  for (;;) {
    if (pcb->rxq_bytes > 0) {
      break;
    }
    if (pcb->peer_fin_seen || pcb->state == LTcpState::kClosed) {
      return Ok(pcb->so_error) ? Error::kOk : pcb->so_error;  // EOF
    }
    Block(&pcb->rxq);
  }
  auto* out = static_cast<uint8_t*>(buf);
  size_t copied = 0;
  while (copied < len && !pcb->rxq.empty()) {
    sk_buff* head = pcb->rxq.front();
    size_t available = head->len - pcb->rx_consumed_in_head;
    size_t n = available < len - copied ? available : len - copied;
    std::memcpy(out + copied, head->data + pcb->rx_consumed_in_head, n);
    copied += n;
    pcb->rx_consumed_in_head += n;
    if (pcb->rx_consumed_in_head == head->len) {
      kfree_skb(dev_->kenv, head);
      pcb->rxq.pop_front();
      pcb->rx_consumed_in_head = 0;
    }
  }
  pcb->rxq_bytes -= copied;
  *out_actual = copied;
  if (copied >= 2u * pcb->mss) {
    SendControl(pcb, kTcpFlagAck, false);  // window update
  }
  return Error::kOk;
}

Error LinuxNetStack::SoShutdown(LTcpPcb* pcb) {
  if (pcb->fin_queued) {
    return Error::kOk;
  }
  switch (pcb->state) {
    case LTcpState::kEstablished:
      pcb->fin_queued = true;
      pcb->state = LTcpState::kFinWait1;
      break;
    case LTcpState::kCloseWait:
      pcb->fin_queued = true;
      pcb->state = LTcpState::kLastAck;
      break;
    case LTcpState::kSynSent:
    case LTcpState::kListen:
      pcb->state = LTcpState::kClosed;
      return Error::kOk;
    default:
      return Error::kOk;
  }
  if (pcb->txq.empty()) {
    SendControl(pcb, kTcpFlagFin | kTcpFlagAck, false);
    pcb->rexmt_ticks = kRexmtTicks;
  } else {
    pcb->txq.back().fin = true;
    pcb->txq.back().transmitted = false;
    TcpTrySend(pcb);
  }
  return Error::kOk;
}

void LinuxNetStack::SoDetach(LTcpPcb* pcb) {
  pcb->detached = true;
  if (pcb->state == LTcpState::kListen) {
    for (LTcpPcb* child : pcb->accept_queue) {
      child->detached = true;
      child->listener = nullptr;
    }
    pcb->accept_queue.clear();
    pcb->state = LTcpState::kClosed;
  } else if (pcb->state != LTcpState::kClosed) {
    SoShutdown(pcb);
  }
  PcbFreeIfDone(pcb);
}

// ---------------------------------------------------------------------------
// COM socket + factory
// ---------------------------------------------------------------------------

namespace {

class LinuxSocket final : public Socket, public RefCounted<LinuxSocket> {
 public:
  LinuxSocket(LinuxNetStack* stack, LTcpPcb* pcb) : stack_(stack), pcb_(pcb) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == Socket::kIid) {
      AddRef();
      *out = static_cast<Socket*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }

  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override {
    if (ref_count() == 1 && pcb_ != nullptr) {
      stack_->SoDetach(pcb_);
      pcb_ = nullptr;
    }
    return ReleaseImpl();
  }

  Error Bind(const SockAddr& addr) override { return stack_->SoBind(pcb_, addr); }
  Error Connect(const SockAddr& addr) override { return stack_->SoConnect(pcb_, addr); }
  Error Listen(int backlog) override { return stack_->SoListen(pcb_, backlog); }

  Error Accept(SockAddr* out_peer, Socket** out_socket) override {
    LTcpPcb* child = nullptr;
    Error err = stack_->SoAccept(pcb_, out_peer, &child);
    if (!Ok(err)) {
      return err;
    }
    *out_socket = new LinuxSocket(stack_, child);
    return Error::kOk;
  }

  Error Send(const void* buf, size_t amount, size_t* out_actual) override {
    return stack_->SoSend(pcb_, buf, amount, out_actual);
  }
  Error Recv(void* buf, size_t amount, size_t* out_actual) override {
    return stack_->SoRecv(pcb_, buf, amount, out_actual);
  }
  Error SendTo(const void*, size_t, const SockAddr&, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kNotImpl;
  }
  Error RecvFrom(void*, size_t, SockAddr*, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kNotImpl;
  }
  Error Shutdown(SockShutdown how) override {
    if (how == SockShutdown::kRead) {
      return Error::kOk;
    }
    return stack_->SoShutdown(pcb_);
  }
  Error GetSockName(SockAddr* out_addr) override {
    out_addr->addr = pcb_->laddr;
    out_addr->port = pcb_->lport;
    return Error::kOk;
  }
  Error GetPeerName(SockAddr* out_addr) override {
    if (pcb_->state != LTcpState::kEstablished) {
      return Error::kNotConn;
    }
    out_addr->addr = pcb_->faddr;
    out_addr->port = pcb_->fport;
    return Error::kOk;
  }

 private:
  friend class RefCounted<LinuxSocket>;
  ~LinuxSocket() = default;

  LinuxNetStack* stack_;
  LTcpPcb* pcb_;
};

class LinuxSocketFactory final : public SocketFactory,
                                 public RefCounted<LinuxSocketFactory> {
 public:
  explicit LinuxSocketFactory(LinuxNetStack* stack) : stack_(stack) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == SocketFactory::kIid) {
      AddRef();
      *out = static_cast<SocketFactory*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Create(SockDomain domain, SockType type, Socket** out_socket) override {
    *out_socket = nullptr;
    if (domain != SockDomain::kInet || type != SockType::kStream) {
      return Error::kProtoNoSupport;  // baseline stack: TCP only
    }
    *out_socket = stack_->MakeSocket();
    return Error::kOk;
  }

 private:
  friend class RefCounted<LinuxSocketFactory>;
  ~LinuxSocketFactory() = default;

  LinuxNetStack* stack_;
};

}  // namespace

Socket* LinuxNetStack::MakeSocket() {
  auto pcb = std::make_unique<LTcpPcb>();
  LTcpPcb* raw = pcb.get();
  pcbs_.push_back(std::move(pcb));
  return new LinuxSocket(this, raw);
}

ComPtr<SocketFactory> LinuxNetStack::CreateSocketFactory() {
  return ComPtr<SocketFactory>(new LinuxSocketFactory(this));
}

}  // namespace oskit::net::linuxstack
