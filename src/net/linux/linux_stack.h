// The Linux-idiom baseline TCP/IP stack (the "Linux 2.0.29" rows of
// Tables 1 and 2).
//
// Where the FreeBSD-idiom stack lives on chained mbufs, this engine is
// contiguous-skbuff end to end, the way Linux 2.0 was:
//
//  * sendmsg copies user bytes ONCE into MSS-sized skbuffs with headroom
//    already reserved for TCP/IP/Ethernet headers (tcp_do_sendmsg style);
//  * headers are skb_push'ed into the same buffer — no separate header
//    buffer, no chain;
//  * the queued skbuff is retained for retransmission and a "clone" (a
//    fake skbuff sharing the data) is handed to the driver, which gives the
//    hardware one contiguous buffer — so this stack never needs the
//    driver's hard_start_xmit_vec gather entry point: its frames are
//    already zero-copy by contiguity, as Table 1's Linux row shows;
//  * receive parses in place with skb_pull and queues the same skbuff on
//    the socket.
//
// It speaks real TCP/IP on the wire and interoperates with the BSD-idiom
// stack (the cross-stack tests prove it).  As a baseline it is deliberately
// simpler than the BSD engine: no congestion window, no out-of-order
// reassembly (retransmission recovers), no IP fragmentation.  Those
// simplifications are documented in DESIGN.md and do not affect the
// loss-free benchmark wire.

#ifndef OSKIT_SRC_NET_LINUX_LINUX_STACK_H_
#define OSKIT_SRC_NET_LINUX_LINUX_STACK_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "src/com/socket.h"
#include "src/dev/linux/linux_ether.h"
#include "src/machine/clock.h"
#include "src/net/wire_formats.h"
#include "src/sleep/sleep.h"
#include "src/trace/trace.h"

namespace oskit::net::linuxstack {

using linuxdev::linux_device;
using linuxdev::sk_buff;

class LinuxNetStack;

enum class LTcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kCloseWait,
  kFinWait1,
  kFinWait2,
  kClosing,
  kLastAck,
  kTimeWait,
};

struct LTcpPcb {
  LTcpState state = LTcpState::kClosed;
  InetAddr laddr;
  uint16_t lport = 0;
  InetAddr faddr;
  uint16_t fport = 0;

  uint32_t iss = 0;
  uint32_t snd_una = 0;
  uint32_t snd_nxt = 0;
  uint32_t snd_wnd = 0;
  uint32_t irs = 0;
  uint32_t rcv_nxt = 0;
  uint16_t mss = 1460;

  // Send queue: MSS-sized skbuffs awaiting ACK (data starts at the TCP
  // payload; headers are pushed on (re)transmission into the headroom).
  struct TxSeg {
    sk_buff* skb;      // owns the payload bytes
    uint32_t seq;      // first payload byte's sequence number
    uint32_t len;      // payload length
    bool fin;          // segment carries FIN after its data
    bool transmitted;
  };
  std::list<TxSeg> txq;
  size_t txq_bytes = 0;
  size_t snd_hiwat = 32 * 1024;

  // Receive queue: skbuffs already pulled to their payload.
  std::list<sk_buff*> rxq;
  size_t rxq_bytes = 0;
  size_t rcv_hiwat = 32 * 1024;
  size_t rx_consumed_in_head = 0;

  int rexmt_ticks = 0;   // 500 ms ticks until retransmit; 0 = off
  int time_wait_ticks = 0;
  int conn_ticks = 0;

  bool fin_queued = false;
  bool fin_acked = false;
  bool peer_fin_seen = false;
  Error so_error = Error::kOk;

  std::list<LTcpPcb*> accept_queue;
  LTcpPcb* listener = nullptr;
  int backlog = 0;
  bool detached = false;
};

class LinuxNetStack {
 public:
  // Registered with the trace environment's registry under "linux.*".
  struct Counters {
    trace::Counter ip_in;
    trace::Counter ip_out;
    trace::Counter tcp_in;
    trace::Counter tcp_out;
    trace::Counter tcp_retransmits;
    trace::Counter drops_ooo;
    trace::Counter arp_in;
  };

  // Binds directly to the Linux-idiom driver core: stack and driver share
  // skbuffs natively, as in the real Linux kernel.  `trace` is the
  // observability environment to report into; null binds the default.
  LinuxNetStack(SleepEnv* sleep_env, SimClock* clock, linux_device* dev,
                trace::TraceEnv* trace = nullptr);
  ~LinuxNetStack();

  Error IfConfig(InetAddr addr, InetAddr netmask);

  ComPtr<SocketFactory> CreateSocketFactory();

  // A fresh stream socket (born with one reference).
  Socket* MakeSocket();

  const Counters& counters() const { return counters_; }

  // Driver upcall (installed as netif_rx).
  void NetifRx(sk_buff* skb);

 private:

  // Header room reserved in every transmit skbuff.
  static constexpr size_t kHeaderRoom =
      kEtherHeaderSize + kIpHeaderSize + kTcpHeaderSize + 8;

  void ArpInput(sk_buff* skb);
  void IpInput(sk_buff* skb);
  void TcpInput(const Ipv4Header& ip, sk_buff* skb);

  // Transmits `skb` whose data starts at the TCP header; prepends IP and
  // Ethernet headers in the headroom and resolves ARP.
  void IpTcpOutput(InetAddr src, InetAddr dst, sk_buff* skb);
  void SendControl(LTcpPcb* pcb, uint8_t flags, bool with_mss);
  void TransmitSeg(LTcpPcb* pcb, LTcpPcb::TxSeg& seg);
  void TcpTrySend(LTcpPcb* pcb);
  void SlowTick();

  void ResolveAndSend(InetAddr next_hop, sk_buff* skb);

  LTcpPcb* Lookup(InetAddr src, uint16_t sport, InetAddr dst, uint16_t dport);
  uint16_t AllocPort();
  void Wake(void* chan) { sleep_.Wakeup(chan); }
  void Block(void* chan) { sleep_.Sleep(chan); }
  void PcbFreeIfDone(LTcpPcb* pcb);
  void FlushPcb(LTcpPcb* pcb);

 public:
  // Socket-layer operations (used by the COM socket wrapper).
  Error SoBind(LTcpPcb* pcb, const SockAddr& addr);
  Error SoConnect(LTcpPcb* pcb, const SockAddr& addr);
  Error SoListen(LTcpPcb* pcb, int backlog);
  Error SoAccept(LTcpPcb* pcb, SockAddr* out_peer, LTcpPcb** out_child);
  Error SoSend(LTcpPcb* pcb, const void* buf, size_t len, size_t* out_actual);
  Error SoRecv(LTcpPcb* pcb, void* buf, size_t len, size_t* out_actual);
  Error SoShutdown(LTcpPcb* pcb);
  void SoDetach(LTcpPcb* pcb);

 private:

  // BSD-style sleep/wakeup reused as a generic channel wait (the mechanism
  // is private to each stack instance).
  class ChannelWait {
   public:
    explicit ChannelWait(SleepEnv* env) : env_(env) {}
    void Sleep(const void* chan);
    void Wakeup(const void* chan);

   private:
    struct Waiter {
      SleepRecord record;
      const void* chan;
      Waiter* next;
      explicit Waiter(SleepEnv* env) : record(env), chan(nullptr), next(nullptr) {}
    };
    SleepEnv* env_;
    Waiter* head_ = nullptr;
  };

  SleepEnv* sleep_env_;
  SimClock* clock_;
  linux_device* dev_;
  InetAddr addr_;
  InetAddr netmask_;
  bool configured_ = false;

  struct ArpEntry {
    EtherAddr mac;
    bool resolved = false;
    sk_buff* pending = nullptr;
  };
  std::map<uint32_t, ArpEntry> arp_;

  std::list<std::unique_ptr<LTcpPcb>> pcbs_;
  uint16_t next_port_ = 40000;
  uint32_t iss_counter_ = 0x8000;
  uint16_t ip_ident_ = 1;

  ChannelWait sleep_;
  trace::TraceEnv* trace_;
  Counters counters_;
  trace::CounterBlock trace_binding_;
  SimClock::EventId tick_event_ = SimClock::kInvalidEvent;
  bool shutting_down_ = false;
};

}  // namespace oskit::net::linuxstack

#endif  // OSKIT_SRC_NET_LINUX_LINUX_STACK_H_
