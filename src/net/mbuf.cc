#include "src/net/mbuf.h"

#include <cstring>
#include <new>

#include "src/base/panic.h"

namespace oskit::net {

MbufPool::~MbufPool() {
  // Live buffers at teardown are a component bug; be loud in tests.
  OSKIT_ASSERT_MSG(mbufs_live_ == 0, "mbuf leak at pool destruction");
  OSKIT_ASSERT_MSG(clusters_live_ == 0, "cluster leak at pool destruction");
}

MBuf* MbufPool::Get() {
  auto* m = new MBuf();
  m->data = m->internal;
  ++mbufs_live_;
  ++total_allocs_;
  return m;
}

MBuf* MbufPool::GetHeaderAligned(size_t payload_len) {
  OSKIT_ASSERT(payload_len <= MBuf::kDataSpace);
  MBuf* m = Get();
  m->data = m->internal + (MBuf::kDataSpace - payload_len);
  m->len = static_cast<uint32_t>(payload_len);
  m->pkt_len = m->len;
  return m;
}

MExt* MbufPool::GetClusterExt() {
  auto* ext = new MExt();
  ext->buf = new uint8_t[kClusterSize];
  ext->size = kClusterSize;
  ext->free_fn = &MbufPool::FreeClusterStorage;
  ext->free_ctx = this;
  ext->refs = 1;
  ++clusters_live_;
  return ext;
}

void MbufPool::FreeClusterStorage(void* ctx, uint8_t* buf, size_t /*size*/) {
  auto* pool = static_cast<MbufPool*>(ctx);
  delete[] buf;
  --pool->clusters_live_;
}

MBuf* MbufPool::GetCluster() {
  MBuf* m = Get();
  m->ext = GetClusterExt();
  m->data = m->ext->buf;
  return m;
}

MBuf* MbufPool::GetExternal(uint8_t* buf, size_t size,
                            void (*free_fn)(void*, uint8_t*, size_t), void* ctx) {
  MBuf* m = Get();
  auto* ext = new MExt();
  ext->buf = buf;
  ext->size = size;
  ext->free_fn = free_fn;
  ext->free_ctx = ctx;
  ext->refs = 1;
  m->ext = ext;
  m->data = buf;
  m->len = static_cast<uint32_t>(size);
  return m;
}

MBuf* MbufPool::Free(MBuf* m) {
  OSKIT_ASSERT(m != nullptr);
  MBuf* next = m->next;
  if (m->ext != nullptr) {
    OSKIT_ASSERT(m->ext->refs > 0);
    if (--m->ext->refs == 0) {
      if (m->ext->free_fn != nullptr) {
        m->ext->free_fn(m->ext->free_ctx, m->ext->buf, m->ext->size);
      }
      delete m->ext;
    }
  }
  delete m;
  --mbufs_live_;
  return next;
}

void MbufPool::FreeChain(MBuf* m) {
  while (m != nullptr) {
    m = Free(m);
  }
}

MBuf* MbufPool::Prepend(MBuf* m, size_t len) {
  // Shared external storage must not be written through; a fresh head is
  // needed unless this mbuf privately owns headroom.
  bool writable = m->ext == nullptr || m->ext->refs == 1;
  if (writable && m->leading_space() >= len) {
    m->data -= len;
    m->len += static_cast<uint32_t>(len);
    m->pkt_len += static_cast<uint32_t>(len);
    return m;
  }
  OSKIT_ASSERT_MSG(len <= MBuf::kDataSpace, "prepend larger than an mbuf");
  MBuf* head = Get();
  // Leave maximal headroom behind us for further prepends.
  head->data = head->internal + (MBuf::kDataSpace - len);
  head->len = static_cast<uint32_t>(len);
  head->pkt_len = m->pkt_len + static_cast<uint32_t>(len);
  head->next = m;
  return head;
}

void MbufPool::CopyData(const MBuf* m, size_t offset, size_t len, void* dst) {
  auto* out = static_cast<uint8_t*>(dst);
  while (m != nullptr && offset >= m->len) {
    offset -= m->len;
    m = m->next;
  }
  while (len > 0) {
    OSKIT_ASSERT_MSG(m != nullptr, "CopyData past end of chain");
    size_t n = m->len - offset;
    if (n > len) {
      n = len;
    }
    std::memcpy(out, m->data + offset, n);
    out += n;
    len -= n;
    offset = 0;
    m = m->next;
  }
}

MBuf* MbufPool::FromData(const void* src, size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  MBuf* head = nullptr;
  MBuf* tail = nullptr;
  size_t remaining = len;
  do {
    MBuf* m = remaining > MBuf::kDataSpace ? GetCluster() : Get();
    size_t n = remaining < m->buf_size() ? remaining : m->buf_size();
    if (in != nullptr) {
      std::memcpy(m->data, in, n);
      in += n;
    }
    m->len = static_cast<uint32_t>(n);
    remaining -= n;
    if (head == nullptr) {
      head = m;
    } else {
      tail->next = m;
    }
    tail = m;
  } while (remaining > 0);
  head->pkt_len = static_cast<uint32_t>(len);
  return head;
}

void MbufPool::Append(MBuf* m, const void* src, size_t len) {
  const auto* in = static_cast<const uint8_t*>(src);
  MBuf* tail = m;
  while (tail->next != nullptr) {
    tail = tail->next;
  }
  // Fill the tail's remaining space when it is privately writable.
  if ((tail->ext == nullptr || tail->ext->refs == 1) && len > 0) {
    size_t n = tail->trailing_space();
    if (n > len) {
      n = len;
    }
    if (n > 0) {
      std::memcpy(tail->data + tail->len, in, n);
      tail->len += static_cast<uint32_t>(n);
      m->pkt_len += static_cast<uint32_t>(n);
      in += n;
      len -= n;
    }
  }
  while (len > 0) {
    MBuf* fresh = len > MBuf::kDataSpace ? GetCluster() : Get();
    size_t n = len < fresh->buf_size() ? len : fresh->buf_size();
    std::memcpy(fresh->data, in, n);
    fresh->len = static_cast<uint32_t>(n);
    tail->next = fresh;
    tail = fresh;
    m->pkt_len += static_cast<uint32_t>(n);
    in += n;
    len -= n;
  }
}

MBuf* MbufPool::Pullup(MBuf* m, size_t len) {
  if (m->len >= len) {
    return m;
  }
  if (len > MBuf::kDataSpace || len > m->pkt_len) {
    FreeChain(m);
    return nullptr;
  }
  MBuf* head = Get();
  head->pkt_len = m->pkt_len;
  CopyData(m, 0, len, head->data);
  head->len = static_cast<uint32_t>(len);
  // Drop the copied bytes from the old chain and link the rest.
  MBuf* rest = m;
  size_t drop = len;
  while (rest != nullptr && drop >= rest->len) {
    drop -= rest->len;
    rest = Free(rest);
  }
  if (rest != nullptr) {
    rest->data += drop;
    rest->len -= static_cast<uint32_t>(drop);
  }
  head->next = rest;
  return head;
}

MBuf* MbufPool::TrimFront(MBuf* m, size_t len) {
  uint32_t pkt_len = m->pkt_len;
  OSKIT_ASSERT(len <= pkt_len);
  while (len > 0 && m != nullptr) {
    if (len < m->len) {
      m->data += len;
      m->len -= static_cast<uint32_t>(len);
      len = 0;
      break;
    }
    len -= m->len;
    m = Free(m);
  }
  if (m == nullptr) {
    // Whole packet consumed: give back an empty mbuf to keep callers simple.
    m = Get();
  }
  (void)pkt_len;
  m->pkt_len = static_cast<uint32_t>(ChainLength(m));
  return m;
}

void MbufPool::TrimTo(MBuf* m, size_t len) {
  OSKIT_ASSERT(len <= m->pkt_len);
  m->pkt_len = static_cast<uint32_t>(len);
  MBuf* cur = m;
  while (cur != nullptr) {
    if (len >= cur->len) {
      len -= cur->len;
      cur = cur->next;
      continue;
    }
    cur->len = static_cast<uint32_t>(len);
    len = 0;
    // Free everything after this point.
    FreeChain(cur->next);
    cur->next = nullptr;
    break;
  }
}

MBuf* MbufPool::CopyChain(const MBuf* m, size_t offset, size_t len) {
  // Socket buffers splice chains together without maintaining pkt_len, so
  // bounds-check against the actual chain length.
  size_t chain_len = ChainLength(m);
  if (len == kCopyAll) {
    len = chain_len - offset;
  }
  OSKIT_ASSERT(offset + len <= chain_len);
  if (len == 0) {
    MBuf* empty = Get();
    empty->pkt_len = 0;
    return empty;
  }
  // Share external storage where possible (BSD m_copym semantics): walk to
  // the offset, then reference each covered mbuf's storage.
  while (m != nullptr && offset >= m->len) {
    offset -= m->len;
    m = m->next;
  }
  MBuf* head = nullptr;
  MBuf* tail = nullptr;
  size_t total = len;
  while (len > 0) {
    OSKIT_ASSERT(m != nullptr);
    size_t n = m->len - offset;
    if (n > len) {
      n = len;
    }
    MBuf* piece;
    if (m->ext != nullptr) {
      // Reference the same external storage, no copy.
      piece = Get();
      piece->ext = m->ext;
      ++m->ext->refs;
      piece->data = m->data + offset;
      piece->len = static_cast<uint32_t>(n);
    } else {
      piece = Get();
      std::memcpy(piece->data, m->data + offset, n);
      piece->len = static_cast<uint32_t>(n);
    }
    if (head == nullptr) {
      head = piece;
    } else {
      tail->next = piece;
    }
    tail = piece;
    len -= n;
    offset = 0;
    m = m->next;
  }
  head->pkt_len = static_cast<uint32_t>(total);
  return head;
}

MBuf* MbufPool::AppendChain(MBuf* a, MBuf* b) {
  if (a == nullptr) {
    return b;
  }
  if (b == nullptr) {
    return a;
  }
  MBuf* tail = a;
  while (tail->next != nullptr) {
    tail = tail->next;
  }
  tail->next = b;
  a->pkt_len += b->pkt_len;
  b->pkt_len = 0;  // pkt_len lives on the head only
  return a;
}

MBuf* MbufPool::Split(MBuf* m, size_t offset) {
  if (offset >= m->pkt_len) {
    return nullptr;
  }
  uint32_t head_len = static_cast<uint32_t>(offset);
  uint32_t tail_len = m->pkt_len - head_len;
  // Walk to the mbuf containing byte `offset`.
  MBuf* prev = nullptr;
  MBuf* cur = m;
  size_t off = offset;
  while (cur != nullptr && off >= cur->len) {
    off -= cur->len;
    prev = cur;
    cur = cur->next;
  }
  OSKIT_ASSERT(cur != nullptr);
  MBuf* rest;
  if (off == 0 && prev != nullptr) {
    // Clean break between mbufs.
    rest = cur;
    prev->next = nullptr;
  } else {
    // Mid-mbuf split (or a split at byte 0, where `m` must stay the head):
    // the tail's first piece shares cluster/external storage; internal
    // bytes are copied out.
    MBuf* piece = Get();
    if (cur->ext != nullptr) {
      piece->ext = cur->ext;
      ++cur->ext->refs;
      piece->data = cur->data + off;
    } else {
      OSKIT_ASSERT(cur->len - off <= MBuf::kDataSpace);
      std::memcpy(piece->data, cur->data + off, cur->len - off);
    }
    piece->len = static_cast<uint32_t>(cur->len - off);
    piece->next = cur->next;
    cur->len = static_cast<uint32_t>(off);
    cur->next = nullptr;
    rest = piece;
  }
  m->pkt_len = head_len;
  rest->pkt_len = tail_len;
  return rest;
}

MBuf* MbufPool::Coalesce(MBuf* m, size_t max_count) {
  OSKIT_ASSERT(max_count >= 1);
  if (ChainCount(m) <= max_count) {
    return m;
  }
  // Keep the longest (header-bearing) prefix such that prefix mbufs plus
  // the flattened suffix — packed into clusters — fit under max_count.
  // Only the suffix bytes are copied, never the headers up front.
  size_t total = ChainLength(m);
  size_t keep = max_count - 1;  // mbufs of prefix to preserve
  size_t prefix_len = 0;
  size_t prefix_count = 0;
  for (const MBuf* c = m; c != nullptr && prefix_count < keep; c = c->next) {
    prefix_len += c->len;
    ++prefix_count;
  }
  size_t suffix_len = total - prefix_len;
  auto clusters_for = [](size_t n) {
    return n == 0 ? size_t{0} : (n + kClusterSize - 1) / kClusterSize;
  };
  while (prefix_count > 0 &&
         prefix_count + clusters_for(suffix_len) > max_count) {
    // Fold the last kept mbuf into the suffix and retry.
    const MBuf* c = m;
    for (size_t i = 1; i < prefix_count; ++i) {
      c = c->next;
    }
    prefix_len -= c->len;
    suffix_len += c->len;
    --prefix_count;
  }
  if (prefix_count + clusters_for(suffix_len) > max_count) {
    // Even ceil(len / cluster) clusters exceed max_count: the chain is
    // already minimal; the caller must fall back to its own bounce buffer.
    return m;
  }
  // Build the packed suffix from a deep copy, then splice it in.
  MBuf* suffix = nullptr;
  MBuf* suffix_tail = nullptr;
  {
    size_t off = prefix_len;
    size_t remaining = suffix_len;
    while (remaining > 0) {
      MBuf* fresh = remaining > MBuf::kDataSpace ? GetCluster() : Get();
      size_t n = remaining < fresh->buf_size() ? remaining : fresh->buf_size();
      CopyData(m, off, n, fresh->data);
      fresh->len = static_cast<uint32_t>(n);
      if (suffix == nullptr) {
        suffix = fresh;
      } else {
        suffix_tail->next = fresh;
      }
      suffix_tail = fresh;
      off += n;
      remaining -= n;
    }
  }
  if (prefix_count == 0) {
    if (suffix == nullptr) {
      // Zero-length packet made of empty mbufs: collapse to one empty mbuf.
      suffix = Get();
    }
    suffix->pkt_len = m->pkt_len;
    FreeChain(m);
    return suffix;
  }
  MBuf* last_kept = m;
  for (size_t i = 1; i < prefix_count; ++i) {
    last_kept = last_kept->next;
  }
  FreeChain(last_kept->next);
  last_kept->next = suffix;
  return m;
}

size_t MbufPool::ChainLength(const MBuf* m) {
  size_t n = 0;
  for (; m != nullptr; m = m->next) {
    n += m->len;
  }
  return n;
}

size_t MbufPool::ChainCount(const MBuf* m) {
  size_t n = 0;
  for (; m != nullptr; m = m->next) {
    ++n;
  }
  return n;
}

}  // namespace oskit::net
