// BSD-idiom network packet buffers: mbufs (paper §4.4.3, §4.7.3).
//
// The FreeBSD-derived stack's internal buffer abstraction — small fixed-size
// buffers chained into packets, with large payloads held in shared,
// reference-counted "clusters" or in external storage owned by someone else
// (that external form is how a received Linux skbuff is grafted into an mbuf
// without copying).  The implementation details of mbufs are "thoroughly
// known throughout" the BSD-idiom code in src/net, exactly as the paper
// describes, and are hidden from everything outside it by the BufIo glue.

#ifndef OSKIT_SRC_NET_MBUF_H_
#define OSKIT_SRC_NET_MBUF_H_

#include <cstddef>
#include <cstdint>

namespace oskit::net {

inline constexpr size_t kMbufSize = 256;        // whole mbuf, header included
inline constexpr size_t kClusterSize = 2048;    // MCLBYTES

struct MBuf;

// External storage descriptor: cluster or foreign buffer.
struct MExt {
  uint8_t* buf = nullptr;
  size_t size = 0;
  // Called when the last reference drops.  For clusters this returns the
  // cluster to the pool; for foreign buffers it releases the owner (e.g.
  // Unmap+Release of a BufIo).
  void (*free_fn)(void* ctx, uint8_t* buf, size_t size) = nullptr;
  void* free_ctx = nullptr;
  uint32_t refs = 0;
};

struct MBuf {
  MBuf* next = nullptr;       // next mbuf in this packet's chain
  MBuf* next_pkt = nullptr;   // next packet in a queue
  uint8_t* data = nullptr;    // start of valid data
  uint32_t len = 0;           // valid bytes at `data`
  uint32_t pkt_len = 0;       // whole-packet length (first mbuf only)
  MExt* ext = nullptr;        // external storage, or nullptr for internal

  // Usable internal data area.
  static constexpr size_t kDataSpace = kMbufSize - 64;
  uint8_t internal[kDataSpace];

  uint8_t* buf_start() { return ext != nullptr ? ext->buf : internal; }
  size_t buf_size() const {
    return ext != nullptr ? ext->size : kDataSpace;
  }
  const uint8_t* buf_start() const { return ext != nullptr ? ext->buf : internal; }

  // Headroom before `data` / tailroom after `data+len`.
  size_t leading_space() const { return static_cast<size_t>(data - buf_start()); }
  size_t trailing_space() const {
    return buf_size() - leading_space() - len;
  }
};

// Pool/statistics holder.  One per stack instance (per machine) so the
// benchmark worlds don't share allocator state.
class MbufPool {
 public:
  MbufPool() = default;
  MbufPool(const MbufPool&) = delete;
  MbufPool& operator=(const MbufPool&) = delete;
  ~MbufPool();

  // A bare mbuf with data positioned at the buffer start.
  MBuf* Get();

  // A bare mbuf positioned so `payload_len` bytes sit at the END of the
  // buffer, leaving maximal headroom for lower-layer headers (BSD MH_ALIGN:
  // how TCP header mbufs avoid chain growth when IP/Ethernet prepend).
  MBuf* GetHeaderAligned(size_t payload_len);

  // An mbuf with a fresh 2K cluster attached.
  MBuf* GetCluster();

  // An mbuf whose data is foreign external storage; free_fn runs when the
  // chain is freed.  Zero-copy import path (§4.7.3).
  MBuf* GetExternal(uint8_t* buf, size_t size,
                    void (*free_fn)(void*, uint8_t*, size_t), void* ctx);

  // Frees one mbuf, dropping its external reference; returns `next`.
  MBuf* Free(MBuf* m);

  // Frees a whole chain.
  void FreeChain(MBuf* m);

  // ---- Chain operations (the BSD m_* family) ----

  // Prepends `len` bytes of space, allocating a new head mbuf if the
  // current head lacks headroom.  Returns the (possibly new) head.
  MBuf* Prepend(MBuf* m, size_t len);

  // Copies `len` bytes from `offset` within the chain into `dst`.
  void CopyData(const MBuf* m, size_t offset, size_t len, void* dst);

  // Builds a chain holding a copy of [src, src+len).
  MBuf* FromData(const void* src, size_t len);

  // Appends a copy of [src, src+len) to packet `m` (walks to the tail,
  // fills tailroom, then adds clusters).
  void Append(MBuf* m, const void* src, size_t len);

  // Ensures the first `len` bytes of the packet are contiguous in the head
  // mbuf (BSD m_pullup).  Returns the new head, or nullptr on failure (the
  // chain is freed in that case, BSD style).
  MBuf* Pullup(MBuf* m, size_t len);

  // Removes `len` bytes from the front of the packet (m_adj positive).
  MBuf* TrimFront(MBuf* m, size_t len);

  // Truncates the packet to `len` total bytes (m_adj negative).
  void TrimTo(MBuf* m, size_t len);

  // Deep-copies a packet sub-range [offset, offset+len) into a new chain
  // (m_copym with M_COPYALL semantics when len == kCopyAll).
  static constexpr size_t kCopyAll = ~size_t{0};
  MBuf* CopyChain(const MBuf* m, size_t offset, size_t len);

  // Concatenates packet `b` onto packet `a` (BSD m_cat): links b's mbufs
  // after a's tail and folds b's length into a->pkt_len.  Zero-length mbufs
  // are kept; Coalesce cleans them up.  Returns `a` (or `b` if `a` null).
  MBuf* AppendChain(MBuf* a, MBuf* b);

  // Splits packet `m` at byte `offset` (BSD m_split): `m` keeps bytes
  // [0, offset), the returned packet holds [offset, end).  A split falling
  // inside a cluster/external mbuf shares the storage (refs++); one inside
  // an internal mbuf copies the tail bytes.  Returns nullptr (leaving `m`
  // untouched) if offset >= pkt_len or allocation fails.
  MBuf* Split(MBuf* m, size_t offset);

  // Coalesce-threshold (the gather-DMA escape hatch): if the chain has more
  // than `max_count` mbufs, merges neighbours into fresh clusters until it
  // fits.  Unlike a full flatten this copies only the merged suffix bytes.
  // Returns the (possibly new) head; on allocation failure returns the
  // original chain unchanged (caller still owns it).
  MBuf* Coalesce(MBuf* m, size_t max_count);

  // Recomputes and returns the chain's total length.
  static size_t ChainLength(const MBuf* m);

  // Number of mbufs in the chain (diagnostics / tests).
  static size_t ChainCount(const MBuf* m);

  // ---- Statistics (exposed implementation, §4.6) ----
  uint64_t mbufs_out() const { return mbufs_live_; }
  uint64_t clusters_out() const { return clusters_live_; }
  uint64_t total_allocs() const { return total_allocs_; }

 private:
  MExt* GetClusterExt();
  static void FreeClusterStorage(void* ctx, uint8_t* buf, size_t size);

  uint64_t mbufs_live_ = 0;
  uint64_t clusters_live_ = 0;
  uint64_t total_allocs_ = 0;
};

}  // namespace oskit::net

#endif  // OSKIT_SRC_NET_MBUF_H_
