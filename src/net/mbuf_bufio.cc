#include "src/net/mbuf_bufio.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::net {

ComPtr<MbufBufIo> MbufBufIo::Wrap(MbufPool* pool, MBuf* chain, bool expose_sg) {
  return ComPtr<MbufBufIo>(new MbufBufIo(pool, chain, expose_sg));
}

MbufBufIo::~MbufBufIo() { pool_->FreeChain(chain_); }

Error MbufBufIo::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid || iid == BufIo::kIid) {
    AddRef();
    *out = static_cast<BufIo*>(this);
    return Error::kOk;
  }
  if (expose_sg_ && iid == BufIoVec::kIid) {
    AddRef();
    *out = static_cast<BufIoVec*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error MbufBufIo::Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  size_t total = chain_->pkt_len;
  // off_t64 is unsigned: check the offset first, then compare the amount
  // against the remainder (subtraction form — `offset + amount` can wrap).
  if (offset > total) {
    return Error::kOutOfRange;
  }
  size_t avail = total - static_cast<size_t>(offset);
  if (amount > avail && offset + amount < offset) {
    return Error::kInval;  // wrapped range, not a short read
  }
  size_t n = amount < avail ? amount : avail;
  pool_->CopyData(chain_, offset, n, buf);
  *out_actual = n;
  return Error::kOk;
}

Error MbufBufIo::Write(const void* buf, off_t64 offset, size_t amount,
                       size_t* out_actual) {
  *out_actual = 0;
  size_t total = chain_->pkt_len;
  if (offset > total) {
    return Error::kOutOfRange;
  }
  size_t avail = total - static_cast<size_t>(offset);
  if (amount > avail && offset + amount < offset) {
    return Error::kInval;
  }
  size_t n = amount < avail ? amount : avail;
  // The chain invariant forbids writing through shared storage (Split /
  // CopyChain create refs>1 aliases); a write that would scribble another
  // packet's bytes is refused whole rather than applied partially.
  off_t64 off = offset;
  const MBuf* m = chain_;
  while (m != nullptr && off >= m->len) {
    off -= m->len;
    m = m->next;
  }
  size_t remaining = n;
  for (const MBuf* probe = m; remaining > 0; probe = probe->next) {
    OSKIT_ASSERT(probe != nullptr);
    size_t covered = probe->len - static_cast<size_t>(off);
    if (probe->ext != nullptr && probe->ext->refs > 1 && probe->len > 0) {
      return Error::kBusy;
    }
    remaining -= covered < remaining ? covered : remaining;
    off = 0;
  }
  // Spanning write: fill each covered mbuf's window in turn.
  off = offset;
  MBuf* w = chain_;
  while (w != nullptr && off >= w->len) {
    off -= w->len;
    w = w->next;
  }
  const auto* src = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    OSKIT_ASSERT(w != nullptr);
    size_t piece = w->len - static_cast<size_t>(off);
    if (piece > n - done) {
      piece = n - done;
    }
    std::memcpy(w->data + off, src + done, piece);
    done += piece;
    off = 0;
    w = w->next;
  }
  *out_actual = n;
  return Error::kOk;
}

Error MbufBufIo::GetSize(off_t64* out_size) {
  *out_size = chain_->pkt_len;
  return Error::kOk;
}

Error MbufBufIo::Map(void** out_addr, off_t64 offset, size_t amount) {
  // Succeeds when the range is contiguous in local memory (§4.7.3: "This
  // call will only succeed if the implementor of the bufio object happens to
  // store the requested range of data in contiguous local memory").  That
  // includes ranges spanning ADJACENT mbufs whose windows abut in storage —
  // e.g. the two sides of a Split inside one shared cluster — not just a
  // single mbuf.
  MBuf* m = chain_;
  off_t64 off = offset;
  while (m != nullptr && off >= m->len) {
    off -= m->len;
    m = m->next;
  }
  if (m == nullptr) {
    return Error::kNotImpl;
  }
  // Subtraction form: `off + amount` can wrap with a huge amount, yielding
  // an in-"range" pointer past the mbuf.
  size_t contiguous = m->len - static_cast<size_t>(off);
  const MBuf* cur = m;
  while (contiguous < amount && cur->next != nullptr &&
         cur->next->data == cur->data + cur->len) {
    cur = cur->next;
    contiguous += cur->len;
  }
  if (amount > contiguous) {
    return Error::kNotImpl;
  }
  *out_addr = m->data + off;
  return Error::kOk;
}

Error MbufBufIo::Unmap(void* addr, off_t64 offset, size_t amount) {
  return Error::kOk;
}

Error MbufBufIo::Vectors(BufIoSegment* out_segs, size_t cap, off_t64 offset,
                         size_t amount, size_t* out_count) {
  *out_count = 0;
  if (offset > chain_->pkt_len ||
      amount > chain_->pkt_len - static_cast<size_t>(offset)) {
    return Error::kOutOfRange;
  }
  const MBuf* m = chain_;
  off_t64 off = offset;
  while (m != nullptr && off >= m->len) {
    off -= m->len;
    m = m->next;
  }
  size_t count = 0;
  size_t remaining = amount;
  while (remaining > 0) {
    OSKIT_ASSERT(m != nullptr);
    size_t n = m->len - off;
    if (n > remaining) {
      n = remaining;
    }
    if (n > 0) {
      if (count == cap) {
        // More pieces than the consumer's gather descriptors; it may
        // Coalesce the chain or fall back to Read().
        *out_count = 0;
        return Error::kNotImpl;
      }
      out_segs[count].data = m->data + off;
      out_segs[count].len = n;
      ++count;
    }
    remaining -= n;
    off = 0;
    m = m->next;
  }
  *out_count = count;
  return Error::kOk;
}

Error MbufBufIo::UnmapVectors(off_t64 /*offset*/, size_t /*amount*/) {
  // The chain is owned by this object; nothing extra was pinned.
  return Error::kOk;
}

namespace {

struct ForeignRef {
  BufIo* packet;
  void* mapped;
  off_t64 offset;
  size_t amount;
};

void ReleaseForeign(void* ctx, uint8_t* /*buf*/, size_t /*size*/) {
  auto* ref = static_cast<ForeignRef*>(ctx);
  ref->packet->Unmap(ref->mapped, ref->offset, ref->amount);
  ref->packet->Release();
  delete ref;
}

}  // namespace

MBuf* MbufFromBufIo(MbufPool* pool, BufIo* packet, size_t size) {
  void* addr = nullptr;
  if (Ok(packet->Map(&addr, 0, size))) {
    // Zero-copy import: graft the foreign storage in as an external mbuf,
    // holding a reference on the foreign object until the chain dies.
    packet->AddRef();
    auto* ref = new ForeignRef{packet, addr, 0, size};
    MBuf* m = pool->GetExternal(static_cast<uint8_t*>(addr), size, &ReleaseForeign, ref);
    m->pkt_len = static_cast<uint32_t>(size);
    return m;
  }
  // Discontiguous foreign packet: copy it.
  MBuf* m = pool->FromData(nullptr, size);
  size_t offset = 0;
  for (MBuf* cur = m; cur != nullptr; cur = cur->next) {
    size_t actual = 0;
    Error err = packet->Read(cur->data, offset, cur->len, &actual);
    if (!Ok(err) || actual != cur->len) {
      pool->FreeChain(m);
      return nullptr;
    }
    offset += cur->len;
  }
  return m;
}

}  // namespace oskit::net
