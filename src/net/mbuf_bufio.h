// BufIo <-> mbuf glue (paper §4.7.3).
//
// Outbound: an mbuf chain leaves the FreeBSD-idiom component as an opaque
// BufIo.  Map() succeeds only for ranges that happen to be contiguous inside
// one mbuf — so a multi-mbuf TCP segment presented to the Linux driver fails
// to map (kNotImpl) and forces the driver glue onto its Read()-based copy
// path into a contiguous skbuff, which is precisely the send-path copy
// Table 1 measures.  A multi-mbuf segment therefore always transmits; when
// the copy path itself fails (skbuff allocation), the error propagates back
// through NetIo::Push to NetStack::EtherOutput, which counts it
// (net.tx.errors) — nothing is dropped silently.
//
// Inbound: MbufFromBufIo imports a foreign packet.  When the foreign object
// maps (a contiguous skbuff always does), the data is grafted into an mbuf
// as external storage with no copy — the receive path's zero-copy that makes
// OSKit receive bandwidth match native FreeBSD.

#ifndef OSKIT_SRC_NET_MBUF_BUFIO_H_
#define OSKIT_SRC_NET_MBUF_BUFIO_H_

#include "src/com/bufio.h"
#include "src/net/mbuf.h"

namespace oskit::net {

class MbufBufIo final : public BufIo, public RefCounted<MbufBufIo> {
 public:
  // Takes ownership of `chain`; it returns to `pool` when the object dies.
  static ComPtr<MbufBufIo> Wrap(MbufPool* pool, MBuf* chain);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  // BlkIo
  uint32_t GetBlockSize() override { return 1; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override;
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  // BufIo: Map succeeds only within one contiguous mbuf.
  Error Map(void** out_addr, off_t64 offset, size_t amount) override;
  Error Unmap(void* addr, off_t64 offset, size_t amount) override;
  Error Wire() override { return Error::kOk; }
  Error Unwire() override { return Error::kOk; }

  // The component-internal view (never exposed across the glue boundary).
  MBuf* chain() { return chain_; }

 private:
  friend class RefCounted<MbufBufIo>;
  MbufBufIo(MbufPool* pool, MBuf* chain) : pool_(pool), chain_(chain) {}
  ~MbufBufIo();

  MbufPool* pool_;
  MBuf* chain_;
};

// Imports `size` bytes of a foreign BufIo packet into an mbuf chain,
// mapping (zero copy) when possible and copying otherwise.  The returned
// chain holds a reference on `packet` until freed when zero-copy succeeded.
MBuf* MbufFromBufIo(MbufPool* pool, BufIo* packet, size_t size);

}  // namespace oskit::net

#endif  // OSKIT_SRC_NET_MBUF_BUFIO_H_
