// BufIo <-> mbuf glue (paper §4.7.3).
//
// Outbound: an mbuf chain leaves the FreeBSD-idiom component as an opaque
// buffer object.  Map() keeps the paper's contract — it succeeds only for
// ranges that happen to be contiguous inside one mbuf — but the wrapper also
// implements BufIoVec, so a gather-capable consumer can Query for the
// scatter-gather view and transmit a multi-mbuf TCP segment without
// flattening it.  Consumers without gather support (or a wrapper built with
// expose_sg = false, the ablation/legacy mode) still land on the Read()-based
// copy path into a contiguous skbuff — the send-path copy the original
// Table 1 measured.  Either way the segment transmits; when a driver-side
// failure occurs (skbuff allocation, injected fault), the error propagates
// back through NetIo::Push to NetStack::EtherOutput, which counts it
// (net.tx.errors) — nothing is dropped silently.
//
// Inbound: MbufFromBufIo imports a foreign packet.  When the foreign object
// maps (a contiguous skbuff always does), the data is grafted into an mbuf
// as external storage with no copy — the receive path's zero-copy that makes
// OSKit receive bandwidth match native FreeBSD.

#ifndef OSKIT_SRC_NET_MBUF_BUFIO_H_
#define OSKIT_SRC_NET_MBUF_BUFIO_H_

#include "src/com/bufio.h"
#include "src/net/mbuf.h"

namespace oskit::net {

class MbufBufIo final : public BufIoVec, public RefCounted<MbufBufIo> {
 public:
  // Takes ownership of `chain`; it returns to `pool` when the object dies.
  // With expose_sg = false the wrapper refuses to Query as BufIoVec, which
  // reproduces the pre-scatter-gather copy-on-send behaviour exactly (used
  // by the benches' flatten ablation).
  static ComPtr<MbufBufIo> Wrap(MbufPool* pool, MBuf* chain,
                                bool expose_sg = true);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  // BlkIo
  uint32_t GetBlockSize() override { return 1; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override;
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  // BufIo: Map succeeds only within one contiguous mbuf.
  Error Map(void** out_addr, off_t64 offset, size_t amount) override;
  Error Unmap(void* addr, off_t64 offset, size_t amount) override;
  Error Wire() override { return Error::kOk; }
  Error Unwire() override { return Error::kOk; }

  // BufIoVec: one segment per mbuf covering the range.  The chain is pinned
  // by this object's own lifetime, so Vectors/UnmapVectors are pure views.
  Error Vectors(BufIoSegment* out_segs, size_t cap, off_t64 offset,
                size_t amount, size_t* out_count) override;
  Error UnmapVectors(off_t64 offset, size_t amount) override;

  // The component-internal view (never exposed across the glue boundary).
  MBuf* chain() { return chain_; }

 private:
  friend class RefCounted<MbufBufIo>;
  MbufBufIo(MbufPool* pool, MBuf* chain, bool expose_sg)
      : pool_(pool), chain_(chain), expose_sg_(expose_sg) {}
  ~MbufBufIo();

  MbufPool* pool_;
  MBuf* chain_;
  bool expose_sg_;
};

// Imports `size` bytes of a foreign BufIo packet into an mbuf chain,
// mapping (zero copy) when possible and copying otherwise.  The returned
// chain holds a reference on `packet` until freed when zero-copy succeeded.
MBuf* MbufFromBufIo(MbufPool* pool, BufIo* packet, size_t size);

}  // namespace oskit::net

#endif  // OSKIT_SRC_NET_MBUF_BUFIO_H_
