// NetSelector implementation, socket readiness evaluation, and the kmon
// netstat dump.  Lives here (not socket.cc) so everything that needs the
// complete BsdSelector type — including ~BsdSocket — is in one place.

#include "src/net/selector.h"

#include <cstdio>

namespace oskit::net {

// ---------------------------------------------------------------------------
// Readiness evaluation
// ---------------------------------------------------------------------------

uint32_t NetStack::SoReadiness(BsdSocket* so) {
  uint32_t r = 0;
  if (so->type_ == SockType::kDgram) {
    UdpPcb* pcb = so->udp_;
    if (pcb == nullptr) {
      return kNetError;
    }
    if (!pcb->rcv_queue.empty()) {
      r |= kNetReadable;
    }
    r |= kNetWritable;  // UDP output never parks the caller
    return r;
  }
  TcpPcb* pcb = so->tcp_;
  if (pcb == nullptr) {
    return kNetError;
  }
  if (pcb->state == TcpState::kListen) {
    if (!pcb->accept_queue.empty()) {
      r |= kNetReadable;
    }
    return r;
  }
  // Readable: data queued, or any condition that makes Recv return without
  // parking (peer FIN -> EOF, dead connection -> error/EOF).
  if (pcb->rcv.cc > 0 || pcb->peer_fin_seen || pcb->state == TcpState::kClosed) {
    r |= kNetReadable;
  }
  if ((pcb->state == TcpState::kEstablished ||
       pcb->state == TcpState::kCloseWait) &&
      !pcb->fin_queued && pcb->snd.Space() > 0) {
    r |= kNetWritable;
  }
  if (pcb->so_error != Error::kOk || pcb->state == TcpState::kClosed) {
    r |= kNetError;
  }
  return r;
}

void NetStack::SoNotify(BsdSocket* so) {
  if (so == nullptr || so->selector_ == nullptr) {
    return;
  }
  so->selector_->SocketReady(so);
}

// ---------------------------------------------------------------------------
// BsdSelector
// ---------------------------------------------------------------------------

BsdSelector::BsdSelector(NetStack* stack) : stack_(stack) {
  stack_->selectors_.push_back(this);
}

BsdSelector::~BsdSelector() {
  for (auto& [so, reg] : regs_) {
    so->selector_ = nullptr;
  }
  stack_->counters_.select_registered -= regs_.size();
  auto& v = stack_->selectors_;
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (*it == this) {
      v.erase(it);
      break;
    }
  }
}

Error BsdSelector::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == NetSelector::kIid) {
    AddRef();
    *out = static_cast<NetSelector*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error BsdSelector::Add(Socket* socket, uint32_t interest, bool edge,
                       void* token) {
  // The stack only ever hands out BsdSockets, so the downcast is safe for
  // any socket of this stack; a foreign socket is rejected below.
  auto* so = static_cast<BsdSocket*>(socket);
  if (so == nullptr || so->stack_ != stack_) {
    return Error::kInval;
  }
  if (so->selector_ != nullptr) {
    return Error::kBusy;
  }
  so->selector_ = this;
  regs_.emplace(so, Reg{interest, edge, token});
  ++stack_->counters_.select_adds;
  ++stack_->counters_.select_registered;
  // An already-ready socket is reported by the next Wait without needing a
  // fresh event.
  SocketReady(so);
  return Error::kOk;
}

Error BsdSelector::Modify(Socket* socket, uint32_t interest, bool edge) {
  auto it = regs_.find(static_cast<BsdSocket*>(socket));
  if (it == regs_.end()) {
    return Error::kInval;
  }
  it->second.interest = interest;
  it->second.edge = edge;
  // A widened mask may make the socket interesting right now.
  SocketReady(it->first);
  return Error::kOk;
}

Error BsdSelector::Remove(Socket* socket) {
  auto* so = static_cast<BsdSocket*>(socket);
  auto it = regs_.find(so);
  if (it == regs_.end()) {
    return Error::kInval;
  }
  so->selector_ = nullptr;
  DropRegistration(it);
  return Error::kOk;
}

Error BsdSelector::Wait(NetReadyEvent* out_events, size_t capacity, bool block,
                        size_t* out_count) {
  *out_count = 0;
  if (out_events == nullptr || capacity == 0) {
    return Error::kInval;
  }
  for (;;) {
    size_t n = Harvest(out_events, capacity);
    if (n > 0 || !block) {
      *out_count = n;
      stack_->counters_.select_harvested += n;
      return Error::kOk;
    }
    stack_->sleep_wakeup_.Sleep(this);
    ++stack_->counters_.select_wakeups;
  }
}

size_t BsdSelector::Harvest(NetReadyEvent* out, size_t capacity) {
  size_t n = 0;
  // Scan only what was queued at entry: level-triggered re-enqueues land
  // beyond this bound, so every queued socket gets a turn before any gets
  // a second one.
  size_t scan = ready_.size();
  while (scan-- > 0 && n < capacity) {
    BsdSocket* so = ready_.front();
    ready_.pop_front();
    auto it = regs_.find(so);
    if (it == regs_.end()) {
      continue;  // defensive: unregistered entries are scrubbed eagerly
    }
    Reg& reg = it->second;
    reg.queued = false;
    uint32_t events = stack_->SoReadiness(so) & (reg.interest | kNetError);
    if (events == 0) {
      continue;  // readiness evaporated (e.g. drained by another harvest)
    }
    out[n].socket = so;
    out[n].token = reg.token;
    out[n].events = events;
    ++n;
    if (!reg.edge) {
      reg.queued = true;  // level-triggered: stays ready while the condition holds
      ready_.push_back(so);
    }
  }
  return n;
}

void BsdSelector::SocketReady(BsdSocket* so) {
  auto it = regs_.find(so);
  if (it == regs_.end()) {
    return;
  }
  Reg& reg = it->second;
  if (reg.queued) {
    return;
  }
  uint32_t events = stack_->SoReadiness(so) & (reg.interest | kNetError);
  if (events == 0) {
    return;
  }
  reg.queued = true;
  ready_.push_back(so);
  ++stack_->counters_.select_notifies;
  stack_->sleep_wakeup_.Wakeup(this);
}

void BsdSelector::SocketGone(BsdSocket* so) {
  auto it = regs_.find(so);
  if (it == regs_.end()) {
    return;
  }
  DropRegistration(it);
}

void BsdSelector::DropRegistration(
    std::unordered_map<BsdSocket*, Reg>::iterator it) {
  if (it->second.queued) {
    ScrubReady(it->first);
  }
  regs_.erase(it);
  ++stack_->counters_.select_removes;
  stack_->counters_.select_registered -= 1;
}

void BsdSelector::ScrubReady(BsdSocket* so) {
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (*it == so) {
      ready_.erase(it);  // the queued flag guarantees at most one entry
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Stack-side glue
// ---------------------------------------------------------------------------

ComPtr<NetSelector> NetStack::CreateSelector() {
  return ComPtr<NetSelector>(new BsdSelector(this));
}

BsdSocket::~BsdSocket() {
  if (selector_ != nullptr) {
    selector_->SocketGone(this);
    selector_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// kmon netstat
// ---------------------------------------------------------------------------

namespace {

void FormatEndpoint(char* buf, size_t cap, InetAddr a, uint16_t port) {
  std::snprintf(buf, cap, "%u.%u.%u.%u:%u", (a.value >> 24) & 255,
                (a.value >> 16) & 255, (a.value >> 8) & 255, a.value & 255,
                port);
}

}  // namespace

void NetStack::Netstat(const std::function<void(const char*)>& emit) {
  char line[256];
  std::snprintf(line, sizeof line,
                "mode=%s tcp_pcbs=%zu udp_pcbs=%zu conn_hash=%zu "
                "lport_buckets=%zu",
                linear_internals_ ? "linear" : "hash+wheel", tcp_pcbs_.size(),
                udp_pcbs_.size(), tcp_conn_.size(), tcp_by_lport_.size());
  emit(line);
  for (const auto& pcb : tcp_pcbs_) {
    char l[32];
    char f[32];
    FormatEndpoint(l, sizeof l, pcb->laddr, pcb->lport);
    FormatEndpoint(f, sizeof f, pcb->faddr, pcb->fport);
    if (pcb->state == TcpState::kListen) {
      std::snprintf(line, sizeof line,
                    "tcp %-12s %-21s synq=%zu acceptq=%zu backlog=%d",
                    TcpStateName(pcb->state), l, pcb->syn_queue.size(),
                    pcb->accept_queue.size(), pcb->backlog);
    } else {
      std::snprintf(line, sizeof line,
                    "tcp %-12s %-21s -> %-21s snd=%zu rcv=%zu",
                    TcpStateName(pcb->state), l, f, pcb->snd.cc, pcb->rcv.cc);
    }
    emit(line);
  }
  for (const auto& pcb : udp_pcbs_) {
    char l[32];
    char f[32];
    FormatEndpoint(l, sizeof l, pcb->laddr, pcb->lport);
    FormatEndpoint(f, sizeof f, pcb->faddr, pcb->fport);
    std::snprintf(line, sizeof line, "udp %-12s %-21s -> %-21s rcvq=%zu", "-",
                  l, f, pcb->rcv_queue.size());
    emit(line);
  }
  std::snprintf(line, sizeof line,
                "wheel now=%llu armed=%llu fired=%llu cascades=%llu",
                static_cast<unsigned long long>(wheel_.now()),
                static_cast<unsigned long long>(wheel_.armed_count()),
                static_cast<unsigned long long>(wheel_.fired()),
                static_cast<unsigned long long>(wheel_.cascades()));
  emit(line);
  for (const BsdSelector* sel : selectors_) {
    std::snprintf(line, sizeof line, "selector regs=%zu ready=%zu",
                  sel->registered(), sel->ready_depth());
    emit(line);
  }
  std::snprintf(
      line, sizeof line,
      "established=%llu peak=%llu listen_overflows=%llu port_exhausted=%llu",
      static_cast<unsigned long long>(counters_.tcp_established),
      static_cast<unsigned long long>(counters_.tcp_established_peak),
      static_cast<unsigned long long>(counters_.tcp_listen_overflows),
      static_cast<unsigned long long>(counters_.port_exhausted));
  emit(line);
}

}  // namespace oskit::net
