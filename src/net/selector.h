// The stack's NetSelector implementation (src/com/netselector.h).
//
// One selector holds a registration table (socket -> interest/trigger/token)
// and a FIFO ready list.  The stack calls SocketReady whenever a socket's
// readiness may have changed (data arrived, window opened, accept queue grew,
// state change, error); the selector enqueues the socket if the change is
// interesting and it is not already queued, and wakes any parked Wait.
//
// Edge vs level is a harvest-time distinction: an edge registration leaves
// the ready list when harvested and will not reappear until a fresh
// notification; a level registration is re-appended while the condition
// still holds.  The harvest loop scans at most the ready-list length at
// entry, so level re-enqueues land beyond the scan bound and one chatty
// socket cannot monopolize a small harvest capacity.
//
// Registrations are weak: no reference is taken, and a dying socket
// (~BsdSocket) unregisters itself via SocketGone.

#ifndef OSKIT_SRC_NET_SELECTOR_H_
#define OSKIT_SRC_NET_SELECTOR_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "src/com/netselector.h"
#include "src/net/stack.h"

namespace oskit::net {

class BsdSelector final : public NetSelector, public RefCounted<BsdSelector> {
 public:
  explicit BsdSelector(NetStack* stack);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  // NetSelector
  Error Add(Socket* socket, uint32_t interest, bool edge, void* token) override;
  Error Modify(Socket* socket, uint32_t interest, bool edge) override;
  Error Remove(Socket* socket) override;
  Error Wait(NetReadyEvent* out_events, size_t capacity, bool block,
             size_t* out_count) override;

  size_t registered() const { return regs_.size(); }
  size_t ready_depth() const { return ready_.size(); }

 private:
  friend class NetStack;
  friend class BsdSocket;
  friend class RefCounted<BsdSelector>;
  ~BsdSelector();

  struct Reg {
    uint32_t interest;
    bool edge;
    void* token;
    bool queued = false;  // currently on the ready_ deque
  };

  // Stack-side hooks.
  void SocketReady(BsdSocket* so);
  void SocketGone(BsdSocket* so);

  size_t Harvest(NetReadyEvent* out, size_t capacity);
  void ScrubReady(BsdSocket* so);
  void DropRegistration(std::unordered_map<BsdSocket*, Reg>::iterator it);

  NetStack* stack_;
  std::unordered_map<BsdSocket*, Reg> regs_;
  std::deque<BsdSocket*> ready_;
};

}  // namespace oskit::net

#endif  // OSKIT_SRC_NET_SELECTOR_H_
