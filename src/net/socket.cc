// The BSD socket layer: blocking user operations over the PCBs, the COM
// Socket object, and the SocketFactory the minimal C library plugs into.

#include <cstring>

#include "src/base/panic.h"
#include "src/net/stack.h"

namespace oskit::net {

// ---------------------------------------------------------------------------
// Socket-layer operations (the so* family)
// ---------------------------------------------------------------------------

Error NetStack::SoBind(BsdSocket* so, const SockAddr& addr) {
  // Conflict detection probes the local-port bucket instead of scanning the
  // whole PCB list (both modes: the index is always maintained).
  if (so->type() == SockType::kStream) {
    TcpPcb* pcb = so->tcp();
    if (pcb->state != TcpState::kClosed) {
      return Error::kInval;
    }
    auto bucket = tcp_by_lport_.find(addr.port);
    if (bucket != tcp_by_lport_.end()) {
      for (TcpPcb* other : bucket->second) {
        if (other != pcb &&
            (other->laddr == addr.addr || other->laddr.IsAny() ||
             addr.addr.IsAny())) {
          return Error::kAddrInUse;
        }
      }
    }
    TcpIndexRemove(pcb);  // re-bind: drop any stale index entry
    pcb->laddr = addr.addr;
    pcb->lport = addr.port;
    TcpIndexInsert(pcb);
    return Error::kOk;
  }
  UdpPcb* pcb = so->udp();
  auto bucket = udp_by_lport_.find(addr.port);
  if (bucket != udp_by_lport_.end()) {
    for (UdpPcb* other : bucket->second) {
      if (other != pcb &&
          (other->laddr == addr.addr || other->laddr.IsAny() ||
           addr.addr.IsAny())) {
        return Error::kAddrInUse;
      }
    }
  }
  UdpIndexRemove(pcb);
  pcb->laddr = addr.addr;
  pcb->lport = addr.port;
  UdpIndexInsert(pcb);
  return Error::kOk;
}

Error NetStack::SoConnect(BsdSocket* so, const SockAddr& addr) {
  if (so->type() == SockType::kDgram) {
    UdpPcb* pcb = so->udp();
    pcb->faddr = addr.addr;
    pcb->fport = addr.port;
    pcb->connected = true;
    if (pcb->lport == 0) {
      pcb->lport = AllocEphemeralPort(/*tcp=*/false);
      if (pcb->lport == 0) {
        pcb->connected = false;
        // EADDRNOTAVAIL, distinguishable from mbuf exhaustion (kNoBufs).
        return Error::kAddrNotAvail;
      }
      UdpIndexInsert(pcb);
    }
    return Error::kOk;
  }

  TcpPcb* pcb = so->tcp();
  if (pcb->state != TcpState::kClosed) {
    return Error::kIsConn;
  }
  TcpIndexRemove(pcb);  // the 4-tuple is about to change
  if (pcb->lport == 0) {
    pcb->lport = AllocEphemeralPort(/*tcp=*/true);
    if (pcb->lport == 0) {
      // EADDRNOTAVAIL: the ephemeral range is spent.  Distinguishable from
      // kNoBufs (mbuf memory) and kQuotaExceeded (per-principal denial),
      // each with its own counter (net.port.exhausted here).
      return Error::kAddrNotAvail;
    }
  }
  if (pcb->laddr.IsAny()) {
    InetAddr next_hop;
    int ifindex = RouteFor(addr.addr, &next_hop);
    if (ifindex < 0) {
      return Error::kNetUnreach;
    }
    pcb->laddr = ifaces_[ifindex].addr;
  }
  pcb->faddr = addr.addr;
  pcb->fport = addr.port;
  TcpIndexInsert(pcb);
  pcb->iss = NextIss();
  pcb->snd_una = pcb->iss;
  pcb->snd_nxt = pcb->iss + 1;
  pcb->snd_max = pcb->snd_nxt;
  pcb->snd_cwnd = pcb->mss;
  pcb->snd_ssthresh = 65535;
  pcb->snd.hiwat = default_sock_buf_;
  pcb->rcv.hiwat = default_sock_buf_;
  pcb->state = TcpState::kSynSent;
  TcpArmConn(pcb, 60);  // 30 s
  TcpSendSegment(pcb, pcb->iss, kTcpFlagSyn, nullptr, 0, 0, /*with_mss=*/true);
  TcpArmRexmt(pcb, pcb->RtoTicks());

  if (so->nonblocking()) {
    // The caller polls completion through the selector / GetPeerName.
    return Error::kWouldBlock;
  }
  // Block until the handshake resolves (§4.7.6 sleep/wakeup).
  while (pcb->state == TcpState::kSynSent || pcb->state == TcpState::kSynReceived) {
    sleep_wakeup_.Sleep(&pcb->rcv);
  }
  if (pcb->state != TcpState::kEstablished &&
      pcb->state != TcpState::kCloseWait) {
    Error err = pcb->so_error;
    return Ok(err) ? Error::kConnRefused : err;
  }
  return Error::kOk;
}

Error NetStack::SoListen(BsdSocket* so, int backlog) {
  if (so->type() != SockType::kStream) {
    return Error::kNotImpl;
  }
  TcpPcb* pcb = so->tcp();
  if (pcb->lport == 0) {
    return Error::kInval;
  }
  if (backlog < 1) {
    backlog = 1;
  }
  pcb->backlog = backlog;
  pcb->state = TcpState::kListen;
  // Enter the listeners-only demux index (idempotent for a re-listen);
  // TcpIndexRemove drops the entry when the pcb leaves the tables.
  auto& listeners = tcp_listeners_[pcb->lport];
  bool present = false;
  for (TcpPcb* other : listeners) {
    present = present || other == pcb;
  }
  if (!present) {
    listeners.push_back(pcb);
  }
  return Error::kOk;
}

Error NetStack::SoAccept(BsdSocket* so, SockAddr* out_peer, TcpPcb** out_pcb) {
  TcpPcb* listener = so->tcp();
  if (listener == nullptr || listener->state != TcpState::kListen) {
    return Error::kInval;
  }
  while (listener->accept_queue.empty()) {
    if (listener->state != TcpState::kListen) {
      return Error::kAborted;  // listener closed while we waited
    }
    if (so->nonblocking()) {
      return Error::kWouldBlock;
    }
    sleep_wakeup_.Sleep(&listener->accept_queue);
  }
  TcpPcb* child = listener->accept_queue.front();
  listener->accept_queue.pop_front();
  child->listener = nullptr;
  out_peer->addr = child->faddr;
  out_peer->port = child->fport;
  *out_pcb = child;
  return Error::kOk;
}

Error NetStack::SoAcceptBatch(BsdSocket* so, SockAddr* out_peers,
                              Socket** out_sockets, size_t capacity,
                              size_t* out_count) {
  *out_count = 0;
  TcpPcb* listener = so->tcp();
  if (listener == nullptr || listener->state != TcpState::kListen) {
    return Error::kInval;
  }
  size_t n = 0;
  while (n < capacity && !listener->accept_queue.empty()) {
    TcpPcb* child = listener->accept_queue.front();
    listener->accept_queue.pop_front();
    child->listener = nullptr;
    out_peers[n].addr = child->faddr;
    out_peers[n].port = child->fport;
    out_sockets[n] = new BsdSocket(this, child);
    ++n;
  }
  *out_count = n;
  return Error::kOk;
}

Error NetStack::SoSend(BsdSocket* so, const void* buf, size_t len,
                       size_t* out_actual) {
  *out_actual = 0;
  if (so->type() == SockType::kDgram) {
    UdpPcb* pcb = so->udp();
    if (!pcb->connected) {
      return Error::kNotConn;
    }
    SockAddr to{pcb->faddr, pcb->fport};
    return SoSendTo(so, buf, len, to, out_actual);
  }

  TcpPcb* pcb = so->tcp();
  const auto* data = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < len) {
    // Valid sending states.
    if (pcb->state != TcpState::kEstablished && pcb->state != TcpState::kCloseWait) {
      if (sent > 0) {
        break;
      }
      return Ok(pcb->so_error) ? Error::kPipe : pcb->so_error;
    }
    if (pcb->fin_queued) {
      return Error::kPipe;  // we already shut down our write side
    }
    size_t space = pcb->snd.Space();
    if (space == 0) {
      if (so->nonblocking()) {
        if (sent > 0) {
          break;  // short write
        }
        return Error::kWouldBlock;
      }
      sleep_wakeup_.Sleep(&pcb->snd);
      continue;
    }
    size_t n = len - sent;
    if (n > space) {
      n = space;
    }
    // Copy user bytes into the send buffer (the socket-layer copy the
    // classic API cannot avoid — SendBufIo below is the path without it).
    MBuf* chain = pool_.FromData(data + sent, n);
    SbAppend(&pcb->snd, chain);
    counters_.tx_copied_bytes += n;
    sent += n;
    TcpOutput(pcb, /*force_ack=*/false);
  }
  *out_actual = sent;
  return Error::kOk;
}

namespace {

// One Vectors() pin shared by every external mbuf built from that slice.
// The last mbuf free (delivery acked, or connection teardown) releases the
// pin and the source object.
struct SendfileRef {
  ComPtr<BufIoVec> src;
  off_t64 offset;
  size_t amount;
  size_t outstanding;
};

void SendfileSegFree(void* ctx, uint8_t* /*buf*/, size_t /*size*/) {
  auto* ref = static_cast<SendfileRef*>(ctx);
  if (--ref->outstanding == 0) {
    ref->src->UnmapVectors(ref->offset, ref->amount);
    delete ref;
  }
}

}  // namespace

Error NetStack::SoSendBufIo(BsdSocket* so, BufIoVec* src, off_t64 offset,
                            size_t amount, size_t* out_actual) {
  *out_actual = 0;
  if (so->type() != SockType::kStream) {
    return Error::kNotImpl;
  }
  TcpPcb* pcb = so->tcp();
  size_t sent = 0;
  while (sent < amount) {
    if (pcb->state != TcpState::kEstablished && pcb->state != TcpState::kCloseWait) {
      if (sent > 0) {
        break;
      }
      return Ok(pcb->so_error) ? Error::kPipe : pcb->so_error;
    }
    if (pcb->fin_queued) {
      return Error::kPipe;
    }
    size_t space = pcb->snd.Space();
    if (space == 0) {
      if (so->nonblocking()) {
        if (sent > 0) {
          break;
        }
        return Error::kWouldBlock;
      }
      sleep_wakeup_.Sleep(&pcb->snd);
      continue;
    }
    size_t n = amount - sent;
    if (n > space) {
      n = space;
    }
    // Ask the source for a scatter-gather view of this slice.  The send
    // buffer is window-limited (< 64 KB), so a block-granular source needs
    // well under kSendfileSegCap pieces.
    constexpr size_t kSendfileSegCap = 64;
    BufIoSegment segs[kSendfileSegCap];
    size_t count = 0;
    Error err = src->Vectors(segs, kSendfileSegCap, offset + sent, n, &count);
    if (Ok(err) && count > 0) {
      // Graft each piece into the send buffer as external-storage mbufs:
      // TCP transmits (and retransmits) straight out of the source's own
      // memory; the shared SendfileRef unpins once the last byte is acked.
      auto* ref = new SendfileRef{ComPtr<BufIoVec>::Retain(src), offset + sent,
                                  n, count};
      MBuf* head = nullptr;
      MBuf* tail = nullptr;
      for (size_t i = 0; i < count; ++i) {
        MBuf* m = pool_.GetExternal(const_cast<uint8_t*>(segs[i].data),
                                    segs[i].len, SendfileSegFree, ref);
        m->len = static_cast<uint32_t>(segs[i].len);
        if (head == nullptr) {
          head = m;
        } else {
          tail->next = m;
        }
        tail = m;
      }
      head->pkt_len = static_cast<uint32_t>(n);
      SbAppend(&pcb->snd, head);
      counters_.tx_sendfile_bytes += n;
    } else {
      // The source refused a vector (too fragmented, not resident): fall
      // back to the counted copy so the call still makes progress.
      std::vector<uint8_t> tmp(n);
      size_t actual = 0;
      err = src->Read(tmp.data(), offset + sent, n, &actual);
      if (!Ok(err) || actual == 0) {
        if (sent > 0) {
          break;
        }
        return Ok(err) ? Error::kIo : err;
      }
      n = actual;
      MBuf* chain = pool_.FromData(tmp.data(), n);
      SbAppend(&pcb->snd, chain);
      counters_.tx_sendfile_fallback_bytes += n;
      counters_.tx_copied_bytes += n;
    }
    sent += n;
    TcpOutput(pcb, /*force_ack=*/false);
  }
  *out_actual = sent;
  return Error::kOk;
}

Error NetStack::SoRecv(BsdSocket* so, void* buf, size_t len, size_t* out_actual) {
  *out_actual = 0;
  if (so->type() == SockType::kDgram) {
    SockAddr from;
    return SoRecvFrom(so, buf, len, &from, out_actual);
  }

  TcpPcb* pcb = so->tcp();
  for (;;) {
    if (pcb->rcv.cc > 0) {
      break;
    }
    if (pcb->peer_fin_seen || pcb->state == TcpState::kClosed) {
      if (!Ok(pcb->so_error) && pcb->so_error != Error::kOk) {
        return pcb->so_error;
      }
      return Error::kOk;  // EOF: *out_actual stays 0
    }
    if (so->nonblocking()) {
      return Error::kWouldBlock;
    }
    sleep_wakeup_.Sleep(&pcb->rcv);
  }
  uint32_t window_before = TcpReceiveWindow(pcb);
  size_t n = SbCopyOut(&pcb->rcv, buf, len);
  *out_actual = n;
  AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, n);
  // Window update: tell the peer promptly when the window opened
  // significantly (BSD: two MSS or half the buffer).
  uint32_t window_after = TcpReceiveWindow(pcb);
  if (window_after - window_before >= 2u * pcb->mss ||
      window_after - window_before >= pcb->rcv.hiwat / 2) {
    TcpOutput(pcb, /*force_ack=*/true);
  }
  return Error::kOk;
}

Error NetStack::SoSendTo(BsdSocket* so, const void* buf, size_t len,
                         const SockAddr& to, size_t* out_actual) {
  *out_actual = 0;
  if (so->type() != SockType::kDgram) {
    return Error::kNotImpl;
  }
  UdpPcb* pcb = so->udp();
  MBuf* chain = pool_.FromData(buf, len);
  Error err = UdpOutput(pcb, to, chain);
  if (Ok(err)) {
    *out_actual = len;
  }
  return err;
}

Error NetStack::SoRecvFrom(BsdSocket* so, void* buf, size_t len, SockAddr* out_from,
                           size_t* out_actual) {
  *out_actual = 0;
  if (so->type() != SockType::kDgram) {
    return Error::kNotImpl;
  }
  UdpPcb* pcb = so->udp();
  while (pcb->rcv_queue.empty()) {
    if (so->nonblocking()) {
      return Error::kWouldBlock;
    }
    sleep_wakeup_.Sleep(&pcb->rcv_queue);
  }
  UdpPcb::Datagram dg = pcb->rcv_queue.front();
  pcb->rcv_queue.pop_front();
  size_t dg_len = MbufPool::ChainLength(dg.data);
  pcb->rcv_bytes -= dg_len;
  AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, dg_len);
  size_t n = dg_len < len ? dg_len : len;
  pool_.CopyData(dg.data, 0, n, buf);
  pool_.FreeChain(dg.data);
  *out_from = dg.from;
  *out_actual = n;  // excess datagram bytes are discarded, UDP style
  return Error::kOk;
}

Error NetStack::SoShutdown(BsdSocket* so, SockShutdown how) {
  if (so->type() != SockType::kStream) {
    return Error::kNotImpl;
  }
  TcpPcb* pcb = so->tcp();
  if (how == SockShutdown::kRead) {
    return Error::kOk;  // reads just see EOF; nothing on the wire
  }
  if (pcb->fin_queued) {
    return Error::kOk;
  }
  switch (pcb->state) {
    case TcpState::kEstablished:
      pcb->fin_queued = true;
      TcpSetState(pcb, TcpState::kFinWait1);
      TcpOutput(pcb, false);
      break;
    case TcpState::kCloseWait:
      pcb->fin_queued = true;
      TcpSetState(pcb, TcpState::kLastAck);
      TcpOutput(pcb, false);
      break;
    case TcpState::kSynSent:
    case TcpState::kListen:
      TcpSetState(pcb, TcpState::kClosed);
      break;
    default:
      break;
  }
  return Error::kOk;
}

void NetStack::SoDetach(BsdSocket* so) {
  if (so->type() == SockType::kDgram) {
    UdpPcb* pcb = so->udp();
    if (pcb == nullptr) {
      return;
    }
    for (auto it = udp_pcbs_.begin(); it != udp_pcbs_.end(); ++it) {
      if (it->get() == pcb) {
        AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, pcb->rx_charged);
        for (auto& dg : pcb->rcv_queue) {
          pool_.FreeChain(dg.data);
        }
        UdpIndexRemove(pcb);
        udp_pcbs_.erase(it);
        break;
      }
    }
    return;
  }

  TcpPcb* pcb = so->tcp();
  if (pcb == nullptr) {
    return;
  }
  pcb->socket = nullptr;
  pcb->detached = true;

  // A dying listener orphans its not-yet-accepted children: half-open ones
  // are torn down immediately, established ones get an orderly FIN close.
  if (pcb->state == TcpState::kListen || !pcb->accept_queue.empty() ||
      !pcb->syn_queue.empty()) {
    for (TcpPcb* child : pcb->syn_queue) {
      child->detached = true;
      child->listener = nullptr;
      SoShutdownPcb(child);  // SYN_RCVD drops straight to CLOSED
      TcpCloseDone(child);
    }
    pcb->syn_queue.clear();
    for (TcpPcb* child : pcb->accept_queue) {
      child->detached = true;
      child->listener = nullptr;
      SoShutdownPcb(child);
      if (child->state == TcpState::kClosed) {
        TcpCloseDone(child);  // already dead: free it now
      }
    }
    pcb->accept_queue.clear();
    pcb->state = TcpState::kClosed;
    TcpCloseDone(pcb);
    return;
  }

  // Orderly close: queue our FIN and let the state machine run in the
  // background; the pcb frees itself on reaching CLOSED (§6.2.10 notes the
  // original OSKit simply rebooted here — we do the clean thing).
  SoShutdownPcb(pcb);
  if (pcb->state == TcpState::kClosed) {
    TcpCloseDone(pcb);
  }
}

void NetStack::SoShutdownPcb(TcpPcb* pcb) {
  switch (pcb->state) {
    case TcpState::kEstablished:
      pcb->fin_queued = true;
      TcpSetState(pcb, TcpState::kFinWait1);
      TcpOutput(pcb, false);
      break;
    case TcpState::kCloseWait:
      pcb->fin_queued = true;
      TcpSetState(pcb, TcpState::kLastAck);
      TcpOutput(pcb, false);
      break;
    case TcpState::kSynSent:
    case TcpState::kSynReceived:
      pcb->state = TcpState::kClosed;
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// The COM socket object
// ---------------------------------------------------------------------------

BsdSocket::BsdSocket(NetStack* stack, SockType type) : stack_(stack), type_(type) {
  if (type == SockType::kStream) {
    auto pcb = std::make_unique<TcpPcb>();
    pcb->socket = this;
    tcp_ = pcb.get();
    stack->tcp_pcbs_.push_back(std::move(pcb));
    stack->TcpBindWheelTimers(tcp_);
  } else {
    auto pcb = std::make_unique<UdpPcb>();
    pcb->socket = this;
    udp_ = pcb.get();
    stack->udp_pcbs_.push_back(std::move(pcb));
  }
}

BsdSocket::BsdSocket(NetStack* stack, TcpPcb* adopt)
    : stack_(stack), type_(SockType::kStream), tcp_(adopt) {
  adopt->socket = this;
}

uint32_t BsdSocket::Release() {
  if (ref_count() == 1) {
    // Last reference: detach from the stack before self-destruction.
    stack_->SoDetach(this);
    tcp_ = nullptr;
    udp_ = nullptr;
  }
  return ReleaseImpl();
}

Error BsdSocket::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == Socket::kIid) {
    AddRef();
    *out = static_cast<Socket*>(this);
    return Error::kOk;
  }
  if (iid == SocketExt::kIid) {
    // The optional capability interface (§4.4.2): only clients that ask for
    // non-blocking / batched operation ever see it.
    AddRef();
    *out = static_cast<SocketExt*>(this);
    return Error::kOk;
  }
  if (iid == SocketZeroCopy::kIid && type_ == SockType::kStream) {
    // Zero-copy transmit is a stream capability; datagram sockets simply
    // don't grant the interface.
    AddRef();
    *out = static_cast<SocketZeroCopy*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error BsdSocket::SetNonBlocking(bool on) {
  nonblocking_ = on;
  return Error::kOk;
}

Error BsdSocket::AcceptBatch(SockAddr* out_peers, Socket** out_sockets,
                             size_t capacity, size_t* out_count) {
  return stack_->SoAcceptBatch(this, out_peers, out_sockets, capacity,
                               out_count);
}

Error BsdSocket::Bind(const SockAddr& addr) { return stack_->SoBind(this, addr); }
Error BsdSocket::Connect(const SockAddr& addr) { return stack_->SoConnect(this, addr); }
Error BsdSocket::Listen(int backlog) { return stack_->SoListen(this, backlog); }

Error BsdSocket::Accept(SockAddr* out_peer, Socket** out_socket) {
  *out_socket = nullptr;
  TcpPcb* child = nullptr;
  Error err = stack_->SoAccept(this, out_peer, &child);
  if (!Ok(err)) {
    return err;
  }
  // Wrap the accepted connection in a socket object that adopts the pcb
  // directly (no throwaway pcb to build and tear down per accept).
  *out_socket = new BsdSocket(stack_, child);
  return Error::kOk;
}

Error BsdSocket::Send(const void* buf, size_t amount, size_t* out_actual) {
  return stack_->SoSend(this, buf, amount, out_actual);
}

Error BsdSocket::Recv(void* buf, size_t amount, size_t* out_actual) {
  return stack_->SoRecv(this, buf, amount, out_actual);
}

Error BsdSocket::SendTo(const void* buf, size_t amount, const SockAddr& to,
                        size_t* out_actual) {
  return stack_->SoSendTo(this, buf, amount, to, out_actual);
}

Error BsdSocket::RecvFrom(void* buf, size_t amount, SockAddr* out_from,
                          size_t* out_actual) {
  return stack_->SoRecvFrom(this, buf, amount, out_from, out_actual);
}

Error BsdSocket::SendBufIo(BufIoVec* src, off_t64 offset, size_t amount,
                           size_t* out_actual) {
  return stack_->SoSendBufIo(this, src, offset, amount, out_actual);
}

Error BsdSocket::Shutdown(SockShutdown how) { return stack_->SoShutdown(this, how); }

Error BsdSocket::GetSockName(SockAddr* out_addr) {
  if (type_ == SockType::kStream) {
    out_addr->addr = tcp_->laddr;
    out_addr->port = tcp_->lport;
  } else {
    out_addr->addr = udp_->laddr;
    out_addr->port = udp_->lport;
  }
  return Error::kOk;
}

Error BsdSocket::GetPeerName(SockAddr* out_addr) {
  if (type_ == SockType::kStream) {
    if (tcp_->state != TcpState::kEstablished && tcp_->state != TcpState::kCloseWait) {
      return Error::kNotConn;
    }
    out_addr->addr = tcp_->faddr;
    out_addr->port = tcp_->fport;
    return Error::kOk;
  }
  if (!udp_->connected) {
    return Error::kNotConn;
  }
  out_addr->addr = udp_->faddr;
  out_addr->port = udp_->fport;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// The factory
// ---------------------------------------------------------------------------

namespace {

class BsdSocketFactory final : public SocketFactory, public RefCounted<BsdSocketFactory> {
 public:
  explicit BsdSocketFactory(NetStack* stack) : stack_(stack) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == SocketFactory::kIid) {
      AddRef();
      *out = static_cast<SocketFactory*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Create(SockDomain domain, SockType type, Socket** out_socket) override {
    *out_socket = nullptr;
    if (domain != SockDomain::kInet) {
      return Error::kProtoNoSupport;
    }
    if (type != SockType::kStream && type != SockType::kDgram) {
      return Error::kProtoNoSupport;
    }
    *out_socket = new BsdSocket(stack_, type);
    return Error::kOk;
  }

 private:
  friend class RefCounted<BsdSocketFactory>;
  ~BsdSocketFactory() = default;

  NetStack* stack_;
};

}  // namespace

ComPtr<SocketFactory> NetStack::CreateSocketFactory() {
  return ComPtr<SocketFactory>(new BsdSocketFactory(this));
}

}  // namespace oskit::net
