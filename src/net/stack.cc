// NetStack core: construction, BSD sleep/wakeup emulation, sockbufs,
// driver bindings, Ethernet demux, and ARP.

#include "src/net/stack.h"

#include <cstring>

#include "src/base/panic.h"
#include "src/net/mbuf_bufio.h"

namespace oskit::net {

// ---------------------------------------------------------------------------
// BSD sleep/wakeup
// ---------------------------------------------------------------------------

namespace {

// The emulated "current process" (§4.7.5): manufactured on demand at entry
// to the component, alive only for the duration of the call.  In this C++
// rendering the manufactured proc is the EmulatedProc that Sleep() places on
// the sleeping thread's stack; this component-global pointer mirrors BSD's
// curproc and is saved/restored across blocking points exactly as the paper
// describes.
thread_local void* g_curproc = nullptr;

}  // namespace

void BsdSleepWakeup::Sleep(const void* chan) {
  ++sleeps_;
  if (recorder_ != nullptr) {
    recorder_->Record(trace::EventType::kSleep, "net",
                      reinterpret_cast<uintptr_t>(chan));
  }
  // Manufacture the "process" on the caller's stack (§4.7.5).
  EmulatedProc proc(env_);
  proc.chan = chan;
  size_t b = BucketOf(chan);
  proc.next = buckets_[b];
  buckets_[b] = &proc;

  // Save curproc across the blocking call, per the paper, so other threads
  // of control entering the component meanwhile don't trash it.
  void* saved_curproc = g_curproc;
  g_curproc = &proc;
  proc.record.Sleep();
  g_curproc = saved_curproc;

  // Unlink ourselves.
  EmulatedProc** link = &buckets_[b];
  while (*link != nullptr && *link != &proc) {
    link = &(*link)->next;
  }
  OSKIT_ASSERT_MSG(*link == &proc, "emulated proc vanished from event hash");
  *link = proc.next;
}

void BsdSleepWakeup::Wakeup(const void* chan) {
  ++wakeups_;
  if (recorder_ != nullptr) {
    recorder_->Record(trace::EventType::kWakeup, "net",
                      reinterpret_cast<uintptr_t>(chan));
  }
  for (EmulatedProc* p = buckets_[BucketOf(chan)]; p != nullptr; p = p->next) {
    if (p->chan == chan) {
      p->record.Wakeup();
    }
  }
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

NetStack::NetStack(SleepEnv* sleep_env, SimClock* clock, trace::TraceEnv* trace)
    : sleep_env_(sleep_env),
      clock_(clock),
      trace_(trace::ResolveTraceEnv(trace)),
      sleep_wakeup_(sleep_env, &trace_->recorder),
      epoch_(clock->Now()) {
  trace_binding_.Bind(
      &trace_->registry,
      {{"net.ip.in", &counters_.ip_in},
       {"net.ip.out", &counters_.ip_out},
       {"net.ip.bad_checksum", &counters_.ip_bad_checksum},
       {"net.ip.frags_in", &counters_.ip_frags_in},
       {"net.ip.reassembled", &counters_.ip_reassembled},
       {"net.ip.frag_out", &counters_.ip_frag_out},
       {"net.arp.in", &counters_.arp_in},
       {"net.arp.requests_out", &counters_.arp_requests_out},
       {"net.icmp.echo_in", &counters_.icmp_echo_in},
       {"net.udp.in", &counters_.udp_in},
       {"net.udp.out", &counters_.udp_out},
       {"net.udp.bad_checksum", &counters_.udp_bad_checksum},
       {"net.udp.no_port", &counters_.udp_no_port},
       {"net.tcp.in", &counters_.tcp_in},
       {"net.tcp.out", &counters_.tcp_out},
       {"net.tcp.bad_checksum", &counters_.tcp_bad_checksum},
       {"net.tcp.retransmits", &counters_.tcp_retransmits},
       {"net.tcp.fast_retransmits", &counters_.tcp_fast_retransmits},
       {"net.tcp.delayed_acks", &counters_.tcp_delayed_acks},
       {"net.tcp.rx_batches", &counters_.tcp_rx_batches},
       {"net.tcp.batched_outputs", &counters_.tcp_batched_outputs},
       {"net.tcp.ooo_segments", &counters_.tcp_ooo_segments},
       {"net.tcp.rst_out", &counters_.tcp_rst_out},
       {"net.rx.glue_copied_bytes", &counters_.rx_glue_copied_bytes},
       {"net.tx.copied_bytes", &counters_.tx_copied_bytes},
       {"net.tx.sendfile_bytes", &counters_.tx_sendfile_bytes},
       {"net.tx.sendfile_fallback_bytes",
        &counters_.tx_sendfile_fallback_bytes},
       {"net.rx.alloc_drops", &counters_.rx_alloc_drops},
       {"net.tx.errors", &counters_.tx_errors},
       {"net.tcp.listen_overflows", &counters_.tcp_listen_overflows},
       {"net.tcp.syn_admission_shed", &counters_.tcp_syn_admission_shed},
       {"net.rx.quota_shed", &counters_.rx_quota_shed},
       {"net.port.exhausted", &counters_.port_exhausted},
       {"net.pcb.hash.hits", &counters_.pcb_hash_hits},
       {"net.pcb.hash.misses", &counters_.pcb_hash_misses},
       {"net.pcb.scan_full", &counters_.pcb_scan_full},
       {"net.tcp.established", &counters_.tcp_established, /*gauge=*/true},
       {"net.tcp.established_peak", &counters_.tcp_established_peak,
        /*gauge=*/true},
       {"net.timer.wheel.armed", &wheel_.armed_counter(), /*gauge=*/true},
       {"net.timer.wheel.fired", &wheel_.fired_counter()},
       {"net.timer.wheel.cascades", &wheel_.cascades_counter()},
       {"net.select.adds", &counters_.select_adds},
       {"net.select.removes", &counters_.select_removes},
       {"net.select.notifies", &counters_.select_notifies},
       {"net.select.wakeups", &counters_.select_wakeups},
       {"net.select.harvested", &counters_.select_harvested},
       {"net.select.registered", &counters_.select_registered, /*gauge=*/true},
       {"net.sleep.sleeps", &sleep_wakeup_.sleeps_counter()},
       {"net.sleep.wakeups", &sleep_wakeup_.wakeups_counter()}});
  StartTimers();
}

NetStack::~NetStack() {
  shutting_down_ = true;
  clock_->Cancel(fast_timer_);
  clock_->Cancel(slow_timer_);
  clock_->Cancel(wheel_timer_);
  for (Iface& iface : ifaces_) {
    if (iface.dev) {
      iface.dev->Close();
    }
  }
  for (auto& pcb : tcp_pcbs_) {
    SbFlush(&pcb->snd);
    SbFlush(&pcb->rcv);
    for (auto& seg : pcb->reass) {
      pool_.FreeChain(seg.data);
    }
    pcb->reass.clear();
  }
  for (auto& pcb : udp_pcbs_) {
    for (auto& dg : pcb->rcv_queue) {
      pool_.FreeChain(dg.data);
    }
  }
  for (auto& [key, entry] : arp_) {
    if (entry.pending != nullptr) {
      pool_.FreeChain(entry.pending);
    }
  }
}

void NetStack::StartTimers() {
  // All three periodic events run in both modes (so the ablation flag can
  // flip without rescheduling); the mode check happens at fire time.  In
  // linear mode the BSD 200 ms fast and 500 ms slow sweeps do the TCP work;
  // in wheel mode the 100 ms wheel tick does, and the sweeps degenerate to
  // the IP-level housekeeping that rides the slow event.
  ScheduleFastTimer();
  ScheduleSlowTimer();
  ScheduleWheelTick();
}

void NetStack::ScheduleFastTimer() {
  fast_timer_ = clock_->ScheduleAfter(200 * kNsPerMs, [this] {
    if (shutting_down_) {
      return;
    }
    if (linear_internals_) {
      TcpFastTimo();
    }
    ScheduleFastTimer();
  });
}

void NetStack::ScheduleSlowTimer() {
  slow_timer_ = clock_->ScheduleAfter(500 * kNsPerMs, [this] {
    if (shutting_down_) {
      return;
    }
    if (linear_internals_) {
      TcpSlowTimo();
    }
    FragTimeoutSweep();
    ScheduleSlowTimer();
  });
}

void NetStack::ScheduleWheelTick() {
  wheel_timer_ = clock_->ScheduleAfter(100 * kNsPerMs, [this] {
    if (shutting_down_) {
      return;
    }
    // Ticks in linear mode too (nothing is armed then, so it only advances
    // now_): the wheel clock must stay in lockstep with SimClock or an
    // ablation flip would skew every later arm.
    wheel_.Tick();
    ScheduleWheelTick();
  });
}

// ---------------------------------------------------------------------------
// Sockbufs
// ---------------------------------------------------------------------------

void NetStack::SbAppend(SockBuf* sb, MBuf* chain) {
  size_t len = MbufPool::ChainLength(chain);
  if (sb->head == nullptr) {
    sb->head = chain;
  } else {
    sb->tail->next = chain;
  }
  MBuf* tail = chain;
  while (tail->next != nullptr) {
    tail = tail->next;
  }
  sb->tail = tail;
  sb->cc += len;
}

size_t NetStack::SbCopyOut(SockBuf* sb, void* dst, size_t len) {
  auto* out = static_cast<uint8_t*>(dst);
  size_t copied = 0;
  while (copied < len && sb->head != nullptr) {
    MBuf* m = sb->head;
    size_t n = m->len;
    if (n > len - copied) {
      n = len - copied;
    }
    std::memcpy(out + copied, m->data, n);
    copied += n;
    if (n == m->len) {
      sb->head = pool_.Free(m);
      if (sb->head == nullptr) {
        sb->tail = nullptr;
      }
    } else {
      m->data += n;
      m->len -= static_cast<uint32_t>(n);
    }
  }
  sb->cc -= copied;
  return copied;
}

void NetStack::SbDrop(SockBuf* sb, size_t len) {
  OSKIT_ASSERT(len <= sb->cc);
  sb->cc -= len;
  while (len > 0) {
    MBuf* m = sb->head;
    OSKIT_ASSERT(m != nullptr);
    if (len < m->len) {
      m->data += len;
      m->len -= static_cast<uint32_t>(len);
      break;
    }
    len -= m->len;
    sb->head = pool_.Free(m);
  }
  if (sb->head == nullptr) {
    sb->tail = nullptr;
  }
}

void NetStack::SbFlush(SockBuf* sb) {
  if (sb->head != nullptr) {
    pool_.FreeChain(sb->head);
  }
  sb->head = nullptr;
  sb->tail = nullptr;
  sb->cc = 0;
}

// ---------------------------------------------------------------------------
// Driver bindings
// ---------------------------------------------------------------------------

// The stack's receive-side NetIo handed to COM-bound drivers: the callback
// half of the §5 exchange.  It additionally implements NetIoBatch (the
// §4.4.2 extension idiom: same object, richer interface discovered via
// Query) so a polled driver can bracket a burst of frames and pay one TCP
// response pass for the lot.
class StackRecvNetIo final : public NetIoBatch,
                             public RefCounted<StackRecvNetIo> {
 public:
  StackRecvNetIo(NetStack* stack, int ifindex) : stack_(stack), ifindex_(ifindex) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == NetIo::kIid || iid == NetIoBatch::kIid) {
      AddRef();
      *out = static_cast<NetIoBatch*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  void BeginBatch() override { stack_->BeginRxBatch(); }
  void EndBatch() override { stack_->EndRxBatch(); }

  Error Push(BufIo* packet, size_t size) override {
    // Import the foreign packet: zero-copy when it maps (§4.7.3), unless
    // the ablation switch forces the copy path.
    if (stack_->fault_->ShouldFail("mbuf.rx_alloc")) {
      // Injected mbuf exhaustion at the import boundary: refuse the frame
      // cleanly — the driver keeps ownership and TCP above retransmits.
      ++stack_->mutable_counters().rx_alloc_drops;
      return Error::kNoMem;
    }
    MBuf* frame;
    if (stack_->force_rx_copy()) {
      frame = stack_->pool().FromData(nullptr, size);
      size_t offset = 0;
      for (MBuf* cur = frame; cur != nullptr; cur = cur->next) {
        size_t actual = 0;
        packet->Read(cur->data, offset, cur->len, &actual);
        offset += cur->len;
      }
      stack_->mutable_counters().rx_glue_copied_bytes += size;
      stack_->trace().recorder.Record(trace::EventType::kBufCopy, "net.rx",
                                      size);
    } else {
      frame = MbufFromBufIo(&stack_->pool(), packet, size);
    }
    if (frame == nullptr) {
      ++stack_->mutable_counters().rx_alloc_drops;
      return Error::kNoMem;
    }
    stack_->EtherInputMbuf(ifindex_, frame);
    return Error::kOk;
  }

 private:
  friend class RefCounted<StackRecvNetIo>;
  ~StackRecvNetIo() = default;

  NetStack* stack_;
  int ifindex_;
};

Error NetStack::OpenEtherIf(EtherDev* dev, int* out_ifindex) {
  Iface iface;
  iface.native = false;
  iface.dev = ComPtr<EtherDev>::Retain(dev);
  Error err = dev->GetAddr(&iface.mac);
  if (!Ok(err)) {
    return err;
  }
  int ifindex = static_cast<int>(ifaces_.size());
  ComPtr<StackRecvNetIo> recv(new StackRecvNetIo(this, ifindex));
  NetIo* tx = nullptr;
  err = dev->Open(recv.get(), &tx);
  if (!Ok(err)) {
    return err;
  }
  iface.tx = ComPtr<NetIo>(tx);
  ifaces_.push_back(std::move(iface));
  *out_ifindex = ifindex;
  return Error::kOk;
}

Error NetStack::OpenNativeIf(NativeEtherPort* port, int* out_ifindex) {
  Iface iface;
  iface.native = true;
  iface.port = port;
  iface.mac = port->mac();
  *out_ifindex = static_cast<int>(ifaces_.size());
  ifaces_.push_back(std::move(iface));
  return Error::kOk;
}

Error NetStack::IfConfig(int ifindex, InetAddr addr, InetAddr netmask) {
  if (ifindex < 0 || ifindex >= static_cast<int>(ifaces_.size())) {
    return Error::kInval;
  }
  Iface& iface = ifaces_[ifindex];
  iface.addr = addr;
  iface.netmask = netmask;
  iface.configured = true;
  return Error::kOk;
}

Error NetStack::SetDefaultGateway(InetAddr gateway) {
  gateway_ = gateway;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Ethernet layer
// ---------------------------------------------------------------------------

void NetStack::EtherInputMbuf(int ifindex, MBuf* frame) {
  EtherInput(ifindex, frame);
}

void NetStack::EtherInput(int ifindex, MBuf* frame) {
  trace_->recorder.Record(trace::EventType::kPacketRx, "net.ether",
                          static_cast<uint64_t>(ifindex),
                          frame != nullptr ? frame->pkt_len : 0);
  frame = pool_.Pullup(frame, kEtherHeaderSize);
  if (frame == nullptr) {
    return;
  }
  EtherHeader eh = EtherHeader::Parse(frame->data);
  frame = pool_.TrimFront(frame, kEtherHeaderSize);
  switch (eh.type) {
    case kEtherTypeArp:
      ArpInput(ifindex, frame);
      break;
    case kEtherTypeIp:
      IpInput(ifindex, frame);
      break;
    default:
      pool_.FreeChain(frame);
      break;
  }
}

Error NetStack::EtherOutput(int ifindex, const EtherAddr& dst, uint16_t type,
                            MBuf* payload) {
  Iface& iface = ifaces_[ifindex];
  MBuf* frame = pool_.Prepend(payload, kEtherHeaderSize);
  EtherHeader eh;
  eh.dst = dst;
  eh.src = iface.mac;
  eh.type = type;
  eh.Serialize(frame->data);
  trace_->recorder.Record(trace::EventType::kPacketTx, "net.ether",
                          static_cast<uint64_t>(ifindex), frame->pkt_len);

  if (iface.native) {
    // Baseline path: the BSD-idiom driver takes the chain as-is.
    iface.port->Output(frame);
    return Error::kOk;
  }
  // OSKit path: the chain leaves the component as an opaque buffer object
  // (§4.7.3).  The wrapper also speaks BufIoVec, so a gather-capable driver
  // transmits a multi-mbuf chain without flattening; the force_tx_flatten_
  // ablation withholds that interface to reproduce the old copy path.
  size_t len = frame->pkt_len;
  auto bufio = MbufBufIo::Wrap(&pool_, frame, !force_tx_flatten_);
  Error err = iface.tx->Push(bufio.get(), len);
  if (!Ok(err)) {
    // The driver refused the frame (OOM, injected fault).  Count it — the
    // frame is reclaimed by the wrapper, and the protocols above recover by
    // retransmission.
    ++counters_.tx_errors;
    trace_->recorder.Record(trace::EventType::kMark, "net.tx.error",
                            static_cast<uint64_t>(ifindex),
                            static_cast<uint64_t>(err));
  }
  return err;
}

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

void NetStack::ArpInput(int ifindex, MBuf* packet) {
  ++counters_.arp_in;
  packet = pool_.Pullup(packet, kArpPacketSize);
  if (packet == nullptr) {
    return;
  }
  ArpPacket arp;
  if (!ArpPacket::Parse(packet->data, packet->len, &arp)) {
    pool_.FreeChain(packet);
    return;
  }
  pool_.FreeChain(packet);

  Iface& iface = ifaces_[ifindex];

  // Learn/refresh the sender's mapping; release anything queued on it.
  ArpEntry& entry = arp_[arp.sender_ip.value];
  entry.mac = arp.sender_mac;
  entry.resolved = true;
  entry.expires = clock_->Now() + 20 * 60 * kNsPerSec;
  if (entry.pending != nullptr) {
    MBuf* queued = entry.pending;
    entry.pending = nullptr;
    EtherOutput(ifindex, entry.mac, kEtherTypeIp, queued);
  }

  if (arp.op == kArpOpRequest && iface.configured && arp.target_ip == iface.addr) {
    ArpPacket reply;
    reply.op = kArpOpReply;
    reply.sender_mac = iface.mac;
    reply.sender_ip = iface.addr;
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    MBuf* out = pool_.GetHeaderAligned(kArpPacketSize);
    reply.Serialize(out->data);
    EtherOutput(ifindex, arp.sender_mac, kEtherTypeArp, out);
  }
}

void NetStack::SendArpRequest(int ifindex, InetAddr target) {
  ++counters_.arp_requests_out;
  Iface& iface = ifaces_[ifindex];
  ArpPacket request;
  request.op = kArpOpRequest;
  request.sender_mac = iface.mac;
  request.sender_ip = iface.addr;
  request.target_mac = EtherAddr{};
  request.target_ip = target;
  MBuf* out = pool_.GetHeaderAligned(kArpPacketSize);
  request.Serialize(out->data);
  EtherOutput(ifindex, kEtherBroadcast, kEtherTypeArp, out);
}

void NetStack::IpSendViaIface(int ifindex, InetAddr next_hop, MBuf* datagram) {
  ArpEntry& entry = arp_[next_hop.value];
  if (entry.resolved && clock_->Now() < entry.expires) {
    EtherOutput(ifindex, entry.mac, kEtherTypeIp, datagram);
    return;
  }
  // Unresolved: queue (replacing any previous straggler, BSD style) and ask.
  if (entry.pending != nullptr) {
    pool_.FreeChain(entry.pending);
  }
  entry.pending = datagram;
  entry.resolved = false;
  SendArpRequest(ifindex, next_hop);
}

// ---------------------------------------------------------------------------
// Per-principal accounting plumbing (SoAccounting)
// ---------------------------------------------------------------------------

bool NetStack::AcctChargeRx(BsdSocket* owner, size_t* rx_charged, void** tag,
                            size_t bytes) {
  if (accounting_ == nullptr) {
    return true;
  }
  if (!accounting_->ChargeRx(static_cast<Socket*>(owner), tag, bytes)) {
    ++counters_.rx_quota_shed;
    return false;
  }
  *rx_charged += bytes;
  return true;
}

void NetStack::AcctCreditRx(size_t* rx_charged, void* tag, size_t bytes) {
  if (accounting_ == nullptr || *rx_charged == 0) {
    return;
  }
  size_t n = bytes < *rx_charged ? bytes : *rx_charged;
  *rx_charged -= n;
  accounting_->CreditRx(tag, n);
}

}  // namespace oskit::net
