// The FreeBSD-idiom TCP/IP protocol stack component (paper §3.7).
//
// Internally everything is mbuf chains and BSD conventions: sleep/wakeup on
// wait channels backed by an event hash (§4.7.6), manufactured "current
// process" records (§4.7.5), sockbufs, PCB lists, 200ms/500ms protocol
// timers.  Externally it exposes exactly what the paper's component does:
//
//   * a COM SocketFactory (so the minimal C library's socket() can use it);
//   * a driver binding that exchanges NetIo callbacks with any EtherDev
//     (§5) — packets cross that boundary as opaque BufIo objects;
//   * a native binding used by the "FreeBSD itself" baseline configuration,
//     where the BSD-idiom driver consumes mbuf chains directly with no COM
//     boundary (this is the Table 1 "FreeBSD" row).
//
// Protocols: ARP, IPv4 (with fragmentation/reassembly), ICMP echo, UDP, and
// TCP (3-way handshake, sliding window, RTT estimation with Karn backoff,
// slow start/congestion avoidance, fast retransmit, delayed ACK, the full
// teardown state machine including TIME_WAIT).

#ifndef OSKIT_SRC_NET_STACK_H_
#define OSKIT_SRC_NET_STACK_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/com/etherdev.h"
#include "src/com/netio.h"
#include "src/com/netselector.h"
#include "src/com/socket.h"
#include "src/fault/fault.h"
#include "src/machine/clock.h"
#include "src/net/mbuf.h"
#include "src/net/timer_wheel.h"
#include "src/net/wire_formats.h"
#include "src/sleep/sleep.h"
#include "src/trace/trace.h"

namespace oskit::net {

// ---------------------------------------------------------------------------
// BSD sleep/wakeup emulation (paper §4.7.5 / §4.7.6)
// ---------------------------------------------------------------------------

// The component-wide event hash: "the BSD sleep/wakeup mechanism uses a
// global hash table of events ... in the encapsulated BSD-based OSKit
// components we retain BSD's original event hash table management code;
// however, the hash table is now only used within that particular component"
// — with each sleeping "process" being a record manufactured on the stack of
// the thread of control entering the component (§4.7.5), blocked on an OSKit
// sleep record (§4.7.6).
class BsdSleepWakeup {
 public:
  explicit BsdSleepWakeup(SleepEnv* env,
                          trace::FlightRecorder* recorder = nullptr)
      : env_(env), recorder_(recorder) {}

  // Blocks the calling thread of control on `chan`.
  void Sleep(const void* chan);

  // Wakes every sleeper on `chan`.  Safe from interrupt level.
  void Wakeup(const void* chan);

  trace::Counter& sleeps_counter() { return sleeps_; }
  trace::Counter& wakeups_counter() { return wakeups_; }
  uint64_t sleeps() const { return sleeps_; }
  uint64_t wakeups() const { return wakeups_; }

 private:
  static constexpr size_t kBuckets = 64;

  struct EmulatedProc {
    SleepRecord record;
    const void* chan;
    EmulatedProc* next;
    explicit EmulatedProc(SleepEnv* env) : record(env), chan(nullptr), next(nullptr) {}
  };

  size_t BucketOf(const void* chan) const {
    return (reinterpret_cast<uintptr_t>(chan) >> 4) % kBuckets;
  }

  SleepEnv* env_;
  trace::FlightRecorder* recorder_;
  EmulatedProc* buckets_[kBuckets] = {};
  trace::Counter sleeps_;
  trace::Counter wakeups_;
};

// ---------------------------------------------------------------------------
// Socket buffers (BSD sockbuf)
// ---------------------------------------------------------------------------

struct SockBuf {
  MBuf* head = nullptr;
  MBuf* tail = nullptr;
  size_t cc = 0;      // bytes queued
  size_t hiwat = 0;   // capacity

  size_t Space() const { return cc >= hiwat ? 0 : hiwat - cc; }
};

// ---------------------------------------------------------------------------
// Protocol control blocks
// ---------------------------------------------------------------------------

class NetStack;
class BsdSocket;
class BsdSelector;

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kCloseWait,
  kFinWait1,
  kFinWait2,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* TcpStateName(TcpState s);

struct TcpPcb {
  TcpState state = TcpState::kClosed;
  InetAddr laddr;
  uint16_t lport = 0;
  InetAddr faddr;
  uint16_t fport = 0;

  // Send sequence space.
  uint32_t iss = 0;
  uint32_t snd_una = 0;
  uint32_t snd_nxt = 0;
  uint32_t snd_max = 0;   // highest sequence sent
  uint32_t snd_wnd = 0;   // peer's advertised window
  uint32_t snd_cwnd = 0;
  uint32_t snd_ssthresh = 0;
  uint32_t dup_acks = 0;

  // Receive sequence space.
  uint32_t irs = 0;
  uint32_t rcv_nxt = 0;
  uint32_t rcv_adv = 0;   // highest window edge advertised

  uint16_t mss = 1460;

  // Buffers.
  SockBuf snd;  // unacknowledged + unsent bytes, snd.head starts at snd_una
  SockBuf rcv;  // in-order bytes awaiting the application

  // Reassembly queue for out-of-order segments, sorted by seq.
  struct OooSegment {
    uint32_t seq;
    MBuf* data;  // payload only
  };
  std::list<OooSegment> reass;

  // Timers, in slow-timer ticks (500 ms).  In linear mode the sweeps
  // decrement these fields; in wheel mode the fields are set by the arm
  // helpers and `field != 0` mirrors `handle armed`.
  int rexmt_timer = 0;
  int persist_timer = 0;
  int time_wait_timer = 0;
  int conn_timer = 0;   // SYN / FIN give-up
  int rexmt_shift = 0;  // backoff exponent

  // Wheel-mode timer handles (src/net/timer_wheel.h): intrusive, so a pcb
  // deleted with live timers self-cancels.
  WheelTimer rexmt_wheel;
  WheelTimer persist_wheel;
  WheelTimer conn_wheel;
  WheelTimer time_wait_wheel;
  WheelTimer delack_wheel;

  // RTT estimation (BSD units: srtt scaled by 8, rttvar by 4).
  int srtt = 0;
  int rttvar = 12;  // => initial RTO of 12 ticks (6 s), the BSD default
  int rtt_ticks = -1;      // -1: not timing (linear mode counts up in sweeps)
  uint64_t rtt_start_slow = 0;  // slow tick the timing started (wheel mode)
  uint32_t rtt_seq = 0;    // sequence being timed

  bool delayed_ack = false;
  bool fin_queued = false;     // application closed its write side
  bool fin_sent = false;
  bool peer_fin_seen = false;
  Error so_error = Error::kOk;

  // Listen state.  The SYN queue holds half-open children (SYN_RCVD); on
  // the third handshake step they migrate to the accept queue.  A SYN
  // arriving when syn_queue + accept_queue is at capacity is dropped and
  // counted (net.tcp.listen_overflows).
  std::list<TcpPcb*> accept_queue;
  std::list<TcpPcb*> syn_queue;
  TcpPcb* listener = nullptr;
  int backlog = 0;

  BsdSocket* socket = nullptr;  // null once detached
  bool detached = false;

  // Per-principal accounting (SoAccounting): bytes charged against the
  // owner's mbuf budget that have not been credited back yet, and the
  // accountant's attribution tag.  rx_charged is drained symmetrically by
  // SoRecv and zeroed at TcpCloseDone reaping, so the books always balance.
  size_t rx_charged = 0;
  void* acct_tag = nullptr;

  int RtoTicks() const {
    int rto = (srtt >> 3) + rttvar;
    if (rto < 2) {
      rto = 2;  // 1 s floor, like old BSD
    }
    int shifted = rto << rexmt_shift;
    return shifted > 128 ? 128 : shifted;
  }
};

struct UdpPcb {
  InetAddr laddr;
  uint16_t lport = 0;
  InetAddr faddr;
  uint16_t fport = 0;
  bool connected = false;

  struct Datagram {
    SockAddr from;
    MBuf* data;
  };
  std::list<Datagram> rcv_queue;
  size_t rcv_bytes = 0;
  size_t rcv_hiwat = 64 * 1024;

  BsdSocket* socket = nullptr;
  bool detached = false;

  // Per-principal accounting, as in TcpPcb.
  size_t rx_charged = 0;
  void* acct_tag = nullptr;
};

// ---------------------------------------------------------------------------
// Per-principal accounting hooks (src/secure)
// ---------------------------------------------------------------------------

// Graceful-degradation enforcement points that live BELOW the socket API,
// where a greedy tenant's traffic lands without any COM call to interpose
// on.  The security layer (src/secure) implements this and attributes each
// socket to a principal; the stack stays principal-agnostic.
//
// Attribution uses an opaque per-pcb tag: the first ChargeRx sets *tag from
// the owning socket (the listener's socket for not-yet-accepted children),
// and later charges/credits pass it back — so credits still reach the right
// books after the socket detaches from the pcb.
class SoAccounting {
 public:
  virtual ~SoAccounting() = default;

  // LISTEN SYN admission, consulted after the backlog check.  Returning
  // false sheds the SYN (counted net.tcp.syn_admission_shed): the peer
  // retransmits, so an over-budget tenant's connection storm degrades into
  // slow connects instead of starving other listeners' memory.
  virtual bool AdmitSyn(Socket* listener) = 0;

  // RX delivery: charge `bytes` against the owner before they enter the
  // receive buffer.  Returning false sheds the segment/datagram unACKed
  // (counted net.rx.quota_shed); TCP peers retransmit, so nothing is lost —
  // the tenant is simply flow-controlled at its mbuf budget.
  virtual bool ChargeRx(Socket* owner, void** tag, size_t bytes) = 0;

  // Credits bytes drained by the application (SoRecv/SoRecvFrom) or flushed
  // at connection teardown.  `tag` is whatever ChargeRx stored.
  virtual void CreditRx(void* tag, size_t bytes) = 0;
};

// ---------------------------------------------------------------------------
// Driver bindings
// ---------------------------------------------------------------------------

// Native (non-COM) egress used by the baseline "FreeBSD itself"
// configuration: the driver consumes the mbuf chain directly.
class NativeEtherPort {
 public:
  virtual ~NativeEtherPort() = default;
  virtual EtherAddr mac() const = 0;
  // Takes ownership of `frame` (a complete Ethernet frame as an mbuf chain).
  virtual void Output(MBuf* frame) = 0;
};

// ---------------------------------------------------------------------------
// The stack
// ---------------------------------------------------------------------------

class NetStack {
 public:
  // Per-stack counters, registered with the trace environment's registry
  // under "net." names (net.tcp.retransmits, net.ip.in, ...) so clients,
  // kmon, and the benchmarks all read the same instrumentation.
  struct Counters {
    trace::Counter ip_in;
    trace::Counter ip_out;
    trace::Counter ip_bad_checksum;
    trace::Counter ip_frags_in;
    trace::Counter ip_reassembled;
    trace::Counter ip_frag_out;
    trace::Counter arp_in;
    trace::Counter arp_requests_out;
    trace::Counter icmp_echo_in;
    trace::Counter udp_in;
    trace::Counter udp_out;
    trace::Counter udp_bad_checksum;
    trace::Counter udp_no_port;
    trace::Counter tcp_in;
    trace::Counter tcp_out;
    trace::Counter tcp_bad_checksum;
    trace::Counter tcp_retransmits;
    trace::Counter tcp_fast_retransmits;
    trace::Counter tcp_delayed_acks;
    trace::Counter tcp_rx_batches;        // non-empty NetIoBatch brackets
    trace::Counter tcp_batched_outputs;   // output passes deferred to EndBatch
    trace::Counter tcp_ooo_segments;
    trace::Counter tcp_rst_out;
    trace::Counter rx_glue_copied_bytes;  // forced-copy ablation counter
    trace::Counter tx_copied_bytes;       // bytes memcpy'd into the send buffer
    trace::Counter tx_sendfile_bytes;     // bytes queued zero-copy by SendBufIo
    trace::Counter tx_sendfile_fallback_bytes;  // SendBufIo bytes that copied
    trace::Counter rx_alloc_drops;        // RX import failed: no mbuf memory
    trace::Counter tx_errors;             // egress refused a frame
    trace::Counter tcp_listen_overflows;  // SYNs dropped at a full queue
    trace::Counter tcp_syn_admission_shed;  // SYNs shed by SoAccounting
    trace::Counter rx_quota_shed;         // RX deliveries shed by SoAccounting
    trace::Counter port_exhausted;        // ephemeral allocation failures
    trace::Counter pcb_hash_hits;         // demux resolved by the 4-tuple map
    trace::Counter pcb_hash_misses;       // ... fell through to the bucket walk
    trace::Counter pcb_scan_full;         // linear-mode full PCB list scans
    trace::Counter tcp_established;       // gauge: live ESTABLISHED pcbs
    trace::Counter tcp_established_peak;
    trace::Counter select_adds;           // NetSelector registrations
    trace::Counter select_removes;
    trace::Counter select_notifies;       // readiness notifications delivered
    trace::Counter select_wakeups;        // blocked Wait calls woken
    trace::Counter select_harvested;      // events returned by Wait
    trace::Counter select_registered;     // gauge: live registrations
  };

  // `trace` is the observability environment to report into; null binds the
  // process-global default (the testbed supplies a per-host one).
  NetStack(SleepEnv* sleep_env, SimClock* clock,
           trace::TraceEnv* trace = nullptr);
  ~NetStack();

  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  // ---- Driver binding (§5: oskit_freebsd_net_open_ether_if) ----
  // COM binding: exchanges NetIo endpoints with the device.
  Error OpenEtherIf(EtherDev* dev, int* out_ifindex);
  // Native binding for the baseline configuration.
  Error OpenNativeIf(NativeEtherPort* port, int* out_ifindex);

  // ---- Interface configuration (oskit_freebsd_net_ifconfig) ----
  Error IfConfig(int ifindex, InetAddr addr, InetAddr netmask);
  Error SetDefaultGateway(InetAddr gateway);

  // ---- Socket factory (registered with posix_set_socketcreator) ----
  ComPtr<SocketFactory> CreateSocketFactory();

  // ---- Readiness interface (src/com/netselector.h) ----
  ComPtr<NetSelector> CreateSelector();

  // ---- ICMP echo (ping) ----
  // Blocks until a reply arrives or `timeout_ns` elapses.
  Error Ping(InetAddr dst, SimTime timeout_ns, SimTime* out_rtt_ns);

  const Counters& counters() const { return counters_; }
  Counters& mutable_counters() { return counters_; }  // open implementation (§4.6)
  MbufPool& pool() { return pool_; }
  BsdSleepWakeup& sleep_wakeup() { return sleep_wakeup_; }
  SimClock& clock() { return *clock_; }
  trace::TraceEnv& trace() { return *trace_; }

  // Native-driver ingress: a complete Ethernet frame as an mbuf chain.
  void EtherInputMbuf(int ifindex, MBuf* frame);

  // ---- RX batching (the NetIoBatch bracket, driven by a polled driver) ----
  // Between BeginRxBatch and EndRxBatch, TcpInput defers its per-segment
  // response transmission (ACKs, window-opened sends); EndRxBatch runs one
  // TcpOutput pass per touched connection, so a poll burst costs one
  // delayed-ACK/scheduling pass instead of one per frame.
  void BeginRxBatch();
  void EndRxBatch();

  // Default socket buffer size (ttcp-era BSD default).
  static constexpr size_t kDefaultBufSize = 32 * 1024;

  // New connections size snd/rcv buffers from this (default above; capped
  // by the 16-bit advertised window — there is no window scaling here).
  // Mitigated-RX configurations raise it: coalescing parks up to ~1 ms of
  // traffic per batch, and at 100 Mbps the bandwidth-delay product across
  // that holdoff needs a deeper window to keep the wire full.
  void SetDefaultSockBuf(size_t bytes) { default_sock_buf_ = bytes; }
  size_t default_sock_buf() const { return default_sock_buf_; }

  // Ablation hook: when set, the COM receive path copies foreign packets
  // instead of mapping them (disables the §4.7.3 zero-copy import).
  void SetForceRxCopy(bool force) { force_rx_copy_ = force; }
  bool force_rx_copy() const { return force_rx_copy_; }

  // Ablation hook: when set, outbound packets are wrapped without the
  // scatter-gather interface, so the driver glue flattens multi-mbuf
  // segments through its Read() copy path — the pre-BufIoVec behaviour the
  // original Table 1 measured.
  void SetForceTxFlatten(bool force) { force_tx_flatten_ = force; }
  bool force_tx_flatten() const { return force_tx_flatten_; }

  // Fault-injection environment: null rebinds the process-global default.
  // Probed at the RX mbuf-import boundary ("mbuf.rx_alloc").
  void SetFaultEnv(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

  // Per-principal accounting hooks (src/secure).  Null (the default) makes
  // every admission/charge a no-op.  The accountant must outlive the stack's
  // connections; install before serving multi-tenant traffic.
  void SetAccounting(SoAccounting* acct) { accounting_ = acct; }
  SoAccounting* accounting() const { return accounting_; }

  // Ablation hook: revert TCP demux to the original full-list PCB scans and
  // connection timers to the BSD fast/slow field sweeps.  Default is the
  // O(1) internals (4-tuple hash + hierarchical timer wheel).  Flip only
  // while the stack has no TCP connections.
  void SetLinearTcpInternals(bool linear) { linear_internals_ = linear; }
  bool linear_tcp_internals() const { return linear_internals_; }

  const TimerWheel& timer_wheel() const { return wheel_; }

  // kmon `netstat`: dumps PCB tables, listen queues, and selector
  // registrations, one formatted line per emit() call.
  void Netstat(const std::function<void(const char*)>& emit);

 private:
  friend class BsdSocket;
  friend class BsdSelector;
  friend class StackRecvNetIo;

  struct Iface {
    bool native = false;
    ComPtr<EtherDev> dev;
    ComPtr<NetIo> tx;           // COM path
    NativeEtherPort* port = nullptr;  // native path
    EtherAddr mac;
    InetAddr addr;
    InetAddr netmask;
    bool configured = false;
  };

  struct ArpEntry {
    EtherAddr mac;
    bool resolved = false;
    SimTime expires = 0;
    MBuf* pending = nullptr;  // one packet waiting on resolution
    uint16_t pending_type = 0;
  };

  struct FragKey {
    uint32_t src;
    uint32_t dst;
    uint16_t ident;
    uint8_t proto;
    friend bool operator<(const FragKey& a, const FragKey& b) {
      if (a.src != b.src) return a.src < b.src;
      if (a.dst != b.dst) return a.dst < b.dst;
      if (a.ident != b.ident) return a.ident < b.ident;
      return a.proto < b.proto;
    }
  };

  struct FragQueue {
    std::vector<uint8_t> data;
    std::vector<bool> have;
    size_t total_len = 0;  // 0 until the last fragment arrives
    size_t bytes_have = 0;
    SimTime deadline = 0;
  };

  struct PendingEcho {
    uint16_t ident;
    uint16_t seq;
    bool done = false;
    bool timed_out = false;
    SimTime sent_at = 0;
    SimTime rtt = 0;
  };

  // ---- link layer ----
  void EtherInput(int ifindex, MBuf* frame);
  // Frames the payload and hands it to the interface.  A refused frame is
  // counted into tx_errors and surfaced to the caller; most callers may
  // ignore it (TCP retransmits, ARP re-requests) but nothing fails silently.
  Error EtherOutput(int ifindex, const EtherAddr& dst, uint16_t type, MBuf* payload);
  void ArpInput(int ifindex, MBuf* packet);
  void SendArpRequest(int ifindex, InetAddr target);
  // Resolves and transmits, or queues on the ARP entry.
  void IpSendViaIface(int ifindex, InetAddr next_hop, MBuf* datagram);

  // ---- IP ----
  void IpInput(int ifindex, MBuf* packet);
  Error IpOutput(uint8_t proto, InetAddr src, InetAddr dst, MBuf* payload);
  int RouteFor(InetAddr dst, InetAddr* out_next_hop);
  void FragTimeoutSweep();

  // ---- ICMP ----
  void IcmpInput(int ifindex, const Ipv4Header& ip, MBuf* payload);

  // ---- UDP ----
  void UdpInput(const Ipv4Header& ip, MBuf* payload);
  Error UdpOutput(UdpPcb* pcb, const SockAddr& to, MBuf* payload);
  UdpPcb* UdpLookup(InetAddr dst, uint16_t dport);

  // ---- TCP ----
  void TcpInput(const Ipv4Header& ip, MBuf* payload);
  // Sends what the window allows from pcb's send buffer; `force` emits an
  // otherwise-empty ACK.
  void TcpOutput(TcpPcb* pcb, bool force_ack);
  void TcpSendSegment(TcpPcb* pcb, uint32_t seq, uint8_t flags, const MBuf* data_src,
                      size_t data_off, size_t data_len, bool with_mss);
  void TcpSendRst(const Ipv4Header& ip, const TcpHeader& th, size_t payload_len);
  void TcpSlowTimo();
  void TcpFastTimo();
  void TcpRexmtExpired(TcpPcb* pcb);
  void TcpSetState(TcpPcb* pcb, TcpState next);
  void TcpDrop(TcpPcb* pcb, Error err, bool announce = true);
  void TcpCloseDone(TcpPcb* pcb);  // reaches CLOSED: free or hand to socket
  void TcpProcessAck(TcpPcb* pcb, const TcpHeader& th);
  void TcpReassemble(TcpPcb* pcb, uint32_t seq, MBuf* data);
  void TcpAppendRcv(TcpPcb* pcb, MBuf* data);
  void TcpUpdateRtt(TcpPcb* pcb, int rtt_ticks);
  uint32_t TcpReceiveWindow(const TcpPcb* pcb) const;
  TcpPcb* TcpLookup(InetAddr src, uint16_t sport, InetAddr dst, uint16_t dport);
  uint16_t AllocEphemeralPort(bool tcp);
  uint32_t NextIss();

  // ---- PCB lookup indices ----
  // Maintained in BOTH modes (so the ablation flag can flip between runs);
  // only the demux path consults them in hash mode.  A pcb is indexed iff
  // its lport is nonzero; the 4-tuple map additionally requires a foreign
  // endpoint.
  struct TcpKey {
    uint32_t laddr;
    uint32_t faddr;
    uint32_t ports;  // lport << 16 | fport
    friend bool operator==(const TcpKey&, const TcpKey&) = default;
  };
  struct TcpKeyHash {
    size_t operator()(const TcpKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.laddr) << 32) | k.faddr;
      h ^= static_cast<uint64_t>(k.ports) * 0x9e3779b97f4a7c15ull;
      h ^= h >> 29;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 32;
      return static_cast<size_t>(h);
    }
  };
  static TcpKey MakeTcpKey(InetAddr laddr, uint16_t lport, InetAddr faddr,
                           uint16_t fport) {
    return TcpKey{laddr.value, faddr.value,
                  (static_cast<uint32_t>(lport) << 16) | fport};
  }
  void TcpIndexInsert(TcpPcb* pcb);
  void TcpIndexRemove(TcpPcb* pcb);
  void UdpIndexInsert(UdpPcb* pcb);
  void UdpIndexRemove(UdpPcb* pcb);

  // ---- connection timer plumbing ----
  // The helpers keep the legacy int fields and the wheel handles in sync:
  // linear mode writes only the fields (the sweeps do the rest), wheel mode
  // additionally arms/cancels the per-pcb handle at the exact slow/fast
  // boundary the sweep would have hit.
  void TcpBindWheelTimers(TcpPcb* pcb);
  void TcpArmRexmt(TcpPcb* pcb, int ticks);
  void TcpCancelRexmt(TcpPcb* pcb);
  void TcpArmPersist(TcpPcb* pcb, int ticks);
  void TcpCancelPersist(TcpPcb* pcb);
  void TcpArmConn(TcpPcb* pcb, int ticks);
  void TcpCancelConn(TcpPcb* pcb);
  void TcpArmTimeWait(TcpPcb* pcb, int ticks);
  void TcpCancelAllTimers(TcpPcb* pcb);
  void TcpSetDelayedAck(TcpPcb* pcb);
  void TcpPersistExpired(TcpPcb* pcb);
  void TcpRttStart(TcpPcb* pcb);
  int TcpRttElapsed(const TcpPcb* pcb) const;
  // Slow (500 ms) / fast (200 ms) tick counts since stack construction.
  uint64_t CurSlowTick() const;
  uint64_t CurFastTick() const;
  void WheelArmSlow(WheelTimer* timer, int slow_ticks);

  // ---- readiness plumbing (src/net/selector.cc) ----
  uint32_t SoReadiness(BsdSocket* so);
  void SoNotify(BsdSocket* so);

  // ---- sockbuf helpers ----
  void SbAppend(SockBuf* sb, MBuf* chain);
  // Moves up to `len` bytes out of `sb` into `dst`; returns bytes moved.
  size_t SbCopyOut(SockBuf* sb, void* dst, size_t len);
  void SbDrop(SockBuf* sb, size_t len);
  void SbFlush(SockBuf* sb);

  // ---- socket-layer entry points (called by BsdSocket) ----
  Error SoBind(BsdSocket* so, const SockAddr& addr);
  Error SoConnect(BsdSocket* so, const SockAddr& addr);
  Error SoListen(BsdSocket* so, int backlog);
  Error SoAccept(BsdSocket* so, SockAddr* out_peer, TcpPcb** out_pcb);
  Error SoSend(BsdSocket* so, const void* buf, size_t len, size_t* out_actual);
  Error SoSendBufIo(BsdSocket* so, BufIoVec* src, off_t64 offset, size_t amount,
                    size_t* out_actual);
  Error SoRecv(BsdSocket* so, void* buf, size_t len, size_t* out_actual);
  Error SoSendTo(BsdSocket* so, const void* buf, size_t len, const SockAddr& to,
                 size_t* out_actual);
  Error SoRecvFrom(BsdSocket* so, void* buf, size_t len, SockAddr* out_from,
                   size_t* out_actual);
  Error SoShutdown(BsdSocket* so, SockShutdown how);
  Error SoAcceptBatch(BsdSocket* so, SockAddr* out_peers, Socket** out_sockets,
                      size_t capacity, size_t* out_count);
  void SoDetach(BsdSocket* so);  // socket released: orderly close, disown pcb
  void SoShutdownPcb(TcpPcb* pcb);  // FIN-queue a pcb directly

  void StartTimers();
  void ScheduleFastTimer();
  void ScheduleSlowTimer();
  void ScheduleWheelTick();

  SleepEnv* sleep_env_;
  SimClock* clock_;
  trace::TraceEnv* trace_;
  MbufPool pool_;
  BsdSleepWakeup sleep_wakeup_;
  Counters counters_;
  trace::CounterBlock trace_binding_;

  std::vector<Iface> ifaces_;
  InetAddr gateway_;
  std::map<uint32_t, ArpEntry> arp_;
  std::map<FragKey, FragQueue> frags_;
  uint16_t ip_ident_ = 1;
  uint32_t iss_counter_ = 0x1000;
  uint16_t next_ephemeral_ = 49152;
  uint16_t icmp_ident_ = 1;
  std::list<PendingEcho> pending_echoes_;

  bool linear_internals_ = false;
  SimTime epoch_ = 0;  // clock value at construction; tick counts are relative
  // Declared before the PCB lists: members destroy in reverse order, so the
  // pcbs' intrusive WheelTimers self-cancel against a live wheel.
  TimerWheel wheel_;

  std::list<std::unique_ptr<TcpPcb>> tcp_pcbs_;
  std::list<std::unique_ptr<UdpPcb>> udp_pcbs_;

  // Demux indices (see "PCB lookup indices" above).
  std::unordered_map<TcpKey, TcpPcb*, TcpKeyHash> tcp_conn_;
  std::unordered_map<uint16_t, std::vector<TcpPcb*>> tcp_by_lport_;
  // Listeners only, by port: keeps the SYN path O(1) instead of walking a
  // lport bucket that also holds every accepted child of that listener.
  std::unordered_map<uint16_t, std::vector<TcpPcb*>> tcp_listeners_;
  std::unordered_map<uint16_t, std::vector<UdpPcb*>> udp_by_lport_;

  // Live selectors (weak; each unregisters itself in its destructor).
  std::vector<BsdSelector*> selectors_;

  // Connections touched while an RX batch is open, with the strongest
  // force_ack seen; flushed (after a liveness check against tcp_pcbs_ —
  // input inside the batch may have freed a pcb) by EndRxBatch.
  void RxBatchDefer(TcpPcb* pcb, bool force_ack);
  struct RxBatchEntry {
    TcpPcb* pcb;
    bool force_ack;
  };
  bool rx_batch_active_ = false;
  std::vector<RxBatchEntry> rx_batch_;

  // RX-charge helper shared by TCP and UDP delivery: resolves the owner
  // socket, consults accounting_, and books into the pcb fields.  Returns
  // false when the delivery must be shed.
  bool AcctChargeRx(BsdSocket* owner, size_t* rx_charged, void** tag,
                    size_t bytes);
  // Credits up to `bytes` of the pcb's outstanding RX charge.
  void AcctCreditRx(size_t* rx_charged, void* tag, size_t bytes);

  SoAccounting* accounting_ = nullptr;
  bool force_rx_copy_ = false;
  bool force_tx_flatten_ = false;
  size_t default_sock_buf_ = kDefaultBufSize;
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
  SimClock::EventId fast_timer_ = SimClock::kInvalidEvent;
  SimClock::EventId slow_timer_ = SimClock::kInvalidEvent;
  SimClock::EventId wheel_timer_ = SimClock::kInvalidEvent;
  bool shutting_down_ = false;
};

// ---------------------------------------------------------------------------
// The COM socket object
// ---------------------------------------------------------------------------

class BsdSocket final : public Socket,
                        public SocketExt,
                        public SocketZeroCopy,
                        public RefCounted<BsdSocket> {
 public:
  BsdSocket(NetStack* stack, SockType type);
  // Adopts an already-connected pcb (batch accept): no fresh pcb is built.
  BsdSocket(NetStack* stack, TcpPcb* adopt);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override;

  // Socket
  Error Bind(const SockAddr& addr) override;
  Error Connect(const SockAddr& addr) override;
  Error Listen(int backlog) override;
  Error Accept(SockAddr* out_peer, Socket** out_socket) override;
  Error Send(const void* buf, size_t amount, size_t* out_actual) override;
  Error Recv(void* buf, size_t amount, size_t* out_actual) override;
  Error SendTo(const void* buf, size_t amount, const SockAddr& to,
               size_t* out_actual) override;
  Error RecvFrom(void* buf, size_t amount, SockAddr* out_from,
                 size_t* out_actual) override;
  Error Shutdown(SockShutdown how) override;
  Error GetSockName(SockAddr* out_addr) override;
  Error GetPeerName(SockAddr* out_addr) override;

  // SocketExt
  Error SetNonBlocking(bool on) override;
  Error AcceptBatch(SockAddr* out_peers, Socket** out_sockets, size_t capacity,
                    size_t* out_count) override;

  // SocketZeroCopy
  Error SendBufIo(BufIoVec* src, off_t64 offset, size_t amount,
                  size_t* out_actual) override;

  SockType type() const { return type_; }
  TcpPcb* tcp() { return tcp_; }
  UdpPcb* udp() { return udp_; }
  bool nonblocking() const { return nonblocking_; }

 private:
  friend class NetStack;
  friend class BsdSelector;
  friend class RefCounted<BsdSocket>;
  ~BsdSocket();

  NetStack* stack_;
  SockType type_;
  TcpPcb* tcp_ = nullptr;
  UdpPcb* udp_ = nullptr;
  bool nonblocking_ = false;
  BsdSelector* selector_ = nullptr;  // the selector this socket is added to
};

}  // namespace oskit::net

#endif  // OSKIT_SRC_NET_STACK_H_
