// TCP: connection state machine, sliding-window transmission with
// congestion control, RTT estimation, retransmission, reassembly, and the
// BSD-style 200ms/500ms timer processing.

#include <cstring>

#include "src/base/checksum.h"
#include "src/base/panic.h"
#include "src/net/stack.h"

namespace oskit::net {

namespace {

constexpr int kMaxRexmtShift = 12;
constexpr int kTimeWaitTicks = 8;        // 2*MSL at 500 ms/tick (shortened MSL)
constexpr int kConnTimeoutTicks = 60;    // 30 s to establish
constexpr uint32_t kMaxWindow = 65535;

}  // namespace

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

uint16_t NetStack::AllocEphemeralPort(bool tcp) {
  // O(1) per candidate: the rotating hint plus a hash-bucket probe replaces
  // the old full-PCB-list scan per try.  The rotation order (and therefore
  // the ports handed out) is unchanged.
  for (int tries = 0; tries < 16384; ++tries) {
    uint16_t port = next_ephemeral_++;
    if (next_ephemeral_ == 0) {
      next_ephemeral_ = 49152;
    }
    if (port < 49152) {
      continue;
    }
    bool taken = tcp ? tcp_by_lport_.count(port) != 0
                     : udp_by_lport_.count(port) != 0;
    if (!taken) {
      return port;
    }
  }
  // Port space exhausted: a resource failure the socket layer surfaces as
  // kNoBufs, not a reason to bring the kernel down.
  ++counters_.port_exhausted;
  return 0;
}

// ---------------------------------------------------------------------------
// PCB lookup indices
// ---------------------------------------------------------------------------

void NetStack::TcpIndexInsert(TcpPcb* pcb) {
  if (pcb->lport == 0) {
    return;
  }
  tcp_by_lport_[pcb->lport].push_back(pcb);
  if (pcb->fport != 0 || pcb->faddr.value != 0) {
    // First insert wins on a key collision, mirroring the linear scan's
    // first-match rule; the shadowed pcb is still reachable through the
    // lport bucket fallback.
    tcp_conn_.emplace(MakeTcpKey(pcb->laddr, pcb->lport, pcb->faddr, pcb->fport),
                      pcb);
  }
}

void NetStack::TcpIndexRemove(TcpPcb* pcb) {
  if (pcb->lport == 0) {
    return;
  }
  auto bucket = tcp_by_lport_.find(pcb->lport);
  if (bucket != tcp_by_lport_.end()) {
    auto& vec = bucket->second;
    for (auto it = vec.begin(); it != vec.end(); ++it) {
      if (*it == pcb) {
        vec.erase(it);
        break;
      }
    }
    if (vec.empty()) {
      tcp_by_lport_.erase(bucket);  // keep count() meaning "port in use"
    }
  }
  auto conn = tcp_conn_.find(
      MakeTcpKey(pcb->laddr, pcb->lport, pcb->faddr, pcb->fport));
  if (conn != tcp_conn_.end() && conn->second == pcb) {
    tcp_conn_.erase(conn);
  }
  auto lis = tcp_listeners_.find(pcb->lport);
  if (lis != tcp_listeners_.end()) {
    auto& vec = lis->second;
    for (auto it = vec.begin(); it != vec.end(); ++it) {
      if (*it == pcb) {
        vec.erase(it);
        break;
      }
    }
    if (vec.empty()) {
      tcp_listeners_.erase(lis);
    }
  }
}

uint32_t NetStack::NextIss() {
  iss_counter_ += 64000;
  return iss_counter_;
}

TcpPcb* NetStack::TcpLookup(InetAddr src, uint16_t sport, InetAddr dst,
                            uint16_t dport) {
  if (linear_internals_) {
    // Ablation baseline: the original 4.4BSD full PCB-list scan.
    ++counters_.pcb_scan_full;
    TcpPcb* listener = nullptr;
    for (auto& pcb : tcp_pcbs_) {
      if (pcb->lport != dport) {
        continue;
      }
      if (pcb->state == TcpState::kListen) {
        if (pcb->laddr.IsAny() || pcb->laddr == dst) {
          listener = pcb.get();
        }
        continue;
      }
      if (pcb->faddr == src && pcb->fport == sport &&
          (pcb->laddr == dst || pcb->laddr.IsAny())) {
        return pcb.get();
      }
    }
    return listener;
  }
  // Exact 4-tuple hit first: the established-connection hot path.
  auto conn = tcp_conn_.find(MakeTcpKey(dst, dport, src, sport));
  if (conn != tcp_conn_.end() && conn->second->state != TcpState::kListen) {
    ++counters_.pcb_hash_hits;
    return conn->second;
  }
  ++counters_.pcb_hash_misses;
  // A miss is almost always a SYN (or a stray segment) for a listening
  // port: resolve it through the listeners-only index, which is O(listeners
  // on that port), NOT O(connections sharing it) like the lport bucket —
  // the server's port bucket holds every accepted child.  The last-matching
  // listener tie-break matches the linear scan's.
  TcpPcb* listener = nullptr;
  auto lis = tcp_listeners_.find(dport);
  if (lis != tcp_listeners_.end()) {
    for (TcpPcb* pcb : lis->second) {
      if (pcb->laddr.IsAny() || pcb->laddr == dst) {
        listener = pcb;
      }
    }
  }
  if (listener != nullptr) {
    return listener;
  }
  // No listener either: defensive full bucket walk for pcbs the exact map
  // cannot see (a wildcard-bound connection, or one shadowed by a key
  // collision).  Neither arises by construction — connect and accept both
  // pin laddr before indexing, and the ephemeral allocator never reissues a
  // port with any live pcb — so this is a correctness backstop, and the
  // bucket it scans (a client-side ephemeral port) holds one or two pcbs.
  auto bucket = tcp_by_lport_.find(dport);
  if (bucket != tcp_by_lport_.end()) {
    for (TcpPcb* pcb : bucket->second) {
      if (pcb->state == TcpState::kListen) {
        continue;
      }
      if (pcb->faddr == src && pcb->fport == sport &&
          (pcb->laddr == dst || pcb->laddr.IsAny())) {
        return pcb;
      }
    }
  }
  return nullptr;
}

uint32_t NetStack::TcpReceiveWindow(const TcpPcb* pcb) const {
  size_t space = pcb->rcv.Space();
  return space > kMaxWindow ? kMaxWindow : static_cast<uint32_t>(space);
}

void NetStack::TcpSetState(TcpPcb* pcb, TcpState next) {
  // The ESTABLISHED gauge (and its high-water mark) is what the C10k bench
  // reads for "concurrently open connections".  Every transition into or
  // out of kEstablished funnels through here.
  if (next == TcpState::kEstablished && pcb->state != TcpState::kEstablished) {
    ++counters_.tcp_established;
    if (counters_.tcp_established.value() >
        counters_.tcp_established_peak.value()) {
      counters_.tcp_established_peak.Set(counters_.tcp_established.value());
    }
  } else if (pcb->state == TcpState::kEstablished &&
             next != TcpState::kEstablished) {
    counters_.tcp_established -= 1;
  }
  pcb->state = next;
  if (next == TcpState::kTimeWait) {
    TcpArmTimeWait(pcb, kTimeWaitTicks);
    TcpCancelRexmt(pcb);
    TcpCancelPersist(pcb);
  }
  // State changes are interesting to both directions of any blocked caller.
  sleep_wakeup_.Wakeup(&pcb->rcv);
  sleep_wakeup_.Wakeup(&pcb->snd);
  SoNotify(pcb->socket);
}

// ---------------------------------------------------------------------------
// Segment transmission
// ---------------------------------------------------------------------------

void NetStack::TcpSendSegment(TcpPcb* pcb, uint32_t seq, uint8_t flags,
                              const MBuf* data_src, size_t data_off, size_t data_len,
                              bool with_mss) {
  size_t header_len = with_mss ? kTcpHeaderSize + 4 : kTcpHeaderSize;
  MBuf* segment;
  if (data_len > 0) {
    // Reference the send buffer's storage rather than copying it: this is
    // why outgoing BSD packets are discontiguous chains (§5) — a header
    // mbuf followed by cluster references.  Prepend allocates the header
    // mbuf with maximal headroom, so the IP and Ethernet headers prepended
    // below it land in this same reserved leading mbuf and the chain's
    // shape never changes on the way to the driver — the contract the
    // scatter-gather transmit path relies on.
    segment = pool_.CopyChain(data_src, data_off, data_len);
    segment = pool_.Prepend(segment, header_len);
  } else {
    segment = pool_.GetHeaderAligned(header_len);
  }

  TcpHeader th;
  th.src_port = pcb->lport;
  th.dst_port = pcb->fport;
  th.seq = seq;
  th.ack = (flags & kTcpFlagAck) != 0 ? pcb->rcv_nxt : 0;
  th.flags = flags;
  uint32_t wnd = TcpReceiveWindow(pcb);
  th.window = static_cast<uint16_t>(wnd);
  th.mss_option = pcb->mss;
  th.Serialize(segment->data, with_mss);
  if ((flags & kTcpFlagAck) != 0) {
    uint32_t adv = pcb->rcv_nxt + wnd;
    if (SeqGt(adv, pcb->rcv_adv)) {
      pcb->rcv_adv = adv;
    }
  }

  // Checksum: pseudo-header plus the whole segment chain.
  InetChecksum cksum;
  uint8_t pseudo[12];
  StoreBe32(pseudo, pcb->laddr.value);
  StoreBe32(pseudo + 4, pcb->faddr.value);
  pseudo[8] = 0;
  pseudo[9] = kIpProtoTcp;
  StoreBe16(pseudo + 10, static_cast<uint16_t>(segment->pkt_len));
  cksum.Add(pseudo, sizeof(pseudo));
  for (const MBuf* m = segment; m != nullptr; m = m->next) {
    cksum.Add(m->data, m->len);
  }
  StoreBe16(segment->data + 16, cksum.Finish());

  ++counters_.tcp_out;
  pcb->delayed_ack = false;
  IpOutput(kIpProtoTcp, pcb->laddr, pcb->faddr, segment);
}

void NetStack::TcpSendRst(const Ipv4Header& ip, const TcpHeader& th,
                          size_t payload_len) {
  if ((th.flags & kTcpFlagRst) != 0) {
    return;  // never answer a RST with a RST
  }
  ++counters_.tcp_rst_out;
  MBuf* segment = pool_.GetHeaderAligned(kTcpHeaderSize);
  TcpHeader rst;
  rst.src_port = th.dst_port;
  rst.dst_port = th.src_port;
  if ((th.flags & kTcpFlagAck) != 0) {
    rst.seq = th.ack;
    rst.flags = kTcpFlagRst;
  } else {
    rst.seq = 0;
    uint32_t seg_len = static_cast<uint32_t>(payload_len) +
                       ((th.flags & kTcpFlagSyn) != 0 ? 1 : 0) +
                       ((th.flags & kTcpFlagFin) != 0 ? 1 : 0);
    rst.ack = th.seq + seg_len;
    rst.flags = kTcpFlagRst | kTcpFlagAck;
  }
  rst.Serialize(segment->data);

  InetChecksum cksum;
  uint8_t pseudo[12];
  StoreBe32(pseudo, ip.dst.value);
  StoreBe32(pseudo + 4, ip.src.value);
  pseudo[8] = 0;
  pseudo[9] = kIpProtoTcp;
  StoreBe16(pseudo + 10, kTcpHeaderSize);
  cksum.Add(pseudo, sizeof(pseudo));
  cksum.Add(segment->data, kTcpHeaderSize);
  StoreBe16(segment->data + 16, cksum.Finish());
  IpOutput(kIpProtoTcp, ip.dst, ip.src, segment);
}

void NetStack::TcpOutput(TcpPcb* pcb, bool force_ack) {
  bool sent_something = false;
  for (;;) {
    if (pcb->state == TcpState::kSynSent || pcb->state == TcpState::kListen ||
        pcb->state == TcpState::kClosed) {
      break;
    }
    uint32_t off = pcb->snd_nxt - pcb->snd_una;
    uint32_t wnd = pcb->snd_wnd < pcb->snd_cwnd ? pcb->snd_wnd : pcb->snd_cwnd;
    uint32_t in_buf = static_cast<uint32_t>(pcb->snd.cc);
    uint32_t available = off < in_buf ? in_buf - off : 0;
    uint32_t usable = wnd > off ? wnd - off : 0;
    uint32_t len = available < usable ? available : usable;
    if (len > pcb->mss) {
      len = pcb->mss;
    }

    bool send_fin = pcb->fin_queued && off + len == in_buf &&
                    SeqLeq(pcb->snd_nxt + len, pcb->snd_una + in_buf + 1) &&
                    !pcb->fin_sent;
    // The FIN consumes sequence space; only send it when the window allows
    // at least the FIN itself.
    if (send_fin && len == available && usable < len + 1 && in_buf != 0 && usable == len) {
      // Window exactly full of data: FIN goes in a later segment.
      send_fin = usable > len;
    }

    if (len == 0 && !send_fin && !force_ack && !pcb->delayed_ack) {
      break;
    }
    if (len == 0 && !send_fin && available > 0 && usable == 0 && !force_ack) {
      // Zero window: let the persist timer probe.
      if (pcb->persist_timer == 0) {
        TcpArmPersist(pcb, pcb->RtoTicks());
      }
      break;
    }

    uint8_t flags = kTcpFlagAck;
    if (send_fin) {
      flags |= kTcpFlagFin;
    }
    if (len > 0 && off + len == available) {
      flags |= kTcpFlagPsh;
    }

    // Time this transmission for RTT estimation when nothing is timed.
    if (len > 0 && pcb->rtt_ticks < 0) {
      TcpRttStart(pcb);
    }

    TcpSendSegment(pcb, pcb->snd_nxt, flags, pcb->snd.head, off, len, false);
    sent_something = true;
    pcb->snd_nxt += len;
    if (send_fin) {
      pcb->fin_sent = true;
      pcb->snd_nxt += 1;
    }
    if (SeqGt(pcb->snd_nxt, pcb->snd_max)) {
      pcb->snd_max = pcb->snd_nxt;
    }
    // Anything outstanding needs the retransmit timer.
    if (pcb->rexmt_timer == 0 && pcb->snd_nxt != pcb->snd_una) {
      TcpArmRexmt(pcb, pcb->RtoTicks());
    }
    force_ack = false;
    if (len == 0 && !send_fin) {
      break;  // pure ACK sent; nothing more to push
    }
    if (send_fin) {
      break;
    }
  }
  (void)sent_something;
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

void NetStack::TcpUpdateRtt(TcpPcb* pcb, int rtt) {
  // Van Jacobson smoothing in BSD fixed point: srtt scaled 8x, rttvar 4x.
  if (pcb->srtt != 0) {
    int delta = rtt - 1 - (pcb->srtt >> 3);
    pcb->srtt += delta;
    if (pcb->srtt <= 0) {
      pcb->srtt = 1;
    }
    if (delta < 0) {
      delta = -delta;
    }
    delta -= pcb->rttvar >> 2;
    pcb->rttvar += delta;
    if (pcb->rttvar <= 0) {
      pcb->rttvar = 1;
    }
  } else {
    pcb->srtt = rtt << 3;
    pcb->rttvar = rtt << 1;
  }
  pcb->rtt_ticks = -1;
  pcb->rexmt_shift = 0;
}

void NetStack::TcpProcessAck(TcpPcb* pcb, const TcpHeader& th) {
  uint32_t ack = th.ack;
  if (SeqLeq(ack, pcb->snd_una)) {
    return;  // duplicate/old ACK: handled by the caller's dupack logic
  }
  if (SeqGt(ack, pcb->snd_max)) {
    TcpOutput(pcb, /*force_ack=*/true);  // ack of unsent data
    return;
  }
  uint32_t acked = ack - pcb->snd_una;

  // RTT sample when the timed sequence is covered (Karn: only if never
  // retransmitted, which rexmt_shift == 0 approximates).
  if (pcb->rtt_ticks >= 0 && SeqGt(ack, pcb->rtt_seq) && pcb->rexmt_shift == 0) {
    TcpUpdateRtt(pcb, TcpRttElapsed(pcb));
  }

  // Congestion window growth.
  if (pcb->snd_cwnd < pcb->snd_ssthresh) {
    pcb->snd_cwnd += pcb->mss;  // slow start
  } else {
    uint32_t incr = static_cast<uint32_t>(pcb->mss) * pcb->mss / pcb->snd_cwnd;
    pcb->snd_cwnd += incr > 0 ? incr : 1;  // congestion avoidance
  }
  if (pcb->snd_cwnd > kMaxWindow) {
    pcb->snd_cwnd = kMaxWindow;
  }

  // Drop acknowledged bytes from the send buffer (the FIN and SYN occupy
  // sequence space beyond the buffer).
  uint32_t buf_acked = acked;
  if (buf_acked > pcb->snd.cc) {
    buf_acked = static_cast<uint32_t>(pcb->snd.cc);
  }
  if (buf_acked > 0) {
    SbDrop(&pcb->snd, buf_acked);
  }
  pcb->snd_una = ack;
  if (SeqLt(pcb->snd_nxt, pcb->snd_una)) {
    pcb->snd_nxt = pcb->snd_una;
  }
  pcb->dup_acks = 0;

  // Retransmit timer: restart while data is outstanding.
  if (pcb->snd_una == pcb->snd_max) {
    TcpCancelRexmt(pcb);
  } else {
    TcpArmRexmt(pcb, pcb->RtoTicks());
  }

  sleep_wakeup_.Wakeup(&pcb->snd);
  SoNotify(pcb->socket);
}

void NetStack::TcpAppendRcv(TcpPcb* pcb, MBuf* data) {
  size_t len = MbufPool::ChainLength(data);
  data->pkt_len = static_cast<uint32_t>(len);
  SbAppend(&pcb->rcv, data);
  pcb->rcv_nxt += static_cast<uint32_t>(len);
}

void NetStack::TcpReassemble(TcpPcb* pcb, uint32_t seq, MBuf* data) {
  size_t len = MbufPool::ChainLength(data);
  if (len == 0) {
    pool_.FreeChain(data);
    return;
  }
  if (seq == pcb->rcv_nxt) {
    TcpAppendRcv(pcb, data);
    // Pull any now-contiguous queued segments across.  Bytes discarded or
    // trimmed here were charged to the owner's principal at admission, so
    // every drop must credit them back — otherwise overlapping retransmits
    // ratchet the quota books up until the tenant is wedged at its budget.
    for (auto it = pcb->reass.begin(); it != pcb->reass.end();) {
      uint32_t q_seq = it->seq;
      size_t q_len = MbufPool::ChainLength(it->data);
      if (SeqGt(q_seq, pcb->rcv_nxt)) {
        break;  // still a hole
      }
      if (SeqLeq(q_seq + static_cast<uint32_t>(q_len), pcb->rcv_nxt)) {
        pool_.FreeChain(it->data);  // wholly duplicate
        AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, q_len);
        it = pcb->reass.erase(it);
        continue;
      }
      // Trim overlap, then append.
      uint32_t drop = pcb->rcv_nxt - q_seq;
      MBuf* rest = pool_.TrimFront(it->data, drop);
      AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, drop);
      TcpAppendRcv(pcb, rest);
      it = pcb->reass.erase(it);
    }
    sleep_wakeup_.Wakeup(&pcb->rcv);
    SoNotify(pcb->socket);
    return;
  }
  // Out of order: insert sorted (drop exact duplicates, crediting the
  // admission charge the dropped copy carried).
  ++counters_.tcp_ooo_segments;
  auto it = pcb->reass.begin();
  while (it != pcb->reass.end() && SeqLt(it->seq, seq)) {
    ++it;
  }
  if (it != pcb->reass.end() && it->seq == seq &&
      MbufPool::ChainLength(it->data) >= len) {
    pool_.FreeChain(data);
    AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, len);
    return;
  }
  pcb->reass.insert(it, TcpPcb::OooSegment{seq, data});
}

void NetStack::TcpInput(const Ipv4Header& ip, MBuf* payload) {
  ++counters_.tcp_in;
  size_t seg_total = payload->pkt_len;
  payload = pool_.Pullup(payload, kTcpHeaderSize);
  if (payload == nullptr) {
    return;
  }
  TcpHeader th;
  if (!TcpHeader::Parse(payload->data, payload->len, &th) || th.data_off > seg_total) {
    pool_.FreeChain(payload);
    return;
  }
  // Options may extend past what Pullup gave us.
  payload = pool_.Pullup(payload, th.data_off);
  if (payload == nullptr) {
    return;
  }
  TcpHeader::Parse(payload->data, payload->len, &th);

  // Verify the checksum over pseudo-header + segment.
  {
    InetChecksum cksum;
    uint8_t pseudo[12];
    StoreBe32(pseudo, ip.src.value);
    StoreBe32(pseudo + 4, ip.dst.value);
    pseudo[8] = 0;
    pseudo[9] = kIpProtoTcp;
    StoreBe16(pseudo + 10, static_cast<uint16_t>(seg_total));
    cksum.Add(pseudo, sizeof(pseudo));
    for (const MBuf* m = payload; m != nullptr; m = m->next) {
      cksum.Add(m->data, m->len);
    }
    if (cksum.Finish() != 0) {
      ++counters_.tcp_bad_checksum;
      pool_.FreeChain(payload);
      return;
    }
  }

  size_t data_len = seg_total - th.data_off;
  TcpPcb* pcb = TcpLookup(ip.src, th.src_port, ip.dst, th.dst_port);
  if (pcb == nullptr || pcb->state == TcpState::kClosed) {
    TcpSendRst(ip, th, data_len);
    pool_.FreeChain(payload);
    return;
  }

  // ---- LISTEN ----
  if (pcb->state == TcpState::kListen) {
    if ((th.flags & kTcpFlagRst) != 0) {
      pool_.FreeChain(payload);
      return;
    }
    if ((th.flags & kTcpFlagAck) != 0 || (th.flags & kTcpFlagSyn) == 0) {
      TcpSendRst(ip, th, data_len);
      pool_.FreeChain(payload);
      return;
    }
    // so_qlen in BSD counts half-open children as well as the established
    // ones waiting in the accept queue.  Both live on the listener now, so
    // this is O(1) — and dead children no longer count against the backlog
    // (they leave the SYN queue in TcpCloseDone).
    size_t qlen = pcb->syn_queue.size() + pcb->accept_queue.size();
    if (qlen >= static_cast<size_t>(pcb->backlog) + 1) {
      ++counters_.tcp_listen_overflows;
      pool_.FreeChain(payload);  // overloaded: drop the SYN, client retries
      return;
    }
    // Per-principal admission (src/secure): a listener whose tenant is out
    // of socket budget sheds the SYN the same way an overloaded backlog
    // does — the peer retransmits, other tenants' listeners are untouched.
    if (accounting_ != nullptr &&
        !accounting_->AdmitSyn(static_cast<Socket*>(pcb->socket))) {
      ++counters_.tcp_syn_admission_shed;
      pool_.FreeChain(payload);
      return;
    }
    // Passive open: manufacture the child connection.
    auto child = std::make_unique<TcpPcb>();
    child->laddr = ip.dst;
    child->lport = th.dst_port;
    child->faddr = ip.src;
    child->fport = th.src_port;
    child->listener = pcb;
    child->iss = NextIss();
    child->snd_una = child->iss;
    child->snd_nxt = child->iss + 1;
    child->snd_max = child->snd_nxt;
    child->irs = th.seq;
    child->rcv_nxt = th.seq + 1;
    child->snd_wnd = th.window;
    if (th.mss_option != 0 && th.mss_option < child->mss) {
      child->mss = th.mss_option;
    }
    child->snd_cwnd = child->mss;
    child->snd_ssthresh = kMaxWindow;
    child->snd.hiwat = default_sock_buf_;
    child->rcv.hiwat = default_sock_buf_;
    child->state = TcpState::kSynReceived;
    TcpPcb* child_raw = child.get();
    tcp_pcbs_.push_back(std::move(child));
    TcpIndexInsert(child_raw);
    TcpBindWheelTimers(child_raw);
    TcpArmConn(child_raw, kConnTimeoutTicks);
    pcb->syn_queue.push_back(child_raw);
    TcpSendSegment(child_raw, child_raw->iss, kTcpFlagSyn | kTcpFlagAck, nullptr, 0, 0,
                   /*with_mss=*/true);
    TcpArmRexmt(child_raw, child_raw->RtoTicks());
    pool_.FreeChain(payload);
    return;
  }

  // ---- SYN_SENT ----
  if (pcb->state == TcpState::kSynSent) {
    if ((th.flags & kTcpFlagAck) != 0 &&
        (SeqLeq(th.ack, pcb->iss) || SeqGt(th.ack, pcb->snd_max))) {
      TcpSendRst(ip, th, data_len);
      pool_.FreeChain(payload);
      return;
    }
    if ((th.flags & kTcpFlagRst) != 0) {
      if ((th.flags & kTcpFlagAck) != 0) {
        TcpDrop(pcb, Error::kConnRefused);
      }
      pool_.FreeChain(payload);
      return;
    }
    if ((th.flags & kTcpFlagSyn) == 0) {
      pool_.FreeChain(payload);
      return;
    }
    pcb->irs = th.seq;
    pcb->rcv_nxt = th.seq + 1;
    pcb->snd_wnd = th.window;
    if (th.mss_option != 0 && th.mss_option < pcb->mss) {
      pcb->mss = th.mss_option;
    }
    pcb->snd_cwnd = pcb->mss;
    pcb->snd_ssthresh = kMaxWindow;
    if ((th.flags & kTcpFlagAck) != 0) {
      // Our SYN is acknowledged: ESTABLISHED.
      pcb->snd_una = th.ack;
      TcpCancelRexmt(pcb);
      TcpCancelConn(pcb);
      TcpSetState(pcb, TcpState::kEstablished);
      TcpOutput(pcb, /*force_ack=*/true);
    } else {
      // Simultaneous open.
      TcpSetState(pcb, TcpState::kSynReceived);
      TcpSendSegment(pcb, pcb->iss, kTcpFlagSyn | kTcpFlagAck, nullptr, 0, 0, true);
    }
    pool_.FreeChain(payload);
    return;
  }

  // ---- General segment processing ----

  // RST.
  if ((th.flags & kTcpFlagRst) != 0) {
    if (pcb->state == TcpState::kTimeWait) {
      TcpDrop(pcb, Error::kOk, /*announce=*/false);
    } else {
      TcpDrop(pcb, Error::kConnReset, /*announce=*/false);
    }
    pool_.FreeChain(payload);
    return;
  }

  // Window update (simplified: trust the latest segment's window).
  if ((th.flags & kTcpFlagAck) != 0) {
    pcb->snd_wnd = th.window;
  }

  // Strip the header so `payload` is pure data.
  payload = pool_.TrimFront(payload, th.data_off);
  pool_.TrimTo(payload, data_len);
  uint32_t seq = th.seq;

  // Trim data already received.
  if (data_len > 0 && SeqLt(seq, pcb->rcv_nxt)) {
    uint32_t overlap = pcb->rcv_nxt - seq;
    if (overlap >= data_len) {
      // Entirely old: just ACK.
      pool_.FreeChain(payload);
      payload = nullptr;
      data_len = 0;
      pcb->delayed_ack = false;
      TcpOutput(pcb, /*force_ack=*/true);
    } else {
      payload = pool_.TrimFront(payload, overlap);
      seq += overlap;
      data_len -= overlap;
    }
  }

  // Drop data beyond our advertised window (keep it simple: tail-trim).
  if (payload != nullptr && data_len > 0) {
    uint32_t wnd = TcpReceiveWindow(pcb);
    if (SeqGt(seq + static_cast<uint32_t>(data_len), pcb->rcv_nxt + wnd)) {
      uint32_t allowed =
          SeqGt(pcb->rcv_nxt + wnd, seq) ? (pcb->rcv_nxt + wnd - seq) : 0;
      if (allowed == 0) {
        pool_.FreeChain(payload);
        payload = nullptr;
        data_len = 0;
        TcpOutput(pcb, /*force_ack=*/true);
      } else {
        pool_.TrimTo(payload, allowed);
        data_len = allowed;
      }
    }
  }

  // ACK processing.
  if ((th.flags & kTcpFlagAck) != 0) {
    switch (pcb->state) {
      case TcpState::kSynReceived:
        if (SeqGt(th.ack, pcb->snd_una) && SeqLeq(th.ack, pcb->snd_max)) {
          TcpCancelRexmt(pcb);
          TcpCancelConn(pcb);
          TcpSetState(pcb, TcpState::kEstablished);
          TcpProcessAck(pcb, th);
          // Hand the connection over: out of the SYN queue, into the
          // listener's accept queue.
          if (pcb->listener != nullptr) {
            pcb->listener->syn_queue.remove(pcb);
            pcb->listener->accept_queue.push_back(pcb);
            sleep_wakeup_.Wakeup(&pcb->listener->accept_queue);
            SoNotify(pcb->listener->socket);
          }
        } else {
          TcpSendRst(ip, th, data_len);
          if (payload != nullptr) {
            pool_.FreeChain(payload);
          }
          return;
        }
        break;
      default: {
        bool was_dup = SeqLeq(th.ack, pcb->snd_una) && data_len == 0 &&
                       pcb->snd_una != pcb->snd_max;
        if (was_dup) {
          ++pcb->dup_acks;
          if (pcb->dup_acks == 3) {
            // Fast retransmit.
            ++counters_.tcp_fast_retransmits;
            uint32_t flight = pcb->snd_max - pcb->snd_una;
            uint32_t half = flight / 2;
            uint32_t floor2 = 2u * pcb->mss;
            pcb->snd_ssthresh = half > floor2 ? half : floor2;
            uint32_t saved_nxt = pcb->snd_nxt;
            pcb->snd_nxt = pcb->snd_una;
            pcb->snd_cwnd = pcb->mss;
            TcpOutput(pcb, false);
            pcb->snd_nxt = SeqGt(saved_nxt, pcb->snd_nxt) ? saved_nxt : pcb->snd_nxt;
            pcb->snd_cwnd = pcb->snd_ssthresh;
          }
        } else {
          TcpProcessAck(pcb, th);
        }

        // Our-FIN-acknowledged transitions.
        bool fin_acked = pcb->fin_sent && SeqGeq(pcb->snd_una, pcb->snd_max) &&
                         pcb->snd.cc == 0;
        switch (pcb->state) {
          case TcpState::kFinWait1:
            if (fin_acked) {
              TcpSetState(pcb, pcb->peer_fin_seen ? TcpState::kTimeWait
                                                  : TcpState::kFinWait2);
            }
            break;
          case TcpState::kClosing:
            if (fin_acked) {
              TcpSetState(pcb, TcpState::kTimeWait);
            }
            break;
          case TcpState::kLastAck:
            if (fin_acked) {
              TcpSetState(pcb, TcpState::kClosed);
              TcpCloseDone(pcb);
              if (payload != nullptr) {
                pool_.FreeChain(payload);
              }
              return;
            }
            break;
          default:
            break;
        }
        break;
      }
    }
  }

  // Data arriving on a socket the application has fully closed: BSD
  // aborts the connection with a RST (there will never be a reader).
  if (pcb->detached && payload != nullptr && data_len > 0) {
    TcpSendRst(ip, th, data_len);
    pool_.FreeChain(payload);
    TcpDrop(pcb, Error::kOk, /*announce=*/false);  // the RST just went out
    return;
  }

  // Data.
  bool send_now = false;
  if (payload != nullptr && data_len > 0) {
    if (pcb->state == TcpState::kEstablished || pcb->state == TcpState::kFinWait1 ||
        pcb->state == TcpState::kFinWait2) {
      // Per-principal mbuf charge BEFORE the sequence space advances: an
      // over-budget segment is dropped unACKed, so the peer retransmits and
      // the tenant is flow-controlled at its budget with no data loss.
      // Children not yet accepted bill to their listener's principal.
      BsdSocket* owner = pcb->socket != nullptr
                             ? pcb->socket
                             : (pcb->listener != nullptr ? pcb->listener->socket
                                                         : nullptr);
      if (!AcctChargeRx(owner, &pcb->rx_charged, &pcb->acct_tag, data_len)) {
        // An in-order segment outranks parked out-of-order data: evict the
        // reassembly queue farthest-first (crediting its charges) to make
        // room.  Without this a parked tail can pin the budget so that the
        // hole-filling segment at rcv_nxt is never admittable and the
        // connection wedges; the sender's go-back-N retransmission
        // re-covers whatever is evicted here.
        bool admitted = false;
        if (seq == pcb->rcv_nxt) {
          while (!pcb->reass.empty()) {
            size_t q_len = MbufPool::ChainLength(pcb->reass.back().data);
            pool_.FreeChain(pcb->reass.back().data);
            pcb->reass.pop_back();
            AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, q_len);
            if (AcctChargeRx(owner, &pcb->rx_charged, &pcb->acct_tag,
                             data_len)) {
              admitted = true;
              break;
            }
          }
        }
        if (!admitted) {
          pool_.FreeChain(payload);
          payload = nullptr;
          return;
        }
      }
      bool in_order = seq == pcb->rcv_nxt;
      TcpReassemble(pcb, seq, payload);
      payload = nullptr;
      if (in_order) {
        // Delayed ACK: every second segment forces one (BSD behaviour).
        if (pcb->delayed_ack) {
          send_now = true;
        } else {
          TcpSetDelayedAck(pcb);
        }
      } else {
        send_now = true;  // duplicate ACK for fast retransmit at the sender
      }
    } else {
      pool_.FreeChain(payload);
      payload = nullptr;
    }
  } else if (payload != nullptr) {
    pool_.FreeChain(payload);
    payload = nullptr;
  }

  // FIN processing: only when it is in order (all data received).
  if ((th.flags & kTcpFlagFin) != 0 && !pcb->peer_fin_seen &&
      seq + static_cast<uint32_t>(data_len) == pcb->rcv_nxt && pcb->reass.empty()) {
    pcb->peer_fin_seen = true;
    pcb->rcv_nxt += 1;
    send_now = true;
    switch (pcb->state) {
      case TcpState::kEstablished:
        TcpSetState(pcb, TcpState::kCloseWait);
        break;
      case TcpState::kFinWait1:
        // Our FIN not yet acked (else we'd be in FIN_WAIT_2 above).
        TcpSetState(pcb, TcpState::kClosing);
        break;
      case TcpState::kFinWait2:
        TcpSetState(pcb, TcpState::kTimeWait);
        break;
      case TcpState::kTimeWait:
        TcpArmTimeWait(pcb, kTimeWaitTicks);  // restart 2MSL
        break;
      default:
        break;
    }
    sleep_wakeup_.Wakeup(&pcb->rcv);
    SoNotify(pcb->socket);
  }

  if (rx_batch_active_) {
    // A polled driver has the NetIoBatch bracket open: defer the response
    // pass so a burst of segments costs one TcpOutput per connection.
    RxBatchDefer(pcb, send_now);
  } else if (send_now) {
    TcpOutput(pcb, /*force_ack=*/true);
  } else {
    TcpOutput(pcb, /*force_ack=*/false);  // piggyback ACK with any ready data
  }
}

// ---------------------------------------------------------------------------
// RX batching (NetIoBatch)
// ---------------------------------------------------------------------------

void NetStack::BeginRxBatch() {
  OSKIT_ASSERT_MSG(!rx_batch_active_, "nested RX batch");
  rx_batch_active_ = true;
}

void NetStack::RxBatchDefer(TcpPcb* pcb, bool force_ack) {
  for (RxBatchEntry& entry : rx_batch_) {
    if (entry.pcb == pcb) {
      entry.force_ack = entry.force_ack || force_ack;
      return;
    }
  }
  rx_batch_.push_back({pcb, force_ack});
}

void NetStack::EndRxBatch() {
  rx_batch_active_ = false;
  if (rx_batch_.empty()) {
    return;
  }
  ++counters_.tcp_rx_batches;
  std::vector<RxBatchEntry> deferred;
  deferred.swap(rx_batch_);
  // Entries are live: TcpCloseDone scrubs a dying pcb out of the pending
  // batch, so input inside the bracket cannot leave a dangling deferral.
  for (const RxBatchEntry& entry : deferred) {
    ++counters_.tcp_batched_outputs;
    TcpOutput(entry.pcb, entry.force_ack);
  }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void NetStack::TcpFastTimo() {
  for (auto& pcb : tcp_pcbs_) {
    if (pcb->delayed_ack) {
      ++counters_.tcp_delayed_acks;
      TcpOutput(pcb.get(), /*force_ack=*/true);
    }
  }
}

void NetStack::TcpRexmtExpired(TcpPcb* pcb) {
  ++counters_.tcp_retransmits;
  ++pcb->rexmt_shift;
  if (pcb->rexmt_shift > kMaxRexmtShift) {
    TcpDrop(pcb, Error::kTimedOut);
    return;
  }
  // Karn: back off, and don't sample RTT for retransmitted data.
  pcb->rtt_ticks = -1;
  uint32_t flight = pcb->snd_max - pcb->snd_una;
  uint32_t half = flight / 2;
  uint32_t floor2 = 2u * pcb->mss;
  pcb->snd_ssthresh = half > floor2 ? half : floor2;
  pcb->snd_cwnd = pcb->mss;

  if (pcb->state == TcpState::kSynSent) {
    TcpSendSegment(pcb, pcb->iss, kTcpFlagSyn, nullptr, 0, 0, /*with_mss=*/true);
    TcpArmRexmt(pcb, pcb->RtoTicks());
    return;
  }
  if (pcb->state == TcpState::kSynReceived) {
    TcpSendSegment(pcb, pcb->iss, kTcpFlagSyn | kTcpFlagAck, nullptr, 0, 0, true);
    TcpArmRexmt(pcb, pcb->RtoTicks());
    return;
  }
  pcb->snd_nxt = pcb->snd_una;
  pcb->fin_sent = false;  // a lost FIN must be resent
  TcpOutput(pcb, false);
  TcpArmRexmt(pcb, pcb->RtoTicks());
}

void NetStack::TcpSlowTimo() {
  // Iterate over a snapshot: timers can drop connections (mutating the
  // list).
  std::vector<TcpPcb*> snapshot;
  snapshot.reserve(tcp_pcbs_.size());
  for (auto& pcb : tcp_pcbs_) {
    snapshot.push_back(pcb.get());
  }
  for (TcpPcb* pcb : snapshot) {
    // Revalidate: the pcb may have been freed by an earlier iteration.
    bool alive = false;
    for (auto& p : tcp_pcbs_) {
      if (p.get() == pcb) {
        alive = true;
        break;
      }
    }
    if (!alive) {
      continue;
    }
    if (pcb->rtt_ticks >= 0) {
      ++pcb->rtt_ticks;
    }
    if (pcb->conn_timer > 0 && --pcb->conn_timer == 0) {
      TcpDrop(pcb, Error::kTimedOut);
      continue;
    }
    if (pcb->rexmt_timer > 0 && --pcb->rexmt_timer == 0) {
      TcpRexmtExpired(pcb);
      continue;
    }
    if (pcb->persist_timer > 0 && --pcb->persist_timer == 0) {
      TcpPersistExpired(pcb);
    }
    if (pcb->state == TcpState::kTimeWait && --pcb->time_wait_timer <= 0) {
      TcpSetState(pcb, TcpState::kClosed);
      TcpCloseDone(pcb);
    }
  }
}

// ---------------------------------------------------------------------------
// Wheel-mode timer plumbing
// ---------------------------------------------------------------------------
//
// The wheel ticks every 100 ms — the GCD of the BSD fast (200 ms) and slow
// (500 ms) periods — so a classic timer armed for N slow ticks maps to the
// absolute wheel tick (CurSlowTick() + N) * 5: exactly the moment the sweep
// would have decremented the field to zero.  Both the sweeps and the wheel
// tick are scheduled further ahead than any packet delivery, so at equal
// timestamps timers run before packets in both modes and the two
// implementations stay byte-identical on the wire (the netscale property
// test holds this over lossy seeds).

uint64_t NetStack::CurSlowTick() const {
  return static_cast<uint64_t>(clock_->Now() - epoch_) / 500'000'000ull;
}

uint64_t NetStack::CurFastTick() const {
  return static_cast<uint64_t>(clock_->Now() - epoch_) / 200'000'000ull;
}

void NetStack::WheelArmSlow(WheelTimer* timer, int slow_ticks) {
  uint64_t fire = (CurSlowTick() + static_cast<uint64_t>(slow_ticks)) * 5;
  wheel_.Arm(timer, fire - wheel_.now());
}

void NetStack::TcpBindWheelTimers(TcpPcb* pcb) {
  wheel_.Bind(&pcb->rexmt_wheel, [this, pcb] {
    pcb->rexmt_timer = 0;
    // The sweep `continue`s after a retransmit expiry, postponing a
    // same-tick persist expiry by one whole slow tick; mirror that.
    if (pcb->persist_wheel.armed() &&
        pcb->persist_wheel.deadline() == wheel_.now()) {
      wheel_.Arm(&pcb->persist_wheel, 5);
    }
    TcpRexmtExpired(pcb);
  });
  wheel_.Bind(&pcb->persist_wheel, [this, pcb] {
    if (pcb->rexmt_wheel.armed() &&
        pcb->rexmt_wheel.deadline() == wheel_.now()) {
      // The retransmit expiry due this same tick takes sweep precedence.
      wheel_.Arm(&pcb->persist_wheel, 5);
      return;
    }
    pcb->persist_timer = 0;
    TcpPersistExpired(pcb);
  });
  wheel_.Bind(&pcb->conn_wheel, [this, pcb] {
    pcb->conn_timer = 0;
    TcpDrop(pcb, Error::kTimedOut);
  });
  wheel_.Bind(&pcb->time_wait_wheel, [this, pcb] {
    pcb->time_wait_timer = 0;
    if (pcb->state == TcpState::kTimeWait) {
      TcpSetState(pcb, TcpState::kClosed);
      TcpCloseDone(pcb);
    }
  });
  wheel_.Bind(&pcb->delack_wheel, [this, pcb] {
    if (pcb->delayed_ack) {
      ++counters_.tcp_delayed_acks;
      TcpOutput(pcb, /*force_ack=*/true);
    }
  });
}

void NetStack::TcpArmRexmt(TcpPcb* pcb, int ticks) {
  pcb->rexmt_timer = ticks;
  if (!linear_internals_) {
    WheelArmSlow(&pcb->rexmt_wheel, ticks);
  }
}

void NetStack::TcpCancelRexmt(TcpPcb* pcb) {
  pcb->rexmt_timer = 0;
  wheel_.Cancel(&pcb->rexmt_wheel);
}

void NetStack::TcpArmPersist(TcpPcb* pcb, int ticks) {
  pcb->persist_timer = ticks;
  if (!linear_internals_) {
    WheelArmSlow(&pcb->persist_wheel, ticks);
  }
}

void NetStack::TcpCancelPersist(TcpPcb* pcb) {
  pcb->persist_timer = 0;
  wheel_.Cancel(&pcb->persist_wheel);
}

void NetStack::TcpArmConn(TcpPcb* pcb, int ticks) {
  pcb->conn_timer = ticks;
  if (!linear_internals_) {
    WheelArmSlow(&pcb->conn_wheel, ticks);
  }
}

void NetStack::TcpCancelConn(TcpPcb* pcb) {
  pcb->conn_timer = 0;
  wheel_.Cancel(&pcb->conn_wheel);
}

void NetStack::TcpArmTimeWait(TcpPcb* pcb, int ticks) {
  pcb->time_wait_timer = ticks;
  if (!linear_internals_) {
    WheelArmSlow(&pcb->time_wait_wheel, ticks);
  }
}

void NetStack::TcpCancelAllTimers(TcpPcb* pcb) {
  pcb->rexmt_timer = 0;
  pcb->persist_timer = 0;
  pcb->conn_timer = 0;
  pcb->time_wait_timer = 0;
  pcb->delayed_ack = false;
  wheel_.Cancel(&pcb->rexmt_wheel);
  wheel_.Cancel(&pcb->persist_wheel);
  wheel_.Cancel(&pcb->conn_wheel);
  wheel_.Cancel(&pcb->time_wait_wheel);
  wheel_.Cancel(&pcb->delack_wheel);
}

void NetStack::TcpSetDelayedAck(TcpPcb* pcb) {
  pcb->delayed_ack = true;
  // Whenever the flag is set, the handle is armed for the next fast (200 ms)
  // boundary — the same instant the fast sweep would notice the flag.  An
  // already-armed handle necessarily points at that boundary.
  if (!linear_internals_ && !pcb->delack_wheel.armed()) {
    uint64_t fire = (CurFastTick() + 1) * 2;
    wheel_.Arm(&pcb->delack_wheel, fire - wheel_.now());
  }
}

void NetStack::TcpPersistExpired(TcpPcb* pcb) {
  // Window probe: force out one byte past the window.
  if (pcb->snd.cc > pcb->snd_nxt - pcb->snd_una) {
    uint32_t off = pcb->snd_nxt - pcb->snd_una;
    TcpSendSegment(pcb, pcb->snd_nxt, kTcpFlagAck, pcb->snd.head, off, 1, false);
    pcb->snd_nxt += 1;
    if (SeqGt(pcb->snd_nxt, pcb->snd_max)) {
      pcb->snd_max = pcb->snd_nxt;
    }
  }
  TcpArmPersist(pcb, pcb->RtoTicks() * 2);
}

void NetStack::TcpRttStart(TcpPcb* pcb) {
  pcb->rtt_ticks = 0;
  pcb->rtt_seq = pcb->snd_nxt;
  pcb->rtt_start_slow = CurSlowTick();
}

int NetStack::TcpRttElapsed(const TcpPcb* pcb) const {
  // Linear mode counts the field up in the slow sweep; wheel mode derives
  // the same number of elapsed slow boundaries from the clock.
  if (linear_internals_) {
    return pcb->rtt_ticks;
  }
  return static_cast<int>(CurSlowTick() - pcb->rtt_start_slow);
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void NetStack::TcpDrop(TcpPcb* pcb, Error err, bool announce) {
  // BSD tcp_drop: a synchronized connection announces the abort with a RST,
  // so a peer blocked in Recv gets ECONNRESET instead of hanging on a
  // half-dead connection.  (SYN_SENT has nothing to reset: the peer either
  // never saw us or will RST our retransmitted SYN itself.)
  if (announce && pcb->state >= TcpState::kSynReceived &&
      pcb->state != TcpState::kTimeWait) {
    ++counters_.tcp_rst_out;
    TcpSendSegment(pcb, pcb->snd_nxt, kTcpFlagRst | kTcpFlagAck, nullptr, 0, 0,
                   false);
  }
  pcb->so_error = err;
  TcpSetState(pcb, TcpState::kClosed);
  TcpCloseDone(pcb);
}

void NetStack::TcpCloseDone(TcpPcb* pcb) {
  sleep_wakeup_.Wakeup(&pcb->rcv);
  sleep_wakeup_.Wakeup(&pcb->snd);
  SoNotify(pcb->socket);
  // A closed pcb must never fire a timer again: the sweeps used to keep
  // decrementing fields on closed-but-referenced pcbs (inflating the
  // retransmit counter with no-op output passes), and a wheel callback on a
  // freed pcb would be worse.
  TcpCancelAllTimers(pcb);
  if (pcb->listener != nullptr) {
    // A half-open child dying (RST, handshake timeout) leaves the SYN
    // queue, freeing its backlog slot.
    pcb->listener->syn_queue.remove(pcb);
    if (pcb->socket == nullptr) {
      // A child already promoted to the accept queue stays allocated so a
      // later Accept can still return it (and deliver so_error there);
      // anything else has no owner left and frees now.
      bool queued_for_accept = false;
      for (TcpPcb* q : pcb->listener->accept_queue) {
        if (q == pcb) {
          queued_for_accept = true;
          break;
        }
      }
      if (!queued_for_accept) {
        pcb->detached = true;
      }
    }
  }
  // Children queued on a listener that is going away are orphaned by
  // SoDetach; here we only reap detached, fully-closed pcbs.
  if (!pcb->detached) {
    return;  // the socket still references it; freed on SoDetach
  }
  TcpIndexRemove(pcb);
  for (auto it = tcp_pcbs_.begin(); it != tcp_pcbs_.end(); ++it) {
    if (it->get() == pcb) {
      // Credit whatever RX charge the application never drained, so a
      // tenant's books drain to zero at teardown.
      AcctCreditRx(&pcb->rx_charged, pcb->acct_tag, pcb->rx_charged);
      SbFlush(&pcb->snd);
      SbFlush(&pcb->rcv);
      for (auto& seg : pcb->reass) {
        pool_.FreeChain(seg.data);
      }
      pcb->reass.clear();
      // Drop any output pass an open RX batch deferred for this pcb: the
      // pointer dies here, and a later allocation could reuse the address.
      for (auto bit = rx_batch_.begin(); bit != rx_batch_.end();) {
        if (bit->pcb == pcb) {
          bit = rx_batch_.erase(bit);
        } else {
          ++bit;
        }
      }
      tcp_pcbs_.erase(it);
      return;
    }
  }
}

}  // namespace oskit::net
