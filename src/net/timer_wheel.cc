#include "src/net/timer_wheel.h"

#include <utility>

#include "src/base/panic.h"

namespace oskit {

namespace {

// Span (in ticks) covered by everything up to and including each level.
constexpr uint64_t kSpan0 = TimerWheel::kL0Slots;                  // 2^8
constexpr uint64_t kSpan1 = kSpan0 * TimerWheel::kLevelSlots;      // 2^14
constexpr uint64_t kSpan2 = kSpan1 * TimerWheel::kLevelSlots;      // 2^20
constexpr uint64_t kSpan3 = kSpan2 * TimerWheel::kLevelSlots;      // 2^26

}  // namespace

WheelTimer::~WheelTimer() {
  if (wheel_ != nullptr) {
    wheel_->Cancel(this);
  }
}

TimerWheel::TimerWheel() = default;

TimerWheel::~TimerWheel() {
  // Orphan any timers still linked so their destructors do not chase a
  // dead wheel.  (NetStack declares the wheel before the PCB lists, so in
  // practice PCB timers die first; this is belt and braces.)
  for (uint64_t i = 0; i < kL0Slots; ++i) {
    for (WheelTimer* t = l0_[i]; t != nullptr;) {
      WheelTimer* next = t->next_;
      t->wheel_ = nullptr;
      t = next;
    }
  }
  for (int level = 0; level < kLevels - 1; ++level) {
    for (uint64_t i = 0; i < kLevelSlots; ++i) {
      for (WheelTimer* t = up_[level][i]; t != nullptr;) {
        WheelTimer* next = t->next_;
        t->wheel_ = nullptr;
        t = next;
      }
    }
  }
}

void TimerWheel::Bind(WheelTimer* timer, std::function<void()> fn) {
  timer->fn_ = std::move(fn);
}

void TimerWheel::Arm(WheelTimer* timer, uint64_t delay_ticks) {
  OSKIT_ASSERT_MSG(timer->fn_ != nullptr, "arming unbound wheel timer");
  if (timer->wheel_ != nullptr) {
    Cancel(timer);  // restart semantics
  }
  if (delay_ticks == 0) {
    delay_ticks = 1;  // "fire at the next tick", never synchronously
  }
  if (delay_ticks >= kSpan3) {
    delay_ticks = kSpan3 - 1;  // clamp far-future arms to the wheel's span
  }
  Place(timer, now_ + delay_ticks);
}

void TimerWheel::Cancel(WheelTimer* timer) {
  if (timer->wheel_ == nullptr) {
    return;
  }
  OSKIT_ASSERT_MSG(timer->wheel_ == this, "timer canceled on wrong wheel");
  Unlink(timer);
}

void TimerWheel::Place(WheelTimer* timer, uint64_t deadline) {
  uint64_t delta = deadline > now_ ? deadline - now_ : 0;
  WheelTimer** head;
  if (delta < kSpan0) {
    head = &l0_[deadline & (kL0Slots - 1)];
  } else if (delta < kSpan1) {
    head = &up_[0][(deadline >> kL0Bits) & (kLevelSlots - 1)];
  } else if (delta < kSpan2) {
    head = &up_[1][(deadline >> (kL0Bits + kLevelBits)) & (kLevelSlots - 1)];
  } else {
    head = &up_[2][(deadline >> (kL0Bits + 2 * kLevelBits)) &
                   (kLevelSlots - 1)];
  }
  timer->wheel_ = this;
  timer->deadline_ = deadline;
  timer->next_ = *head;
  timer->pprev_ = head;
  if (*head != nullptr) {
    (*head)->pprev_ = &timer->next_;
  }
  *head = timer;
  ++armed_count_;
}

void TimerWheel::Unlink(WheelTimer* timer) {
  *timer->pprev_ = timer->next_;
  if (timer->next_ != nullptr) {
    timer->next_->pprev_ = timer->pprev_;
  }
  timer->wheel_ = nullptr;
  timer->next_ = nullptr;
  timer->pprev_ = nullptr;
  armed_count_ -= 1;
}

void TimerWheel::Cascade(int level, uint64_t slot) {
  ++cascades_;
  WheelTimer** head = &up_[level][slot];
  WheelTimer* list = *head;
  *head = nullptr;
  while (list != nullptr) {
    WheelTimer* timer = list;
    list = timer->next_;
    // The node is being re-homed wholesale; fix its links by hand rather
    // than through Unlink (the old list head is already detached).
    timer->wheel_ = nullptr;
    timer->next_ = nullptr;
    timer->pprev_ = nullptr;
    armed_count_ -= 1;
    Place(timer, timer->deadline_);
  }
}

void TimerWheel::Tick() {
  ++now_;
  uint64_t idx = now_ & (kL0Slots - 1);
  if (idx == 0) {
    // L0 wrapped: pull the next level-1 slot down; if that level wrapped
    // too, recurse upward first so its timers are in place to cascade.
    uint64_t s1 = (now_ >> kL0Bits) & (kLevelSlots - 1);
    if (s1 == 0) {
      uint64_t s2 = (now_ >> (kL0Bits + kLevelBits)) & (kLevelSlots - 1);
      if (s2 == 0) {
        uint64_t s3 =
            (now_ >> (kL0Bits + 2 * kLevelBits)) & (kLevelSlots - 1);
        Cascade(2, s3);
      }
      Cascade(1, s2);
    }
    Cascade(0, s1);
  }
  // Fire everything due now.  Pop head-by-head: a callback may cancel or
  // destroy any other timer in this slot (or re-arm itself).
  while (l0_[idx] != nullptr) {
    WheelTimer* timer = l0_[idx];
    OSKIT_ASSERT_MSG(timer->deadline_ == now_, "stale timer in L0 slot");
    Unlink(timer);
    ++fired_;
    timer->fn_();
  }
}

}  // namespace oskit
