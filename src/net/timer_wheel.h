// Hierarchical timing wheel for TCP connection timers.
//
// The 4.4BSD stack this port follows drives every TCP timer by sweeping all
// PCBs twice per second (tcp_slowtimo) and five times per second
// (tcp_fasttimo) and decrementing four int fields per block.  That is O(n)
// per tick in the number of connections — fine for a 1997 server holding a
// few dozen PCBs, ruinous at ten thousand.  This wheel replaces the sweeps
// with Varghese & Lauck's hashed hierarchical timing wheels: arming,
// canceling, and restarting a timer are O(1), and a tick only touches the
// timers that actually expire (plus an O(slots) cascade when a level wraps).
//
// Granularity is one 100ms tick — the greatest common divisor of the BSD
// fast (200ms) and slow (500ms) periods — so every classic timer lands
// exactly on its legacy boundary and behavior is bit-identical to the sweep
// implementation (the netscale property test proves this over lossy seeds).
//
// Timer is an intrusive node: the owner embeds it, the wheel links it into
// a slot.  Destroying an armed Timer unlinks it, so a PCB deleted with live
// timers never leaves a dangling callback behind.

#ifndef OSKIT_SRC_NET_TIMER_WHEEL_H_
#define OSKIT_SRC_NET_TIMER_WHEEL_H_

#include <cstdint>
#include <functional>

#include "src/trace/counters.h"

namespace oskit {

class TimerWheel;

// One schedulable timer, embedded in its owner.  The callback is fixed at
// construction; Arm/Restart choose the deadline.
class WheelTimer {
 public:
  WheelTimer() = default;
  ~WheelTimer();
  WheelTimer(const WheelTimer&) = delete;
  WheelTimer& operator=(const WheelTimer&) = delete;

  bool armed() const { return wheel_ != nullptr; }
  // Absolute wheel tick this timer fires at; meaningless when not armed.
  uint64_t deadline() const { return deadline_; }

 private:
  friend class TimerWheel;

  std::function<void()> fn_;
  TimerWheel* wheel_ = nullptr;  // non-null while linked into a slot
  uint64_t deadline_ = 0;        // absolute tick
  // hlist-style links: pprev_ is the address of whatever points at this
  // node (slot head or predecessor's next_), so unlink needs no slot lookup.
  WheelTimer** pprev_ = nullptr;
  WheelTimer* next_ = nullptr;
};

class TimerWheel {
 public:
  // Level 0 resolves single ticks; each higher level covers the full span
  // of the one below per slot.  Four levels at 256/64/64/64 span 2^26 ticks
  // (~77 days of simulated time at 100ms/tick) before clamping.
  static constexpr int kL0Bits = 8;
  static constexpr int kLevelBits = 6;
  static constexpr int kLevels = 4;
  static constexpr uint64_t kL0Slots = 1u << kL0Bits;
  static constexpr uint64_t kLevelSlots = 1u << kLevelBits;

  TimerWheel();
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Current tick: the number of Tick() calls so far.  Timers armed for
  // `delay` ticks fire during Tick() number now()+delay.
  uint64_t now() const { return now_; }

  // Sets the timer's callback.  Must be called before the first Arm; the
  // callback persists across re-arms.
  void Bind(WheelTimer* timer, std::function<void()> fn);

  // Schedules `timer` to fire `delay_ticks` from now.  A delay of 0 is
  // clamped to 1 (the next tick) — a BSD timer value of N means "between
  // N-1 and N periods", never "immediately".  Re-arming an armed timer
  // moves it (classic restart).
  void Arm(WheelTimer* timer, uint64_t delay_ticks);

  // Unschedules; no-op when idle.
  void Cancel(WheelTimer* timer);

  // Advances one tick and fires every timer due at it.  Callbacks may arm,
  // cancel, or destroy other timers (and re-arm themselves).
  void Tick();

  // Statistics, exposed as trace counters so the owner can register them
  // (NetStack binds them as net.timer.wheel.*).
  trace::Counter& armed_counter() { return armed_count_; }
  trace::Counter& fired_counter() { return fired_; }
  trace::Counter& cascades_counter() { return cascades_; }
  uint64_t armed_count() const { return armed_count_; }
  uint64_t fired() const { return fired_; }
  uint64_t cascades() const { return cascades_; }

 private:
  // Links `timer` into the slot covering `deadline_ticks` (absolute).
  void Place(WheelTimer* timer, uint64_t deadline);
  void Unlink(WheelTimer* timer);
  // Re-places every timer parked in higher-level slot `slot` of `level`.
  void Cascade(int level, uint64_t slot);

  uint64_t now_ = 0;
  trace::Counter armed_count_;  // gauge: timers currently linked
  trace::Counter fired_;
  trace::Counter cascades_;
  // slots_[0] has kL0Slots entries; levels 1..3 have kLevelSlots each.
  // Each entry is a doubly-linked list head (null = empty).
  WheelTimer* l0_[kL0Slots] = {};
  WheelTimer* up_[kLevels - 1][kLevelSlots] = {};
};

}  // namespace oskit

#endif  // OSKIT_SRC_NET_TIMER_WHEEL_H_
