// UDP: PCB management, input demux, checksummed output.

#include <cstring>

#include "src/base/checksum.h"
#include "src/net/stack.h"

namespace oskit::net {

void NetStack::UdpIndexInsert(UdpPcb* pcb) {
  if (pcb->lport == 0) {
    return;
  }
  udp_by_lport_[pcb->lport].push_back(pcb);
}

void NetStack::UdpIndexRemove(UdpPcb* pcb) {
  if (pcb->lport == 0) {
    return;
  }
  auto bucket = udp_by_lport_.find(pcb->lport);
  if (bucket == udp_by_lport_.end()) {
    return;
  }
  auto& vec = bucket->second;
  for (auto it = vec.begin(); it != vec.end(); ++it) {
    if (*it == pcb) {
      vec.erase(it);
      break;
    }
  }
  if (vec.empty()) {
    udp_by_lport_.erase(bucket);
  }
}

UdpPcb* NetStack::UdpLookup(InetAddr dst, uint16_t dport) {
  // The lport bucket replaces the full PCB-list scan; the match rule
  // (exact laddr beats wildcard) is unchanged.
  auto bucket = udp_by_lport_.find(dport);
  if (bucket == udp_by_lport_.end()) {
    return nullptr;
  }
  UdpPcb* wildcard = nullptr;
  for (UdpPcb* pcb : bucket->second) {
    if (pcb->laddr == dst) {
      return pcb;
    }
    if (pcb->laddr.IsAny()) {
      wildcard = pcb;
    }
  }
  return wildcard;
}

void NetStack::UdpInput(const Ipv4Header& ip, MBuf* payload) {
  ++counters_.udp_in;
  payload = pool_.Pullup(payload, kUdpHeaderSize);
  if (payload == nullptr) {
    return;
  }
  UdpHeader uh;
  if (!UdpHeader::Parse(payload->data, payload->len, &uh) ||
      uh.length > payload->pkt_len) {
    pool_.FreeChain(payload);
    return;
  }
  if (uh.checksum != 0) {
    InetChecksum cksum;
    uint8_t pseudo[12];
    StoreBe32(pseudo, ip.src.value);
    StoreBe32(pseudo + 4, ip.dst.value);
    pseudo[8] = 0;
    pseudo[9] = kIpProtoUdp;
    StoreBe16(pseudo + 10, uh.length);
    cksum.Add(pseudo, sizeof(pseudo));
    size_t remaining = uh.length;
    for (const MBuf* m = payload; m != nullptr && remaining > 0; m = m->next) {
      size_t n = m->len < remaining ? m->len : remaining;
      cksum.Add(m->data, n);
      remaining -= n;
    }
    if (cksum.Finish() != 0) {
      ++counters_.udp_bad_checksum;
      pool_.FreeChain(payload);
      return;
    }
  }
  UdpPcb* pcb = UdpLookup(ip.dst, uh.dst_port);
  if (pcb == nullptr) {
    ++counters_.udp_no_port;
    pool_.FreeChain(payload);
    return;  // a full implementation would send ICMP port-unreachable
  }
  if (pcb->connected &&
      (!(pcb->faddr == ip.src) || pcb->fport != uh.src_port)) {
    pool_.FreeChain(payload);
    return;
  }
  size_t data_len = uh.length - kUdpHeaderSize;
  if (pcb->rcv_bytes + data_len > pcb->rcv_hiwat) {
    pool_.FreeChain(payload);  // receive buffer full: drop, UDP style
    return;
  }
  // Per-principal mbuf charge at delivery: over budget drops the datagram
  // (counted net.rx.quota_shed), exactly like the hiwat drop above.
  if (!AcctChargeRx(pcb->socket, &pcb->rx_charged, &pcb->acct_tag, data_len)) {
    pool_.FreeChain(payload);
    return;
  }
  payload = pool_.TrimFront(payload, kUdpHeaderSize);
  pool_.TrimTo(payload, data_len);
  UdpPcb::Datagram dg;
  dg.from.addr = ip.src;
  dg.from.port = uh.src_port;
  dg.data = payload;
  pcb->rcv_queue.push_back(dg);
  pcb->rcv_bytes += data_len;
  sleep_wakeup_.Wakeup(&pcb->rcv_queue);
  SoNotify(pcb->socket);
}

Error NetStack::UdpOutput(UdpPcb* pcb, const SockAddr& to, MBuf* payload) {
  if (pcb->lport == 0) {
    pcb->lport = AllocEphemeralPort(/*tcp=*/false);
    if (pcb->lport == 0) {
      pool_.FreeChain(payload);
      return Error::kAddrNotAvail;  // ephemeral range spent, not mbufs
    }
    UdpIndexInsert(pcb);
  }
  size_t data_len = payload->pkt_len;
  size_t udp_len = data_len + kUdpHeaderSize;
  if (udp_len > 65535) {
    pool_.FreeChain(payload);
    return Error::kMsgSize;
  }

  InetAddr src = pcb->laddr;
  if (src.IsAny()) {
    InetAddr next_hop;
    int ifindex = RouteFor(to.addr, &next_hop);
    if (ifindex < 0) {
      pool_.FreeChain(payload);
      return Error::kNetUnreach;
    }
    src = ifaces_[ifindex].addr;
  }

  MBuf* dgram = pool_.Prepend(payload, kUdpHeaderSize);
  UdpHeader uh;
  uh.src_port = pcb->lport;
  uh.dst_port = to.port;
  uh.length = static_cast<uint16_t>(udp_len);
  uh.checksum = 0;
  uh.Serialize(dgram->data);

  // Checksum over pseudo-header + the whole chain (real per-byte work —
  // this is part of what the benchmarks measure).
  InetChecksum cksum;
  uint8_t pseudo[12];
  StoreBe32(pseudo, src.value);
  StoreBe32(pseudo + 4, to.addr.value);
  pseudo[8] = 0;
  pseudo[9] = kIpProtoUdp;
  StoreBe16(pseudo + 10, uh.length);
  cksum.Add(pseudo, sizeof(pseudo));
  for (const MBuf* m = dgram; m != nullptr; m = m->next) {
    cksum.Add(m->data, m->len);
  }
  uint16_t sum = cksum.Finish();
  if (sum == 0) {
    sum = 0xffff;  // transmitted zero means "no checksum"
  }
  StoreBe16(dgram->data + 6, sum);

  ++counters_.udp_out;
  return IpOutput(kIpProtoUdp, src, to.addr, dgram);
}

}  // namespace oskit::net
