#include "src/net/wire_formats.h"

#include "src/base/checksum.h"

namespace oskit::net {

void Ipv4Header::Serialize(uint8_t* p) const {
  p[0] = static_cast<uint8_t>(0x40 | (header_len / 4));
  p[1] = tos;
  StoreBe16(p + 2, total_len);
  StoreBe16(p + 4, ident);
  StoreBe16(p + 6, frag);
  p[8] = ttl;
  p[9] = proto;
  StoreBe16(p + 10, 0);  // checksum placeholder
  StoreBe32(p + 12, src.value);
  StoreBe32(p + 16, dst.value);
  uint16_t sum = InetChecksumOf(p, header_len);
  StoreBe16(p + 10, sum);
}

uint32_t PseudoHeaderSum(InetAddr src, InetAddr dst, uint8_t proto, uint16_t length) {
  uint8_t pseudo[12];
  StoreBe32(pseudo, src.value);
  StoreBe32(pseudo + 4, dst.value);
  pseudo[8] = 0;
  pseudo[9] = proto;
  StoreBe16(pseudo + 10, length);
  // Return the raw 32-bit sum of the pseudo-header words so callers can
  // keep accumulating; using InetChecksum directly keeps folding correct.
  uint32_t sum = 0;
  for (int i = 0; i < 12; i += 2) {
    sum += static_cast<uint32_t>(LoadBe16(pseudo + i));
  }
  return sum;
}

bool TcpHeader::Parse(const uint8_t* p, size_t len, TcpHeader* out) {
  if (len < kTcpHeaderSize) {
    return false;
  }
  out->src_port = LoadBe16(p);
  out->dst_port = LoadBe16(p + 2);
  out->seq = LoadBe32(p + 4);
  out->ack = LoadBe32(p + 8);
  out->data_off = static_cast<uint8_t>((p[12] >> 4) * 4);
  out->flags = p[13];
  out->window = LoadBe16(p + 14);
  out->checksum = LoadBe16(p + 16);
  out->urgent = LoadBe16(p + 18);
  out->mss_option = 0;
  if (out->data_off < kTcpHeaderSize || out->data_off > len) {
    return false;
  }
  // Scan options for MSS (kind 2, length 4).
  size_t off = kTcpHeaderSize;
  while (off + 1 < out->data_off) {
    uint8_t kind = p[off];
    if (kind == 0) {
      break;  // end of options
    }
    if (kind == 1) {
      ++off;  // NOP
      continue;
    }
    uint8_t opt_len = p[off + 1];
    if (opt_len < 2 || off + opt_len > out->data_off) {
      break;  // malformed options: ignore the rest
    }
    if (kind == 2 && opt_len == 4) {
      out->mss_option = LoadBe16(p + off + 2);
    }
    off += opt_len;
  }
  return true;
}

void TcpHeader::Serialize(uint8_t* p, bool with_mss) const {
  StoreBe16(p, src_port);
  StoreBe16(p + 2, dst_port);
  StoreBe32(p + 4, seq);
  StoreBe32(p + 8, ack);
  uint8_t off = with_mss ? kTcpHeaderSize + 4 : kTcpHeaderSize;
  p[12] = static_cast<uint8_t>((off / 4) << 4);
  p[13] = flags;
  StoreBe16(p + 14, window);
  StoreBe16(p + 16, 0);  // checksum filled by the caller
  StoreBe16(p + 18, urgent);
  if (with_mss) {
    p[20] = 2;  // MSS option
    p[21] = 4;
    StoreBe16(p + 22, mss_option);
  }
}

}  // namespace oskit::net
