// On-the-wire protocol formats: Ethernet II, ARP, IPv4, ICMP, UDP, TCP.
//
// Shared by the FreeBSD-idiom stack (src/net), the Linux-idiom baseline
// stack (src/net/linux), and the tests — these describe the wire, not any
// stack's internals, so sharing them does not weaken the encapsulation
// experiment.

#ifndef OSKIT_SRC_NET_WIRE_FORMATS_H_
#define OSKIT_SRC_NET_WIRE_FORMATS_H_

#include <cstdint>
#include <cstring>

#include "src/base/byteorder.h"
#include "src/com/etherdev.h"
#include "src/com/socket.h"

namespace oskit::net {

// ---- Ethernet ----

inline constexpr uint16_t kEtherTypeIp = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

struct EtherHeader {
  EtherAddr dst;
  EtherAddr src;
  uint16_t type = 0;  // host order in this struct

  static EtherHeader Parse(const uint8_t* p) {
    EtherHeader h;
    std::memcpy(h.dst.bytes, p, kEtherAddrSize);
    std::memcpy(h.src.bytes, p + 6, kEtherAddrSize);
    h.type = LoadBe16(p + 12);
    return h;
  }

  void Serialize(uint8_t* p) const {
    std::memcpy(p, dst.bytes, kEtherAddrSize);
    std::memcpy(p + 6, src.bytes, kEtherAddrSize);
    StoreBe16(p + 12, type);
  }
};

// ---- ARP (Ethernet/IPv4 only) ----

inline constexpr size_t kArpPacketSize = 28;
inline constexpr uint16_t kArpOpRequest = 1;
inline constexpr uint16_t kArpOpReply = 2;

struct ArpPacket {
  uint16_t op = 0;
  EtherAddr sender_mac;
  InetAddr sender_ip;
  EtherAddr target_mac;
  InetAddr target_ip;

  static bool Parse(const uint8_t* p, size_t len, ArpPacket* out) {
    if (len < kArpPacketSize) {
      return false;
    }
    if (LoadBe16(p) != 1 || LoadBe16(p + 2) != kEtherTypeIp || p[4] != 6 || p[5] != 4) {
      return false;  // not Ethernet/IPv4 ARP
    }
    out->op = LoadBe16(p + 6);
    std::memcpy(out->sender_mac.bytes, p + 8, 6);
    out->sender_ip.value = LoadBe32(p + 14);
    std::memcpy(out->target_mac.bytes, p + 18, 6);
    out->target_ip.value = LoadBe32(p + 24);
    return true;
  }

  void Serialize(uint8_t* p) const {
    StoreBe16(p, 1);                // hardware: Ethernet
    StoreBe16(p + 2, kEtherTypeIp); // protocol: IPv4
    p[4] = 6;                       // MAC length
    p[5] = 4;                       // IP length
    StoreBe16(p + 6, op);
    std::memcpy(p + 8, sender_mac.bytes, 6);
    StoreBe32(p + 14, sender_ip.value);
    std::memcpy(p + 18, target_mac.bytes, 6);
    StoreBe32(p + 24, target_ip.value);
  }
};

// ---- IPv4 ----

inline constexpr size_t kIpHeaderSize = 20;  // no options
inline constexpr uint8_t kIpProtoIcmp = 1;
inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;
inline constexpr uint16_t kIpFlagDontFragment = 0x4000;
inline constexpr uint16_t kIpFlagMoreFragments = 0x2000;
inline constexpr uint16_t kIpFragOffsetMask = 0x1fff;

struct Ipv4Header {
  uint8_t header_len = kIpHeaderSize;  // bytes
  uint8_t tos = 0;
  uint16_t total_len = 0;
  uint16_t ident = 0;
  uint16_t frag = 0;  // flags | offset-in-8-byte-units
  uint8_t ttl = 64;
  uint8_t proto = 0;
  InetAddr src;
  InetAddr dst;

  static bool Parse(const uint8_t* p, size_t len, Ipv4Header* out) {
    if (len < kIpHeaderSize) {
      return false;
    }
    if ((p[0] >> 4) != 4) {
      return false;
    }
    out->header_len = static_cast<uint8_t>((p[0] & 0xf) * 4);
    if (out->header_len < kIpHeaderSize || out->header_len > len) {
      return false;
    }
    out->tos = p[1];
    out->total_len = LoadBe16(p + 2);
    out->ident = LoadBe16(p + 4);
    out->frag = LoadBe16(p + 6);
    out->ttl = p[8];
    out->proto = p[9];
    out->src.value = LoadBe32(p + 12);
    out->dst.value = LoadBe32(p + 16);
    return out->total_len >= out->header_len;
  }

  // Serializes with checksum (call after all fields set).
  void Serialize(uint8_t* p) const;

  uint16_t frag_offset_bytes() const {
    return static_cast<uint16_t>((frag & kIpFragOffsetMask) * 8);
  }
  bool more_fragments() const { return (frag & kIpFlagMoreFragments) != 0; }
};

// Pseudo-header checksum seed for TCP/UDP.
uint32_t PseudoHeaderSum(InetAddr src, InetAddr dst, uint8_t proto, uint16_t length);

// ---- ICMP ----

inline constexpr size_t kIcmpHeaderSize = 8;
inline constexpr uint8_t kIcmpEchoReply = 0;
inline constexpr uint8_t kIcmpEchoRequest = 8;

// ---- UDP ----

inline constexpr size_t kUdpHeaderSize = 8;

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;

  static bool Parse(const uint8_t* p, size_t len, UdpHeader* out) {
    if (len < kUdpHeaderSize) {
      return false;
    }
    out->src_port = LoadBe16(p);
    out->dst_port = LoadBe16(p + 2);
    out->length = LoadBe16(p + 4);
    out->checksum = LoadBe16(p + 6);
    return out->length >= kUdpHeaderSize;
  }

  void Serialize(uint8_t* p) const {
    StoreBe16(p, src_port);
    StoreBe16(p + 2, dst_port);
    StoreBe16(p + 4, length);
    StoreBe16(p + 6, checksum);
  }
};

// ---- TCP ----

inline constexpr size_t kTcpHeaderSize = 20;  // no options
inline constexpr uint8_t kTcpFlagFin = 0x01;
inline constexpr uint8_t kTcpFlagSyn = 0x02;
inline constexpr uint8_t kTcpFlagRst = 0x04;
inline constexpr uint8_t kTcpFlagPsh = 0x08;
inline constexpr uint8_t kTcpFlagAck = 0x10;

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t data_off = kTcpHeaderSize;  // bytes
  uint8_t flags = 0;
  uint16_t window = 0;
  uint16_t checksum = 0;
  uint16_t urgent = 0;
  uint16_t mss_option = 0;  // parsed from options when present (SYN)

  static bool Parse(const uint8_t* p, size_t len, TcpHeader* out);
  // Serializes the fixed header; `with_mss` appends a 4-byte MSS option
  // (caller must have sized data_off accordingly).
  void Serialize(uint8_t* p, bool with_mss = false) const;
};

// Sequence-number arithmetic (wraparound-safe).
inline bool SeqLt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) < 0; }
inline bool SeqLeq(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) <= 0; }
inline bool SeqGt(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) > 0; }
inline bool SeqGeq(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) >= 0; }

}  // namespace oskit::net

#endif  // OSKIT_SRC_NET_WIRE_FORMATS_H_
