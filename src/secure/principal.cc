#include "src/secure/principal.h"

#include <cstdio>
#include <cstring>

namespace oskit::secure {

const char* ResourceName(Resource r) {
  switch (r) {
    case Resource::kSockets:
      return "sockets";
    case Resource::kPorts:
      return "ports";
    case Resource::kMbufBytes:
      return "mbuf_bytes";
    case Resource::kMemBytes:
      return "mem_bytes";
    case Resource::kFsBlocks:
      return "fs_blocks";
    case Resource::kOpenFiles:
      return "open_files";
    case Resource::kSelectorRegs:
      return "selector_regs";
    case Resource::kJournalTxns:
      return "journal_txns";
    case Resource::kCount:
      break;
  }
  return "unknown";
}

namespace {

// Registry names are shared by every principal (the registry sums same-name
// instances); built once since CounterBlock keeps the char pointers.
struct QuotaNames {
  std::string charged[kResourceCount];
  std::string denied[kResourceCount];
  QuotaNames() {
    for (size_t i = 0; i < kResourceCount; ++i) {
      const char* res = ResourceName(static_cast<Resource>(i));
      charged[i] = std::string("sec.quota.charged.") + res;
      denied[i] = std::string("sec.quota.denied.") + res;
    }
  }
};

const QuotaNames& Names() {
  static QuotaNames names;
  return names;
}

}  // namespace

Principal::Principal(uint32_t id, std::string name, const Budget& budget,
                     const Acl& acl, trace::TraceEnv* trace)
    : id_(id), name_(std::move(name)), budget_(budget), acl_(acl) {
  std::initializer_list<trace::CounterBlock::Item> items = {
      {Names().charged[0].c_str(), &charged_[0], /*gauge=*/true},
      {Names().charged[1].c_str(), &charged_[1], /*gauge=*/true},
      {Names().charged[2].c_str(), &charged_[2], /*gauge=*/true},
      {Names().charged[3].c_str(), &charged_[3], /*gauge=*/true},
      {Names().charged[4].c_str(), &charged_[4], /*gauge=*/true},
      {Names().charged[5].c_str(), &charged_[5], /*gauge=*/true},
      {Names().charged[6].c_str(), &charged_[6], /*gauge=*/true},
      {Names().charged[7].c_str(), &charged_[7], /*gauge=*/true},
      {Names().denied[0].c_str(), &denied_[0]},
      {Names().denied[1].c_str(), &denied_[1]},
      {Names().denied[2].c_str(), &denied_[2]},
      {Names().denied[3].c_str(), &denied_[3]},
      {Names().denied[4].c_str(), &denied_[4]},
      {Names().denied[5].c_str(), &denied_[5]},
      {Names().denied[6].c_str(), &denied_[6]},
      {Names().denied[7].c_str(), &denied_[7]},
  };
  static_assert(kResourceCount == 8, "update the counter item list");
  binding_.Bind(&trace::ResolveTraceEnv(trace)->registry, items);
}

Principal::~Principal() = default;

Error Principal::Charge(Resource r, uint64_t n) {
  size_t i = static_cast<size_t>(r);
  if (killed_) {
    ++denied_[i];
    return Error::kAccess;
  }
  if (charged_[i].value() + n > budget_.limit[i]) {
    ++denied_[i];
    return Error::kQuotaExceeded;
  }
  charged_[i] += n;
  return Error::kOk;
}

void Principal::ForceCharge(Resource r, uint64_t n) {
  charged_[static_cast<size_t>(r)] += n;
}

void Principal::Credit(Resource r, uint64_t n) {
  size_t i = static_cast<size_t>(r);
  uint64_t cur = charged_[i].value();
  charged_[i] -= (n < cur ? n : cur);
}

uint64_t Principal::denied_total() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kResourceCount; ++i) {
    total += denied_[i].value();
  }
  return total;
}

PrincipalRegistry::PrincipalRegistry(trace::TraceEnv* trace)
    : trace_(trace::ResolveTraceEnv(trace)) {}

PrincipalRegistry::~PrincipalRegistry() = default;

Principal* PrincipalRegistry::Create(const std::string& name,
                                     const Budget& budget, const Acl& acl) {
  principals_.emplace_back(
      new Principal(next_id_++, name, budget, acl, trace_));
  return principals_.back().get();
}

Principal* PrincipalRegistry::Find(const std::string& name) {
  for (auto& p : principals_) {
    if (p->name() == name) {
      return p.get();
    }
  }
  return nullptr;
}

Principal* PrincipalRegistry::FindById(uint32_t id) {
  for (auto& p : principals_) {
    if (p->id() == id) {
      return p.get();
    }
  }
  return nullptr;
}

void PrincipalRegistry::KillByDomain(uint32_t domain) {
  Principal* p = FindById(domain);
  if (p != nullptr) {
    p->killed_ = true;
  }
}

uint64_t PrincipalRegistry::TotalCharged(Resource r) const {
  uint64_t total = 0;
  for (const auto& p : principals_) {
    total += p->charged(r);
  }
  return total;
}

uint64_t PrincipalRegistry::TotalDenied() const {
  uint64_t total = 0;
  for (const auto& p : principals_) {
    total += p->denied_total();
  }
  return total;
}

void PrincipalRegistry::Tenants(
    const std::function<void(const char*)>& emit) const {
  char line[160];
  std::snprintf(line, sizeof(line), "tenants: %zu principal(s)",
                principals_.size());
  emit(line);
  for (const auto& p : principals_) {
    std::snprintf(line, sizeof(line),
                  "  principal %u \"%s\" denied_total=%llu%s", p->id(),
                  p->name().c_str(),
                  static_cast<unsigned long long>(p->denied_total()),
                  p->killed() ? " KILLED" : "");
    emit(line);
    for (size_t i = 0; i < kResourceCount; ++i) {
      Resource r = static_cast<Resource>(i);
      uint64_t limit = p->budget().Get(r);
      if (limit == Budget::kUnlimited && p->charged(r) == 0 &&
          p->denied(r) == 0) {
        continue;  // nothing to say about an untouched open resource
      }
      if (limit == Budget::kUnlimited) {
        std::snprintf(line, sizeof(line),
                      "    %-14s charged=%llu limit=unlimited denied=%llu",
                      ResourceName(r),
                      static_cast<unsigned long long>(p->charged(r)),
                      static_cast<unsigned long long>(p->denied(r)));
      } else {
        std::snprintf(line, sizeof(line),
                      "    %-14s charged=%llu limit=%llu denied=%llu",
                      ResourceName(r),
                      static_cast<unsigned long long>(p->charged(r)),
                      static_cast<unsigned long long>(limit),
                      static_cast<unsigned long long>(p->denied(r)));
      }
      emit(line);
    }
  }
}

}  // namespace oskit::secure
