// Principals, per-principal resource budgets, and the quota accountant
// behind the §3.8 security wrappers.
//
// The paper's security-wrapper case study interposes permission checks at
// COM interface granularity.  This subsystem supplies the *subject* side of
// that story: a Principal names a tenant, carries an ACL and a Budget (one
// limit per Resource), and keeps charge/credit books that the wrappers in
// src/secure/wrap_*.cc and the in-stack degradation hooks (src/net SYN
// admission + RX shed, src/fs journal-txn admission) debit at every call
// boundary.  Denial is always an error return — kQuotaExceeded from a COM
// wrapper, a counted shed inside the stack — never a panic and never a
// silent drop.
//
// Observability follows the repo convention: every principal registers its
// per-resource gauges under the SAME dotted names (sec.quota.charged.<res>,
// sec.quota.denied.<res>), so the trace registry reports the tenant-wide sum
// while kmon's `tenants` command and the benches read the per-principal
// figures through the registry object.

#ifndef OSKIT_SRC_SECURE_PRINCIPAL_H_
#define OSKIT_SRC_SECURE_PRINCIPAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/error.h"
#include "src/trace/trace.h"

namespace oskit::secure {

// Resources a tenant can hold.  Each maps to one charged gauge and one
// denied counter per principal.
enum class Resource : uint32_t {
  kSockets = 0,       // live Socket objects (created + accepted)
  kPorts,             // bound PCB endpoints (ephemeral or explicit)
  kMbufBytes,         // RX bytes parked in socket buffers
  kMemBytes,          // LMM/AMM/BufIo-map allocation bytes
  kFsBlocks,          // FFS blocks owned (512-byte st_blocks units)
  kOpenFiles,         // live wrapped File/Dir objects
  kSelectorRegs,      // NetSelector registrations
  kJournalTxns,       // metadata ops in the open journal transaction
  kCount,
};

constexpr size_t kResourceCount = static_cast<size_t>(Resource::kCount);

// Short dotted-name suffix ("sockets", "mbuf_bytes", ...).
const char* ResourceName(Resource r);

// Per-resource limits.  Defaults to unlimited; a campaign builds budgets
// with designated initializers and leaves the rest open.
struct Budget {
  static constexpr uint64_t kUnlimited = ~uint64_t{0};
  uint64_t limit[kResourceCount] = {
      kUnlimited, kUnlimited, kUnlimited, kUnlimited,
      kUnlimited, kUnlimited, kUnlimited, kUnlimited,
  };

  Budget& Set(Resource r, uint64_t n) {
    limit[static_cast<size_t>(r)] = n;
    return *this;
  }
  uint64_t Get(Resource r) const { return limit[static_cast<size_t>(r)]; }
};

// Coarse capability bits checked by the wrappers before any quota math.
struct Acl {
  bool allow_net = true;        // may create sockets / selectors
  bool allow_fs = true;         // may touch the filesystem at all
  bool allow_fs_write = true;   // may mutate the filesystem
  bool allow_blkio_write = true;  // may write through a raw BlkIo wrapper
};

class PrincipalRegistry;

// One tenant.  Created and owned by a PrincipalRegistry; wrappers hold a
// raw pointer (the registry outlives every wrapped object graph).
class Principal {
 public:
  const std::string& name() const { return name_; }
  uint32_t id() const { return id_; }
  const Acl& acl() const { return acl_; }
  const Budget& budget() const { return budget_; }

  // Debits `n` units of `r`.  Over budget: nothing is charged, the denial
  // counter bumps, and kQuotaExceeded comes back for the wrapper to return.
  // A killed principal (its domain was contained by the memory monitor) is
  // denied everything: kAccess, with the denial counted — one choke point
  // that deprivileges the whole wrapper surface.
  Error Charge(Resource r, uint64_t n);

  // True once the memory monitor killed this principal's domain (see
  // PrincipalRegistry::KillByDomain).  Kill is one-way.
  bool killed() const { return killed_; }

  // Charge that may run past the limit (post-hoc reconciliation, e.g. FFS
  // metadata blocks discovered only after the operation).  Never fails.
  void ForceCharge(Resource r, uint64_t n);

  // Credits `n` units back.  Clamped at zero so a stray double-credit can
  // not wrap the gauge; the balance property test pins exact symmetry.
  void Credit(Resource r, uint64_t n);

  // Counts a refusal that did not go through Charge (ACL denials, batched
  // admission with zero headroom), so every refused call stays visible in
  // sec.quota.denied.<res>.
  void CountDenial(Resource r) { ++denied_[static_cast<size_t>(r)]; }

  uint64_t charged(Resource r) const {
    return charged_[static_cast<size_t>(r)].value();
  }
  uint64_t denied(Resource r) const {
    return denied_[static_cast<size_t>(r)].value();
  }
  uint64_t denied_total() const;

 private:
  friend class PrincipalRegistry;
  friend struct std::default_delete<Principal>;  // registry's unique_ptr
  Principal(uint32_t id, std::string name, const Budget& budget, const Acl& acl,
            trace::TraceEnv* trace);
  ~Principal();
  Principal(const Principal&) = delete;
  Principal& operator=(const Principal&) = delete;

  uint32_t id_;
  std::string name_;
  Budget budget_;
  Acl acl_;
  bool killed_ = false;
  trace::Counter charged_[kResourceCount];  // gauges
  trace::Counter denied_[kResourceCount];
  trace::CounterBlock binding_;
};

// Owns the principals of one protection domain (typically one simulated
// host).  Also carries the "current principal" used by enforcement points
// that sit below the COM boundary and cannot be handed a subject per call
// (the FFS journal admission hook): wrappers bracket delegated calls with a
// ScopedPrincipal.  Safe under the §4.7.4 concurrency model — at most one
// thread of control inside a component at a time — as long as the bracketed
// call cannot block (true for MemBlkIo-backed filesystems).
class PrincipalRegistry {
 public:
  // `trace` is where per-principal counters register; null binds the
  // process-global default environment.
  explicit PrincipalRegistry(trace::TraceEnv* trace = nullptr);
  ~PrincipalRegistry();
  PrincipalRegistry(const PrincipalRegistry&) = delete;
  PrincipalRegistry& operator=(const PrincipalRegistry&) = delete;

  Principal* Create(const std::string& name, const Budget& budget = {},
                    const Acl& acl = {});

  Principal* Find(const std::string& name);
  Principal* FindById(uint32_t id);
  size_t size() const { return principals_.size(); }
  Principal* at(size_t i) { return principals_[i].get(); }

  // Marks the principal whose id matches the monitor domain as killed —
  // every wrapper Charge from then on is a counted kAccess denial.  The
  // memory-monitor kill hook (secure::AttachMonitor) calls this; unknown
  // ids are ignored, killing twice is idempotent.
  void KillByDomain(uint32_t domain);

  // Sum of outstanding charges across principals for one resource.
  uint64_t TotalCharged(Resource r) const;
  uint64_t TotalDenied() const;

  Principal* current() const { return current_; }

  // kmon `tenants`: one formatted line per emit() call — every principal's
  // budgets, live charges, and denial counts.
  void Tenants(const std::function<void(const char*)>& emit) const;

 private:
  friend class ScopedPrincipal;
  trace::TraceEnv* trace_;
  std::vector<std::unique_ptr<Principal>> principals_;
  uint32_t next_id_ = 1;
  Principal* current_ = nullptr;
};

// RAII current-principal bracket (see PrincipalRegistry).  Nests.
class ScopedPrincipal {
 public:
  ScopedPrincipal(PrincipalRegistry* registry, Principal* p)
      : registry_(registry), prev_(registry->current_) {
    registry_->current_ = p;
  }
  ~ScopedPrincipal() { registry_->current_ = prev_; }
  ScopedPrincipal(const ScopedPrincipal&) = delete;
  ScopedPrincipal& operator=(const ScopedPrincipal&) = delete;

 private:
  PrincipalRegistry* registry_;
  Principal* prev_;
};

}  // namespace oskit::secure

#endif  // OSKIT_SRC_SECURE_PRINCIPAL_H_
