// The §3.8 COM interposers: uniform security wrappers for the high-value
// interfaces, enforcing ACLs and per-principal quotas at call boundaries.
//
// Every wrapper follows the same delegation contract (the one
// src/fs/secure.cc established):
//
//   * delegation goes through an owned reference on the inner object;
//   * Query exposes exactly the interfaces the wrapper interposes on —
//     unknown GUIDs return kNoInterface and are NEVER forwarded to the
//     inner object (a forwarded extension interface would hand the caller
//     an unwrapped path around the checks);
//   * objects returned by wrapped methods (accepted sockets, Lookup/Create
//     results) come back wrapped under the same principal, so protection
//     follows every traversal;
//   * denial is an error return — kAccess for ACL, kQuotaExceeded for
//     budget — never a panic, and every denial is counted on the principal.
//
// Charges are symmetric: whatever a wrapper charges at creation/registration
// it credits at release/teardown, so a tenant's sec.quota.charged.* gauges
// drain to zero when its object graph dies (the balance property test and
// the tenant campaign's leak check pin this).

#ifndef OSKIT_SRC_SECURE_WRAP_H_
#define OSKIT_SRC_SECURE_WRAP_H_

#include <cstddef>
#include <unordered_map>

#include "src/amm/amm.h"
#include "src/com/bufio.h"
#include "src/com/filesystem.h"
#include "src/com/netselector.h"
#include "src/com/socket.h"
#include "src/fs/ffs.h"
#include "src/lmm/lmm.h"
#include "src/machine/memmon.h"
#include "src/net/stack.h"
#include "src/secure/principal.h"

namespace oskit::secure {

// The per-host accountant behind the network wrappers: implements the
// stack's SoAccounting degradation hooks (SYN admission, RX mbuf charge/
// shed) and owns the inner-Socket -> Principal attribution map the socket
// wrappers maintain.  Install with stack->SetAccounting(&guard); the guard
// and its PrincipalRegistry must outlive the stack's connections.
class NetGuard final : public net::SoAccounting {
 public:
  explicit NetGuard(PrincipalRegistry* registry) : registry_(registry) {}

  // net::SoAccounting
  bool AdmitSyn(Socket* listener) override;
  bool ChargeRx(Socket* owner, void** tag, size_t bytes) override;
  void CreditRx(void* tag, size_t bytes) override;

  // Wrapper plumbing: attribution of inner sockets to principals.
  void RegisterSocket(Socket* inner, Principal* p) { owners_[inner] = p; }
  void UnregisterSocket(Socket* inner) { owners_.erase(inner); }
  Principal* OwnerOf(Socket* inner) const;

  PrincipalRegistry* registry() const { return registry_; }

 private:
  PrincipalRegistry* registry_;
  std::unordered_map<Socket*, Principal*> owners_;
};

// Socket factory wrapper: Create charges Resource::kSockets against `p`
// (ACL allow_net gates it entirely) and returns sockets that keep charging
// under p — ports on connect, child sockets on accept — and credit
// everything back on release.
ComPtr<SocketFactory> MakeSecureSocketFactory(ComPtr<SocketFactory> inner,
                                              Principal* p, NetGuard* guard);

// Wraps one already-created socket under `p`.  The caller must have charged
// Resource::kSockets for it (MakeSecureSocketFactory does this for you);
// the wrapper credits that unit back when it dies.
ComPtr<Socket> MakeSecureSocket(ComPtr<Socket> inner, Principal* p,
                                NetGuard* guard);

// Selector wrapper: Add charges Resource::kSelectorRegs, Remove/teardown
// credits; harvested events are rewritten to reference the wrapped sockets
// the tenant registered, never the inner objects.
ComPtr<NetSelector> MakeSecureSelector(ComPtr<NetSelector> inner,
                                       Principal* p);

// Filesystem wrapper: live File/Dir wrappers charge Resource::kOpenFiles,
// data growth charges Resource::kFsBlocks (512-byte st_blocks units,
// estimated before the op for the denial path and reconciled against the
// real stat delta after), Unlink/Rmdir/shrink credit back.  Delegated calls
// are bracketed with ScopedPrincipal so the FFS journal-admission hook can
// bill the right tenant.  `registry` must outlive the wrapped graph.
ComPtr<FileSystem> MakeSecureFs(ComPtr<FileSystem> inner, Principal* p,
                                PrincipalRegistry* registry);

// BlkIo/BufIo wrapper: ACL-gates writes (allow_blkio_write), and charges
// Resource::kMemBytes for BufIo mappings (credited at Unmap/teardown).
// The returned object exposes BufIo via Query iff the inner object does.
ComPtr<BlkIo> MakeSecureBufIo(ComPtr<BlkIo> inner, Principal* p);

// Installs the journal-transaction admission hooks on an FFS mount: each
// metadata op charges Resource::kJournalTxns against the registry's current
// principal BEFORE its intent blocks join the open transaction (denial
// aborts the op with kQuotaExceeded), and commits credit the charges back.
void InstallJournalAdmission(fs::Offs* fs, PrincipalRegistry* registry);

// ---------------------------------------------------------------------------
// Nested-kernel deprivilege glue (src/machine/memmon.h)
// ---------------------------------------------------------------------------

// Wires the monitor's domain-kill hook to the registry: when the monitor
// contains a domain, the matching principal (domain id == principal id) is
// marked killed and every wrapper Charge from then on is a counted kAccess
// denial — the COM surface and the memory system revoke together.
void AttachMonitor(PrincipalRegistry* registry, MemMonitor* mon);

// The deprivileged view a wrapped component stores physical memory
// through: component-writable pages only, attributed to `p`'s domain.
MemDomain DomainView(MemMonitor* mon, const Principal* p);

// ---------------------------------------------------------------------------
// Allocator wrappers (not COM: the LMM/AMM are plain components)
// ---------------------------------------------------------------------------

// Charges Resource::kMemBytes per allocated byte; a quota denial returns
// nullptr exactly as pool exhaustion would (and is counted on the
// principal, unlike exhaustion).
//
// With a memory monitor attached (the second constructor), allocations
// come back deprivileged: every page fully covered by the block is flipped
// to component-writable through the MonitorCall gate so the tenant's
// MemDomain view can store there, and Free flips it back to
// kernel-writable before the memory returns to the pool — a freed page is
// never left writable by a dead tenant.
class SecureLmm {
 public:
  SecureLmm(Lmm* inner, Principal* p) : inner_(inner), principal_(p) {}
  SecureLmm(Lmm* inner, Principal* p, MemMonitor* mon, PhysMem* phys)
      : inner_(inner), principal_(p), mon_(mon), phys_(phys) {}

  void* Alloc(size_t size, uint32_t flags);
  void* AllocAligned(size_t size, uint32_t flags, unsigned align_bits,
                     uintptr_t align_ofs);
  void Free(void* block, size_t size);

  Lmm* inner() { return inner_; }

 private:
  void FlipPages(void* block, size_t size, PageProt prot);

  Lmm* inner_;
  Principal* principal_;
  MemMonitor* mon_ = nullptr;
  PhysMem* phys_ = nullptr;
};

// Charges Resource::kMemBytes per mapped byte; denial surfaces as
// kQuotaExceeded (distinguishable from the map-full kNoSpace).
class SecureAmm {
 public:
  SecureAmm(Amm* inner, Principal* p) : inner_(inner), principal_(p) {}

  Error Allocate(uint64_t* inout_addr, uint64_t size, uint32_t flags,
                 unsigned align_bits = 0,
                 uint64_t upper_bound = ~uint64_t{0});
  Error Deallocate(uint64_t addr, uint64_t size);

  Amm* inner() { return inner_; }

 private:
  Amm* inner_;
  Principal* principal_;
};

}  // namespace oskit::secure

#endif  // OSKIT_SRC_SECURE_WRAP_H_
