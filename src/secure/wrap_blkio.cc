// Raw-device security wrapper: BlkIo always, BufIo iff the inner object
// grants it (the §4.4.2 discovery idiom survives wrapping — the wrapper
// probes once and mirrors the answer, it never forwards unknown GUIDs).
//
// Writes are ACL-gated (allow_blkio_write); BufIo mappings charge
// Resource::kMemBytes per pinned byte, credited at Unmap — and any
// mapping the client leaks is credited at the wrapper's last Release so
// the books still balance.

#include <utility>

#include "src/secure/wrap.h"

namespace oskit::secure {

namespace {

class SecureBufIo final : public BufIo, public RefCounted<SecureBufIo> {
 public:
  SecureBufIo(ComPtr<BlkIo> inner, Principal* p)
      : inner_(std::move(inner)), principal_(p) {
    inner_buf_ = ComPtr<BufIo>::FromQuery(inner_.get());
  }

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == BlkIo::kIid) {
      AddRef();
      *out = static_cast<BlkIo*>(this);
      return Error::kOk;
    }
    if (iid == BufIo::kIid && inner_buf_) {
      AddRef();
      *out = static_cast<BufIo*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }

  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override {
    if (ref_count() == 1 && map_charged_ > 0) {
      principal_->Credit(Resource::kMemBytes, map_charged_);
      map_charged_ = 0;
    }
    return ReleaseImpl();
  }

  // BlkIo
  uint32_t GetBlockSize() override { return inner_->GetBlockSize(); }
  Error Read(void* buf, off_t64 offset, size_t amount,
             size_t* out_actual) override {
    return inner_->Read(buf, offset, amount, out_actual);
  }
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override {
    if (!principal_->acl().allow_blkio_write) {
      principal_->CountDenial(Resource::kMemBytes);
      return Error::kAccess;
    }
    return inner_->Write(buf, offset, amount, out_actual);
  }
  Error GetSize(off_t64* out_size) override { return inner_->GetSize(out_size); }
  Error SetSize(off_t64 new_size) override {
    if (!principal_->acl().allow_blkio_write) {
      principal_->CountDenial(Resource::kMemBytes);
      return Error::kAccess;
    }
    return inner_->SetSize(new_size);
  }

  // BufIo (reachable via Query only when the inner object has it)
  Error Map(void** out_addr, off_t64 offset, size_t amount) override {
    *out_addr = nullptr;
    if (!inner_buf_) {
      return Error::kNotImpl;
    }
    Error err = principal_->Charge(Resource::kMemBytes, amount);
    if (!Ok(err)) {
      return err;
    }
    err = inner_buf_->Map(out_addr, offset, amount);
    if (!Ok(err)) {
      principal_->Credit(Resource::kMemBytes, amount);
      return err;
    }
    map_charged_ += amount;
    return Error::kOk;
  }

  Error Unmap(void* addr, off_t64 offset, size_t amount) override {
    if (!inner_buf_) {
      return Error::kNotImpl;
    }
    Error err = inner_buf_->Unmap(addr, offset, amount);
    if (Ok(err)) {
      size_t n = amount < map_charged_ ? amount : map_charged_;
      principal_->Credit(Resource::kMemBytes, n);
      map_charged_ -= n;
    }
    return err;
  }

  Error Wire() override { return inner_buf_ ? inner_buf_->Wire() : Error::kNotImpl; }
  Error Unwire() override {
    return inner_buf_ ? inner_buf_->Unwire() : Error::kNotImpl;
  }

 private:
  friend class RefCounted<SecureBufIo>;
  ~SecureBufIo() = default;

  ComPtr<BlkIo> inner_;
  ComPtr<BufIo> inner_buf_;  // null when the inner object lacks BufIo
  Principal* principal_;
  size_t map_charged_ = 0;  // bytes currently pinned through this wrapper
};

}  // namespace

ComPtr<BlkIo> MakeSecureBufIo(ComPtr<BlkIo> inner, Principal* p) {
  return ComPtr<BlkIo>(new SecureBufIo(std::move(inner), p));
}

}  // namespace oskit::secure
