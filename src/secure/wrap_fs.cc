// Filesystem security wrappers and the FFS journal-admission hook.
//
// Charge points and their symmetric credits:
//
//   kOpenFiles    GetRoot / Lookup / Create (one per    wrapper's last Release
//                 live wrapped File/Dir)
//   kFsBlocks     data growth (Write/SetSize, charged   shrink, Unlink/Rmdir
//                 as 512-byte st_blocks units) plus a
//                 flat name unit per Create/Mkdir
//   kJournalTxns  each metadata op admitted into the    every transaction
//                 open journal transaction              settle in Sync
//
// Block accounting is estimate-then-reconcile: the wrapper charges a
// conservative growth estimate BEFORE delegating (that is the denial point —
// a tenant at its disk budget gets kQuotaExceeded before the filesystem
// mutates anything), then corrects the books against the real st_blocks
// delta afterwards (indirect blocks make growth slightly unpredictable).
// Per-inode charges live in a books map shared by the whole wrapped graph,
// so Unlink can credit exactly what this tenant's writes charged.
//
// Every delegated call that can reach NoteMetaOp runs under ScopedPrincipal,
// which is how the journal-admission hook below knows whom to bill.

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/secure/wrap.h"

namespace oskit::secure {

namespace {

// Books shared by every wrapper in one MakeSecureFs graph.
struct FsBooks {
  PrincipalRegistry* registry;
  Principal* principal;
  // ino -> kFsBlocks units this tenant has charged for that inode
  // (st_blocks growth plus the flat Create/Mkdir name unit).
  std::unordered_map<uint64_t, uint64_t> blocks;
};

using FsBooksPtr = std::shared_ptr<FsBooks>;

File* WrapFileOrDir(ComPtr<File> child, const FsBooksPtr& books);

// Reconciles a pre-charged growth `estimate` against the real st_blocks
// delta once the inner operation has run.
void ReconcileBlocks(const FsBooksPtr& books, uint64_t ino,
                     uint64_t before_blocks, File* inner, uint64_t estimate) {
  FileStat after{};
  uint64_t after_blocks = before_blocks;
  if (Ok(inner->GetStat(&after))) {
    after_blocks = after.blocks;
  }
  Principal* p = books->principal;
  if (after_blocks >= before_blocks) {
    uint64_t delta = after_blocks - before_blocks;
    if (delta > estimate) {
      p->ForceCharge(Resource::kFsBlocks, delta - estimate);
    } else {
      p->Credit(Resource::kFsBlocks, estimate - delta);
    }
    if (delta > 0) {
      books->blocks[ino] += delta;
    }
    return;
  }
  // Shrink: the estimate was never used, and freed blocks are credited —
  // but only up to what this tenant actually charged for the inode.
  uint64_t freed = before_blocks - after_blocks;
  p->Credit(Resource::kFsBlocks, estimate);
  auto it = books->blocks.find(ino);
  if (it != books->blocks.end()) {
    uint64_t credit = freed < it->second ? freed : it->second;
    p->Credit(Resource::kFsBlocks, credit);
    it->second -= credit;
  }
}

// Shared File-surface implementation for TenantFile and TenantDir.
Error GuardedWrite(const FsBooksPtr& books, File* inner, uint64_t ino,
                   const void* buf, uint64_t offset, size_t amount,
                   size_t* out_actual) {
  *out_actual = 0;
  Principal* p = books->principal;
  if (!p->acl().allow_fs_write) {
    p->CountDenial(Resource::kFsBlocks);
    return Error::kAccess;
  }
  FileStat before{};
  Error err = inner->GetStat(&before);
  if (!Ok(err)) {
    return err;
  }
  uint64_t end = offset + amount;
  uint64_t have = before.blocks * 512;
  uint64_t estimate = end > have ? (end - have + 511) / 512 : 0;
  if (estimate > 0) {
    err = p->Charge(Resource::kFsBlocks, estimate);
    if (!Ok(err)) {
      return err;
    }
  }
  {
    ScopedPrincipal scope(books->registry, p);
    err = inner->Write(buf, offset, amount, out_actual);
  }
  ReconcileBlocks(books, ino, before.blocks, inner, estimate);
  return err;
}

Error GuardedSetSize(const FsBooksPtr& books, File* inner, uint64_t ino,
                     uint64_t new_size) {
  Principal* p = books->principal;
  if (!p->acl().allow_fs_write) {
    p->CountDenial(Resource::kFsBlocks);
    return Error::kAccess;
  }
  FileStat before{};
  Error err = inner->GetStat(&before);
  if (!Ok(err)) {
    return err;
  }
  uint64_t new_units = (new_size + 511) / 512;
  uint64_t estimate = new_units > before.blocks ? new_units - before.blocks : 0;
  if (estimate > 0) {
    err = p->Charge(Resource::kFsBlocks, estimate);
    if (!Ok(err)) {
      return err;
    }
  }
  {
    ScopedPrincipal scope(books->registry, p);
    err = inner->SetSize(new_size);
  }
  ReconcileBlocks(books, ino, before.blocks, inner, estimate);
  return err;
}

class TenantFile final : public File, public RefCounted<TenantFile> {
 public:
  TenantFile(ComPtr<File> inner, FsBooksPtr books, uint64_t ino)
      : inner_(std::move(inner)), books_(std::move(books)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid) {
      AddRef();
      *out = static_cast<File*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }

  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override {
    if (ref_count() == 1) {
      books_->principal->Credit(Resource::kOpenFiles, 1);
    }
    return ReleaseImpl();
  }

  Error Read(void* buf, uint64_t offset, size_t amount,
             size_t* out_actual) override {
    return inner_->Read(buf, offset, amount, out_actual);
  }
  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    return GuardedWrite(books_, inner_.get(), ino_, buf, offset, amount,
                        out_actual);
  }
  Error GetStat(FileStat* out_stat) override { return inner_->GetStat(out_stat); }
  Error SetSize(uint64_t new_size) override {
    return GuardedSetSize(books_, inner_.get(), ino_, new_size);
  }
  Error Sync() override {
    ScopedPrincipal scope(books_->registry, books_->principal);
    return inner_->Sync();
  }

 private:
  friend class RefCounted<TenantFile>;
  ~TenantFile() = default;

  ComPtr<File> inner_;
  FsBooksPtr books_;
  uint64_t ino_;
};

class TenantDir final : public Dir, public RefCounted<TenantDir> {
 public:
  TenantDir(ComPtr<Dir> inner, FsBooksPtr books, uint64_t ino)
      : inner_(std::move(inner)), books_(std::move(books)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid || iid == Dir::kIid) {
      AddRef();
      *out = static_cast<Dir*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }

  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override {
    if (ref_count() == 1) {
      books_->principal->Credit(Resource::kOpenFiles, 1);
    }
    return ReleaseImpl();
  }

  // File surface (directories answer stat/read; writes are the inner
  // filesystem's error to report, but the ACL still gates them).
  Error Read(void* buf, uint64_t offset, size_t amount,
             size_t* out_actual) override {
    return inner_->Read(buf, offset, amount, out_actual);
  }
  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    return GuardedWrite(books_, inner_.get(), ino_, buf, offset, amount,
                        out_actual);
  }
  Error GetStat(FileStat* out_stat) override { return inner_->GetStat(out_stat); }
  Error SetSize(uint64_t new_size) override {
    return GuardedSetSize(books_, inner_.get(), ino_, new_size);
  }
  Error Sync() override {
    ScopedPrincipal scope(books_->registry, books_->principal);
    return inner_->Sync();
  }

  // Dir surface
  Error Lookup(const char* name, File** out_file) override {
    *out_file = nullptr;
    Principal* p = books_->principal;
    Error err = p->Charge(Resource::kOpenFiles, 1);
    if (!Ok(err)) {
      return err;
    }
    ComPtr<File> child;
    err = inner_->Lookup(name, child.Receive());
    if (!Ok(err)) {
      p->Credit(Resource::kOpenFiles, 1);
      return err;
    }
    *out_file = WrapFileOrDir(std::move(child), books_);
    return Error::kOk;
  }

  Error Create(const char* name, uint32_t mode, File** out_file) override {
    *out_file = nullptr;
    Principal* p = books_->principal;
    if (!p->acl().allow_fs_write) {
      p->CountDenial(Resource::kFsBlocks);
      return Error::kAccess;
    }
    Error err = p->Charge(Resource::kOpenFiles, 1);
    if (!Ok(err)) {
      return err;
    }
    // Flat one-unit name charge: the entry the file occupies in its parent.
    err = p->Charge(Resource::kFsBlocks, 1);
    if (!Ok(err)) {
      p->Credit(Resource::kOpenFiles, 1);
      return err;
    }
    ComPtr<File> child;
    {
      ScopedPrincipal scope(books_->registry, p);
      err = inner_->Create(name, mode, child.Receive());
    }
    if (!Ok(err)) {
      p->Credit(Resource::kOpenFiles, 1);
      p->Credit(Resource::kFsBlocks, 1);
      return err;
    }
    FileStat st{};
    child->GetStat(&st);
    if (st.blocks > 0) {
      p->ForceCharge(Resource::kFsBlocks, st.blocks);
    }
    books_->blocks[st.ino] = 1 + st.blocks;
    *out_file = new TenantFile(std::move(child), books_, st.ino);
    return Error::kOk;
  }

  Error Mkdir(const char* name, uint32_t mode) override {
    Principal* p = books_->principal;
    if (!p->acl().allow_fs_write) {
      p->CountDenial(Resource::kFsBlocks);
      return Error::kAccess;
    }
    Error err = p->Charge(Resource::kFsBlocks, 1);  // the name unit
    if (!Ok(err)) {
      return err;
    }
    {
      ScopedPrincipal scope(books_->registry, p);
      err = inner_->Mkdir(name, mode);
    }
    if (!Ok(err)) {
      p->Credit(Resource::kFsBlocks, 1);
      return err;
    }
    // No handle comes back from Mkdir: stat the child to book its blocks.
    ComPtr<File> child;
    if (Ok(inner_->Lookup(name, child.Receive()))) {
      FileStat st{};
      if (Ok(child->GetStat(&st))) {
        if (st.blocks > 0) {
          p->ForceCharge(Resource::kFsBlocks, st.blocks);
        }
        books_->blocks[st.ino] = 1 + st.blocks;
      }
    }
    return Error::kOk;
  }

  Error Unlink(const char* name) override { return RemoveEntry(name, false); }
  Error Rmdir(const char* name) override { return RemoveEntry(name, true); }

  Error Rename(const char* old_name, Dir* new_dir,
               const char* new_name) override {
    Principal* p = books_->principal;
    if (!p->acl().allow_fs_write) {
      p->CountDenial(Resource::kFsBlocks);
      return Error::kAccess;
    }
    // The destination may be a wrapper from this graph; the inner
    // filesystem needs its own Dir object.
    TenantDir* wrapped = dynamic_cast<TenantDir*>(new_dir);
    Dir* target = wrapped != nullptr ? wrapped->inner_.get() : new_dir;
    ScopedPrincipal scope(books_->registry, p);
    return inner_->Rename(old_name, target, new_name);
  }

  Error ReadDir(uint64_t* inout_offset, DirEntry* entries, size_t capacity,
                size_t* out_count) override {
    return inner_->ReadDir(inout_offset, entries, capacity, out_count);
  }

 private:
  friend class RefCounted<TenantDir>;
  ~TenantDir() = default;

  Error RemoveEntry(const char* name, bool is_dir) {
    Principal* p = books_->principal;
    if (!p->acl().allow_fs_write) {
      p->CountDenial(Resource::kFsBlocks);
      return Error::kAccess;
    }
    // The inode number must be captured before the entry disappears.
    uint64_t ino = 0;
    {
      ComPtr<File> child;
      if (Ok(inner_->Lookup(name, child.Receive()))) {
        FileStat st{};
        if (Ok(child->GetStat(&st))) {
          ino = st.ino;
        }
      }
    }
    Error err;
    {
      ScopedPrincipal scope(books_->registry, p);
      err = is_dir ? inner_->Rmdir(name) : inner_->Unlink(name);
    }
    if (Ok(err) && ino != 0) {
      auto it = books_->blocks.find(ino);
      if (it != books_->blocks.end()) {
        p->Credit(Resource::kFsBlocks, it->second);
        books_->blocks.erase(it);
      }
    }
    return err;
  }

  ComPtr<Dir> inner_;
  FsBooksPtr books_;
  uint64_t ino_;
};

File* WrapFileOrDir(ComPtr<File> child, const FsBooksPtr& books) {
  FileStat st{};
  child->GetStat(&st);  // best effort; an ino of 0 never books blocks
  ComPtr<Dir> as_dir = ComPtr<Dir>::FromQuery(child.get());
  if (as_dir) {
    return new TenantDir(std::move(as_dir), books, st.ino);
  }
  return new TenantFile(std::move(child), books, st.ino);
}

class TenantFs final : public FileSystem, public RefCounted<TenantFs> {
 public:
  TenantFs(ComPtr<FileSystem> inner, FsBooksPtr books)
      : inner_(std::move(inner)), books_(std::move(books)) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == FileSystem::kIid) {
      AddRef();
      *out = static_cast<FileSystem*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error GetRoot(Dir** out_root) override {
    *out_root = nullptr;
    Principal* p = books_->principal;
    if (!p->acl().allow_fs) {
      p->CountDenial(Resource::kOpenFiles);
      return Error::kAccess;
    }
    Error err = p->Charge(Resource::kOpenFiles, 1);
    if (!Ok(err)) {
      return err;
    }
    ComPtr<Dir> root;
    err = inner_->GetRoot(root.Receive());
    if (!Ok(err)) {
      p->Credit(Resource::kOpenFiles, 1);
      return err;
    }
    FileStat st{};
    root->GetStat(&st);
    *out_root = new TenantDir(std::move(root), books_, st.ino);
    return Error::kOk;
  }

  Error StatFs(FsStat* out_stat) override { return inner_->StatFs(out_stat); }

  Error Sync() override {
    ScopedPrincipal scope(books_->registry, books_->principal);
    return inner_->Sync();
  }

  Error Unmount() override {
    // Unmounting invalidates every other tenant's handles: administrative,
    // not a tenant operation.
    if (!books_->principal->acl().allow_fs_write) {
      books_->principal->CountDenial(Resource::kOpenFiles);
      return Error::kAccess;
    }
    return inner_->Unmount();
  }

 private:
  friend class RefCounted<TenantFs>;
  ~TenantFs() = default;

  ComPtr<FileSystem> inner_;
  FsBooksPtr books_;
};

}  // namespace

ComPtr<FileSystem> MakeSecureFs(ComPtr<FileSystem> inner, Principal* p,
                                PrincipalRegistry* registry) {
  auto books = std::make_shared<FsBooks>();
  books->registry = registry;
  books->principal = p;
  return ComPtr<FileSystem>(new TenantFs(std::move(inner), std::move(books)));
}

void InstallJournalAdmission(fs::Offs* fs, PrincipalRegistry* registry) {
  // Outstanding per-op charges, credited wholesale at each txn settle.
  auto outstanding = std::make_shared<std::vector<Principal*>>();
  fs->SetMetaHooks(
      [registry, outstanding]() -> Error {
        Principal* p = registry->current();
        if (p == nullptr) {
          return Error::kOk;  // unattributed callers are never billed
        }
        Error err = p->Charge(Resource::kJournalTxns, 1);
        if (!Ok(err)) {
          return err;  // aborts the metadata op before it joins the txn
        }
        outstanding->push_back(p);
        return Error::kOk;
      },
      [outstanding]() {
        for (Principal* p : *outstanding) {
          p->Credit(Resource::kJournalTxns, 1);
        }
        outstanding->clear();
      });
}

}  // namespace oskit::secure
