// Allocator security wrappers.  The LMM and AMM are plain components (no
// COM surface), so their wrappers are plain classes too — same contract:
// charge Resource::kMemBytes before delegating, surface denial exactly the
// way the inner component surfaces exhaustion (nullptr for the LMM,
// kQuotaExceeded beside the AMM's kNoSpace), credit on free.

#include "src/secure/wrap.h"

namespace oskit::secure {

void* SecureLmm::Alloc(size_t size, uint32_t flags) {
  if (!Ok(principal_->Charge(Resource::kMemBytes, size))) {
    return nullptr;  // the denial is counted; exhaustion would not be
  }
  void* block = inner_->Alloc(size, flags);
  if (block == nullptr) {
    principal_->Credit(Resource::kMemBytes, size);
  }
  return block;
}

void* SecureLmm::AllocAligned(size_t size, uint32_t flags, unsigned align_bits,
                              uintptr_t align_ofs) {
  if (!Ok(principal_->Charge(Resource::kMemBytes, size))) {
    return nullptr;
  }
  void* block = inner_->AllocAligned(size, flags, align_bits, align_ofs);
  if (block == nullptr) {
    principal_->Credit(Resource::kMemBytes, size);
  }
  return block;
}

void SecureLmm::Free(void* block, size_t size) {
  inner_->Free(block, size);
  principal_->Credit(Resource::kMemBytes, size);
}

Error SecureAmm::Allocate(uint64_t* inout_addr, uint64_t size, uint32_t flags,
                          unsigned align_bits, uint64_t upper_bound) {
  Error err = principal_->Charge(Resource::kMemBytes, size);
  if (!Ok(err)) {
    return err;  // kQuotaExceeded, distinguishable from kNoSpace
  }
  err = inner_->Allocate(inout_addr, size, flags, align_bits, upper_bound);
  if (!Ok(err)) {
    principal_->Credit(Resource::kMemBytes, size);
  }
  return err;
}

Error SecureAmm::Deallocate(uint64_t addr, uint64_t size) {
  Error err = inner_->Deallocate(addr, size);
  if (Ok(err)) {
    principal_->Credit(Resource::kMemBytes, size);
  }
  return err;
}

}  // namespace oskit::secure
