// Allocator security wrappers.  The LMM and AMM are plain components (no
// COM surface), so their wrappers are plain classes too — same contract:
// charge Resource::kMemBytes before delegating, surface denial exactly the
// way the inner component surfaces exhaustion (nullptr for the LMM,
// kQuotaExceeded beside the AMM's kNoSpace), credit on free.

#include "src/secure/wrap.h"

namespace oskit::secure {

void AttachMonitor(PrincipalRegistry* registry, MemMonitor* mon) {
  mon->SetKillHook(
      [registry](uint32_t domain) { registry->KillByDomain(domain); });
}

MemDomain DomainView(MemMonitor* mon, const Principal* p) {
  return MemDomain(mon, p->id());
}

// Only pages FULLY covered by the block change protection: a partial page
// may be shared with another owner's allocation.
void SecureLmm::FlipPages(void* block, size_t size, PageProt prot) {
  if (mon_ == nullptr || !mon_->enabled()) {
    return;
  }
  PhysAddr addr = phys_->AddrOf(block);
  PhysAddr first =
      (addr + PhysMem::kPageAlign - 1) & ~PhysAddr{PhysMem::kPageAlign - 1};
  PhysAddr last = (addr + size) & ~PhysAddr{PhysMem::kPageAlign - 1};
  if (last > first) {
    mon_->MonitorCall(first, static_cast<size_t>(last - first), prot);
  }
}

void* SecureLmm::Alloc(size_t size, uint32_t flags) {
  if (!Ok(principal_->Charge(Resource::kMemBytes, size))) {
    return nullptr;  // the denial is counted; exhaustion would not be
  }
  void* block = inner_->Alloc(size, flags);
  if (block == nullptr) {
    principal_->Credit(Resource::kMemBytes, size);
    return nullptr;
  }
  FlipPages(block, size, PageProt::kComponentWritable);
  return block;
}

void* SecureLmm::AllocAligned(size_t size, uint32_t flags, unsigned align_bits,
                              uintptr_t align_ofs) {
  if (!Ok(principal_->Charge(Resource::kMemBytes, size))) {
    return nullptr;
  }
  void* block = inner_->AllocAligned(size, flags, align_bits, align_ofs);
  if (block == nullptr) {
    principal_->Credit(Resource::kMemBytes, size);
    return nullptr;
  }
  FlipPages(block, size, PageProt::kComponentWritable);
  return block;
}

void SecureLmm::Free(void* block, size_t size) {
  FlipPages(block, size, PageProt::kKernelWritable);
  inner_->Free(block, size);
  principal_->Credit(Resource::kMemBytes, size);
}

Error SecureAmm::Allocate(uint64_t* inout_addr, uint64_t size, uint32_t flags,
                          unsigned align_bits, uint64_t upper_bound) {
  Error err = principal_->Charge(Resource::kMemBytes, size);
  if (!Ok(err)) {
    return err;  // kQuotaExceeded, distinguishable from kNoSpace
  }
  err = inner_->Allocate(inout_addr, size, flags, align_bits, upper_bound);
  if (!Ok(err)) {
    principal_->Credit(Resource::kMemBytes, size);
  }
  return err;
}

Error SecureAmm::Deallocate(uint64_t addr, uint64_t size) {
  Error err = inner_->Deallocate(addr, size);
  if (Ok(err)) {
    principal_->Credit(Resource::kMemBytes, size);
  }
  return err;
}

}  // namespace oskit::secure
