// Network-side security wrappers: NetGuard (the stack's SoAccounting
// implementation), SecureSocket/SecureSocketFactory, and SecureSelector.
//
// Charge points and their symmetric credits:
//
//   kSockets       factory Create / Accept(child)        wrapper's last Release
//   kPorts         first op that consumes a local port   wrapper's last Release
//   kSelectorRegs  selector Add                          Remove / socket death /
//                                                        selector teardown
//   kMbufBytes     in-stack RX delivery (NetGuard)       in-stack recv drain /
//                                                        pcb teardown
//
// The port charge deliberately lands BEFORE the inner call, so a tenant at
// its port budget gets kQuotaExceeded without consuming a real ephemeral
// port; if the inner op then fails without binding one (GetSockName still
// reports port 0), the charge is credited straight back.

#include <cstddef>
#include <unordered_map>
#include <utility>

#include "src/secure/wrap.h"

namespace oskit::secure {

// ---------------------------------------------------------------------------
// NetGuard: the in-stack degradation hooks
// ---------------------------------------------------------------------------

Principal* NetGuard::OwnerOf(Socket* inner) const {
  auto it = owners_.find(inner);
  return it != owners_.end() ? it->second : nullptr;
}

bool NetGuard::AdmitSyn(Socket* listener) {
  Principal* p = OwnerOf(listener);
  if (p == nullptr) {
    return true;  // unattributed listeners are never shed
  }
  uint64_t limit = p->budget().Get(Resource::kSockets);
  if (limit == Budget::kUnlimited ||
      p->charged(Resource::kSockets) < limit) {
    return true;
  }
  // The tenant could not accept this connection anyway: shed the SYN at
  // admission (peer retries) instead of parking a child it may never drain.
  p->CountDenial(Resource::kSockets);
  return false;
}

bool NetGuard::ChargeRx(Socket* owner, void** tag, size_t bytes) {
  Principal* p = static_cast<Principal*>(*tag);
  if (p == nullptr) {
    p = OwnerOf(owner);
    if (p == nullptr) {
      return true;  // unattributed traffic: deliver uncharged
    }
    // Remember the principal on the pcb: teardown credits must reach the
    // right books even after the socket detaches from the pcb.
    *tag = p;
  }
  return Ok(p->Charge(Resource::kMbufBytes, bytes));
}

void NetGuard::CreditRx(void* tag, size_t bytes) {
  if (tag != nullptr) {
    static_cast<Principal*>(tag)->Credit(Resource::kMbufBytes, bytes);
  }
}

// ---------------------------------------------------------------------------
// SecureSocket / SecureSelector
// ---------------------------------------------------------------------------

namespace {

class SecureSelector;

class SecureSocket final : public Socket,
                           public SocketExt,
                           public RefCounted<SecureSocket> {
 public:
  // Adopts `inner` (its kSockets unit already charged by the caller).
  SecureSocket(ComPtr<Socket> inner, Principal* p, NetGuard* guard)
      : inner_(std::move(inner)), principal_(p), guard_(guard) {
    ext_ = ComPtr<SocketExt>::FromQuery(inner_.get());
    guard_->RegisterSocket(inner_.get(), principal_);
  }

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == Socket::kIid) {
      AddRef();
      *out = static_cast<Socket*>(this);
      return Error::kOk;
    }
    if (iid == SocketExt::kIid && ext_) {
      AddRef();
      *out = static_cast<SocketExt*>(this);
      return Error::kOk;
    }
    // Unknown GUIDs are NOT forwarded to the inner socket: a forwarded
    // extension interface would be an unwrapped path around the checks.
    *out = nullptr;
    return Error::kNoInterface;
  }

  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override {
    if (ref_count() == 1) {
      Teardown();
    }
    return ReleaseImpl();
  }

  // Socket
  Error Bind(const SockAddr& addr) override {
    if (addr.port == 0) {
      return inner_->Bind(addr);  // binds an address, not a port
    }
    Error err = EnsurePortCharge();
    if (!Ok(err)) {
      return err;
    }
    err = inner_->Bind(addr);
    if (!Ok(err)) {
      ReleasePortChargeIfUnbound();
    }
    return err;
  }

  Error Connect(const SockAddr& addr) override {
    Error err = EnsurePortCharge();
    if (!Ok(err)) {
      return err;
    }
    err = inner_->Connect(addr);
    // kWouldBlock is an in-flight handshake: the port is consumed.  Other
    // failures keep the charge only if a port really was bound (refused
    // connections still hold their ephemeral port until close).
    if (!Ok(err) && err != Error::kWouldBlock) {
      ReleasePortChargeIfUnbound();
    }
    return err;
  }

  Error Listen(int backlog) override { return inner_->Listen(backlog); }

  Error Accept(SockAddr* out_peer, Socket** out_socket) override {
    // Charge AFTER the inner accept, not before: a blocking Accept can park
    // here indefinitely, and a unit reserved across that wait would read as
    // "budget full" to the SYN-admission hook — admission and reservation
    // would deadlock each other.  AdmitSyn is the early gate; this charge is
    // the backstop for connections that slipped in under a lower charge.
    *out_socket = nullptr;
    ComPtr<Socket> child;
    Error err = inner_->Accept(out_peer, child.Receive());
    if (!Ok(err)) {
      return err;
    }
    err = principal_->Charge(Resource::kSockets, 1);
    if (!Ok(err)) {
      child.Reset();  // closes the over-budget child: a reset, never a hang
      return err;
    }
    *out_socket = new SecureSocket(std::move(child), principal_, guard_);
    return Error::kOk;
  }

  Error Send(const void* buf, size_t amount, size_t* out_actual) override {
    return inner_->Send(buf, amount, out_actual);
  }
  Error Recv(void* buf, size_t amount, size_t* out_actual) override {
    return inner_->Recv(buf, amount, out_actual);
  }

  Error SendTo(const void* buf, size_t amount, const SockAddr& to,
               size_t* out_actual) override {
    Error err = EnsurePortCharge();  // first datagram binds an ephemeral port
    if (!Ok(err)) {
      return err;
    }
    err = inner_->SendTo(buf, amount, to, out_actual);
    if (!Ok(err)) {
      ReleasePortChargeIfUnbound();
    }
    return err;
  }

  Error RecvFrom(void* buf, size_t amount, SockAddr* out_from,
                 size_t* out_actual) override {
    return inner_->RecvFrom(buf, amount, out_from, out_actual);
  }

  Error Shutdown(SockShutdown how) override { return inner_->Shutdown(how); }
  Error GetSockName(SockAddr* out_addr) override {
    return inner_->GetSockName(out_addr);
  }
  Error GetPeerName(SockAddr* out_addr) override {
    return inner_->GetPeerName(out_addr);
  }

  // SocketExt (exposed via Query only when the inner socket has it)
  Error SetNonBlocking(bool on) override {
    return ext_ ? ext_->SetNonBlocking(on) : Error::kNotImpl;
  }
  Error AcceptBatch(SockAddr* out_peers, Socket** out_sockets, size_t capacity,
                    size_t* out_count) override;

  Socket* inner() const { return inner_.get(); }
  void set_selector(SecureSelector* sel) { selector_ = sel; }

 private:
  friend class RefCounted<SecureSocket>;
  ~SecureSocket() = default;

  Error EnsurePortCharge() {
    if (port_charged_) {
      return Error::kOk;
    }
    Error err = principal_->Charge(Resource::kPorts, 1);
    if (Ok(err)) {
      port_charged_ = true;
    }
    return err;
  }

  void ReleasePortChargeIfUnbound() {
    if (!port_charged_) {
      return;
    }
    SockAddr local{};
    if (Ok(inner_->GetSockName(&local)) && local.port == 0) {
      principal_->Credit(Resource::kPorts, 1);
      port_charged_ = false;
    }
  }

  void Teardown();

  ComPtr<Socket> inner_;
  ComPtr<SocketExt> ext_;  // null when the inner socket lacks SocketExt
  Principal* principal_;
  NetGuard* guard_;
  SecureSelector* selector_ = nullptr;  // set while registered with one
  bool port_charged_ = false;
};

class SecureSelector final : public NetSelector,
                             public RefCounted<SecureSelector> {
 public:
  SecureSelector(ComPtr<NetSelector> inner, Principal* p)
      : inner_(std::move(inner)), principal_(p) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == NetSelector::kIid) {
      AddRef();
      *out = static_cast<NetSelector*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }

  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override {
    if (ref_count() == 1) {
      Teardown();
    }
    return ReleaseImpl();
  }

  Error Add(Socket* socket, uint32_t interest, bool edge,
            void* token) override {
    Error err = principal_->Charge(Resource::kSelectorRegs, 1);
    if (!Ok(err)) {
      return err;
    }
    SecureSocket* wrapper = dynamic_cast<SecureSocket*>(socket);
    Socket* target = wrapper != nullptr ? wrapper->inner() : socket;
    err = inner_->Add(target, interest, edge, token);
    if (!Ok(err)) {
      principal_->Credit(Resource::kSelectorRegs, 1);
      return err;
    }
    registrations_[target] = wrapper;
    if (wrapper != nullptr) {
      wrapper->set_selector(this);
    }
    return Error::kOk;
  }

  Error Modify(Socket* socket, uint32_t interest, bool edge) override {
    return inner_->Modify(Unwrap(socket), interest, edge);
  }

  Error Remove(Socket* socket) override {
    Socket* target = Unwrap(socket);
    auto it = registrations_.find(target);
    if (it != registrations_.end()) {
      if (it->second != nullptr) {
        it->second->set_selector(nullptr);
      }
      registrations_.erase(it);
      principal_->Credit(Resource::kSelectorRegs, 1);
    }
    return inner_->Remove(target);
  }

  Error Wait(NetReadyEvent* out_events, size_t capacity, bool block,
             size_t* out_count) override {
    Error err = inner_->Wait(out_events, capacity, block, out_count);
    if (!Ok(err)) {
      return err;
    }
    // Harvested events reference the inner sockets; hand the tenant back the
    // wrappers it registered (pass-through registrations stay as-is).
    for (size_t i = 0; i < *out_count; ++i) {
      auto it = registrations_.find(out_events[i].socket);
      if (it != registrations_.end() && it->second != nullptr) {
        out_events[i].socket = it->second;
      }
    }
    return Error::kOk;
  }

  // Called by a dying SecureSocket still registered here: drop the
  // registration (and its charge) before the inner socket disappears.
  void NoteSocketDead(Socket* inner_socket) {
    auto it = registrations_.find(inner_socket);
    if (it == registrations_.end()) {
      return;
    }
    registrations_.erase(it);
    principal_->Credit(Resource::kSelectorRegs, 1);
    inner_->Remove(inner_socket);  // weak reg: already gone is fine
  }

 private:
  friend class RefCounted<SecureSelector>;
  ~SecureSelector() = default;

  static Socket* Unwrap(Socket* socket) {
    SecureSocket* wrapper = dynamic_cast<SecureSocket*>(socket);
    return wrapper != nullptr ? wrapper->inner() : socket;
  }

  void Teardown() {
    for (auto& [inner_socket, wrapper] : registrations_) {
      if (wrapper != nullptr) {
        wrapper->set_selector(nullptr);
      }
      principal_->Credit(Resource::kSelectorRegs, 1);
    }
    registrations_.clear();
    inner_.Reset();
  }

  ComPtr<NetSelector> inner_;
  Principal* principal_;
  // inner socket -> the wrapper the tenant registered (null: pass-through).
  std::unordered_map<Socket*, SecureSocket*> registrations_;
};

Error SecureSocket::AcceptBatch(SockAddr* out_peers, Socket** out_sockets,
                                size_t capacity, size_t* out_count) {
  *out_count = 0;
  if (!ext_) {
    return Error::kNotImpl;
  }
  // Admit only as many children as the socket budget has headroom for.  At
  // zero headroom the call degrades from AcceptBatch's always-kOk contract
  // to an explicit, counted kQuotaExceeded — never a hang, and the children
  // stay queued for when the budget frees up.
  size_t allowed = capacity;
  uint64_t limit = principal_->budget().Get(Resource::kSockets);
  if (limit != Budget::kUnlimited) {
    uint64_t used = principal_->charged(Resource::kSockets);
    uint64_t headroom = limit > used ? limit - used : 0;
    if (headroom == 0 && capacity > 0) {
      principal_->CountDenial(Resource::kSockets);
      return Error::kQuotaExceeded;
    }
    if (headroom < allowed) {
      allowed = static_cast<size_t>(headroom);
    }
  }
  Error err = ext_->AcceptBatch(out_peers, out_sockets, allowed, out_count);
  if (!Ok(err)) {
    return err;
  }
  for (size_t i = 0; i < *out_count; ++i) {
    // Cannot exceed the limit: headroom was computed under the one-thread-
    // per-component model, so ForceCharge just books the reserved units.
    principal_->ForceCharge(Resource::kSockets, 1);
    out_sockets[i] =
        new SecureSocket(ComPtr<Socket>(out_sockets[i]), principal_, guard_);
  }
  return Error::kOk;
}

void SecureSocket::Teardown() {
  if (selector_ != nullptr) {
    selector_->NoteSocketDead(inner_.get());
    selector_ = nullptr;
  }
  guard_->UnregisterSocket(inner_.get());
  if (port_charged_) {
    principal_->Credit(Resource::kPorts, 1);
    port_charged_ = false;
  }
  principal_->Credit(Resource::kSockets, 1);
  ext_.Reset();
  inner_.Reset();  // last reference: the inner socket detaches from its pcb
}

// ---------------------------------------------------------------------------
// SecureSocketFactory
// ---------------------------------------------------------------------------

class SecureSocketFactory final : public SocketFactory,
                                  public RefCounted<SecureSocketFactory> {
 public:
  SecureSocketFactory(ComPtr<SocketFactory> inner, Principal* p,
                      NetGuard* guard)
      : inner_(std::move(inner)), principal_(p), guard_(guard) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == SocketFactory::kIid) {
      AddRef();
      *out = static_cast<SocketFactory*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Create(SockDomain domain, SockType type,
               Socket** out_socket) override {
    *out_socket = nullptr;
    if (!principal_->acl().allow_net) {
      principal_->CountDenial(Resource::kSockets);
      return Error::kAccess;
    }
    Error err = principal_->Charge(Resource::kSockets, 1);
    if (!Ok(err)) {
      return err;
    }
    ComPtr<Socket> inner_socket;
    err = inner_->Create(domain, type, inner_socket.Receive());
    if (!Ok(err)) {
      principal_->Credit(Resource::kSockets, 1);
      return err;
    }
    *out_socket = new SecureSocket(std::move(inner_socket), principal_, guard_);
    return Error::kOk;
  }

 private:
  friend class RefCounted<SecureSocketFactory>;
  ~SecureSocketFactory() = default;

  ComPtr<SocketFactory> inner_;
  Principal* principal_;
  NetGuard* guard_;
};

}  // namespace

ComPtr<SocketFactory> MakeSecureSocketFactory(ComPtr<SocketFactory> inner,
                                              Principal* p, NetGuard* guard) {
  return ComPtr<SocketFactory>(
      new SecureSocketFactory(std::move(inner), p, guard));
}

ComPtr<Socket> MakeSecureSocket(ComPtr<Socket> inner, Principal* p,
                                NetGuard* guard) {
  return ComPtr<Socket>(new SecureSocket(std::move(inner), p, guard));
}

ComPtr<NetSelector> MakeSecureSelector(ComPtr<NetSelector> inner,
                                       Principal* p) {
  return ComPtr<NetSelector>(new SecureSelector(std::move(inner), p));
}

}  // namespace oskit::secure
