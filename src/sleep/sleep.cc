#include "src/sleep/sleep.h"

namespace oskit {

void SleepRecord::Sleep() {
  OSKIT_ASSERT_MSG(!sleeping_, "second waiter on a sleep record");
  if (woken_) {
    woken_ = false;  // consumed the latched wakeup
    return;
  }
  sleeping_ = true;
  env_->Block(*this);
  OSKIT_ASSERT_MSG(woken_, "sleep record resumed without wakeup");
  woken_ = false;
  sleeping_ = false;
}

void SleepRecord::Wakeup() {
  if (woken_) {
    return;  // already latched / already signalled
  }
  woken_ = true;
  if (sleeping_) {
    env_->Unblock(*this);
  }
}

}  // namespace oskit
