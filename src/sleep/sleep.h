// Sleep records (paper §4.7.6).
//
// The single blocking primitive OSKit components ask of their client OS:
// "like a condition variable except that only one thread of control can wait
// on it at a time".  Encapsulated legacy code (BSD sleep/wakeup, Linux
// sleep_on/wake_up) is emulated in glue code on top of this one abstraction,
// so a client OS only ever implements SleepEnv.
//
// Two client implementations ship with the kit, mirroring the paper:
//  * FiberSleepEnv — parks the current simulation fiber (the "real threads"
//    case: conventional condition-variable-style blocking);
//  * SpinSleepEnv — the single-threaded example-kernel case: "sleeping is
//    implemented simply as a busy loop that spins on a one-bit field in the
//    sleep record structure"; in the simulated world the spin advances the
//    clock so interrupts can fire.

#ifndef OSKIT_SRC_SLEEP_SLEEP_H_
#define OSKIT_SRC_SLEEP_SLEEP_H_

#include <cstdint>

#include "src/base/panic.h"

namespace oskit {

class SleepEnv;

class SleepRecord {
 public:
  explicit SleepRecord(SleepEnv* env) : env_(env) {}
  SleepRecord(const SleepRecord&) = delete;
  SleepRecord& operator=(const SleepRecord&) = delete;

  // Blocks the calling thread of control until Wakeup().  A Wakeup that
  // arrived before Sleep is latched: Sleep returns immediately and clears
  // the latch.
  void Sleep();

  // Releases the (single) waiter, or latches if nobody waits yet.  Callable
  // from interrupt-level code.
  void Wakeup();

  bool woken() const { return woken_; }
  void* waiter() const { return waiter_; }
  void set_waiter(void* w) { waiter_ = w; }

 private:
  SleepEnv* env_;
  bool woken_ = false;
  bool sleeping_ = false;
  void* waiter_ = nullptr;  // SleepEnv scratch (e.g., the parked Fiber*)
};

// The client-OS half: how to actually block and unblock.
class SleepEnv {
 public:
  virtual ~SleepEnv() = default;

  // Called with the record's `woken` flag still false; must return only
  // once Unblock() has run for this record.
  virtual void Block(SleepRecord& record) = 0;

  // Called exactly once per outstanding Block().
  virtual void Unblock(SleepRecord& record) = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_SLEEP_SLEEP_H_
