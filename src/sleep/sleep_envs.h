// The two stock SleepEnv implementations (see sleep.h).

#ifndef OSKIT_SRC_SLEEP_SLEEP_ENVS_H_
#define OSKIT_SRC_SLEEP_SLEEP_ENVS_H_

#include "src/machine/simulation.h"
#include "src/sleep/sleep.h"

namespace oskit {

// Parks the current fiber; Unblock makes it runnable again.  This is the
// "client OS with real threads" implementation.
class FiberSleepEnv final : public SleepEnv {
 public:
  explicit FiberSleepEnv(Simulation* sim) : sim_(sim) {}

  void Block(SleepRecord& record) override {
    Fiber* self = sim_->scheduler().current();
    OSKIT_ASSERT_MSG(self != nullptr, "blocking outside any fiber");
    record.set_waiter(self);
    sim_->scheduler().BlockCurrent();
    record.set_waiter(nullptr);
  }

  void Unblock(SleepRecord& record) override {
    auto* fiber = static_cast<Fiber*>(record.waiter());
    OSKIT_ASSERT_MSG(fiber != nullptr, "unblock with no waiter");
    sim_->scheduler().Unblock(fiber);
  }

 private:
  Simulation* sim_;
};

// The single-threaded example-kernel implementation: spin on the record's
// woken bit.  Each spin iteration yields one simulated microsecond so the
// clock (and therefore device interrupts) can progress.
class SpinSleepEnv final : public SleepEnv {
 public:
  explicit SpinSleepEnv(Simulation* sim) : sim_(sim) {}

  void Block(SleepRecord& record) override {
    while (!record.woken()) {
      sim_->SleepFor(kNsPerUs);
      ++spins_;
    }
  }

  void Unblock(SleepRecord& record) override {
    // Nothing to do: the spinner observes the woken bit itself.
  }

  uint64_t spins() const { return spins_; }

 private:
  Simulation* sim_;
  uint64_t spins_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_SLEEP_SLEEP_ENVS_H_
