#include "src/testbed/testbed.h"

#include "src/base/panic.h"
#include "src/libc/format.h"

namespace oskit::testbed {

const char* NetConfigName(NetConfig config) {
  switch (config) {
    case NetConfig::kOskit:
      return "OSKit (FreeBSD stack + Linux driver via COM)";
    case NetConfig::kNativeBsd:
      return "FreeBSD (native mbuf driver)";
    case NetConfig::kNativeLinux:
      return "Linux (native skbuff stack)";
    case NetConfig::kOskitNapi:
      return "OSKit (coalesced IRQs + polled RX)";
  }
  return "?";
}

InetAddr HostAddr(int index) { return MakeInetAddr(10, 0, 0, static_cast<uint8_t>(index + 1)); }

ComPtr<Socket> Host::MakeSocket(SockType type) {
  ComPtr<Socket> socket;
  Error err = socket_factory->Create(SockDomain::kInet, type, socket.Receive());
  OSKIT_ASSERT_MSG(Ok(err), "socket creation failed");
  return socket;
}

World::World(const EthernetWire::Config& wire_config, fault::FaultEnv* fault)
    : fault_(fault::ResolveFaultEnv(fault)) {
  wire_ = std::make_unique<EthernetWire>(&sim_.clock(), wire_config);
  link_ = wire_.get();
}

World::World(const VirtualSwitch::Config& switch_config, fault::FaultEnv* fault)
    : fault_(fault::ResolveFaultEnv(fault)) {
  switch_ = std::make_unique<VirtualSwitch>(&sim_.clock(), switch_config);
  link_ = switch_.get();
}

World::~World() {
  // Stacks reference machines/kernels; tear down in reverse order.
  for (auto it = hosts_.rbegin(); it != hosts_.rend(); ++it) {
    Host& host = **it;
    host.socket_factory.Reset();
    host.linux_stack.reset();
    host.bsd_driver.reset();
    host.stack.reset();
  }
}

Host& World::AddHost(const std::string& name, NetConfig config) {
  auto host = std::make_unique<Host>();
  int index = static_cast<int>(hosts_.size());
  host->config = config;
  host->addr = HostAddr(index);

  Machine::Config mc;
  mc.name = name;
  host->machine = std::make_unique<Machine>(&sim_, mc);

  EtherAddr mac{{0x02, 0x00, 0x00, 0x00, 0x00, static_cast<uint8_t>(index + 1)}};
  NicHw* nic = host->machine->AddNic(link_, mac);

  // Boot: MultiBoot load (no modules needed here) + kernel support bring-up.
  BootLoader loader(&host->machine->phys());
  MultiBootInfo info = loader.Load("testbed");
  host->kernel = std::make_unique<KernelEnv>(host->machine.get(), info,
                                             KernelEnv::SleepMode::kFiber,
                                             &host->trace, fault_);
  host->machine->cpu().EnableInterrupts();
  host->fdev = DefaultFdevEnv(host->kernel.get());

  InetAddr netmask = MakeInetAddr(255, 255, 255, 0);

  switch (config) {
    case NetConfig::kOskit:
    case NetConfig::kOskitNapi: {
      // §5 initialization sequence: init Linux ethernet drivers, probe,
      // init the FreeBSD stack, bind, ifconfig.
      linuxdev::InitLinuxEthernet(host->fdev, host->machine.get(), &host->registry);
      host->stack = std::make_unique<net::NetStack>(&host->kernel->sleep_env(),
                                                    &sim_.clock(), &host->trace);
      host->stack->SetFaultEnv(fault_);
      auto devices = host->registry.LookupByInterface(EtherDev::kIid);
      OSKIT_ASSERT_MSG(!devices.empty(), "no ethernet devices probed");
      auto* ether_dev = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());
      if (config == NetConfig::kOskitNapi) {
        // Program the NIC's mitigation registers (raise after 8 pending
        // frames or 1 ms, whichever first) and switch the glue to budgeted
        // polled dispatch.  The driver must be configured before Open so the
        // very first IRQ already goes through the poll path.
        NicHw::RxMitigation mit;
        mit.frame_threshold = 8;
        mit.holdoff_ns = 1 * kNsPerMs;
        nic->SetRxMitigation(mit);
        linuxdev::LinuxEtherDev::RxPollConfig poll;
        poll.enabled = true;
        ether_dev->SetRxPoll(poll);
        // Coalescing parks up to a holdoff of traffic per batch on each
        // side; at 100 Mbps that latency pushes the bandwidth-delay product
        // past the 32 KB ttcp-era default, so open the window to (near) the
        // 16-bit advertised-window cap to keep the wire saturated.
        host->stack->SetDefaultSockBuf(60 * 1024);
      }
      ComPtr<EtherDev> ether = ComPtr<EtherDev>::FromQuery(devices[0].get());
      int ifindex = -1;
      Error err = host->stack->OpenEtherIf(ether.get(), &ifindex);
      OSKIT_ASSERT_MSG(Ok(err), "OpenEtherIf failed");
      host->stack->IfConfig(ifindex, host->addr, netmask);
      host->socket_factory = host->stack->CreateSocketFactory();
      break;
    }
    case NetConfig::kNativeBsd: {
      host->stack = std::make_unique<net::NetStack>(&host->kernel->sleep_env(),
                                                    &sim_.clock(), &host->trace);
      host->stack->SetFaultEnv(fault_);
      host->bsd_driver = std::make_unique<freebsddev::BsdEtherDriver>(
          host->fdev, nic, host->stack.get());
      Error err = host->bsd_driver->Attach();
      OSKIT_ASSERT_MSG(Ok(err), "BSD driver attach failed");
      host->stack->IfConfig(0, host->addr, netmask);
      host->socket_factory = host->stack->CreateSocketFactory();
      break;
    }
    case NetConfig::kNativeLinux: {
      // Native Linux: the same Linux driver core, but bound directly to the
      // skbuff-native stack — no COM, no conversion.
      host->linux_dev = std::make_unique<linuxdev::linux_device>();
      linuxdev::linux_device* dev = host->linux_dev.get();
      oskit::libc::Snprintf(dev->name, sizeof(dev->name), "eth0");
      dev->kenv.kmalloc = +[](void* ctx, size_t size) -> void* {
        auto* kernel = static_cast<KernelEnv*>(ctx);
        return kernel->MemAlloc(size, kLmmFlag16Mb);
      };
      dev->kenv.kfree = +[](void* ctx, void* ptr, size_t size) {
        static_cast<KernelEnv*>(ctx)->MemFree(ptr, size);
      };
      dev->kenv.ctx = host->kernel.get();
      linuxdev::simnic_probe(dev, nic);
      host->linux_stack = std::make_unique<net::linuxstack::LinuxNetStack>(
          &host->kernel->sleep_env(), &sim_.clock(), dev, &host->trace);
      host->kernel->IrqRegister(dev->irq, [dev] { linuxdev::simnic_interrupt(dev); });
      host->linux_stack->IfConfig(host->addr, netmask);
      host->socket_factory = host->linux_stack->CreateSocketFactory();
      break;
    }
  }

  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

void World::RunToCompletion(SimTime deadline) {
  Simulation::RunResult result = sim_.Run(deadline);
  OSKIT_ASSERT_MSG(result == Simulation::RunResult::kAllDone,
                   "simulation deadlocked or hit the deadline");
}

}  // namespace oskit::testbed
