// Test/benchmark world builder.
//
// Assembles the §5 experimental setup: simulated PCs on one Ethernet
// segment, each booted through the kernel support library, with the network
// components bound in one of the evaluation's configurations:
//
//   kOskit      — FreeBSD-idiom stack + Linux-idiom driver, joined through
//                 COM NetIo/BufIo glue (the paper's OSKit row);
//   kNativeBsd  — the same stack bound to the BSD-idiom native driver with
//                 no COM boundary (the paper's "FreeBSD" baseline row);
//   kNativeLinux— the Linux-idiom baseline stack (contiguous skbuffs end to
//                 end) bound directly to the Linux driver core (the paper's
//                 "Linux" baseline row);
//   kOskitNapi  — the kOskit binding with RX interrupt mitigation programmed
//                 on the NIC (threshold 8 frames / 1 ms holdoff) and the
//                 budgeted polled-RX dispatch enabled in the glue.

#ifndef OSKIT_SRC_TESTBED_TESTBED_H_
#define OSKIT_SRC_TESTBED_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/dev/fdev/fdev.h"
#include "src/dev/freebsd/freebsd_ether.h"
#include "src/dev/linux/linux_glue.h"
#include "src/kern/kernel.h"
#include "src/machine/machine.h"
#include "src/machine/switch.h"
#include "src/net/linux/linux_stack.h"
#include "src/net/stack.h"

namespace oskit::testbed {

enum class NetConfig {
  kOskit,
  kNativeBsd,
  kNativeLinux,
  kOskitNapi,
};

const char* NetConfigName(NetConfig config);

// One simulated PC with a kernel environment and a bound network stack.
struct Host {
  // Per-host observability environment: every component on this host reports
  // into this registry/recorder, so benchmarks can read per-sender counters.
  // First member so it outlives everything that registers with it.
  trace::TraceEnv trace;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<KernelEnv> kernel;
  FdevEnv fdev;
  DeviceRegistry registry;
  NetConfig config = NetConfig::kOskit;
  InetAddr addr;

  // BSD-idiom stack (kOskit / kNativeBsd).
  std::unique_ptr<net::NetStack> stack;
  std::unique_ptr<freebsddev::BsdEtherDriver> bsd_driver;
  ComPtr<SocketFactory> socket_factory;

  // Linux-idiom stack (kNativeLinux).
  std::unique_ptr<linuxdev::linux_device> linux_dev;
  std::unique_ptr<net::linuxstack::LinuxNetStack> linux_stack;

  // Convenience: make a stream/dgram socket on whichever stack is bound.
  ComPtr<Socket> MakeSocket(SockType type);
};

class World {
 public:
  // `fault` is the fault-injection environment every host's kernel, devices
  // and stack bind to; null binds the process-global default.  A campaign
  // passes one per-seed env and arms sites on it before/while running.
  explicit World(const EthernetWire::Config& wire_config = {},
                 fault::FaultEnv* fault = nullptr);
  // Switched fabric: every AddHost NIC attaches to a VirtualSwitch port
  // instead of the shared segment.  This is the scale-out topology the C10k
  // benchmark uses (the two-host shared wire stays as the ablation
  // baseline).
  explicit World(const VirtualSwitch::Config& switch_config,
                 fault::FaultEnv* fault = nullptr);
  ~World();

  Simulation& sim() { return sim_; }
  // Shared-segment worlds only.
  EthernetWire& wire() { return *wire_; }
  // Switched worlds only (null otherwise).
  VirtualSwitch* vswitch() { return switch_.get(); }
  // The fabric hosts attach to, whichever topology was built.
  EtherLink& link() { return *link_; }

  // Adds a host with one NIC attached to the segment, books it through the
  // loader/kernel-support path, and binds the requested network stack.
  // The host index doubles as the last MAC/IP octet (10.0.0.<index+1>).
  Host& AddHost(const std::string& name, NetConfig config);

  Host& host(size_t i) { return *hosts_[i]; }
  size_t host_count() const { return hosts_.size(); }

  // Runs the world until all fibers finish; panics on deadlock or when the
  // simulated-time deadline passes (default: 10 simulated minutes).
  void RunToCompletion(SimTime deadline = 600 * kNsPerSec);

 private:
  Simulation sim_;
  std::unique_ptr<EthernetWire> wire_;
  std::unique_ptr<VirtualSwitch> switch_;
  EtherLink* link_ = nullptr;
  fault::FaultEnv* fault_;
  std::vector<std::unique_ptr<Host>> hosts_;
};

InetAddr HostAddr(int index);

}  // namespace oskit::testbed

#endif  // OSKIT_SRC_TESTBED_TESTBED_H_
