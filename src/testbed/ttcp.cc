#include "src/testbed/ttcp.h"

#include <chrono>
#include <vector>

#include "src/base/panic.h"

namespace oskit::testbed {

namespace {

constexpr uint16_t kTtcpPort = 5001;
constexpr uint16_t kRtcpPort = 5002;

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Sender-side glue-copy statistics for OSKit-configured hosts, read from the
// host's trace counter registry rather than by downcasting the device.
void CollectGlueStats(Host& host, TtcpResult* result) {
  if (host.config != NetConfig::kOskit && host.config != NetConfig::kOskitNapi) {
    return;
  }
  result->sender_glue_copies = host.trace.registry.Value("glue.send.copied");
  result->sender_glue_copied_bytes =
      host.trace.registry.Value("glue.send.copied_bytes");
  result->sender_glue_sg_frames = host.trace.registry.Value("glue.send.sg_frames");
  result->sender_glue_sg_segments =
      host.trace.registry.Value("glue.send.sg_segments");
}

}  // namespace

TtcpResult RunTtcp(World& world, size_t block_size, size_t block_count) {
  Host& receiver = world.host(0);
  Host& sender = world.host(1);
  TtcpResult result;
  size_t total = block_size * block_count;
  size_t received = 0;

  world.sim().Spawn("ttcp-r", [&] {
    ComPtr<Socket> listener = receiver.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(listener->Bind(SockAddr{kInetAny, kTtcpPort})));
    OSKIT_ASSERT(Ok(listener->Listen(1)));
    SockAddr peer;
    ComPtr<Socket> conn;
    OSKIT_ASSERT(Ok(listener->Accept(&peer, conn.Receive())));
    std::vector<uint8_t> buf(16 * 1024);
    for (;;) {
      size_t n = 0;
      Error err = conn->Recv(buf.data(), buf.size(), &n);
      OSKIT_ASSERT(Ok(err));
      if (n == 0) {
        break;
      }
      received += n;
    }
  });

  world.sim().Spawn("ttcp-t", [&] {
    ComPtr<Socket> conn = sender.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(conn->Connect(SockAddr{receiver.addr, kTtcpPort})));
    std::vector<uint8_t> block(block_size, 0x5a);
    for (size_t i = 0; i < block_count; ++i) {
      size_t actual = 0;
      OSKIT_ASSERT(Ok(conn->Send(block.data(), block.size(), &actual)));
      OSKIT_ASSERT(actual == block.size());
    }
    OSKIT_ASSERT(Ok(conn->Shutdown(SockShutdown::kWrite)));
  });

  auto start = std::chrono::steady_clock::now();
  SimTime sim_start = world.sim().clock().Now();
  world.RunToCompletion(/*deadline=*/sim_start + 3600 * kNsPerSec);
  result.wall_seconds = WallSecondsSince(start);
  result.sim_ns = world.sim().clock().Now() - sim_start;
  OSKIT_ASSERT_MSG(received == total, "ttcp byte-count mismatch");
  result.bytes_transferred = received;
  CollectGlueStats(sender, &result);
  return result;
}

RtcpResult RunRtcp(World& world, uint64_t round_trips) {
  Host& server = world.host(0);
  Host& client = world.host(1);
  RtcpResult result;

  world.sim().Spawn("rtcp-s", [&] {
    ComPtr<Socket> listener = server.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(listener->Bind(SockAddr{kInetAny, kRtcpPort})));
    OSKIT_ASSERT(Ok(listener->Listen(1)));
    SockAddr peer;
    ComPtr<Socket> conn;
    OSKIT_ASSERT(Ok(listener->Accept(&peer, conn.Receive())));
    char byte = 0;
    for (;;) {
      size_t n = 0;
      Error err = conn->Recv(&byte, 1, &n);
      OSKIT_ASSERT(Ok(err));
      if (n == 0) {
        break;
      }
      OSKIT_ASSERT(Ok(conn->Send(&byte, 1, &n)));
    }
  });

  world.sim().Spawn("rtcp-c", [&] {
    ComPtr<Socket> conn = client.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(conn->Connect(SockAddr{server.addr, kRtcpPort})));
    char byte = '!';
    for (uint64_t i = 0; i < round_trips; ++i) {
      size_t n = 0;
      OSKIT_ASSERT(Ok(conn->Send(&byte, 1, &n)));
      OSKIT_ASSERT(Ok(conn->Recv(&byte, 1, &n)));
      OSKIT_ASSERT(n == 1);
    }
    OSKIT_ASSERT(Ok(conn->Shutdown(SockShutdown::kWrite)));
  });

  auto start = std::chrono::steady_clock::now();
  SimTime sim_start = world.sim().clock().Now();
  world.RunToCompletion(/*deadline=*/sim_start + 3600 * kNsPerSec);
  result.wall_seconds = WallSecondsSince(start);
  result.sim_ns = world.sim().clock().Now() - sim_start;
  result.round_trips = round_trips;
  return result;
}

}  // namespace oskit::testbed
