// The §5 benchmark workloads: ttcp (bandwidth) and rtcp (latency), reusable
// by the examples and the Table 1/2 benchmark harnesses.
//
// Timing: the simulated world runs on one host thread, so the wall-clock
// time of a run measures the TOTAL software work of both endpoints plus the
// harness — a consistent basis for comparing stack configurations (which is
// all Tables 1 and 2 claim).  Simulated time captures wire-model effects
// (bandwidth/latency) instead.

#ifndef OSKIT_SRC_TESTBED_TTCP_H_
#define OSKIT_SRC_TESTBED_TTCP_H_

#include "src/testbed/testbed.h"

namespace oskit::testbed {

struct TtcpResult {
  size_t bytes_transferred = 0;
  double wall_seconds = 0;     // host time for the whole world
  SimTime sim_ns = 0;          // simulated time elapsed
  uint64_t sender_glue_copies = 0;   // OSKit config: mbuf->skbuff copies
  uint64_t sender_glue_copied_bytes = 0;
  uint64_t sender_glue_sg_frames = 0;  // OSKit config: gather transmits
  uint64_t sender_glue_sg_segments = 0;

  double MbitPerSecWall() const {
    return wall_seconds > 0 ? bytes_transferred * 8.0 / wall_seconds / 1e6 : 0;
  }
  double MbitPerSecSim() const {
    return sim_ns > 0 ? bytes_transferred * 8.0 / (sim_ns / 1e9) / 1e6 : 0;
  }
};

// Streams block_count blocks of block_size bytes from host 1 to host 0
// (paper: 131072 blocks of 4096 bytes).  Verifies delivery length.
TtcpResult RunTtcp(World& world, size_t block_size, size_t block_count);

struct RtcpResult {
  uint64_t round_trips = 0;
  double wall_seconds = 0;
  SimTime sim_ns = 0;

  double UsecPerRoundTripWall() const {
    return round_trips > 0 ? wall_seconds * 1e6 / round_trips : 0;
  }
  double UsecPerRoundTripSim() const {
    return round_trips > 0 ? (sim_ns / 1e3) / round_trips : 0;
  }
};

// 1-byte request/response ping-pong between host 1 (client) and host 0
// (server), the paper's rtcp.
RtcpResult RunRtcp(World& world, uint64_t round_trips);

}  // namespace oskit::testbed

#endif  // OSKIT_SRC_TESTBED_TTCP_H_
