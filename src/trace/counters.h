// The counter value type shared by every instrumented component.
//
// A Counter is deliberately nothing more than a named slot for a uint64: the
// component that owns it increments a plain machine word on its hot path
// (cheap enough to leave compiled in, per the flight-recorder design goal),
// and the CounterRegistry (src/trace/trace.h) indexes registered counters by
// hierarchical dotted name for snapshot/diff/reset and for the COM
// CounterSet export.  This header is dependency-free so that low-level
// components (lmm, machine) can embed counters without pulling in the rest
// of the trace library.

#ifndef OSKIT_SRC_TRACE_COUNTERS_H_
#define OSKIT_SRC_TRACE_COUNTERS_H_

#include <cstdint>

namespace oskit::trace {

// A monotonic counter or a gauge, depending on how the owner registered it.
// Supports the increment idioms the existing per-module counter structs
// used, so migrated call sites read unchanged.
class Counter {
 public:
  constexpr Counter() = default;
  constexpr explicit Counter(uint64_t value) : value_(value) {}

  Counter& operator++() {
    ++value_;
    return *this;
  }
  uint64_t operator++(int) { return value_++; }
  Counter& operator+=(uint64_t n) {
    value_ += n;
    return *this;
  }

  // Gauges may move in both directions.
  void Set(uint64_t value) { value_ = value; }
  Counter& operator-=(uint64_t n) {
    value_ -= n;
    return *this;
  }

  void Reset() { value_ = 0; }

  uint64_t value() const { return value_; }
  operator uint64_t() const { return value_; }  // NOLINT(google-explicit-constructor)

 private:
  uint64_t value_ = 0;
};

}  // namespace oskit::trace

#endif  // OSKIT_SRC_TRACE_COUNTERS_H_
