#include "src/trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/base/panic.h"

namespace oskit::trace {

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

CounterSnapshot DiffSnapshots(const CounterSnapshot& before,
                              const CounterSnapshot& after) {
  CounterSnapshot diff;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    uint64_t base = it != before.end() ? it->second : 0;
    if (value != base) {
      diff[name] = value - base;
    }
  }
  return diff;
}

void CounterRegistry::Register(const std::string& name, Counter* counter,
                               bool gauge) {
  OSKIT_ASSERT_MSG(counter != nullptr, "null counter registered");
  Entry& entry = entries_[name];
  entry.gauge = entry.gauge || gauge;
  entry.instances.push_back(counter);
}

void CounterRegistry::Unregister(const std::string& name, Counter* counter) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return;
  }
  auto& instances = it->second.instances;
  for (auto inst = instances.begin(); inst != instances.end(); ++inst) {
    if (*inst == counter) {
      instances.erase(inst);
      break;
    }
  }
  if (instances.empty()) {
    entries_.erase(it);
  }
}

bool CounterRegistry::Has(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

uint64_t CounterRegistry::Value(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return 0;
  }
  uint64_t sum = 0;
  for (const Counter* counter : it->second.instances) {
    sum += counter->value();
  }
  return sum;
}

CounterSnapshot CounterRegistry::Snapshot() const {
  CounterSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    uint64_t sum = 0;
    for (const Counter* counter : entry.instances) {
      sum += counter->value();
    }
    snap[name] = sum;
  }
  return snap;
}

void CounterRegistry::ResetAll() {
  for (auto& [name, entry] : entries_) {
    for (Counter* counter : entry.instances) {
      counter->Reset();
    }
  }
}

void CounterRegistry::ForEach(
    const std::function<void(const char* name, uint64_t value, bool gauge)>& fn,
    const std::string& prefix) const {
  for (const auto& [name, entry] : entries_) {
    if (name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    uint64_t sum = 0;
    for (const Counter* counter : entry.instances) {
      sum += counter->value();
    }
    fn(name.c_str(), sum, entry.gauge);
  }
}

void CounterBlock::Bind(CounterRegistry* registry,
                        std::initializer_list<Item> items) {
  OSKIT_ASSERT_MSG(registry_ == nullptr, "CounterBlock bound twice");
  registry_ = registry;
  for (const Item& item : items) {
    registry_->Register(item.name, item.counter, item.gauge);
    bound_.emplace_back(item.name, item.counter);
  }
}

void CounterBlock::Unbind() {
  if (registry_ == nullptr) {
    return;
  }
  for (const auto& [name, counter] : bound_) {
    registry_->Unregister(name, counter);
  }
  bound_.clear();
  registry_ = nullptr;
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kIrqEnter:
      return "irq-enter";
    case EventType::kIrqExit:
      return "irq-exit";
    case EventType::kTrap:
      return "trap";
    case EventType::kPacketRx:
      return "packet-rx";
    case EventType::kPacketTx:
      return "packet-tx";
    case EventType::kBufMap:
      return "buf-map";
    case EventType::kBufCopy:
      return "buf-copy";
    case EventType::kSleep:
      return "sleep";
    case EventType::kWakeup:
      return "wakeup";
    case EventType::kAlloc:
      return "alloc";
    case EventType::kFree:
      return "free";
    case EventType::kSpanBegin:
      return "span-begin";
    case EventType::kSpanEnd:
      return "span-end";
    case EventType::kMark:
      return "mark";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

FlightRecorder::~FlightRecorder() { DisableDumpOnPanic(); }

void FlightRecorder::Record(EventType type, const char* tag, uint64_t arg0,
                            uint64_t arg1) {
  if (!enabled_) {
    return;
  }
  TraceEvent& slot = ring_[next_];
  slot.seq = next_seq_++;
  slot.time = now_ ? now_() : slot.seq;
  slot.type = type;
  slot.tag = tag != nullptr ? tag : "";
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  next_ = (next_ + 1) % ring_.size();
  ++total_recorded_;
}

size_t FlightRecorder::size() const {
  return total_recorded_ < ring_.size() ? static_cast<size_t>(total_recorded_)
                                        : ring_.size();
}

const TraceEvent& FlightRecorder::At(size_t index) const {
  OSKIT_ASSERT_MSG(index < size(), "flight recorder index out of range");
  size_t count = size();
  // Oldest buffered event sits at next_ once the ring has wrapped.
  size_t oldest = total_recorded_ > count ? next_ : 0;
  return ring_[(oldest + index) % ring_.size()];
}

void FlightRecorder::Clear() {
  next_ = 0;
  total_recorded_ = 0;
}

void FlightRecorder::ForEach(
    const std::function<void(const TraceEvent&)>& fn) const {
  size_t count = size();
  for (size_t i = 0; i < count; ++i) {
    fn(At(i));
  }
}

void FlightRecorder::FormatEvent(const TraceEvent& event, char* buf,
                                 size_t len) {
  std::snprintf(buf, len,
                "seq=%llu t=%llu %s %s arg0=%llu arg1=%llu",
                static_cast<unsigned long long>(event.seq),
                static_cast<unsigned long long>(event.time),
                EventTypeName(event.type), event.tag,
                static_cast<unsigned long long>(event.arg0),
                static_cast<unsigned long long>(event.arg1));
}

namespace {

void StderrSink(void* /*ctx*/, const char* line) {
  std::fprintf(stderr, "%s\n", line);
}

}  // namespace

void FlightRecorder::SetDumpSink(DumpSink sink, void* ctx) {
  dump_sink_ = sink;
  dump_ctx_ = ctx;
}

void FlightRecorder::EnableDumpOnPanic(const char* banner) {
  panic_banner_ = banner != nullptr ? banner : "flight recorder";
  if (!panic_hooked_) {
    AddPanicObserver(&FlightRecorder::PanicObserverThunk, this);
    panic_hooked_ = true;
  }
}

void FlightRecorder::DisableDumpOnPanic() {
  if (panic_hooked_) {
    RemovePanicObserver(&FlightRecorder::PanicObserverThunk, this);
    panic_hooked_ = false;
  }
}

void FlightRecorder::DumpTo(DumpSink sink, void* ctx) const {
  if (sink == nullptr) {
    sink = &StderrSink;
    ctx = nullptr;
  }
  char line[192];
  std::snprintf(line, sizeof(line),
                "flight recorder: %llu recorded, %zu buffered, %llu dropped",
                static_cast<unsigned long long>(total_recorded_), size(),
                static_cast<unsigned long long>(dropped()));
  sink(ctx, line);
  size_t count = size();
  for (size_t i = 0; i < count; ++i) {
    FormatEvent(At(i), line, sizeof(line));
    sink(ctx, line);
  }
}

void FlightRecorder::PanicObserverThunk(void* ctx, const char* message) {
  auto* recorder = static_cast<FlightRecorder*>(ctx);
  DumpSink sink = recorder->dump_sink_ != nullptr ? recorder->dump_sink_
                                                  : &StderrSink;
  char line[192];
  std::snprintf(line, sizeof(line), "=== %s (panic: %s) ===",
                recorder->panic_banner_, message);
  sink(recorder->dump_ctx_, line);
  recorder->DumpTo(recorder->dump_sink_, recorder->dump_ctx_);
}

// ---------------------------------------------------------------------------
// Span attribution
// ---------------------------------------------------------------------------

SpanSite::SpanSite(TraceEnv* env, const char* name) : name_(name) {
  TraceEnv* resolved = ResolveTraceEnv(env);
  tracker_ = &resolved->spans;
  // Site names are short static strings; build the three dotted names once.
  std::string base(name_);
  binding_.Bind(&resolved->registry,
                {{(base + ".count").c_str(), &count_},
                 {(base + ".ns").c_str(), &total_ns_},
                 {(base + ".self_ns").c_str(), &self_ns_}});
  tracker_->Register(this);
}

SpanSite::~SpanSite() { tracker_->Unregister(this); }

void SpanSite::AddSample(uint64_t duration_ns) {
  count_ += 1;
  total_ns_ += duration_ns;
  self_ns_ += duration_ns;
  if (tracker_->recorder_ != nullptr) {
    tracker_->recorder_->Record(EventType::kSpanEnd, name_, duration_ns);
  }
}

SpanTracker::~SpanTracker() { DisableDumpOnPanic(); }

void SpanTracker::Register(SpanSite* site) { sites_.push_back(site); }

void SpanTracker::Unregister(SpanSite* site) {
  OSKIT_ASSERT_MSG(depth_ == 0 || stack_[depth_ - 1].site != site,
                   "span site destroyed while open");
  for (auto it = sites_.begin(); it != sites_.end(); ++it) {
    if (*it == site) {
      sites_.erase(it);
      return;
    }
  }
}

void SpanTracker::Begin(SpanSite* site) {
  OSKIT_ASSERT_MSG(depth_ < kMaxDepth, "span stack overflow");
  stack_[depth_++] = Open{site, NowNs(), 0};
  if (recorder_ != nullptr) {
    recorder_->Record(EventType::kSpanBegin, site->name_, depth_);
  }
}

void SpanTracker::End(SpanSite* site) {
  OSKIT_ASSERT_MSG(depth_ > 0, "span end with no open span");
  Open& top = stack_[depth_ - 1];
  OSKIT_ASSERT_MSG(top.site == site, "span end does not match innermost open");
  uint64_t now = NowNs();
  OSKIT_ASSERT_MSG(now >= top.start_ns, "span clock ran backwards");
  uint64_t inclusive = now - top.start_ns;
  OSKIT_ASSERT_MSG(inclusive >= top.child_ns,
                   "span children outlasted their parent");
  site->count_ += 1;
  site->total_ns_ += inclusive;
  site->self_ns_ += inclusive - top.child_ns;
  --depth_;
  if (depth_ > 0) {
    stack_[depth_ - 1].child_ns += inclusive;
  }
  if (recorder_ != nullptr) {
    recorder_->Record(EventType::kSpanEnd, site->name_, inclusive);
  }
}

void SpanTracker::ForEachOpen(
    const std::function<void(const SpanSite*, uint64_t, uint64_t)>& fn) const {
  for (size_t i = 0; i < depth_; ++i) {
    fn(stack_[i].site, stack_[i].start_ns, stack_[i].child_ns);
  }
}

void SpanTracker::DumpHot(const std::function<void(const char*)>& emit) const {
  std::vector<const SpanSite*> live;
  uint64_t total_self = 0;
  for (const SpanSite* site : sites_) {
    if (site->count() == 0) {
      continue;
    }
    live.push_back(site);
    total_self += site->self_ns();
  }
  std::sort(live.begin(), live.end(),
            [](const SpanSite* a, const SpanSite* b) {
              if (a->self_ns() != b->self_ns()) {
                return a->self_ns() > b->self_ns();
              }
              return std::strcmp(a->name(), b->name()) < 0;
            });
  char line[192];
  std::snprintf(line, sizeof(line), "%-32s %10s %14s %14s %6s", "site",
                "count", "total_ns", "self_ns", "self%");
  emit(line);
  for (const SpanSite* site : live) {
    double pct = total_self > 0
                     ? 100.0 * static_cast<double>(site->self_ns()) /
                           static_cast<double>(total_self)
                     : 0.0;
    std::snprintf(line, sizeof(line), "%-32s %10llu %14llu %14llu %5.1f%%",
                  site->name(),
                  static_cast<unsigned long long>(site->count()),
                  static_cast<unsigned long long>(site->total_ns()),
                  static_cast<unsigned long long>(site->self_ns()), pct);
    emit(line);
  }
  if (live.empty()) {
    emit("(no completed spans)");
  }
}

void SpanTracker::SetDumpSink(FlightRecorder::DumpSink sink, void* ctx) {
  dump_sink_ = sink;
  dump_ctx_ = ctx;
}

void SpanTracker::EnableDumpOnPanic(const char* banner) {
  panic_banner_ = banner != nullptr ? banner : "span attribution";
  if (!panic_hooked_) {
    AddPanicObserver(&SpanTracker::PanicObserverThunk, this);
    panic_hooked_ = true;
  }
}

void SpanTracker::DisableDumpOnPanic() {
  if (panic_hooked_) {
    RemovePanicObserver(&SpanTracker::PanicObserverThunk, this);
    panic_hooked_ = false;
  }
}

void SpanTracker::PanicObserverThunk(void* ctx, const char* message) {
  auto* tracker = static_cast<SpanTracker*>(ctx);
  FlightRecorder::DumpSink sink =
      tracker->dump_sink_ != nullptr ? tracker->dump_sink_ : &StderrSink;
  void* sink_ctx = tracker->dump_ctx_;
  char line[192];
  std::snprintf(line, sizeof(line), "=== %s (panic: %s) ===",
                tracker->panic_banner_, message);
  sink(sink_ctx, line);
  tracker->DumpHot([&](const char* l) { sink(sink_ctx, l); });
  if (tracker->depth_ > 0) {
    uint64_t now = tracker->NowNs();
    std::snprintf(line, sizeof(line), "open spans (innermost last):");
    sink(sink_ctx, line);
    tracker->ForEachOpen([&](const SpanSite* site, uint64_t start_ns,
                             uint64_t child_ns) {
      std::snprintf(line, sizeof(line),
                    "  OPEN %-26s started=%llu elapsed=%llu child=%llu",
                    site->name(), static_cast<unsigned long long>(start_ns),
                    static_cast<unsigned long long>(
                        now >= start_ns ? now - start_ns : 0),
                    static_cast<unsigned long long>(child_ns));
      sink(sink_ctx, line);
    });
  }
}

// ---------------------------------------------------------------------------
// Default environment
// ---------------------------------------------------------------------------

TraceEnv* DefaultTraceEnv() {
  // Deliberately leaked: components unbinding during static destruction
  // must still find a live registry.
  static TraceEnv* env = new TraceEnv;
  return env;
}

}  // namespace oskit::trace
