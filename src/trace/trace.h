// The trace component: unified counters and a flight recorder.
//
// The paper sells the OSKit on separability and introspectability — §3.5's
// debugging aids and §4.6's "open implementation" (exposed free-list
// walking, client-visible internals).  This component is that idea applied
// to measurement: one registry of named, hierarchical counters shared by
// every subsystem (net.tcp.retransmits, glue.send.copied_bytes,
// lmm.alloc_calls, ...), and a fixed-size ring of typed trace events (IRQ
// enter/exit, packet rx/tx, buffer map/copy, sleep/wakeup, alloc/free)
// cheap enough to leave compiled in.
//
// Like every other OSKit component the trace environment is
// client-overridable: components accept a TraceEnv* and fall back to a
// process-global default, so a client kernel can give each simulated
// machine its own registry/recorder (the testbed does exactly that) while
// simple programs need to wire nothing.  The COM faces (CounterSet,
// TraceLog — src/com/trace.h, src/trace/trace_com.h) let client kernels
// pick the instrumentation up like any other component.

#ifndef OSKIT_SRC_TRACE_TRACE_H_
#define OSKIT_SRC_TRACE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/counters.h"

namespace oskit::trace {

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

// name -> value at one instant; the unit of snapshot/diff reporting.
using CounterSnapshot = std::map<std::string, uint64_t>;

// after - before for every name in `after` (names absent from `before`
// count from zero).  Unchanged counters are dropped.
CounterSnapshot DiffSnapshots(const CounterSnapshot& before,
                              const CounterSnapshot& after);

// Indexes counters owned by components under hierarchical dotted names.
// Registration is non-owning: the component keeps the Counter (its hot path
// touches a plain word), the registry only reads through the pointer.  The
// same name may be registered by several instances (two NetStacks sharing
// the default environment); the registry reports their sum.
class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  void Register(const std::string& name, Counter* counter, bool gauge = false);
  void Unregister(const std::string& name, Counter* counter);

  bool Has(const std::string& name) const;
  // Sum across registered instances; 0 when the name is unknown.
  uint64_t Value(const std::string& name) const;

  size_t size() const { return entries_.size(); }

  CounterSnapshot Snapshot() const;

  // Zeroes every registered counter (gauges included).
  void ResetAll();

  // Deterministic (name-sorted) iteration, optionally restricted to names
  // starting with `prefix`.  The name pointer is valid while the entry
  // stays registered.
  void ForEach(const std::function<void(const char* name, uint64_t value,
                                        bool gauge)>& fn,
               const std::string& prefix = "") const;

 private:
  struct Entry {
    std::vector<Counter*> instances;
    bool gauge = false;
  };
  std::map<std::string, Entry> entries_;
};

// RAII bulk binding: a component lists its (name, counter) pairs once in its
// constructor and forgets about them; destruction unregisters.
class CounterBlock {
 public:
  CounterBlock() = default;
  ~CounterBlock() { Unbind(); }
  CounterBlock(const CounterBlock&) = delete;
  CounterBlock& operator=(const CounterBlock&) = delete;

  struct Item {
    const char* name;
    Counter* counter;
    bool gauge = false;
  };

  void Bind(CounterRegistry* registry, std::initializer_list<Item> items);
  void Unbind();

 private:
  CounterRegistry* registry_ = nullptr;
  std::vector<std::pair<std::string, Counter*>> bound_;
};

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

enum class EventType : uint8_t {
  kIrqEnter,
  kIrqExit,
  kTrap,
  kPacketRx,
  kPacketTx,
  kBufMap,   // foreign buffer mapped at a glue boundary (zero copy)
  kBufCopy,  // foreign buffer copied at a glue boundary
  kSleep,
  kWakeup,
  kAlloc,
  kFree,
  kSpanBegin,  // attribution span opened (tag = site name)
  kSpanEnd,    // attribution span closed (arg0 = duration ns)
  kMark,       // free-form client event
};

const char* EventTypeName(EventType type);

struct TraceEvent {
  uint64_t seq = 0;   // global recording order, never reused
  uint64_t time = 0;  // from the environment's time source (sim clock)
  EventType type = EventType::kMark;
  const char* tag = "";  // static string naming the site
  uint64_t arg0 = 0;     // type-specific (vector number, byte count, ...)
  uint64_t arg1 = 0;
};

// Fixed-size ring of trace events.  Recording never allocates and wraps
// around at capacity, dropping the oldest events; a dump-on-panic hook can
// be wired into the src/base panic plumbing so the last events survive a
// crash.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Timestamps default to the recording sequence number until a clock is
  // wired in (the testbed supplies the simulated clock).
  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(EventType type, const char* tag, uint64_t arg0 = 0,
              uint64_t arg1 = 0);

  size_t capacity() const { return ring_.size(); }
  // Events currently buffered (<= capacity).
  size_t size() const;
  uint64_t total_recorded() const { return total_recorded_; }
  // Events lost to wrap-around.
  uint64_t dropped() const { return total_recorded_ - size(); }

  // index 0 = oldest buffered event.
  const TraceEvent& At(size_t index) const;

  void Clear();

  void ForEach(const std::function<void(const TraceEvent&)>& fn) const;

  // "seq=12 t=3400 packet-rx ether arg0=0 arg1=1514"
  static void FormatEvent(const TraceEvent& event, char* buf, size_t len);

  // ---- dump-on-panic ----
  using DumpSink = void (*)(void* ctx, const char* line);

  // Where dumps go; defaults to stderr.
  void SetDumpSink(DumpSink sink, void* ctx);

  // Registers with the src/base panic observer list: on Panic() the
  // buffered events are written to the dump sink (banner first) before the
  // panic handler runs.
  void EnableDumpOnPanic(const char* banner);
  void DisableDumpOnPanic();

  void DumpTo(DumpSink sink, void* ctx) const;

 private:
  static void PanicObserverThunk(void* ctx, const char* message);

  std::vector<TraceEvent> ring_;
  size_t next_ = 0;  // slot the next event lands in
  uint64_t total_recorded_ = 0;
  uint64_t next_seq_ = 1;
  bool enabled_ = true;
  std::function<uint64_t()> now_;
  DumpSink dump_sink_ = nullptr;  // null = stderr
  void* dump_ctx_ = nullptr;
  const char* panic_banner_ = nullptr;
  bool panic_hooked_ = false;
};

// ---------------------------------------------------------------------------
// Cycle-level span attribution
// ---------------------------------------------------------------------------
//
// Counters say how often a hot path ran; spans say where the TIME went.  A
// SpanSite is a named section of a hot path ("http.span.flush",
// "http.span.fs_read"); the per-environment SpanTracker keeps a stack of
// open spans and charges each closed span's duration — from the same
// simulated-time source the flight recorder uses, so attribution stays
// deterministic — to its site:
//
//   <name>.count    completed spans
//   <name>.ns       inclusive time (span open -> close)
//   <name>.self_ns  exclusive time (inclusive minus nested child spans)
//
// Self time is what makes the numbers an attribution rather than a pile of
// overlapping totals: summed across sites, self_ns partitions the
// instrumented time exactly once, so "61% of request time is in flush" is a
// statement that adds up.  The counters register under the site name in the
// environment's registry, so kmon `counters`, the COM CounterSet and the
// bench JSON reports all read them like any other instrumentation; kmon
// `hot` renders the sorted table.
//
// Two usage styles:
//   * ScopedSpan brackets a synchronous section of one thread of control
//     (nests, pairing enforced);
//   * SpanSite::AddSample charges an explicitly measured interval — for
//     phases that span event-loop iterations (a response flush that waits
//     for writability across many selector harvests) where a stack
//     discipline cannot hold.

struct TraceEnv;
class SpanTracker;

// One named hot-path section.  Construction registers the three counters
// with the environment's registry and the site with the environment's
// tracker; destruction unregisters both.
class SpanSite {
 public:
  // `name` must be a static string (it is reported by pointer, like
  // TraceEvent::tag).  Null `env` binds the process-global default.
  SpanSite(TraceEnv* env, const char* name);
  ~SpanSite();
  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  const char* name() const { return name_; }
  uint64_t count() const { return count_.value(); }
  uint64_t total_ns() const { return total_ns_.value(); }
  uint64_t self_ns() const { return self_ns_.value(); }

  // Interval-style attribution: charges an explicitly measured duration
  // (self == inclusive; no nesting semantics).
  void AddSample(uint64_t duration_ns);

  SpanTracker* tracker() const { return tracker_; }

 private:
  friend class SpanTracker;
  const char* name_;
  SpanTracker* tracker_;
  Counter count_;
  Counter total_ns_;
  Counter self_ns_;
  CounterBlock binding_;
};

// Per-environment open-span stack + site index.  Lives inside TraceEnv like
// the registry and recorder; components never construct one.
class SpanTracker {
 public:
  static constexpr size_t kMaxDepth = 64;

  SpanTracker() = default;
  ~SpanTracker();
  SpanTracker(const SpanTracker&) = delete;
  SpanTracker& operator=(const SpanTracker&) = delete;

  // Durations come from this clock (the testbed wires the simulated clock,
  // exactly like FlightRecorder).  Without a source every span is 0 ns —
  // counts still accumulate.
  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Span begin/end events are mirrored into this recorder when set (the
  // TraceEnv constructor wires its own).
  void SetRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Opens/closes a span.  End must match the innermost open span — a
  // mismatched or underflowed End panics (pairing is a component invariant,
  // like mbuf chain lengths).
  void Begin(SpanSite* site);
  void End(SpanSite* site);

  size_t depth() const { return depth_; }
  size_t site_count() const { return sites_.size(); }

  // Open spans, outermost first: (site, start_ns, child_ns accrued so far).
  void ForEachOpen(const std::function<void(const SpanSite*, uint64_t,
                                            uint64_t)>& fn) const;

  // The attribution table: one line per site, self-time descending, with
  // self-percent of the instrumented total.  Sites with zero count are
  // skipped.  Backs kmon `hot`.
  void DumpHot(const std::function<void(const char*)>& emit) const;

  // Registers with the src/base panic observer list: on Panic() the table
  // AND the still-open span stack are written to the dump sink (stderr by
  // default), so a crash mid-request shows which phase it died in.
  void EnableDumpOnPanic(const char* banner);
  void DisableDumpOnPanic();
  void SetDumpSink(FlightRecorder::DumpSink sink, void* ctx);

 private:
  friend class SpanSite;
  static void PanicObserverThunk(void* ctx, const char* message);
  void Register(SpanSite* site);
  void Unregister(SpanSite* site);
  uint64_t NowNs() const { return now_ ? now_() : 0; }

  struct Open {
    SpanSite* site;
    uint64_t start_ns;
    uint64_t child_ns;  // closed children's inclusive time
  };

  std::vector<SpanSite*> sites_;
  Open stack_[kMaxDepth] = {};
  size_t depth_ = 0;
  std::function<uint64_t()> now_;
  FlightRecorder* recorder_ = nullptr;
  FlightRecorder::DumpSink dump_sink_ = nullptr;  // null = stderr
  void* dump_ctx_ = nullptr;
  const char* panic_banner_ = nullptr;
  bool panic_hooked_ = false;
};

// RAII span bracket.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite* site) : site_(site) {
    site_->tracker()->Begin(site_);
  }
  ~ScopedSpan() { site_->tracker()->End(site_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_;
};

// ---------------------------------------------------------------------------
// The environment components bind to
// ---------------------------------------------------------------------------

struct TraceEnv {
  TraceEnv() { spans.SetRecorder(&recorder); }
  CounterRegistry registry;
  FlightRecorder recorder;
  SpanTracker spans;
};

// The process-global fallback used when a component is handed no
// environment.  Never destroyed (components may unregister during static
// teardown).
TraceEnv* DefaultTraceEnv();

inline TraceEnv* ResolveTraceEnv(TraceEnv* env) {
  return env != nullptr ? env : DefaultTraceEnv();
}

}  // namespace oskit::trace

#endif  // OSKIT_SRC_TRACE_TRACE_H_
