#include "src/trace/trace_com.h"

#include <cstring>

namespace oskit::trace {

Error TraceComponent::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == CounterSet::kIid) {
    AddRef();
    *out = static_cast<CounterSet*>(this);
    return Error::kOk;
  }
  if (iid == TraceLog::kIid) {
    AddRef();
    *out = static_cast<TraceLog*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error TraceComponent::GetCount(size_t* out_count) {
  *out_count = env_->registry.size();
  return Error::kOk;
}

Error TraceComponent::GetCounter(size_t index, CounterInfo* out_info) {
  size_t i = 0;
  bool found = false;
  env_->registry.ForEach([&](const char* name, uint64_t value, bool gauge) {
    if (i++ == index) {
      out_info->name = name;
      out_info->value = value;
      out_info->gauge = gauge;
      found = true;
    }
  });
  return found ? Error::kOk : Error::kInval;
}

Error TraceComponent::Lookup(const char* name, uint64_t* out_value) {
  if (!env_->registry.Has(name)) {
    *out_value = 0;
    return Error::kNoEnt;
  }
  *out_value = env_->registry.Value(name);
  return Error::kOk;
}

Error TraceComponent::Reset() {
  env_->registry.ResetAll();
  return Error::kOk;
}

Error TraceComponent::GetEventCount(size_t* out_count) {
  *out_count = env_->recorder.size();
  return Error::kOk;
}

Error TraceComponent::Read(size_t index, TraceRecord* out_record) {
  if (index >= env_->recorder.size()) {
    return Error::kInval;
  }
  const TraceEvent& event = env_->recorder.At(index);
  out_record->seq = event.seq;
  out_record->time = event.time;
  out_record->type = static_cast<uint32_t>(event.type);
  out_record->type_name = EventTypeName(event.type);
  out_record->tag = event.tag;
  out_record->arg0 = event.arg0;
  out_record->arg1 = event.arg1;
  return Error::kOk;
}

Error TraceComponent::GetTotalRecorded(uint64_t* out_total) {
  *out_total = env_->recorder.total_recorded();
  return Error::kOk;
}

Error TraceComponent::Clear() {
  env_->recorder.Clear();
  return Error::kOk;
}

TraceComponent* CreateTraceComponent(TraceEnv* env) {
  return new TraceComponent(env);  // born referenced
}

}  // namespace oskit::trace
