// The concrete COM object exporting a TraceEnv through the CounterSet and
// TraceLog interfaces (src/com/trace.h).  Client kernels bind it like any
// other component: Query moves between the two faces, AddRef/Release manage
// lifetime.  The object references the environment, not a copy — reads are
// always live.

#ifndef OSKIT_SRC_TRACE_TRACE_COM_H_
#define OSKIT_SRC_TRACE_TRACE_COM_H_

#include "src/com/trace.h"
#include "src/trace/trace.h"

namespace oskit::trace {

class TraceComponent final : public CounterSet,
                             public TraceLog,
                             public RefCounted<TraceComponent> {
 public:
  // The environment must outlive the component (the testbed's per-host
  // TraceEnv and the process-global default both do).
  explicit TraceComponent(TraceEnv* env) : env_(ResolveTraceEnv(env)) {}

  // IUnknown (two COM bases: disambiguate AddRef/Release explicitly).
  Error Query(const Guid& iid, void** out) override;
  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override { return ReleaseImpl(); }

  // CounterSet
  Error GetCount(size_t* out_count) override;
  Error GetCounter(size_t index, CounterInfo* out_info) override;
  Error Lookup(const char* name, uint64_t* out_value) override;
  Error Reset() override;

  // TraceLog
  Error GetEventCount(size_t* out_count) override;
  Error Read(size_t index, TraceRecord* out_record) override;
  Error GetTotalRecorded(uint64_t* out_total) override;
  Error Clear() override;

  TraceEnv* env() { return env_; }

 private:
  friend class RefCounted<TraceComponent>;
  ~TraceComponent() = default;

  TraceEnv* env_;
};

// Factory: returns a new reference, COM style.
TraceComponent* CreateTraceComponent(TraceEnv* env);

}  // namespace oskit::trace

#endif  // OSKIT_SRC_TRACE_TRACE_COM_H_
