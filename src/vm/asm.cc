// Two-pass assembler for KVM bytecode.

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/byteorder.h"
#include "src/vm/kvm.h"

namespace oskit::vm {

namespace {

struct Mnemonic {
  const char* name;
  Op op;
  int operand_bytes;   // 0, 2, 4, or 8
  bool branch_target;  // operand may be a label
};

const Mnemonic kMnemonics[] = {
    {"halt", Op::kHalt, 0, false}, {"push", Op::kPush, 8, false},
    {"pop", Op::kPop, 0, false},   {"dup", Op::kDup, 0, false},
    {"swap", Op::kSwap, 0, false}, {"load", Op::kLoad, 2, false},
    {"store", Op::kStore, 2, false}, {"gload", Op::kGLoad, 2, false},
    {"gstore", Op::kGStore, 2, false}, {"add", Op::kAdd, 0, false},
    {"sub", Op::kSub, 0, false},   {"mul", Op::kMul, 0, false},
    {"div", Op::kDiv, 0, false},   {"mod", Op::kMod, 0, false},
    {"neg", Op::kNeg, 0, false},   {"and", Op::kAnd, 0, false},
    {"or", Op::kOr, 0, false},     {"xor", Op::kXor, 0, false},
    {"shl", Op::kShl, 0, false},   {"shr", Op::kShr, 0, false},
    {"eq", Op::kEq, 0, false},     {"ne", Op::kNe, 0, false},
    {"lt", Op::kLt, 0, false},     {"le", Op::kLe, 0, false},
    {"gt", Op::kGt, 0, false},     {"ge", Op::kGe, 0, false},
    {"jmp", Op::kJmp, 4, true},    {"jz", Op::kJz, 4, true},
    {"jnz", Op::kJnz, 4, true},    {"call", Op::kCall, 4, true},
    {"ret", Op::kRet, 0, false},   {"sys", Op::kSys, 2, false},
    {"yield", Op::kYield, 0, false},
};

const Mnemonic* FindMnemonic(const std::string& name) {
  for (const Mnemonic& m : kMnemonics) {
    if (name == m.name) {
      return &m;
    }
  }
  return nullptr;
}

std::string StripComment(const std::string& line) {
  size_t pos = line.find(';');
  return pos == std::string::npos ? line : line.substr(0, pos);
}

struct Token {
  std::string mnemonic;
  std::string operand;
};

struct Fixup {
  size_t offset;      // where the 4-byte target goes
  std::string label;
  int line_number;
};

}  // namespace

Error Assemble(const std::string& source, std::vector<uint8_t>* out_code,
               std::string* out_error) {
  out_code->clear();
  std::map<std::string, uint32_t> labels;
  std::vector<Fixup> fixups;

  auto fail = [&](int line_no, const std::string& message) {
    if (out_error != nullptr) {
      *out_error = "line " + std::to_string(line_no) + ": " + message;
    }
    return Error::kInval;
  };

  std::istringstream stream(source);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string line = StripComment(raw_line);
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) {
      continue;  // blank
    }
    // Label definitions (possibly followed by an instruction on the line).
    while (!word.empty() && word.back() == ':') {
      std::string label = word.substr(0, word.size() - 1);
      if (label.empty() || labels.count(label) > 0) {
        return fail(line_no, "bad or duplicate label '" + label + "'");
      }
      labels[label] = static_cast<uint32_t>(out_code->size());
      if (!(words >> word)) {
        word.clear();
        break;
      }
    }
    if (word.empty()) {
      continue;
    }

    const Mnemonic* m = FindMnemonic(word);
    if (m == nullptr) {
      return fail(line_no, "unknown mnemonic '" + word + "'");
    }
    out_code->push_back(static_cast<uint8_t>(m->op));
    if (m->operand_bytes == 0) {
      continue;
    }
    std::string operand;
    if (!(words >> operand)) {
      return fail(line_no, "missing operand for '" + word + "'");
    }
    bool numeric = operand[0] == '-' || operand[0] == '+' ||
                   (operand[0] >= '0' && operand[0] <= '9');
    if (m->operand_bytes == 8) {
      if (!numeric) {
        return fail(line_no, "push needs a numeric operand");
      }
      int64_t value = std::stoll(operand, nullptr, 0);
      uint8_t buf[8];
      StoreLe64(buf, static_cast<uint64_t>(value));
      out_code->insert(out_code->end(), buf, buf + 8);
    } else if (m->operand_bytes == 2) {
      if (!numeric) {
        return fail(line_no, "'" + word + "' needs a numeric operand");
      }
      long value = std::stol(operand, nullptr, 0);
      if (value < 0 || value > 0xffff) {
        return fail(line_no, "operand out of 16-bit range");
      }
      uint8_t buf[2];
      StoreLe16(buf, static_cast<uint16_t>(value));
      out_code->insert(out_code->end(), buf, buf + 2);
    } else {  // 4-byte branch target
      uint8_t buf[4] = {0, 0, 0, 0};
      if (numeric) {
        StoreLe32(buf, static_cast<uint32_t>(std::stoul(operand, nullptr, 0)));
      } else {
        fixups.push_back(Fixup{out_code->size(), operand, line_no});
      }
      out_code->insert(out_code->end(), buf, buf + 4);
    }
  }

  for (const Fixup& fixup : fixups) {
    auto it = labels.find(fixup.label);
    if (it == labels.end()) {
      return fail(fixup.line_number, "undefined label '" + fixup.label + "'");
    }
    StoreLe32(out_code->data() + fixup.offset, it->second);
  }
  return Error::kOk;
}

}  // namespace oskit::vm
