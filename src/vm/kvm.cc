#include "src/vm/kvm.h"

#include <cstring>
#include <map>
#include <set>

#include "src/base/byteorder.h"
#include "src/base/panic.h"

namespace oskit::vm {

namespace {

// Operand byte count for each opcode (255 = invalid opcode).
int OperandBytes(uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kPush:
      return 8;
    case Op::kLoad:
    case Op::kStore:
    case Op::kGLoad:
    case Op::kGStore:
    case Op::kSys:
      return 2;
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
    case Op::kCall:
      return 4;
    case Op::kHalt:
    case Op::kPop:
    case Op::kDup:
    case Op::kSwap:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kNeg:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
    case Op::kRet:
    case Op::kYield:
      return 0;
  }
  return 255;
}

int64_t LoadImm64(const uint8_t* p) {
  uint64_t v = LoadLe64(p);
  return static_cast<int64_t>(v);
}

}  // namespace

Vm::Vm(std::vector<uint8_t> code, SysHandler* sys, const VmConfig& config)
    : code_(std::move(code)), sys_(sys), config_(config),
      globals_(config.globals, 0) {}

Error Vm::Verify(std::string* out_problem) {
  auto fail = [&](const std::string& msg) {
    if (out_problem != nullptr) {
      *out_problem = msg;
    }
    return Error::kInval;
  };
  std::set<uint32_t> starts;
  size_t pc = 0;
  while (pc < code_.size()) {
    starts.insert(static_cast<uint32_t>(pc));
    uint8_t op = code_[pc];
    int operands = OperandBytes(op);
    if (operands == 255) {
      return fail("invalid opcode at " + std::to_string(pc));
    }
    if (pc + 1 + operands > code_.size()) {
      return fail("truncated instruction at " + std::to_string(pc));
    }
    // Operand range checks.
    switch (static_cast<Op>(op)) {
      case Op::kLoad:
      case Op::kStore:
        if (LoadLe16(&code_[pc + 1]) >= config_.locals) {
          return fail("local index out of range at " + std::to_string(pc));
        }
        break;
      case Op::kGLoad:
      case Op::kGStore:
        if (LoadLe16(&code_[pc + 1]) >= config_.globals) {
          return fail("global index out of range at " + std::to_string(pc));
        }
        break;
      default:
        break;
    }
    pc += 1 + operands;
  }
  // Branch targets must land on instruction boundaries.
  pc = 0;
  while (pc < code_.size()) {
    uint8_t op = code_[pc];
    int operands = OperandBytes(op);
    switch (static_cast<Op>(op)) {
      case Op::kJmp:
      case Op::kJz:
      case Op::kJnz:
      case Op::kCall: {
        uint32_t target = LoadLe32(&code_[pc + 1]);
        if (starts.count(target) == 0) {
          return fail("branch to mid-instruction at " + std::to_string(pc));
        }
        break;
      }
      default:
        break;
    }
    pc += 1 + operands;
  }
  verified_ = true;
  return Error::kOk;
}

int Vm::SpawnThread(uint32_t pc) {
  OSKIT_ASSERT_MSG(pc < code_.size() || code_.empty(), "thread entry out of range");
  VmThread t;
  t.pc = pc;
  t.locals.assign(config_.locals, 0);
  threads_.push_back(std::move(t));
  return static_cast<int>(threads_.size()) - 1;
}

int64_t Vm::Pop(int thread_id) {
  VmThread& t = threads_[thread_id];
  OSKIT_ASSERT_MSG(!t.stack.empty(), "syscall popped an empty stack");
  int64_t v = t.stack.back();
  t.stack.pop_back();
  return v;
}

void Vm::Push(int thread_id, int64_t value) {
  threads_[thread_id].stack.push_back(value);
}

void Vm::FaultThread(VmThread& t, Error err) {
  t.state = VmThread::State::kFaulted;
  t.fault = err;
}

bool Vm::Step(int id, uint64_t budget) {
  VmThread& t = threads_[id];
  for (uint64_t n = 0; n < budget && t.state == VmThread::State::kRunnable; ++n) {
    if (t.pc >= code_.size()) {
      FaultThread(t, Error::kFault);
      return true;
    }
    Op op = static_cast<Op>(code_[t.pc]);
    const uint8_t* operand = &code_[t.pc] + 1;
    uint32_t next_pc = t.pc + 1 + OperandBytes(code_[t.pc]);
    ++t.instructions;
    ++instructions_;

    auto need = [&](size_t depth) -> bool {
      if (t.stack.size() < depth) {
        FaultThread(t, Error::kFault);
        return false;
      }
      return true;
    };
    auto binop = [&](auto fn) {
      if (!need(2)) {
        return;
      }
      int64_t b = t.stack.back();
      t.stack.pop_back();
      int64_t a = t.stack.back();
      t.stack.back() = fn(a, b);
    };

    switch (op) {
      case Op::kHalt:
        t.state = VmThread::State::kDone;
        return true;
      case Op::kPush:
        if (t.stack.size() >= config_.stack_limit) {
          FaultThread(t, Error::kNoMem);
          return true;
        }
        t.stack.push_back(LoadImm64(operand));
        break;
      case Op::kPop:
        if (!need(1)) {
          return true;
        }
        t.stack.pop_back();
        break;
      case Op::kDup:
        if (!need(1)) {
          return true;
        }
        t.stack.push_back(t.stack.back());
        break;
      case Op::kSwap: {
        if (!need(2)) {
          return true;
        }
        std::swap(t.stack[t.stack.size() - 1], t.stack[t.stack.size() - 2]);
        break;
      }
      case Op::kLoad:
        t.stack.push_back(t.locals[LoadLe16(operand)]);
        break;
      case Op::kStore:
        if (!need(1)) {
          return true;
        }
        t.locals[LoadLe16(operand)] = t.stack.back();
        t.stack.pop_back();
        break;
      case Op::kGLoad:
        t.stack.push_back(globals_[LoadLe16(operand)]);
        break;
      case Op::kGStore:
        if (!need(1)) {
          return true;
        }
        globals_[LoadLe16(operand)] = t.stack.back();
        t.stack.pop_back();
        break;
      case Op::kAdd:
        binop([](int64_t a, int64_t b) { return a + b; });
        break;
      case Op::kSub:
        binop([](int64_t a, int64_t b) { return a - b; });
        break;
      case Op::kMul:
        binop([](int64_t a, int64_t b) { return a * b; });
        break;
      case Op::kDiv:
        if (!need(2)) {
          return true;
        }
        if (t.stack.back() == 0) {
          FaultThread(t, Error::kInval);
          return true;
        }
        binop([](int64_t a, int64_t b) { return a / b; });
        break;
      case Op::kMod:
        if (!need(2)) {
          return true;
        }
        if (t.stack.back() == 0) {
          FaultThread(t, Error::kInval);
          return true;
        }
        binop([](int64_t a, int64_t b) { return a % b; });
        break;
      case Op::kNeg:
        if (!need(1)) {
          return true;
        }
        t.stack.back() = -t.stack.back();
        break;
      case Op::kAnd:
        binop([](int64_t a, int64_t b) { return a & b; });
        break;
      case Op::kOr:
        binop([](int64_t a, int64_t b) { return a | b; });
        break;
      case Op::kXor:
        binop([](int64_t a, int64_t b) { return a ^ b; });
        break;
      case Op::kShl:
        binop([](int64_t a, int64_t b) {
          return static_cast<int64_t>(static_cast<uint64_t>(a) << (b & 63));
        });
        break;
      case Op::kShr:
        binop([](int64_t a, int64_t b) {
          return static_cast<int64_t>(static_cast<uint64_t>(a) >> (b & 63));
        });
        break;
      case Op::kEq:
        binop([](int64_t a, int64_t b) { return static_cast<int64_t>(a == b); });
        break;
      case Op::kNe:
        binop([](int64_t a, int64_t b) { return static_cast<int64_t>(a != b); });
        break;
      case Op::kLt:
        binop([](int64_t a, int64_t b) { return static_cast<int64_t>(a < b); });
        break;
      case Op::kLe:
        binop([](int64_t a, int64_t b) { return static_cast<int64_t>(a <= b); });
        break;
      case Op::kGt:
        binop([](int64_t a, int64_t b) { return static_cast<int64_t>(a > b); });
        break;
      case Op::kGe:
        binop([](int64_t a, int64_t b) { return static_cast<int64_t>(a >= b); });
        break;
      case Op::kJmp:
        next_pc = LoadLe32(operand);
        break;
      case Op::kJz:
        if (!need(1)) {
          return true;
        }
        if (t.stack.back() == 0) {
          next_pc = LoadLe32(operand);
        }
        t.stack.pop_back();
        break;
      case Op::kJnz:
        if (!need(1)) {
          return true;
        }
        if (t.stack.back() != 0) {
          next_pc = LoadLe32(operand);
        }
        t.stack.pop_back();
        break;
      case Op::kCall:
        if (t.call_stack.size() >= config_.call_depth_limit) {
          FaultThread(t, Error::kNoMem);
          return true;
        }
        t.call_stack.push_back(next_pc);
        next_pc = LoadLe32(operand);
        break;
      case Op::kRet:
        if (t.call_stack.empty()) {
          t.state = VmThread::State::kDone;  // return from the entry frame
          return true;
        }
        next_pc = t.call_stack.back();
        t.call_stack.pop_back();
        break;
      case Op::kSys: {
        uint16_t number = LoadLe16(operand);
        t.pc = next_pc;  // syscalls see the post-instruction pc
        Error err;
        switch (number) {
          case kSysSpawn: {
            if (!need(1)) {
              return true;
            }
            int64_t entry = Pop(id);
            if (entry < 0 || static_cast<size_t>(entry) >= code_.size()) {
              FaultThread(threads_[id], Error::kFault);
              return true;
            }
            int child = SpawnThread(static_cast<uint32_t>(entry));
            Push(id, child);
            err = Error::kOk;
            break;
          }
          default:
            err = sys_ != nullptr ? sys_->Syscall(number, *this, id)
                                  : Error::kNotImpl;
            break;
        }
        VmThread& self = threads_[id];
        if (!Ok(err)) {
          FaultThread(self, err);
          return true;
        }
        if (self.state != VmThread::State::kRunnable) {
          return true;
        }
        continue;  // pc already advanced
      }
      case Op::kYield:
        t.pc = next_pc;
        return false;  // voluntary switch
    }
    t.pc = next_pc;
  }
  return true;
}

Error Vm::Run(uint64_t max_instructions) {
  OSKIT_ASSERT_MSG(verified_, "Run before Verify");
  uint64_t start = instructions_;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t id = 0; id < threads_.size(); ++id) {
      if (threads_[id].state != VmThread::State::kRunnable) {
        continue;
      }
      progress = true;
      Step(static_cast<int>(id), config_.quantum);
      if (instructions_ - start >= max_instructions) {
        return Error::kAborted;
      }
    }
  }
  for (const VmThread& t : threads_) {
    if (t.state == VmThread::State::kFaulted) {
      return t.fault;
    }
  }
  return Error::kOk;
}

}  // namespace oskit::vm
