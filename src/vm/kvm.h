// "KVM" — the bytecode virtual machine for the network-computer case study
// (paper §6.1.4).
//
// Stands in for the Kaffe JVM: a POSIX-hosted language runtime with its own
// bytecode format, verifier, interpreter, and user-level (green) thread
// package, ported onto the OSKit substrate.  The netcomputer example loads
// KVM programs from the boot-module filesystem (as Java/PC loaded .class
// files, §6.2.2) and its syscall layer binds to whatever the embedding
// kernel provides — console, timers, sockets.
//
// The machine: a 64-bit stack machine with locals, globals, call/ret, and
// cooperative threads preempted at a configurable instruction quantum.

#ifndef OSKIT_SRC_VM_KVM_H_
#define OSKIT_SRC_VM_KVM_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/base/error.h"

namespace oskit::vm {

enum class Op : uint8_t {
  kHalt = 0x00,   // stop this thread
  kPush = 0x01,   // imm64 -> push
  kPop = 0x02,
  kDup = 0x03,
  kSwap = 0x04,
  kLoad = 0x05,   // u16 local index -> push
  kStore = 0x06,  // u16 local index <- pop
  kGLoad = 0x07,  // u16 global index -> push
  kGStore = 0x08,
  kAdd = 0x10,
  kSub = 0x11,
  kMul = 0x12,
  kDiv = 0x13,    // traps (kInval) on divide by zero
  kMod = 0x14,
  kNeg = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kShl = 0x19,
  kShr = 0x1a,
  kEq = 0x20,
  kNe = 0x21,
  kLt = 0x22,
  kLe = 0x23,
  kGt = 0x24,
  kGe = 0x25,
  kJmp = 0x30,    // u32 target
  kJz = 0x31,     // u32 target, pop cond
  kJnz = 0x32,
  kCall = 0x33,   // u32 target (pushes return pc on the call stack)
  kRet = 0x34,
  kSys = 0x40,    // u16 syscall number
  kYield = 0x41,  // cooperative thread switch
};

// Well-known syscall numbers every embedding provides.
inline constexpr uint16_t kSysPutChar = 1;   // pop c
inline constexpr uint16_t kSysPutInt = 2;    // pop v
inline constexpr uint16_t kSysTimeNs = 3;    // push now
inline constexpr uint16_t kSysSpawn = 4;     // pop entry pc, push thread id
// Numbers >= 16 are embedding-specific (the netcomputer adds sockets).

class Vm;

// Host syscall binding.  Arguments are popped by the handler from the
// thread's operand stack; results pushed.
class SysHandler {
 public:
  virtual ~SysHandler() = default;
  virtual Error Syscall(uint16_t number, Vm& vm, int thread_id) = 0;
};

struct VmThread {
  enum class State { kRunnable, kDone, kFaulted };
  State state = State::kRunnable;
  uint32_t pc = 0;
  std::vector<int64_t> stack;
  std::vector<int64_t> locals;
  std::vector<uint32_t> call_stack;
  uint64_t instructions = 0;
  Error fault = Error::kOk;
};

struct VmConfig {
  size_t stack_limit = 4096;
  size_t locals = 64;
  size_t globals = 256;
  size_t call_depth_limit = 256;
  uint64_t quantum = 1000;  // instructions per scheduling slice
};

class Vm {
 public:
  Vm(std::vector<uint8_t> code, SysHandler* sys, const VmConfig& config = VmConfig());

  // Static verification: every opcode valid, operands in bounds, every jump
  // and call target on an instruction boundary, code ends cleanly.  Must
  // pass before Run.
  Error Verify(std::string* out_problem = nullptr);

  // Creates a thread starting at `pc`; returns its id.
  int SpawnThread(uint32_t pc);

  // Runs all threads (round-robin, `quantum` instructions each) until every
  // thread halts or faults, or `max_instructions` executes.  Returns kOk
  // when all threads completed normally.
  Error Run(uint64_t max_instructions = ~uint64_t{0});

  // ---- State access (for syscall handlers and tests) ----
  int64_t Pop(int thread_id);
  void Push(int thread_id, int64_t value);
  int64_t global(size_t index) const { return globals_[index]; }
  void set_global(size_t index, int64_t v) { globals_[index] = v; }
  const VmThread& thread(int id) const { return threads_[id]; }
  size_t thread_count() const { return threads_.size(); }
  uint64_t instructions_executed() const { return instructions_; }
  const std::vector<uint8_t>& code() const { return code_; }

 private:
  // Executes up to `budget` instructions of thread `id`; returns false when
  // the thread yielded voluntarily.
  bool Step(int id, uint64_t budget);
  void FaultThread(VmThread& t, Error err);

  std::vector<uint8_t> code_;
  SysHandler* sys_;
  VmConfig config_;
  // Deque: spawning threads from a syscall must not invalidate references
  // to running threads.
  std::deque<VmThread> threads_;
  std::vector<int64_t> globals_;
  uint64_t instructions_ = 0;
  bool verified_ = false;
};

// ---- Assembler ----
//
// One instruction per line; ';' comments; "label:" definitions; jump/call
// operands may be labels or numbers.  Example:
//     push 10
//   loop:
//     dup
//     sys 2        ; print int
//     push 1
//     sub
//     dup
//     jnz loop
//     halt
Error Assemble(const std::string& source, std::vector<uint8_t>* out_code,
               std::string* out_error);

}  // namespace oskit::vm

#endif  // OSKIT_SRC_VM_KVM_H_
