// Async completion-ring and stackable blkio-layer tests: the BlkIoRing
// contract (sync-over-async adapter and the IDE glue's native ring with
// LBA-sorted adjacent-run merging), RAID0 striping, the per-block checksum
// layer, the block cache as a stackable layer with GetRef pinning, and
// barrier propagation through arbitrary compositions down to every DiskHw.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/aio/stack.h"
#include "src/com/memblkio.h"
#include "src/dev/linux/linux_glue.h"
#include "src/dev/linux/linux_ide.h"
#include "src/diskpart/diskpart.h"
#include "src/fs/cache.h"
#include "src/kern/kmon.h"
#include "tests/bounds_abuse.h"

namespace oskit {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t salt = 0) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(i * 31 + salt);
  }
  return v;
}

ComPtr<BlkIo> AsBlkIo(const ComPtr<MemBlkIo>& io) {
  return ComPtr<BlkIo>::FromQuery(io.get());
}

uint64_t AmbientCounter(const char* name) {
  uint64_t out = 0;
  trace::ResolveTraceEnv(nullptr)->registry.ForEach(
      [&](const char* n, uint64_t value, bool) {
        if (std::strcmp(n, name) == 0) {
          out = value;
        }
      });
  return out;
}

// ---- Sync-over-async adapter ----

TEST(SyncRingAdapterTest, ExecutesSqesAndPreservesTags) {
  auto mem = MemBlkIo::Create(64 * 1024, 512);
  auto ring = aio::SyncRingAdapter::Wrap(mem.get());

  auto a = Pattern(512, 1);
  auto b = Pattern(512, 2);
  std::vector<uint8_t> readback(512);
  AioSqe sqes[4] = {
      {AioOp::kWrite, a.data(), 0, a.size(), 11},
      {AioOp::kWrite, b.data(), 512, b.size(), 22},
      {AioOp::kRead, readback.data(), 0, readback.size(), 33},
      {AioOp::kFlush, nullptr, 0, 0, 44},
  };
  size_t accepted = 0;
  ASSERT_EQ(Error::kOk, ring->Submit(sqes, 4, &accepted));
  EXPECT_EQ(4u, accepted);
  EXPECT_EQ(4u, ring->Occupancy());

  AioCqe cqes[8];
  size_t count = 0;
  ASSERT_EQ(Error::kOk, ring->Reap(cqes, 8, &count));
  ASSERT_EQ(4u, count);
  EXPECT_EQ(0u, ring->Occupancy());
  uint64_t tags[4] = {11, 22, 33, 44};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tags[i], cqes[i].tag);
    EXPECT_EQ(Error::kOk, cqes[i].status);
  }
  EXPECT_EQ(512u, cqes[2].actual);
  // The read SQE ran after the write SQE it depends on (submission order).
  EXPECT_EQ(a, readback);
}

TEST(SyncRingAdapterTest, BackpressuresAtRingDepth) {
  auto mem = MemBlkIo::Create(64 * 1024, 512);
  auto ring = aio::SyncRingAdapter::Wrap(mem.get());

  uint8_t buf[16];
  std::vector<AioSqe> sqes(aio::SyncRingAdapter::kRingDepth + 10,
                           AioSqe{AioOp::kRead, buf, 0, sizeof(buf), 7});
  size_t accepted = 0;
  ASSERT_EQ(Error::kOk, ring->Submit(sqes.data(), sqes.size(), &accepted));
  EXPECT_EQ(aio::SyncRingAdapter::kRingDepth, accepted);
  EXPECT_EQ(Error::kOk, ring->Submit(sqes.data(), 1, &accepted));
  EXPECT_EQ(0u, accepted);  // full until reaped

  AioCqe cqes[40];
  size_t count = 0;
  ASSERT_EQ(Error::kOk, ring->Reap(cqes, 40, &count));
  EXPECT_EQ(40u, count);
  ASSERT_EQ(Error::kOk, ring->Reap(cqes, 40, &count));
  EXPECT_EQ(aio::SyncRingAdapter::kRingDepth - 40, count);
  ASSERT_EQ(Error::kOk, ring->Submit(sqes.data(), 1, &accepted));
  EXPECT_EQ(1u, accepted);
}

TEST(SyncRingAdapterTest, PerSqeFailuresLandInCqeStatus) {
  auto mem = MemBlkIo::Create(8 * 1024, 512);
  auto ring = aio::SyncRingAdapter::Wrap(mem.get());

  uint8_t buf[16];
  AioSqe sqes[2] = {
      {AioOp::kRead, buf, 1, ~size_t{0}, 1},          // wraps -> kInval
      {AioOp::kRead, buf, ~uint64_t{0} - 7, 16, 2},   // huge offset
  };
  size_t accepted = 0;
  ASSERT_EQ(Error::kOk, ring->Submit(sqes, 2, &accepted));
  ASSERT_EQ(2u, accepted);
  AioCqe cqes[2];
  size_t count = 0;
  ASSERT_EQ(Error::kOk, ring->Reap(cqes, 2, &count));
  ASSERT_EQ(2u, count);
  EXPECT_EQ(Error::kInval, cqes[0].status);
  EXPECT_EQ(0u, cqes[0].actual);
  EXPECT_EQ(Error::kOutOfRange, cqes[1].status);
}

// ---- Striping layer ----

TEST(StripeBlkIoTest, GeometryAndInterleave) {
  std::vector<ComPtr<BlkIo>> children;
  for (int i = 0; i < 3; ++i) {
    children.push_back(AsBlkIo(MemBlkIo::Create(8 * 1024, 512)));
  }
  std::vector<BlkIo*> raw = {children[0].get(), children[1].get(),
                             children[2].get()};
  auto stripe = aio::StripeBlkIo::Create(std::move(children), 1024);

  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, stripe->GetSize(&size));
  EXPECT_EQ(3u * 8 * 1024, size);
  EXPECT_EQ(512u, stripe->GetBlockSize());

  auto data = Pattern(static_cast<size_t>(size));
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, stripe->Write(data.data(), 0, data.size(), &actual));
  ASSERT_EQ(data.size(), actual);

  // RAID0 address map: unit u lives on child u % 3 at unit u / 3.
  std::vector<uint8_t> unit(1024);
  for (uint32_t u = 0; u < size / 1024; ++u) {
    BlkIo* child = raw[u % 3];
    ASSERT_EQ(Error::kOk,
              child->Read(unit.data(), (u / 3) * 1024, unit.size(), &actual));
    ASSERT_EQ(unit.size(), actual);
    EXPECT_EQ(0, memcmp(unit.data(), data.data() + u * 1024, unit.size()))
        << "unit " << u;
  }

  // Unaligned read crossing a unit boundary reassembles correctly.
  std::vector<uint8_t> cross(300);
  ASSERT_EQ(Error::kOk, stripe->Read(cross.data(), 900, cross.size(), &actual));
  ASSERT_EQ(cross.size(), actual);
  EXPECT_EQ(0, memcmp(cross.data(), data.data() + 900, cross.size()));
}

TEST(StripeBlkIoTest, BoundsAbuse) {
  std::vector<ComPtr<BlkIo>> children;
  children.push_back(AsBlkIo(MemBlkIo::Create(8 * 1024, 512)));
  children.push_back(AsBlkIo(MemBlkIo::Create(8 * 1024, 512)));
  auto stripe = aio::StripeBlkIo::Create(std::move(children), 512);
  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, stripe->GetSize(&size));
  testing::AbuseReadBounds(stripe.get(), size);
  testing::AbuseWriteBounds(stripe.get(), size);
}

// ---- Checksum layer ----

TEST(ChecksumBlkIoTest, DetectsScribbledSector) {
  auto mem = MemBlkIo::Create(16 * 512, 512);
  auto sums = aio::ChecksumBlkIo::Create(mem.get());

  auto block = Pattern(512, 9);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, sums->Write(block.data(), 3 * 512, 512, &actual));
  EXPECT_EQ(1u, sums->tracked_granules());

  std::vector<uint8_t> readback(512);
  ASSERT_EQ(Error::kOk, sums->Read(readback.data(), 3 * 512, 512, &actual));
  EXPECT_EQ(block, readback);

  // Corrupt one byte UNDER the layer (torn sector / scribble / bit rot).
  uint8_t evil = block[7] ^ 0xFF;
  ASSERT_EQ(Error::kOk, mem->Write(&evil, 3 * 512 + 7, 1, &actual));
  EXPECT_EQ(Error::kIo, sums->Read(readback.data(), 3 * 512, 512, &actual));
  EXPECT_EQ(0u, actual);  // kIo, never the corrupt bytes
  EXPECT_EQ(1u, sums->mismatches());

  // A granule no write covered is unchecked: scribble passes through there.
  ASSERT_EQ(Error::kOk, mem->Write(&evil, 5 * 512, 1, &actual));
  EXPECT_EQ(Error::kOk, sums->Read(readback.data(), 5 * 512, 512, &actual));
}

TEST(ChecksumBlkIoTest, PartialWriteInvalidatesEdgeGranule) {
  auto mem = MemBlkIo::Create(16 * 512, 512);
  auto sums = aio::ChecksumBlkIo::Create(mem.get());

  auto block = Pattern(512, 3);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, sums->Write(block.data(), 2 * 512, 512, &actual));
  ASSERT_EQ(1u, sums->tracked_granules());
  // A sub-granule write makes the digest unknowable without read-to-merge;
  // the entry drops back to unchecked rather than going stale.
  ASSERT_EQ(Error::kOk, sums->Write(block.data(), 2 * 512 + 100, 64, &actual));
  EXPECT_EQ(0u, sums->tracked_granules());
  std::vector<uint8_t> readback(512);
  EXPECT_EQ(Error::kOk, sums->Read(readback.data(), 2 * 512, 512, &actual));
}

TEST(ChecksumBlkIoTest, BoundsAbuse) {
  auto mem = MemBlkIo::Create(16 * 512, 512);
  auto sums = aio::ChecksumBlkIo::Create(mem.get());
  testing::AbuseReadBounds(sums.get(), 16 * 512);
  testing::AbuseWriteBounds(sums.get(), 16 * 512);
}

// ---- The block cache as a layer ----

TEST(CacheBlkIoTest, CachesReadsAndWritesBackOnFlush) {
  auto mem = MemBlkIo::Create(64 * 512, 512);
  auto cache = fs::CacheBlkIo::Create(mem.get(), 512, 16);

  auto data = Pattern(2048, 5);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, cache->Write(data.data(), 512, data.size(), &actual));
  ASSERT_EQ(data.size(), actual);

  // Dirty data is visible through the layer but not yet below it.
  std::vector<uint8_t> below(2048);
  ASSERT_EQ(Error::kOk, mem->Read(below.data(), 512, below.size(), &actual));
  EXPECT_NE(data, below);
  std::vector<uint8_t> above(2048);
  ASSERT_EQ(Error::kOk, cache->Read(above.data(), 512, above.size(), &actual));
  EXPECT_EQ(data, above);

  ASSERT_EQ(Error::kOk, cache->Flush());
  ASSERT_EQ(Error::kOk, mem->Read(below.data(), 512, below.size(), &actual));
  EXPECT_EQ(data, below);
}

TEST(CacheBlkIoTest, BoundsAbuse) {
  auto mem = MemBlkIo::Create(64 * 512, 512);
  auto cache = fs::CacheBlkIo::Create(mem.get(), 512, 16);
  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, cache->GetSize(&size));
  testing::AbuseReadBounds(cache.get(), size);
  testing::AbuseWriteBounds(cache.get(), size);
}

TEST(BlockCacheTest, GetRefPinsAgainstEvictionAndInvalidate) {
  auto mem = MemBlkIo::Create(256 * 512, 512);
  auto seeded = Pattern(512, 42);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, mem->Write(seeded.data(), 0, seeded.size(), &actual));

  fs::BlockCache cache(ComPtr<BlkIo>::Retain(mem.get()), 512, /*capacity=*/8);
  const uint8_t* pinned = nullptr;
  ASSERT_EQ(Error::kOk, cache.GetRef(0, &pinned));
  ASSERT_NE(nullptr, pinned);
  EXPECT_EQ(0, memcmp(pinned, seeded.data(), 512));

  // Thrash far past capacity: block 0 must survive (the exported pointer
  // stays valid), everything else cycles.
  uint8_t scratch[512];
  for (uint32_t b = 1; b < 64; ++b) {
    ASSERT_EQ(Error::kOk, cache.ReadBlock(b, scratch));
  }
  // Same storage, not a reload: a write through the cache is visible via
  // the pinned pointer.
  auto updated = Pattern(512, 43);
  ASSERT_EQ(Error::kOk, cache.WriteBlock(0, updated.data()));
  EXPECT_EQ(0, memcmp(pinned, updated.data(), 512));

  ASSERT_EQ(Error::kOk, cache.Sync());
  EXPECT_EQ(Error::kBusy, cache.Invalidate(0));  // pointer outstanding
  cache.DropDirty(0);  // must keep the entry alive while pinned
  EXPECT_EQ(0, memcmp(pinned, updated.data(), 512));

  cache.PutRef(0);
  EXPECT_EQ(Error::kOk, cache.Invalidate(0));  // unpinned: evictable again
}

// ---- Full compositions ----

TEST(StackCompositionTest, CacheOverChecksumOverStripeRoundTrips) {
  std::vector<ComPtr<BlkIo>> children;
  std::vector<BlkIo*> raw;
  for (int i = 0; i < 2; ++i) {
    children.push_back(AsBlkIo(MemBlkIo::Create(32 * 1024, 512)));
    raw.push_back(children.back().get());
  }
  auto stripe = aio::StripeBlkIo::Create(std::move(children), 1024);
  auto sums = aio::ChecksumBlkIo::Create(stripe.get());
  auto cache = fs::CacheBlkIo::Create(sums.get(), 1024, 16);

  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, cache->GetSize(&size));
  ASSERT_EQ(64u * 1024, size);

  auto data = Pattern(static_cast<size_t>(size), 17);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, cache->Write(data.data(), 0, data.size(), &actual));
  ASSERT_EQ(Error::kOk, cache->Flush());

  // Read back through a FRESH path (cold cache) to prove the bytes landed
  // below, and that the checksum layer verifies them clean.
  auto cold = fs::CacheBlkIo::Create(sums.get(), 1024, 16);
  std::vector<uint8_t> readback(data.size());
  ASSERT_EQ(Error::kOk, cold->Read(readback.data(), 0, readback.size(), &actual));
  EXPECT_EQ(data, readback);

  // And the members really hold interleaved halves.
  std::vector<uint8_t> unit(1024);
  ASSERT_EQ(Error::kOk, raw[1]->Read(unit.data(), 0, unit.size(), &actual));
  EXPECT_EQ(0, memcmp(unit.data(), data.data() + 1024, unit.size()));
}

// ---- IDE-backed tests (simulated machine) ----

class AioIdeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{});
    machine_->cpu().EnableInterrupts();
    fdev_ = DefaultFdevEnv(kernel_.get());
  }

  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
  FdevEnv fdev_;
};

TEST_F(AioIdeTest, NativeRingMergesAdjacentRuns) {
  machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ASSERT_TRUE(device);
  ComPtr<BlkIoRing> ring = ComPtr<BlkIoRing>::FromQuery(device.get());
  ASSERT_TRUE(ring);  // the IDE glue's native ring, found the §4.4.2 way
  auto* ide = static_cast<linuxdev::LinuxIdeDev*>(device.get());

  constexpr size_t kDepth = 8;
  auto data = Pattern(kDepth * 512, 77);
  bool done = false;
  sim_.Spawn("ring", [&] {
    uint64_t issued_before = ide->drive().requests_issued;
    // Eight adjacent single-sector writes, submitted deepest-first: the
    // scheduler sorts by LBA and merges the run into ONE controller
    // round-trip.
    AioSqe sqes[kDepth];
    for (size_t i = 0; i < kDepth; ++i) {
      size_t rev = kDepth - 1 - i;
      sqes[i] = {AioOp::kWrite, data.data() + rev * 512,
                 static_cast<off_t64>((10 + rev) * 512), 512, 100 + rev};
    }
    size_t accepted = 0;
    ASSERT_EQ(Error::kOk, ring->Submit(sqes, kDepth, &accepted));
    ASSERT_EQ(kDepth, accepted);
    EXPECT_EQ(issued_before + 1, ide->drive().requests_issued);

    AioCqe cqes[kDepth];
    size_t count = 0;
    ASSERT_EQ(Error::kOk, ring->Reap(cqes, kDepth, &count));
    ASSERT_EQ(kDepth, count);
    for (size_t i = 0; i < kDepth; ++i) {
      EXPECT_EQ(Error::kOk, cqes[i].status);
      EXPECT_EQ(512u, cqes[i].actual);
    }

    // Read the span back through the ring and verify per-tag placement.
    std::vector<uint8_t> readback(kDepth * 512);
    for (size_t i = 0; i < kDepth; ++i) {
      sqes[i] = {AioOp::kRead, readback.data() + i * 512,
                 static_cast<off_t64>((10 + i) * 512), 512, 200 + i};
    }
    ASSERT_EQ(Error::kOk, ring->Submit(sqes, kDepth, &accepted));
    ASSERT_EQ(kDepth, accepted);
    ASSERT_EQ(Error::kOk, ring->Reap(cqes, kDepth, &count));
    ASSERT_EQ(kDepth, count);
    EXPECT_EQ(0, memcmp(readback.data(), data.data(), readback.size()));
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
  EXPECT_GE(AmbientCounter("glue.ide.ring.merges"), 2u);
  EXPECT_GE(AmbientCounter("glue.ide.ring.merged_sqes"), 2 * kDepth);
}

TEST_F(AioIdeTest, FlushSqeDrainsWriteCache) {
  DiskHw* disk = machine_->AddDisk(2048);
  disk->EnableWriteCache(true);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIoRing> ring = ComPtr<BlkIoRing>::FromQuery(device.get());
  ASSERT_TRUE(ring);

  bool done = false;
  sim_.Spawn("flush", [&] {
    auto block = Pattern(512, 8);
    AioSqe sqes[2] = {
        {AioOp::kWrite, block.data(), 0, block.size(), 1},
        {AioOp::kFlush, nullptr, 0, 0, 2},
    };
    size_t accepted = 0;
    ASSERT_EQ(Error::kOk, ring->Submit(sqes, 2, &accepted));
    ASSERT_EQ(2u, accepted);
    AioCqe cqes[2];
    size_t count = 0;
    ASSERT_EQ(Error::kOk, ring->Reap(cqes, 2, &count));
    ASSERT_EQ(2u, count);
    EXPECT_EQ(Error::kOk, cqes[0].status);
    EXPECT_EQ(Error::kOk, cqes[1].status);
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
  // The in-ring barrier drained the disk's volatile cache.
  EXPECT_EQ(0u, disk->cached_writes());
  EXPECT_GE(disk->flushes_completed(), 1u);
}

TEST_F(AioIdeTest, StackedFlushReachesEveryDiskHw) {
  // Three drives, write caches on, striped together with checksum and cache
  // layers stacked on top.  One Flush at the very top must leave NO disk
  // with buffered writes — the barrier fans out through every layer.
  DiskHw* disks[3];
  int irqs[3] = {14, 15, 11};
  for (int i = 0; i < 3; ++i) {
    disks[i] = machine_->AddDisk(2048, irqs[i]);
    disks[i]->EnableWriteCache(true);
  }
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  const char* names[3] = {"hda", "hdb", "hdc"};
  std::vector<ComPtr<BlkIo>> children;
  for (const char* name : names) {
    auto device = registry.LookupByName(name);
    ASSERT_TRUE(device) << name;
    auto child = ComPtr<BlkIo>::FromQuery(device.get());
    ASSERT_TRUE(child);
    children.push_back(std::move(child));
  }

  bool done = false;
  sim_.Spawn("stack", [&] {
    auto stripe = aio::StripeBlkIo::Create(std::move(children), 1024);
    auto sums = aio::ChecksumBlkIo::Create(stripe.get());
    auto cache = fs::CacheBlkIo::Create(sums.get(), 1024, 16);
    ComPtr<BlkIoBarrier> barrier = ComPtr<BlkIoBarrier>::FromQuery(cache.get());
    ASSERT_TRUE(barrier);

    auto data = Pattern(3 * 1024, 21);  // touches all three members
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, cache->Write(data.data(), 0, data.size(), &actual));
    ASSERT_EQ(data.size(), actual);
    ASSERT_EQ(Error::kOk, barrier->Flush());
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(0u, disks[i]->cached_writes()) << names[i];
    EXPECT_GE(disks[i]->flushes_completed(), 1u) << names[i];
    EXPECT_GT(disks[i]->writes_completed(), 0u) << names[i];
  }
}

TEST_F(AioIdeTest, PartitionViewPropagatesBarrier) {
  DiskHw* disk = machine_->AddDisk(2048);
  disk->EnableWriteCache(true);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);

  Partition part{};
  part.start_sector = 16;
  part.sector_count = 512;
  auto view = MakePartitionView(blkio.get(), part);
  ASSERT_TRUE(view);
  ComPtr<BlkIoBarrier> barrier = ComPtr<BlkIoBarrier>::FromQuery(view.get());
  ASSERT_TRUE(barrier);  // the view forwards the disk's barrier extension

  bool done = false;
  sim_.Spawn("part", [&] {
    auto block = Pattern(512, 4);
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, view->Write(block.data(), 0, block.size(), &actual));
    ASSERT_EQ(Error::kOk, barrier->Flush());
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
  EXPECT_EQ(0u, disk->cached_writes());
  EXPECT_GE(disk->flushes_completed(), 1u);

  // Over a RAM-backed device the forwarded barrier is the trivial one.
  auto mem = MemBlkIo::Create(512 * 512, 512);
  auto memview = MakePartitionView(mem.get(), part);
  auto membar = ComPtr<BlkIoBarrier>::FromQuery(memview.get());
  ASSERT_TRUE(membar);
  EXPECT_EQ(Error::kOk, membar->Flush());
}

// The monitor's 'aio' command: the async-storage counter slice plus the
// owner-plugged per-device ring line.
TEST_F(AioIdeTest, KmonAioDumpsRingCountersAndSource) {
  machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIoRing> ring = ComPtr<BlkIoRing>::FromQuery(device.get());
  ASSERT_TRUE(ring);

  // A few SQEs through the ring first, so the counters have something to say.
  auto data = Pattern(4 * 512, 5);
  sim_.Spawn("io", [&] {
    AioSqe sqes[4];
    for (size_t i = 0; i < 4; ++i) {
      sqes[i] = {AioOp::kWrite, data.data() + i * 512,
                 static_cast<off_t64>(i) * 512, 512, i};
    }
    size_t accepted = 0;
    ASSERT_EQ(Error::kOk, ring->Submit(sqes, 4, &accepted));
    ASSERT_EQ(4u, accepted);
    AioCqe cqes[4];
    size_t count = 0;
    ASSERT_EQ(Error::kOk, ring->Reap(cqes, 4, &count));
    ASSERT_EQ(4u, count);
  });

  KernelMonitor kmon(kernel_.get(), &kernel_->console());
  kmon.SetAioSource([&](const std::function<void(const char*)>& emit) {
    char line[64];
    std::snprintf(line, sizeof(line), "hda ring occupancy=%zu",
                  ring->Occupancy());
    emit(line);
  });
  auto type = [&](const std::string& line) {
    machine_->console_uart().InjectRx(line.data(), line.size());
    machine_->console_uart().InjectRx("\r", 1);
  };
  type("aio");
  type("c");
  sim_.Spawn("kmon", [&] {
    TrapFrame frame;
    kmon.Enter(frame);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());

  std::string out = machine_->console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("glue.ide.ring.sqes"));
  EXPECT_NE(std::string::npos, out.find("glue.ide.ring.merges"));
  EXPECT_NE(std::string::npos, out.find("hda ring occupancy=0"));
}

TEST_F(AioIdeTest, IdeBlkIoBoundsAbuse) {
  machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);
  bool done = false;
  sim_.Spawn("abuse", [&] {
    testing::AbuseReadBounds(blkio.get(), 2048 * 512);
    testing::AbuseWriteBounds(blkio.get(), 2048 * 512);
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace oskit
