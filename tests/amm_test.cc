// AMM unit and property tests (§3.3): address maps that need not correspond
// to memory at all.

#include <gtest/gtest.h>

#include <map>

#include "src/amm/amm.h"
#include "src/base/random.h"

namespace oskit {
namespace {

TEST(AmmTest, StartsAsOneFreeEntry) {
  Amm amm(0x1000, 0x100000);
  EXPECT_EQ(1u, amm.entry_count());
  uint64_t start = 0;
  uint64_t size = 0;
  uint32_t flags = 1;
  ASSERT_EQ(Error::kOk, amm.Lookup(0x5000, &start, &size, &flags));
  EXPECT_EQ(0x1000u, start);
  EXPECT_EQ(0x100000u - 0x1000u, size);
  EXPECT_EQ(Amm::kFree, flags);
  amm.AuditOrDie();
}

TEST(AmmTest, ModifySplitsAndJoins) {
  Amm amm(0, 0x10000);
  ASSERT_EQ(Error::kOk, amm.Modify(0x4000, 0x1000, Amm::kAllocated));
  EXPECT_EQ(3u, amm.entry_count());  // free | allocated | free
  amm.AuditOrDie();

  // Freeing it again re-joins into a single entry.
  ASSERT_EQ(Error::kOk, amm.Deallocate(0x4000, 0x1000));
  EXPECT_EQ(1u, amm.entry_count());
  amm.AuditOrDie();
}

TEST(AmmTest, AdjacentSameFlagsJoin) {
  Amm amm(0, 0x10000);
  ASSERT_EQ(Error::kOk, amm.Modify(0x1000, 0x1000, 7));
  ASSERT_EQ(Error::kOk, amm.Modify(0x2000, 0x1000, 7));
  // free | 7(0x1000..0x3000) | free
  EXPECT_EQ(3u, amm.entry_count());
  uint64_t start = 0;
  uint64_t size = 0;
  uint32_t flags = 0;
  ASSERT_EQ(Error::kOk, amm.Lookup(0x1800, &start, &size, &flags));
  EXPECT_EQ(0x1000u, start);
  EXPECT_EQ(0x2000u, size);
  EXPECT_EQ(7u, flags);
  amm.AuditOrDie();
}

TEST(AmmTest, AllocateFindsAlignedHole) {
  Amm amm(0, 0x100000);
  ASSERT_EQ(Error::kOk, amm.Reserve(0, 0x1234, Amm::kReserved));
  uint64_t addr = 0;
  ASSERT_EQ(Error::kOk, amm.Allocate(&addr, 0x1000, Amm::kAllocated,
                                     /*align_bits=*/12));
  EXPECT_EQ(0u, addr & 0xfff);
  EXPECT_GE(addr, 0x1234u);
  amm.AuditOrDie();
}

TEST(AmmTest, AllocateFailsWhenFull) {
  Amm amm(0, 0x4000);
  ASSERT_EQ(Error::kOk, amm.Modify(0, 0x4000, Amm::kAllocated));
  uint64_t addr = 0;
  EXPECT_EQ(Error::kNoSpace, amm.Allocate(&addr, 1, Amm::kAllocated));
}

TEST(AmmTest, RejectsOutOfRangeModify) {
  Amm amm(0x1000, 0x2000);
  EXPECT_EQ(Error::kInval, amm.Modify(0, 0x100, 1));
  EXPECT_EQ(Error::kInval, amm.Modify(0x1800, 0x1000, 1));
  EXPECT_EQ(Error::kInval, amm.Modify(0x1000, 0, 1));
}

TEST(AmmTest, FindGenMatchesMaskedFlags) {
  Amm amm(0, 0x10000);
  ASSERT_EQ(Error::kOk, amm.Modify(0x2000, 0x1000, 0x13));
  ASSERT_EQ(Error::kOk, amm.Modify(0x5000, 0x1000, 0x11));
  uint64_t addr = 0;
  // Find flags with bit 0x02 set (only the 0x13 range qualifies).
  ASSERT_EQ(Error::kOk, amm.FindGen(&addr, 0x100, 0x02, 0x02));
  EXPECT_EQ(0x2000u, addr);
}

TEST(AmmTest, IterateVisitsInOrder) {
  Amm amm(0, 0x10000);
  ASSERT_EQ(Error::kOk, amm.Modify(0x3000, 0x1000, 5));
  uint64_t last_start = 0;
  int count = 0;
  amm.Iterate([&](uint64_t start, uint64_t size, uint32_t flags) {
    if (count > 0) {
      EXPECT_GT(start, last_start);
    }
    last_start = start;
    ++count;
    return true;
  });
  EXPECT_EQ(3, count);
}

// Property test against a byte-per-unit shadow map.
class AmmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AmmPropertyTest, MatchesShadowModel) {
  constexpr uint64_t kLo = 0x1000;
  constexpr uint64_t kHi = 0x9000;
  Amm amm(kLo, kHi);
  std::map<uint64_t, uint32_t> shadow;  // unit -> flags
  for (uint64_t u = kLo; u < kHi; u += 0x100) {
    shadow[u] = Amm::kFree;
  }
  Rng rng(GetParam());
  for (int step = 0; step < 500; ++step) {
    uint64_t start = kLo + rng.Below((kHi - kLo) / 0x100) * 0x100;
    uint64_t max_units = (kHi - start) / 0x100;
    uint64_t size = rng.Range(1, max_units < 8 ? max_units : 8) * 0x100;
    uint32_t flags = static_cast<uint32_t>(rng.Below(4));
    ASSERT_EQ(Error::kOk, amm.Modify(start, size, flags));
    for (uint64_t u = start; u < start + size; u += 0x100) {
      shadow[u] = flags;
    }
    if (step % 16 == 0) {
      amm.AuditOrDie();
      for (const auto& [unit, expect_flags] : shadow) {
        uint64_t entry_start = 0;
        uint64_t entry_size = 0;
        uint32_t entry_flags = 0;
        ASSERT_EQ(Error::kOk, amm.Lookup(unit, &entry_start, &entry_size, &entry_flags));
        ASSERT_EQ(expect_flags, entry_flags) << "at " << std::hex << unit;
      }
    }
  }
  // BytesWith must agree with the shadow.
  for (uint32_t f = 0; f < 4; ++f) {
    uint64_t expected = 0;
    for (const auto& [unit, flags] : shadow) {
      if (flags == f) {
        expected += 0x100;
      }
    }
    EXPECT_EQ(expected, amm.BytesWith(f)) << "flags " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmmPropertyTest, ::testing::Values(7, 11, 23, 42));

}  // namespace
}  // namespace oskit
