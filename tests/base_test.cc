// Foundation-library tests: the Internet checksum (including the
// odd-boundary chaining the mbuf walkers rely on), byte-order helpers, the
// intrusive list, the deterministic RNG, error names, and panic plumbing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/byteorder.h"
#include "src/base/checksum.h"
#include "src/base/error.h"
#include "src/base/intrusive_list.h"
#include "src/base/panic.h"
#include "src/base/random.h"

namespace oskit {
namespace {

TEST(ChecksumTest, KnownVector) {
  // RFC 1071's classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
  // checksum ~0xddf2 = 0x220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(0x220d, InetChecksumOf(data, sizeof(data)));
}

TEST(ChecksumTest, ValidPacketSumsToZero) {
  // A buffer with its own checksum stored verifies to 0 — the property the
  // IP/TCP/UDP input paths rely on.
  uint8_t packet[20];
  for (size_t i = 0; i < sizeof(packet); ++i) {
    packet[i] = static_cast<uint8_t>(i * 41);
  }
  packet[10] = 0;
  packet[11] = 0;
  uint16_t sum = InetChecksumOf(packet, sizeof(packet));
  StoreBe16(packet + 10, sum);
  EXPECT_EQ(0, InetChecksumOf(packet, sizeof(packet)));
}

// Property: summing a buffer in arbitrary (odd-length!) pieces equals
// summing it flat — exactly what checksumming an mbuf chain does.
class ChecksumSplitTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChecksumSplitTest, ArbitrarySplitsEqualFlat) {
  Rng rng(GetParam());
  std::vector<uint8_t> data(rng.Range(100, 5000));
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  uint16_t flat = InetChecksumOf(data.data(), data.size());

  for (int trial = 0; trial < 50; ++trial) {
    InetChecksum chained;
    size_t offset = 0;
    while (offset < data.size()) {
      size_t n = rng.Range(1, 97);  // frequently odd
      if (n > data.size() - offset) {
        n = data.size() - offset;
      }
      chained.Add(data.data() + offset, n);
      offset += n;
    }
    ASSERT_EQ(flat, chained.Finish()) << "seed trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumSplitTest, ::testing::Values(1, 9, 77));

TEST(ByteOrderTest, SwapsAndUnalignedAccess) {
  EXPECT_EQ(0x3412, ByteSwap16(0x1234));
  EXPECT_EQ(0x78563412u, ByteSwap32(0x12345678));

  uint8_t buf[9] = {};
  StoreBe16(buf + 1, 0xabcd);  // deliberately misaligned
  EXPECT_EQ(0xab, buf[1]);
  EXPECT_EQ(0xcd, buf[2]);
  EXPECT_EQ(0xabcd, LoadBe16(buf + 1));
  StoreBe32(buf + 3, 0x01020304);
  EXPECT_EQ(0x01020304u, LoadBe32(buf + 3));
  StoreLe32(buf + 3, 0x01020304);
  EXPECT_EQ(0x04, buf[3]);
  EXPECT_EQ(0x01020304u, LoadLe32(buf + 3));
  StoreLe64(buf + 1, 0x1122334455667788ull);
  EXPECT_EQ(0x1122334455667788ull, LoadLe64(buf + 1));
}

TEST(ByteOrderTest, NetworkOrderRoundTrips) {
  EXPECT_EQ(0x1234, NetToHost16(HostToNet16(0x1234)));
  EXPECT_EQ(0xdeadbeefu, NetToHost32(HostToNet32(0xdeadbeef)));
  // On this (little-endian, asserted in src/fs) platform hton swaps.
  uint16_t wire = HostToNet16(0x0102);
  EXPECT_EQ(0x01, reinterpret_cast<uint8_t*>(&wire)[0]);
}

struct Item {
  int value;
  ListNode node;
  explicit Item(int v) : value(v) {}
};

TEST(IntrusiveListTest, PushPopOrdering) {
  IntrusiveList<Item, &Item::node> list;
  Item a(1);
  Item b(2);
  Item c(3);
  EXPECT_TRUE(list.Empty());
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(3u, list.Size());
  EXPECT_EQ(3, list.Front()->value);
  EXPECT_EQ(2, list.Back()->value);
  EXPECT_EQ(3, list.PopFront()->value);
  EXPECT_EQ(2, list.PopBack()->value);
  EXPECT_EQ(1, list.PopFront()->value);
  EXPECT_TRUE(list.Empty());
  EXPECT_EQ(nullptr, list.PopFront());
}

TEST(IntrusiveListTest, RemoveFromMiddleAndIteration) {
  IntrusiveList<Item, &Item::node> list;
  Item items[] = {Item(0), Item(1), Item(2), Item(3), Item(4)};
  for (Item& item : items) {
    list.PushBack(&item);
  }
  list.Remove(&items[2]);
  EXPECT_FALSE(items[2].node.InList());
  std::string order;
  for (Item& item : list) {
    order += static_cast<char>('0' + item.value);
  }
  EXPECT_EQ("0134", order);
  // Drain so the destructor's non-empty assertion stays quiet.
  while (list.PopFront() != nullptr) {
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) {
    differs |= a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, RangesRespectBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
    double u = rng.Unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  // Percent(0) never, Percent(100) always.
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(rng.Percent(0));
    ASSERT_TRUE(rng.Percent(100));
  }
}

TEST(ErrorTest, NamesAreStable) {
  EXPECT_STREQ("OK", ErrorName(Error::kOk));
  EXPECT_STREQ("ENOENT", ErrorName(Error::kNoEnt));
  EXPECT_STREQ("ECONNREFUSED", ErrorName(Error::kConnRefused));
  EXPECT_STREQ("E_NOINTERFACE", ErrorName(Error::kNoInterface));
  EXPECT_TRUE(Ok(Error::kOk));
  EXPECT_FALSE(Ok(Error::kIo));
}

TEST(PanicTest, HandlerReceivesFormattedMessage) {
  static std::string captured;
  captured.clear();
  PanicHandler old = SetPanicHandler(+[](const char* message) {
    captured = message;
    throw 1;  // tests substitute unwinding for halting
  });
  EXPECT_THROW(Panic("code %d in %s", 7, "unit"), int);
  SetPanicHandler(old);
  EXPECT_EQ("code 7 in unit", captured);
}

TEST(PanicTest, AssertMacroFiresOnFalse) {
  PanicHandler old = SetPanicHandler(+[](const char*) { throw 2; });
  EXPECT_THROW([] { OSKIT_ASSERT(1 == 2); }(), int);
  OSKIT_ASSERT(true);  // and not on true
  SetPanicHandler(old);
}

}  // namespace
}  // namespace oskit
