// Boot-chain integration: the full path a real OSKit-based boot takes.
//
//   mkfs a disk image -> install an SXF "kernel" + a KVM program into the
//   filesystem -> partition a simulated disk and copy the image in ->
//   boot: fsread (the independent boot-time reader) pulls the kernel out
//   of the filesystem, exec validates and loads it, the payload runs.
//
// This crosses diskpart + fs + fsread + exec + boot + vm + the encapsulated
// IDE driver in one flow — the §6.1.5 "specialized kernels to boot other
// kernels" scenario.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dev/linux/linux_ide.h"
#include "src/diskpart/diskpart.h"
#include "src/exec/sxf.h"
#include "src/fs/ffs.h"
#include "src/com/memblkio.h"
#include "src/fsread/fsread.h"
#include "src/testbed/testbed.h"
#include "src/vm/kvm.h"

namespace oskit {
namespace {

TEST(BootChainTest, DiskToRunningProgram) {
  Simulation sim;
  Machine machine(&sim, Machine::Config{.name = "bootpc"});
  machine.AddDisk(16 * 1024 * 1024 / 512);
  KernelEnv kernel(&machine, MultiBootInfo{});
  machine.cpu().EnableInterrupts();
  FdevEnv fdev = DefaultFdevEnv(&kernel);

  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev, &machine, &registry));
  auto hda_dev = registry.LookupByName("hda");
  ComPtr<BlkIo> hda = ComPtr<BlkIo>::FromQuery(hda_dev.get());
  ASSERT_TRUE(hda);

  bool program_ran = false;
  int64_t program_result = 0;

  sim.Spawn("bootpc/boot", [&] {
    // ---- "Install" phase: partition, format, populate ----
    std::vector<Partition> layout = {
        {.start_sector = 64, .sector_count = 16 * 1024 * 1024 / 512 - 64,
         .type = kPartTypeOskitFs, .bootable = true},
    };
    ASSERT_EQ(Error::kOk, WriteMbr(hda.get(), layout));
    std::vector<Partition> found;
    ASSERT_EQ(Error::kOk, ReadPartitions(hda.get(), &found));
    ASSERT_EQ(1u, found.size());
    ASSERT_TRUE(found[0].bootable);
    ComPtr<BlkIo> part = MakePartitionView(hda.get(), found[0]);

    ASSERT_EQ(Error::kOk, fs::Mkfs(part.get()));
    {
      FileSystem* raw = nullptr;
      ASSERT_EQ(Error::kOk, fs::Offs::Mount(part.get(), &raw));
      ComPtr<FileSystem> filesystem(raw);
      ComPtr<Dir> root;
      filesystem->GetRoot(root.Receive());
      ASSERT_EQ(Error::kOk, root->Mkdir("boot", 0755));
      ComPtr<File> bootf;
      ASSERT_EQ(Error::kOk, root->Lookup("boot", bootf.Receive()));
      ComPtr<Dir> boot = ComPtr<Dir>::FromQuery(bootf.get());

      // The "kernel": a KVM program packaged as an SXF code segment.
      std::vector<uint8_t> bytecode;
      std::string asm_err;
      ASSERT_EQ(Error::kOk, vm::Assemble(
                                "push 6\n"
                                "push 7\n"
                                "mul\n"
                                "gstore 0\n"
                                "halt\n",
                                &bytecode, &asm_err))
          << asm_err;
      std::vector<exec::BuildSegment> segments;
      segments.push_back({exec::SegmentType::kCode, 0, 0, bytecode});
      segments.push_back({exec::SegmentType::kBss, 0x1000, 0x100, {}});
      std::vector<uint8_t> image = exec::Build(/*entry=*/0, segments);

      ComPtr<File> kfile;
      ASSERT_EQ(Error::kOk, boot->Create("kernel.sxf", 0755, kfile.Receive()));
      size_t actual = 0;
      ASSERT_EQ(Error::kOk, kfile->Write(image.data(), 0, image.size(), &actual));
      ASSERT_EQ(image.size(), actual);
      kfile.Reset();
      boot.Reset();
      bootf.Reset();
      root.Reset();
      ASSERT_EQ(Error::kOk, filesystem->Unmount());
    }

    // ---- "Boot" phase: fsread + exec, no filesystem component linked ----
    // (fsread walks the on-disk format independently, as a boot loader
    // that cannot afford the full component would.)
    std::vector<uint8_t> image;
    ASSERT_EQ(Error::kOk,
              fsread::ReadFile(part.get(), "/boot/kernel.sxf", &image));

    exec::ImageInfo info;
    ASSERT_EQ(Error::kOk, exec::Parse(image.data(), image.size(), &info));
    std::vector<uint8_t> memory(info.mem_size);
    ASSERT_EQ(Error::kOk, exec::Load(image.data(), image.size(), memory.data(),
                                     memory.size(), &info));

    // The loaded code segment is KVM bytecode; run it.
    const exec::Segment& code = info.segments[0];
    std::vector<uint8_t> program(memory.begin() + code.mem_offset,
                                 memory.begin() + code.mem_offset + code.file_size);
    vm::Vm machine_vm(std::move(program), nullptr);
    ASSERT_EQ(Error::kOk, machine_vm.Verify());
    machine_vm.SpawnThread(info.entry);
    ASSERT_EQ(Error::kOk, machine_vm.Run(100000));
    program_result = machine_vm.global(0);
    program_ran = true;
  });

  ASSERT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_TRUE(program_ran);
  EXPECT_EQ(42, program_result);
}

TEST(BootChainTest, CorruptKernelImageIsRejectedBeforeRunning) {
  // Same flow, but a bit flip on disk must be caught by the SXF checksum.
  auto disk = MemBlkIo::Create(8 * 1024 * 1024, 512);
  ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
  FileSystem* raw = nullptr;
  ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), &raw));
  ComPtr<FileSystem> filesystem(raw);
  ComPtr<Dir> root;
  filesystem->GetRoot(root.Receive());

  std::vector<uint8_t> bytecode;
  std::string asm_err;
  ASSERT_EQ(Error::kOk, vm::Assemble("halt\n", &bytecode, &asm_err));
  std::vector<uint8_t> image =
      exec::Build(0, {{exec::SegmentType::kCode, 0, 0, bytecode}});
  image[image.size() - 1] ^= 0x40;  // the flip

  ComPtr<File> kfile;
  ASSERT_EQ(Error::kOk, root->Create("kernel.sxf", 0755, kfile.Receive()));
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, kfile->Write(image.data(), 0, image.size(), &actual));
  kfile.Reset();
  root.Reset();
  ASSERT_EQ(Error::kOk, filesystem->Unmount());

  std::vector<uint8_t> loaded;
  ASSERT_EQ(Error::kOk, fsread::ReadFile(disk.get(), "/kernel.sxf", &loaded));
  exec::ImageInfo info;
  EXPECT_EQ(Error::kCorrupt, exec::Parse(loaded.data(), loaded.size(), &info));
}

}  // namespace
}  // namespace oskit
