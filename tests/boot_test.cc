// MultiBoot + boot-module filesystem tests (§3.1, §6.2.2).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/boot/memfs.h"
#include "src/boot/multiboot.h"

namespace oskit {
namespace {

TEST(BootLoaderTest, PlacesModulesInPhysicalMemory) {
  PhysMem phys(8 * 1024 * 1024);
  BootLoader loader(&phys);
  std::string m1(5000, 'a');
  std::string m2 = "tiny";
  loader.AddModule("first.img arg1 arg2", m1.data(), m1.size());
  loader.AddModule("second.bin", m2.data(), m2.size());
  MultiBootInfo info = loader.Load("kernel root=/dev/hda1");

  EXPECT_EQ("kernel root=/dev/hda1", info.cmdline);
  EXPECT_EQ(640u, info.mem_lower_kb);
  ASSERT_EQ(2u, info.modules.size());

  const BootModule& a = info.modules[0];
  const BootModule& b = info.modules[1];
  EXPECT_EQ("first.img arg1 arg2", a.string);
  EXPECT_EQ("first.img", BootModuleName(a));
  EXPECT_EQ(5000u, a.end - a.start);
  EXPECT_EQ(0u, a.start % 4096);  // page aligned
  EXPECT_EQ(4u, b.end - b.start);

  // Modules must not overlap, and contents must be in place.
  EXPECT_TRUE(a.end <= b.start || b.end <= a.start);
  EXPECT_EQ(0, memcmp(phys.PtrAt(a.start), m1.data(), m1.size()));
  EXPECT_EQ(0, memcmp(phys.PtrAt(b.start), m2.data(), m2.size()));
}

TEST(BmodFsTest, ModulesAppearAsFiles) {
  PhysMem phys(8 * 1024 * 1024);
  BootLoader loader(&phys);
  const char kImage[] = "bytecode-image-contents";
  loader.AddModule("program.kvm --fast", kImage, sizeof(kImage));
  MultiBootInfo info = loader.Load("");

  auto fs = MemFs::BuildBmodFs(&phys, info);
  ComPtr<Dir> root;
  ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));
  ComPtr<File> file;
  ASSERT_EQ(Error::kOk, root->Lookup("program.kvm", file.Receive()));
  FileStat st;
  ASSERT_EQ(Error::kOk, file->GetStat(&st));
  EXPECT_EQ(sizeof(kImage), st.size);
  char buf[64] = {};
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, file->Read(buf, 0, sizeof(buf), &actual));
  EXPECT_EQ(sizeof(kImage), actual);
  EXPECT_STREQ(kImage, buf);
}

class MemFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = MemFs::Create();
    ASSERT_EQ(Error::kOk, fs_->GetRoot(root_.Receive()));
  }

  ComPtr<MemFs> fs_;
  ComPtr<Dir> root_;
};

TEST_F(MemFsTest, CreateWriteReadFile) {
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("x", 0600, f.Receive()));
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, f->Write("data", 0, 4, &actual));
  // Sparse write past EOF zero-fills.
  ASSERT_EQ(Error::kOk, f->Write("!", 100, 1, &actual));
  FileStat st;
  f->GetStat(&st);
  EXPECT_EQ(101u, st.size);
  char buf[101];
  ASSERT_EQ(Error::kOk, f->Read(buf, 0, sizeof(buf), &actual));
  EXPECT_EQ(0, memcmp(buf, "data", 4));
  EXPECT_EQ(0, buf[50]);
  EXPECT_EQ('!', buf[100]);
}

TEST_F(MemFsTest, LookupDotAndDotDot) {
  ASSERT_EQ(Error::kOk, root_->Mkdir("sub", 0755));
  ComPtr<File> sub_file;
  ASSERT_EQ(Error::kOk, root_->Lookup("sub", sub_file.Receive()));
  ComPtr<Dir> sub = ComPtr<Dir>::FromQuery(sub_file.get());
  ASSERT_TRUE(sub);

  ComPtr<File> dot;
  ASSERT_EQ(Error::kOk, sub->Lookup(".", dot.Receive()));
  ComPtr<File> dotdot;
  ASSERT_EQ(Error::kOk, sub->Lookup("..", dotdot.Receive()));
  FileStat sub_stat;
  FileStat dot_stat;
  FileStat dotdot_stat;
  FileStat root_stat;
  sub->GetStat(&sub_stat);
  dot->GetStat(&dot_stat);
  dotdot->GetStat(&dotdot_stat);
  root_->GetStat(&root_stat);
  EXPECT_EQ(sub_stat.ino, dot_stat.ino);
  EXPECT_EQ(root_stat.ino, dotdot_stat.ino);
}

TEST_F(MemFsTest, SlashInComponentRejected) {
  ComPtr<File> f;
  EXPECT_EQ(Error::kInval, root_->Lookup("a/b", f.Receive()));
  EXPECT_EQ(Error::kInval, root_->Create("a/b", 0644, f.Receive()));
}

TEST_F(MemFsTest, RenameAcrossDirectories) {
  ASSERT_EQ(Error::kOk, root_->Mkdir("src", 0755));
  ASSERT_EQ(Error::kOk, root_->Mkdir("dst", 0755));
  ComPtr<File> src_file;
  ASSERT_EQ(Error::kOk, root_->Lookup("src", src_file.Receive()));
  ComPtr<Dir> src = ComPtr<Dir>::FromQuery(src_file.get());
  ComPtr<File> dst_file;
  ASSERT_EQ(Error::kOk, root_->Lookup("dst", dst_file.Receive()));
  ComPtr<Dir> dst = ComPtr<Dir>::FromQuery(dst_file.get());

  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, src->Create("payload", 0644, f.Receive()));
  size_t actual;
  f->Write("move me", 0, 7, &actual);

  ASSERT_EQ(Error::kOk, src->Rename("payload", dst.get(), "renamed"));
  EXPECT_EQ(Error::kNoEnt, src->Lookup("payload", f.Receive()));
  ASSERT_EQ(Error::kOk, dst->Lookup("renamed", f.Receive()));
  char buf[8] = {};
  f->Read(buf, 0, 7, &actual);
  EXPECT_STREQ("move me", buf);
}

TEST_F(MemFsTest, RenameIntoOwnSubtreeIsRefused) {
  ASSERT_EQ(Error::kOk, root_->Mkdir("outer", 0755));
  ComPtr<File> of;
  ASSERT_EQ(Error::kOk, root_->Lookup("outer", of.Receive()));
  ComPtr<Dir> outer = ComPtr<Dir>::FromQuery(of.get());
  ASSERT_EQ(Error::kOk, outer->Mkdir("inner", 0755));
  ComPtr<File> inf;
  ASSERT_EQ(Error::kOk, outer->Lookup("inner", inf.Receive()));
  ComPtr<Dir> inner = ComPtr<Dir>::FromQuery(inf.get());
  EXPECT_EQ(Error::kInval, root_->Rename("outer", inner.get(), "cycle"));
  EXPECT_EQ(Error::kInval, root_->Rename("outer", outer.get(), "self"));
  ComPtr<File> check;
  EXPECT_EQ(Error::kOk, root_->Lookup("outer", check.Receive()));
}

TEST_F(MemFsTest, ReadDirEnumeratesAll) {
  for (char c = 'a'; c <= 'e'; ++c) {
    char name[2] = {c, 0};
    ComPtr<File> f;
    ASSERT_EQ(Error::kOk, root_->Create(name, 0644, f.Receive()));
  }
  uint64_t offset = 0;
  DirEntry entries[2];
  std::string all;
  for (;;) {
    size_t count = 0;
    ASSERT_EQ(Error::kOk, root_->ReadDir(&offset, entries, 2, &count));
    if (count == 0) {
      break;
    }
    for (size_t i = 0; i < count; ++i) {
      all += entries[i].name;
    }
  }
  EXPECT_EQ("abcde", all);
}

TEST_F(MemFsTest, UnlinkedOpenFileStaysReadable) {
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("ghost", 0644, f.Receive()));
  size_t actual;
  f->Write("boo", 0, 3, &actual);
  ASSERT_EQ(Error::kOk, root_->Unlink("ghost"));
  char buf[4] = {};
  ASSERT_EQ(Error::kOk, f->Read(buf, 0, 3, &actual));
  EXPECT_STREQ("boo", buf);
}

TEST_F(MemFsTest, ErrorCases) {
  ComPtr<File> f;
  EXPECT_EQ(Error::kNoEnt, root_->Lookup("missing", f.Receive()));
  ASSERT_EQ(Error::kOk, root_->Create("file", 0644, f.Receive()));
  EXPECT_EQ(Error::kExist, root_->Create("file", 0644, f.Receive()));
  EXPECT_EQ(Error::kExist, root_->Mkdir("file", 0755));
  EXPECT_EQ(Error::kNotDir, root_->Rmdir("file"));
  ASSERT_EQ(Error::kOk, root_->Mkdir("dir", 0755));
  EXPECT_EQ(Error::kIsDir, root_->Unlink("dir"));
  ComPtr<File> d;
  ASSERT_EQ(Error::kOk, root_->Lookup("dir", d.Receive()));
  ComPtr<Dir> dir = ComPtr<Dir>::FromQuery(d.get());
  ComPtr<File> inner;
  ASSERT_EQ(Error::kOk, dir->Create("occupant", 0644, inner.Receive()));
  EXPECT_EQ(Error::kNotEmpty, root_->Rmdir("dir"));
}

}  // namespace
}  // namespace oskit
