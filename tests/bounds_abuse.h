// Shared bounds-abuse suite for byte-range IO surfaces.
//
// The same unsigned-wrap bug class has now been found on three separate
// occasions (PR 5: SkBuffIo/MemBlkIo/MbufBufIo; PR 9: MapRange/Translate;
// PR 10: IDE glue, partition views, FFS file IO): `off_t64` is unsigned, so
// a "negative" offset arrives huge, and `offset + amount` silently wraps
// past the bound it was meant to enforce.  Every surface now follows one
// discipline:
//
//   - an offset strictly past the object -> kOutOfRange (file-style
//     surfaces may report EOF as kOk with 0 bytes instead),
//   - a range whose `offset + amount` genuinely wraps -> kInval, never a
//     clamped "success" and never a huge out_actual,
//   - an ordinary past-end range keeps the surface's documented clamp /
//     short-read semantics.
//
// This header applies that contract to anything with BlkIo-shaped
// Read/Write methods (BlkIo, BufIo, File, the aio stack layers...), so new
// surfaces get the suite for free: instantiate the helpers from the
// module's own test with a live object and its size.

#ifndef OSKIT_TESTS_BOUNDS_ABUSE_H_
#define OSKIT_TESTS_BOUNDS_ABUSE_H_

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "src/base/error.h"

namespace oskit::testing {

// How the surface reports an offset strictly past the object.
enum class PastEnd {
  kOutOfRange,  // device-style: Read/Write past the end is an error
  kEofOk,       // file-style: reads past EOF succeed with 0 bytes
};

namespace internal {

inline bool IsPastEndResult(Error err, size_t actual, PastEnd style) {
  if (err == Error::kOutOfRange || err == Error::kInval) {
    return actual == 0;
  }
  return style == PastEnd::kEofOk && err == Error::kOk && actual == 0;
}

}  // namespace internal

// Hammers Read with the wrap class.  `size` is the object's current byte
// size and must be >= 2 so an in-range wrapping offset exists.
template <typename IoT>
void AbuseReadBounds(IoT* io, uint64_t size,
                     PastEnd style = PastEnd::kOutOfRange) {
  ASSERT_GE(size, 2u) << "bounds abuse needs a 2+ byte object";
  uint8_t buf[64];

  // A "negative" offset arrives huge.
  size_t actual = 99;
  Error err = io->Read(buf, ~uint64_t{0} - 7, sizeof(buf), &actual);
  EXPECT_TRUE(internal::IsPastEndResult(err, actual, style))
      << "huge offset: err=" << static_cast<int>(err) << " actual=" << actual;

  // Genuine wrap from a small in-range offset: offset + amount overflows.
  actual = 99;
  err = io->Read(buf, 1, ~size_t{0}, &actual);
  EXPECT_EQ(err, Error::kInval) << "wrapping range must be kInval";
  EXPECT_EQ(actual, 0u);

  // Wrap from just under the end of the object.
  actual = 99;
  err = io->Read(buf, size - 1, ~size_t{0}, &actual);
  EXPECT_EQ(err, Error::kInval) << "wrapping range at object end";
  EXPECT_EQ(actual, 0u);

  // The exact boundary offset is legal: zero bytes remain.
  actual = 99;
  err = io->Read(buf, size, 0, &actual);
  EXPECT_TRUE(err == Error::kOk || err == Error::kOutOfRange)
      << "boundary offset: err=" << static_cast<int>(err);
  EXPECT_EQ(actual, 0u);

  // A sane read still works after the abuse (nothing was scribbled).
  actual = 0;
  err = io->Read(buf, 0, 1, &actual);
  EXPECT_EQ(err, Error::kOk);
  EXPECT_EQ(actual, 1u);
}

// Same suite for Write.  Writes one byte of the object's own first byte at
// the end, so the object's contents are unchanged by a passing run.
template <typename IoT>
void AbuseWriteBounds(IoT* io, uint64_t size,
                      PastEnd style = PastEnd::kOutOfRange) {
  ASSERT_GE(size, 2u) << "bounds abuse needs a 2+ byte object";
  uint8_t buf[64] = {};

  size_t actual = 99;
  Error err = io->Write(buf, ~uint64_t{0} - 7, sizeof(buf), &actual);
  EXPECT_TRUE(internal::IsPastEndResult(err, actual, style))
      << "huge offset: err=" << static_cast<int>(err) << " actual=" << actual;

  actual = 99;
  err = io->Write(buf, 1, ~size_t{0}, &actual);
  EXPECT_EQ(err, Error::kInval) << "wrapping range must be kInval";
  EXPECT_EQ(actual, 0u);

  actual = 99;
  err = io->Write(buf, size - 1, ~size_t{0}, &actual);
  EXPECT_EQ(err, Error::kInval) << "wrapping range at object end";
  EXPECT_EQ(actual, 0u);

  // Round-trip an existing byte to prove valid writes still land.
  uint8_t keep = 0;
  actual = 0;
  ASSERT_EQ(io->Read(&keep, 0, 1, &actual), Error::kOk);
  ASSERT_EQ(actual, 1u);
  ASSERT_EQ(io->Write(&keep, 0, 1, &actual), Error::kOk);
  EXPECT_EQ(actual, 1u);
}

}  // namespace oskit::testing

#endif  // OSKIT_TESTS_BOUNDS_ABUSE_H_
