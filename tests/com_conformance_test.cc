// COM conformance sweep (§4.4): every exported interface implementation —
// native objects and the src/secure wrappers alike — must (a) return
// kNoInterface with a nulled out-pointer for GUIDs it does not implement,
// (b) hand back a usable, independently-releasable reference for GUIDs it
// does, and (c) keep AddRef/Release pairing exact through wrapper
// delegation.  The wrappers additionally must NOT forward unknown GUIDs to
// their inner object: an extension interface the wrapper does not interpose
// on (MemBlkIo's BlkIoBarrier, say) would otherwise be an unwrapped path
// around the checks.

#include <gtest/gtest.h>

#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/secure/wrap.h"
#include "src/testbed/testbed.h"

namespace oskit::testbed {
namespace {

using secure::Budget;
using secure::NetGuard;
using secure::Principal;
using secure::PrincipalRegistry;

constexpr Guid kBogusGuid = MakeGuid(0xdeadbeef, 0xdead, 0xbeef, 0x01, 0x02,
                                     0x03, 0x04, 0x05, 0x06, 0x07, 0x08);

// Rule (a): an unimplemented GUID yields kNoInterface and *out == nullptr
// (poisoned beforehand so a lazy implementation can't pass by accident).
template <typename Obj>
void ExpectUnknownGuidRejected(Obj* obj) {
  void* out = reinterpret_cast<void*>(0x1);
  EXPECT_EQ(Error::kNoInterface, obj->Query(kBogusGuid, &out));
  EXPECT_EQ(nullptr, out);
}

template <typename T, typename Obj>
void ExpectNoInterface(Obj* obj) {
  T* p = reinterpret_cast<T*>(0x1);
  EXPECT_EQ(Error::kNoInterface, QueryFor(obj, &p));
  EXPECT_EQ(nullptr, p);
}

// Rule (b): a successful Query added one reference on the caller's behalf;
// releasing through the returned pointer must balance it without killing
// the object (a fresh Query still succeeds afterwards).
template <typename T, typename Obj>
void ExpectQueryRoundTrip(Obj* obj) {
  T* p = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(obj, &p));
  ASSERT_NE(nullptr, p);
  p->Release();
  T* again = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(obj, &again));
  ASSERT_NE(nullptr, again);
  again->Release();
}

// Rule (c): N AddRefs unwound by N Releases land exactly where they
// started (the returned diagnostic counts pin it).
//
// GCC's -Wuse-after-free sees the inlined delete-on-zero branch inside
// Release() and flags the next call as a potential use-after-free; it can
// not see that the caller's reference pins the count above zero for the
// whole pairing, so the branch is unreachable here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
template <typename Obj>
void ExpectRefPairing(Obj* obj) {
  uint32_t base = obj->AddRef();
  for (int i = 0; i < 8; ++i) {
    obj->AddRef();
  }
  for (int i = 0; i < 8; ++i) {
    obj->Release();
  }
  EXPECT_EQ(base - 1, obj->Release());
}
#pragma GCC diagnostic pop

// Runs the full sweep on one object.
template <typename Obj>
void SweepCommon(Obj* obj) {
  ExpectUnknownGuidRejected(obj);
  ExpectQueryRoundTrip<IUnknown>(obj);
  ExpectRefPairing(obj);
}

// ---------------------------------------------------------------------------
// Native network objects
// ---------------------------------------------------------------------------

TEST(ComConformanceTest, StackSocketSurfaces) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  ComPtr<SocketFactory> factory = a.stack->CreateSocketFactory();
  SweepCommon(factory.get());
  ExpectQueryRoundTrip<SocketFactory>(factory.get());
  ExpectNoInterface<Socket>(factory.get());

  ComPtr<Socket> sock;
  ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kStream,
                                        sock.Receive()));
  SweepCommon(sock.get());
  ExpectQueryRoundTrip<Socket>(sock.get());
  ExpectQueryRoundTrip<SocketExt>(sock.get());
  ExpectNoInterface<NetSelector>(sock.get());
  ExpectNoInterface<Dir>(sock.get());

  ComPtr<NetSelector> sel = a.stack->CreateSelector();
  SweepCommon(sel.get());
  ExpectQueryRoundTrip<NetSelector>(sel.get());
  ExpectNoInterface<Socket>(sel.get());
}

// ---------------------------------------------------------------------------
// Native storage / filesystem objects
// ---------------------------------------------------------------------------

TEST(ComConformanceTest, StorageAndFsSurfaces) {
  ComPtr<MemBlkIo> disk = MemBlkIo::Create(4 * 1024 * 1024, 512);
  SweepCommon(disk.get());
  ExpectQueryRoundTrip<BlkIo>(disk.get());
  ExpectQueryRoundTrip<BufIo>(disk.get());
  ExpectQueryRoundTrip<BlkIoBarrier>(disk.get());
  ExpectNoInterface<FileSystem>(disk.get());

  ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
  ComPtr<FileSystem> fs;
  ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), fs.Receive()));
  SweepCommon(fs.get());
  ExpectQueryRoundTrip<FileSystem>(fs.get());
  ExpectNoInterface<Dir>(fs.get());

  ComPtr<Dir> root;
  ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));
  SweepCommon(root.get());
  ExpectQueryRoundTrip<Dir>(root.get());
  ExpectQueryRoundTrip<File>(root.get());  // a Dir is a File

  ComPtr<File> file;
  ASSERT_EQ(Error::kOk, root->Create("plain", 0644, file.Receive()));
  SweepCommon(file.get());
  ExpectQueryRoundTrip<File>(file.get());
  ExpectNoInterface<Dir>(file.get());  // a plain file is NOT a Dir

  file.Reset();
  root.Reset();
  ASSERT_EQ(Error::kOk, fs->Unmount());
}

// ---------------------------------------------------------------------------
// Security wrappers: same rules, plus the no-forwarding guarantee
// ---------------------------------------------------------------------------

TEST(ComConformanceTest, SecureNetWrapperSurfaces) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Principal* tenant = principals.Create("tenant");
  NetGuard guard(&principals);

  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);
  SweepCommon(factory.get());
  ExpectQueryRoundTrip<SocketFactory>(factory.get());
  ExpectNoInterface<Socket>(factory.get());

  ComPtr<Socket> sock;
  ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kStream,
                                        sock.Receive()));
  SweepCommon(sock.get());
  ExpectQueryRoundTrip<Socket>(sock.get());
  // The inner BsdSocket grants SocketExt, so the wrapper mirrors it.
  ExpectQueryRoundTrip<SocketExt>(sock.get());
  ExpectNoInterface<NetSelector>(sock.get());

  ComPtr<NetSelector> sel =
      secure::MakeSecureSelector(a.stack->CreateSelector(), tenant);
  SweepCommon(sel.get());
  ExpectQueryRoundTrip<NetSelector>(sel.get());
  ExpectNoInterface<SocketExt>(sel.get());

  // Delegation pairing: a reference obtained THROUGH the wrapper must be
  // releasable without orphaning or double-freeing the wrapper.
  SocketExt* ext = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(sock.get(), &ext));
  ASSERT_EQ(Error::kOk, ext->SetNonBlocking(true));
  ext->Release();
  SockAddr name{};
  EXPECT_EQ(Error::kOk, sock->GetSockName(&name));  // wrapper still alive

  sel.Reset();
  sock.Reset();
  factory.Reset();
  // Everything the wrappers charged drained back to zero.
  EXPECT_EQ(0u, tenant->charged(secure::Resource::kSockets));
  EXPECT_EQ(0u, tenant->charged(secure::Resource::kSelectorRegs));
}

TEST(ComConformanceTest, SecureStorageWrapperDoesNotForwardUnknownGuids) {
  PrincipalRegistry principals;
  Principal* tenant = principals.Create("tenant");

  ComPtr<MemBlkIo> disk = MemBlkIo::Create(1024 * 1024, 512);
  ComPtr<BlkIo> wrapped = secure::MakeSecureBufIo(
      ComPtr<BlkIo>::Retain(static_cast<BufIo*>(disk.get())), tenant);
  SweepCommon(wrapped.get());
  ExpectQueryRoundTrip<BlkIo>(wrapped.get());
  ExpectQueryRoundTrip<BufIo>(wrapped.get());  // mirrored from MemBlkIo
  // MemBlkIo implements BlkIoBarrier, but the wrapper does not interpose on
  // it — so it must NOT be reachable through the wrapper (no unwrapped
  // side-doors).
  ExpectNoInterface<BlkIoBarrier>(wrapped.get());

  ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
  ComPtr<FileSystem> fs;
  ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), fs.Receive()));
  ComPtr<FileSystem> tfs = secure::MakeSecureFs(fs, tenant, &principals);
  SweepCommon(tfs.get());
  ExpectQueryRoundTrip<FileSystem>(tfs.get());
  ExpectNoInterface<Dir>(tfs.get());

  ComPtr<Dir> root;
  ASSERT_EQ(Error::kOk, tfs->GetRoot(root.Receive()));
  SweepCommon(root.get());
  ExpectQueryRoundTrip<Dir>(root.get());
  ExpectQueryRoundTrip<File>(root.get());

  ComPtr<File> file;
  ASSERT_EQ(Error::kOk, root->Create("plain", 0644, file.Receive()));
  SweepCommon(file.get());
  ExpectQueryRoundTrip<File>(file.get());
  ExpectNoInterface<Dir>(file.get());

  file.Reset();
  root.Reset();
  EXPECT_EQ(0u, tenant->charged(secure::Resource::kOpenFiles));
  ASSERT_EQ(Error::kOk, tfs->Unmount());
}

}  // namespace
}  // namespace oskit::testbed
