// COM model tests (§4.4): GUID identity, QueryInterface semantics
// (safe downcast / interface extension), reference counting, and the
// Figure 2 blkio contract via MemBlkIo.

#include <gtest/gtest.h>

#include <cstring>

#include "src/com/bufio.h"
#include "src/com/memblkio.h"
#include "tests/bounds_abuse.h"

namespace oskit {
namespace {

TEST(GuidTest, EqualityAndDistinctness) {
  EXPECT_TRUE(BlkIo::kIid == BlkIo::kIid);
  EXPECT_FALSE(BlkIo::kIid == BufIo::kIid);
  EXPECT_FALSE(BlkIo::kIid == IUnknown::kIid);
  // The paper's Figure 2 BLKIO_IID, byte for byte.
  EXPECT_EQ(0x4aa7dfe1u, BlkIo::kIid.data1);
  EXPECT_EQ(0x7c74u, BlkIo::kIid.data2);
  EXPECT_EQ(0x11cfu, BlkIo::kIid.data3);
}

TEST(ComTest, QueryForImplementedInterfacesSucceeds) {
  auto io = MemBlkIo::Create(1024);
  // Base interface.
  BlkIo* as_blkio = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(io.get(), &as_blkio));
  ASSERT_NE(nullptr, as_blkio);
  // Extended interface (§4.4.2's blkio -> bufio extension).
  BufIo* as_bufio = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(io.get(), &as_bufio));
  ASSERT_NE(nullptr, as_bufio);
  as_blkio->Release();
  as_bufio->Release();
}

TEST(ComTest, QueryForUnknownInterfaceFails) {
  auto io = MemBlkIo::Create(64);
  constexpr Guid kBogus =
      MakeGuid(0x12345678, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
  void* out = reinterpret_cast<void*>(0x1);
  EXPECT_EQ(Error::kNoInterface, io->Query(kBogus, &out));
  EXPECT_EQ(nullptr, out);
}

TEST(ComTest, ReferenceCountingLifecycle) {
  auto io = MemBlkIo::Create(64);
  EXPECT_EQ(1u, io->ref_count());
  io->AddRef();
  EXPECT_EQ(2u, io->ref_count());
  io->Release();
  EXPECT_EQ(1u, io->ref_count());

  // Query adds a reference on behalf of the caller.
  BlkIo* extra = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(io.get(), &extra));
  EXPECT_EQ(2u, io->ref_count());
  extra->Release();
  EXPECT_EQ(1u, io->ref_count());
}

TEST(ComTest, ComPtrManagesReferences) {
  auto io = MemBlkIo::Create(64);
  {
    ComPtr<MemBlkIo> copy = io;
    EXPECT_EQ(2u, io->ref_count());
    ComPtr<MemBlkIo> moved = std::move(copy);
    EXPECT_EQ(2u, io->ref_count());
    EXPECT_EQ(nullptr, copy.get());  // NOLINT(bugprone-use-after-move)
  }
  EXPECT_EQ(1u, io->ref_count());
}

TEST(MemBlkIoTest, ReadWriteRoundTrip) {
  auto io = MemBlkIo::Create(4096, /*block_size=*/512);
  EXPECT_EQ(512u, io->GetBlockSize());
  uint8_t pattern[512];
  for (size_t i = 0; i < sizeof(pattern); ++i) {
    pattern[i] = static_cast<uint8_t>(i * 3);
  }
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, io->Write(pattern, 1024, sizeof(pattern), &actual));
  EXPECT_EQ(sizeof(pattern), actual);
  uint8_t readback[512] = {};
  ASSERT_EQ(Error::kOk, io->Read(readback, 1024, sizeof(readback), &actual));
  EXPECT_EQ(sizeof(readback), actual);
  EXPECT_EQ(0, memcmp(pattern, readback, sizeof(pattern)));
}

TEST(MemBlkIoTest, ShortReadAtEnd) {
  auto io = MemBlkIo::Create(100);
  uint8_t buf[64];
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, io->Read(buf, 80, sizeof(buf), &actual));
  EXPECT_EQ(20u, actual);
  EXPECT_EQ(Error::kOutOfRange, io->Read(buf, 200, sizeof(buf), &actual));
}

TEST(MemBlkIoTest, GetSizeAndSetSize) {
  auto io = MemBlkIo::Create(128);
  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, io->GetSize(&size));
  EXPECT_EQ(128u, size);
  ASSERT_EQ(Error::kOk, io->SetSize(256));
  ASSERT_EQ(Error::kOk, io->GetSize(&size));
  EXPECT_EQ(256u, size);
}

TEST(MemBlkIoTest, MapGivesDirectAccess) {
  const char kText[] = "buffered object";
  auto io = MemBlkIo::CreateFrom(kText, sizeof(kText));
  void* addr = nullptr;
  ASSERT_EQ(Error::kOk, io->Map(&addr, 0, sizeof(kText)));
  EXPECT_EQ(0, memcmp(addr, kText, sizeof(kText)));
  // Writing through the mapping is visible via Read.
  static_cast<char*>(addr)[0] = 'B';
  char readback[sizeof(kText)];
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, io->Read(readback, 0, sizeof(kText), &actual));
  EXPECT_EQ('B', readback[0]);
  ASSERT_EQ(Error::kOk, io->Unmap(addr, 0, sizeof(kText)));
}

TEST(MemBlkIoTest, SetSizeWhileMappedIsRefused) {
  auto io = MemBlkIo::Create(64);
  void* addr = nullptr;
  ASSERT_EQ(Error::kOk, io->Map(&addr, 0, 64));
  EXPECT_EQ(Error::kBusy, io->SetSize(128));
  ASSERT_EQ(Error::kOk, io->Unmap(addr, 0, 64));
  EXPECT_EQ(Error::kOk, io->SetSize(128));
}

TEST(MemBlkIoTest, MapOutOfRangeFails) {
  auto io = MemBlkIo::Create(64);
  void* addr = nullptr;
  EXPECT_EQ(Error::kOutOfRange, io->Map(&addr, 32, 64));
}

TEST(MemBlkIoTest, BoundsAbuse) {
  auto io = MemBlkIo::Create(4096, 512);
  testing::AbuseReadBounds(io.get(), 4096);
  testing::AbuseWriteBounds(io.get(), 4096);
  // A wrapping range must also never reach Map's pointer math.
  void* addr = nullptr;
  EXPECT_EQ(Error::kInval, io->Map(&addr, 1, ~size_t{0}));
}

}  // namespace
}  // namespace oskit
