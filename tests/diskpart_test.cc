// Partition-table tests: MBR primaries, extended/EBR chains, BSD
// disklabels, partition views, and corrupt-table rejection.

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/byteorder.h"
#include "src/com/memblkio.h"
#include "src/diskpart/diskpart.h"
#include "tests/bounds_abuse.h"

namespace oskit {
namespace {

ComPtr<MemBlkIo> MakeDisk(uint64_t sectors) {
  return MemBlkIo::Create(sectors * kDiskSectorSize, kDiskSectorSize);
}

TEST(DiskPartTest, EmptyDiskIsCorrupt) {
  auto disk = MakeDisk(128);
  std::vector<Partition> parts;
  EXPECT_EQ(Error::kCorrupt, ReadPartitions(disk.get(), &parts));
}

TEST(DiskPartTest, WriteAndReadPrimaries) {
  auto disk = MakeDisk(10000);
  std::vector<Partition> out = {
      {.start_sector = 63, .sector_count = 4000, .type = kPartTypeLinux, .bootable = true},
      {.start_sector = 4063, .sector_count = 2000, .type = kPartTypeFat16},
  };
  ASSERT_EQ(Error::kOk, WriteMbr(disk.get(), out));

  std::vector<Partition> in;
  ASSERT_EQ(Error::kOk, ReadPartitions(disk.get(), &in));
  ASSERT_EQ(2u, in.size());
  EXPECT_EQ(63u, in[0].start_sector);
  EXPECT_EQ(4000u, in[0].sector_count);
  EXPECT_EQ(kPartTypeLinux, in[0].type);
  EXPECT_TRUE(in[0].bootable);
  EXPECT_EQ(1, in[0].index);
  EXPECT_EQ(kPartTypeFat16, in[1].type);
  EXPECT_FALSE(in[1].bootable);
  EXPECT_EQ(2, in[1].index);
}

TEST(DiskPartTest, RejectsPartitionBeyondDisk) {
  auto disk = MakeDisk(1000);
  std::vector<Partition> out = {
      {.start_sector = 63, .sector_count = 5000, .type = kPartTypeLinux},
  };
  ASSERT_EQ(Error::kOk, WriteMbr(disk.get(), out));
  std::vector<Partition> in;
  EXPECT_EQ(Error::kCorrupt, ReadPartitions(disk.get(), &in));
}

TEST(DiskPartTest, ExtendedChainYieldsLogicals) {
  auto disk = MakeDisk(20000);
  // Primary 1 + an extended partition containing two logicals.
  std::vector<Partition> primaries = {
      {.start_sector = 63, .sector_count = 1000, .type = kPartTypeLinux},
      {.start_sector = 2000, .sector_count = 10000, .type = kPartTypeExtended},
  };
  ASSERT_EQ(Error::kOk, WriteMbr(disk.get(), primaries));

  // First EBR at 2000: logical data at +63 (1000 sectors), next EBR at +4000.
  uint8_t ebr[kDiskSectorSize];
  auto write_ebr = [&](uint64_t at, uint32_t data_rel, uint32_t data_len,
                       uint32_t next_rel, uint32_t next_len) {
    memset(ebr, 0, sizeof(ebr));
    uint8_t* e = ebr + 446;
    e[4] = kPartTypeLinux;
    StoreLe32(e + 8, data_rel);
    StoreLe32(e + 12, data_len);
    if (next_len != 0) {
      uint8_t* n = ebr + 446 + 16;
      n[4] = kPartTypeExtended;
      StoreLe32(n + 8, next_rel);
      StoreLe32(n + 12, next_len);
    }
    ebr[510] = 0x55;
    ebr[511] = 0xaa;
    size_t actual;
    ASSERT_EQ(Error::kOk,
              disk->Write(ebr, at * kDiskSectorSize, kDiskSectorSize, &actual));
  };
  write_ebr(2000, 63, 1000, 4000, 2000);
  write_ebr(6000, 63, 500, 0, 0);

  std::vector<Partition> in;
  ASSERT_EQ(Error::kOk, ReadPartitions(disk.get(), &in));
  ASSERT_EQ(3u, in.size());
  EXPECT_EQ(5, in[1].index);  // logicals number from 5
  EXPECT_EQ(2063u, in[1].start_sector);
  EXPECT_EQ(1000u, in[1].sector_count);
  EXPECT_EQ(6, in[2].index);
  EXPECT_EQ(6063u, in[2].start_sector);
  EXPECT_EQ(500u, in[2].sector_count);
}

TEST(DiskPartTest, BsdDisklabelSlices) {
  auto disk = MakeDisk(20000);
  std::vector<Partition> primaries = {
      {.start_sector = 100, .sector_count = 8000, .type = kPartTypeBsd},
  };
  ASSERT_EQ(Error::kOk, WriteMbr(disk.get(), primaries));

  auto slice = MakePartitionView(disk.get(), primaries[0]);
  std::vector<Partition> subs = {
      {.start_sector = 16, .sector_count = 4000, .type = kPartTypeOskitFs},
      {.start_sector = 4016, .sector_count = 3000, .type = kPartTypeLinux},
  };
  ASSERT_EQ(Error::kOk, WriteDisklabel(slice.get(), subs));

  std::vector<Partition> in;
  ASSERT_EQ(Error::kOk, ReadPartitions(disk.get(), &in));
  ASSERT_EQ(3u, in.size());  // the slice + two disklabel partitions
  EXPECT_FALSE(in[0].from_disklabel);
  EXPECT_TRUE(in[1].from_disklabel);
  EXPECT_EQ(116u, in[1].start_sector);  // absolute: slice start + offset
  EXPECT_EQ(4000u, in[1].sector_count);
  EXPECT_TRUE(in[2].from_disklabel);
  EXPECT_EQ(4116u, in[2].start_sector);
}

TEST(DiskPartTest, PartitionViewBoundsIo) {
  auto disk = MakeDisk(1000);
  Partition part{.start_sector = 100, .sector_count = 10, .type = kPartTypeLinux};
  auto view = MakePartitionView(disk.get(), part);

  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, view->GetSize(&size));
  EXPECT_EQ(10u * kDiskSectorSize, size);

  // A write through the view lands at the right absolute offset.
  uint8_t data[kDiskSectorSize];
  memset(data, 0x77, sizeof(data));
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, view->Write(data, 0, sizeof(data), &actual));
  uint8_t check[kDiskSectorSize];
  ASSERT_EQ(Error::kOk,
            disk->Read(check, 100 * kDiskSectorSize, sizeof(check), &actual));
  EXPECT_EQ(0x77, check[0]);

  // Reads clamp to the partition and cannot escape it.
  uint8_t big[2 * kDiskSectorSize];
  ASSERT_EQ(Error::kOk,
            view->Read(big, 9 * kDiskSectorSize, sizeof(big), &actual));
  EXPECT_EQ(kDiskSectorSize, actual);
  EXPECT_EQ(Error::kOutOfRange, view->Read(big, 11 * kDiskSectorSize, 16, &actual));
}

TEST(DiskPartTest, PartitionViewBoundsAbuse) {
  auto disk = MakeDisk(1000);
  Partition part{.start_sector = 100, .sector_count = 10, .type = kPartTypeLinux};
  auto view = MakePartitionView(disk.get(), part);
  testing::AbuseReadBounds(view.get(), 10 * kDiskSectorSize);
  testing::AbuseWriteBounds(view.get(), 10 * kDiskSectorSize);
}

}  // namespace
}  // namespace oskit
