// Encapsulated-driver tests (§3.6, §4.7): the Linux-idiom Ethernet driver
// and its glue (zero-copy vs copy transmit paths), the Linux-idiom IDE
// driver behind BlkIo (sleep/wakeup through the osenv), the FreeBSD-idiom
// tty with clists, skbuff primitives, and the fdev registry where drivers
// from both donor systems coexist.

#include <gtest/gtest.h>

#include <cstring>

#include "src/com/memblkio.h"
#include "src/dev/freebsd/freebsd_char.h"
#include "src/dev/linux/linux_glue.h"
#include "src/dev/linux/linux_ide.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/net/mbuf_bufio.h"

namespace oskit {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wire_ = std::make_unique<EthernetWire>(&sim_.clock(), EthernetWire::Config{});
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{});
    machine_->cpu().EnableInterrupts();
    fdev_ = DefaultFdevEnv(kernel_.get());
  }

  Simulation sim_;
  std::unique_ptr<EthernetWire> wire_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
  FdevEnv fdev_;
};

// ---- skbuff primitives ----

TEST_F(DriverTest, SkbuffCursorDiscipline) {
  linuxdev::LinuxKernelEnv kenv;
  kenv.kmalloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<KernelEnv*>(ctx)->MemAlloc(size);
  };
  kenv.kfree = +[](void* ctx, void* p, size_t size) {
    static_cast<KernelEnv*>(ctx)->MemFree(p, size);
  };
  kenv.ctx = kernel_.get();

  linuxdev::sk_buff* skb = linuxdev::dev_alloc_skb(kenv, 100);
  ASSERT_NE(nullptr, skb);
  linuxdev::skb_reserve(skb, 16);
  uint8_t* put = linuxdev::skb_put(skb, 20);
  memset(put, 0xaa, 20);
  EXPECT_EQ(20u, skb->len);
  uint8_t* pushed = linuxdev::skb_push(skb, 4);
  EXPECT_EQ(24u, skb->len);
  EXPECT_EQ(put - 4, pushed);
  linuxdev::skb_pull(skb, 10);
  EXPECT_EQ(14u, skb->len);
  linuxdev::kfree_skb(kenv, skb);
}

// ---- Linux Ethernet driver + glue ----

// A recording NetIo standing in for a protocol stack.
class RecorderNetIo final : public NetIo, public RefCounted<RecorderNetIo> {
 public:
  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == NetIo::kIid) {
      AddRef();
      *out = static_cast<NetIo*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Push(BufIo* packet, size_t size) override {
    std::vector<uint8_t> data(size);
    size_t actual = 0;
    packet->Read(data.data(), 0, size, &actual);
    frames.push_back(std::move(data));
    // Zero-copy evidence: a received skbuff always maps.
    void* addr = nullptr;
    mapped_ok = Ok(packet->Map(&addr, 0, size));
    return Error::kOk;
  }

  std::vector<std::vector<uint8_t>> frames;
  bool mapped_ok = false;

 private:
  friend class RefCounted<RecorderNetIo>;
  ~RecorderNetIo() = default;
};

TEST_F(DriverTest, LinuxEtherRoundTripAndXmitPaths) {
  NicHw* nic_a = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 1}}, 11);
  NicHw* nic_b = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 2}}, 12);
  (void)nic_a;
  (void)nic_b;

  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            linuxdev::InitLinuxEthernet(fdev_, machine_.get(), &registry));
  EXPECT_EQ(2u, registry.count());

  auto devices = registry.LookupByInterface(EtherDev::kIid);
  ASSERT_EQ(2u, devices.size());
  auto* dev_a = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());
  

  ComPtr<RecorderNetIo> rx_a(new RecorderNetIo());
  ComPtr<RecorderNetIo> rx_b(new RecorderNetIo());
  NetIo* tx_a = nullptr;
  NetIo* tx_b = nullptr;
  ComPtr<EtherDev> ea = ComPtr<EtherDev>::FromQuery(devices[0].get());
  ComPtr<EtherDev> eb = ComPtr<EtherDev>::FromQuery(devices[1].get());
  ASSERT_EQ(Error::kOk, ea->Open(rx_a.get(), &tx_a));
  ASSERT_EQ(Error::kOk, eb->Open(rx_b.get(), &tx_b));
  ComPtr<NetIo> tx_a_owned(tx_a);
  ComPtr<NetIo> tx_b_owned(tx_b);

  EtherAddr addr_a;
  ea->GetAddr(&addr_a);
  EXPECT_EQ(1, addr_a.bytes[5]);

  // Contiguous packet (a MemBlkIo maps): the glue manufactures a fake
  // skbuff — no copy.
  uint8_t frame[64] = {2, 0, 0, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0x08, 0x00};
  for (size_t i = 14; i < sizeof(frame); ++i) {
    frame[i] = static_cast<uint8_t>(i);
  }
  auto contiguous = MemBlkIo::CreateFrom(frame, sizeof(frame));
  ASSERT_EQ(Error::kOk, tx_a_owned->Push(contiguous.get(), sizeof(frame)));
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_EQ(1u, rx_b->frames.size());
  EXPECT_EQ(0, memcmp(rx_b->frames[0].data(), frame, sizeof(frame)));
  EXPECT_TRUE(rx_b->mapped_ok) << "received skbuff should be mappable";
  EXPECT_EQ(1u, dev_a->counters().fake_skbuff);
  EXPECT_EQ(0u, dev_a->counters().copied);

  // Discontiguous packet (a 3-mbuf chain: header + two payload pieces, the
  // shape a TCP segment takes when its payload straddles a cluster
  // boundary): the wrapper speaks BufIoVec, so the glue gathers all three
  // segments through the driver's DMA — the flatten counters must not move.
  net::MbufPool pool;
  {
    net::MBuf* chain = pool.GetHeaderAligned(14);
    memcpy(chain->data, frame, 14);
    net::MBuf* body1 = pool.FromData(frame + 14, 25);
    net::MBuf* body2 = pool.FromData(frame + 39, sizeof(frame) - 39);
    chain->next = body1;
    body1->next = body2;
    body1->pkt_len = 0;
    body2->pkt_len = 0;
    chain->pkt_len = sizeof(frame);
    auto io = net::MbufBufIo::Wrap(&pool, chain);
    ASSERT_EQ(Error::kOk, tx_a_owned->Push(io.get(), sizeof(frame)));
  }
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_EQ(2u, rx_b->frames.size());
  EXPECT_EQ(0, memcmp(rx_b->frames[1].data(), frame, sizeof(frame)));
  EXPECT_EQ(1u, dev_a->counters().sg_frames);
  EXPECT_EQ(3u, dev_a->counters().sg_segments);
  EXPECT_EQ(0u, dev_a->counters().copied);
  EXPECT_EQ(0u, dev_a->counters().copied_bytes);

  // The same chain wrapped with scatter-gather withheld (the pre-BufIoVec
  // wrapper): the glue falls back to its Read() copy path (§4.7.3).
  {
    net::MBuf* chain = pool.GetHeaderAligned(14);
    memcpy(chain->data, frame, 14);
    net::MBuf* body = pool.FromData(frame + 14, sizeof(frame) - 14);
    chain->next = body;
    chain->pkt_len = sizeof(frame);
    auto io = net::MbufBufIo::Wrap(&pool, chain, /*expose_sg=*/false);
    ASSERT_EQ(Error::kOk, tx_a_owned->Push(io.get(), sizeof(frame)));
  }
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_EQ(3u, rx_b->frames.size());
  EXPECT_EQ(0, memcmp(rx_b->frames[2].data(), frame, sizeof(frame)));
  EXPECT_EQ(1u, dev_a->counters().copied);
  EXPECT_EQ(sizeof(frame), dev_a->counters().copied_bytes);

  ASSERT_EQ(Error::kOk, ea->Close());
  ASSERT_EQ(Error::kOk, eb->Close());
}

TEST_F(DriverTest, DeviceRegistryFindsByNameAndInterface) {
  machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 1}}, 11);
  machine_->AddDisk(256);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            linuxdev::InitLinuxEthernet(fdev_, machine_.get(), &registry));
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  ASSERT_EQ(Error::kOk,
            freebsddev::InitFreeBsdChar(fdev_, machine_.get(), &registry));
  EXPECT_EQ(4u, registry.count());  // eth0, hda, console, sio0

  EXPECT_EQ(1u, registry.LookupByInterface(EtherDev::kIid).size());
  EXPECT_EQ(1u, registry.LookupByInterface(BlkIo::kIid).size());
  EXPECT_EQ(2u, registry.LookupByInterface(CharStream::kIid).size());

  auto hda = registry.LookupByName("hda");
  ASSERT_TRUE(hda);
  DeviceInfo info;
  ASSERT_EQ(Error::kOk, hda->GetInfo(&info));
  EXPECT_STREQ("linux", info.vendor);
  auto console = registry.LookupByName("console");
  ASSERT_TRUE(console);
  ASSERT_EQ(Error::kOk, console->GetInfo(&info));
  EXPECT_STREQ("freebsd", info.vendor);  // both donors coexist (§3.6)
}

TEST_F(DriverTest, IdeDriverReadsAndWritesThroughBlkIo) {
  DiskHw* disk = machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ASSERT_TRUE(device);
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);
  EXPECT_EQ(512u, blkio->GetBlockSize());
  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, blkio->GetSize(&size));
  EXPECT_EQ(2048u * 512, size);

  bool done = false;
  sim_.Spawn("io", [&] {
    // Unaligned write crossing sectors (exercises read-modify-write).
    uint8_t data[1500];
    for (size_t i = 0; i < sizeof(data); ++i) {
      data[i] = static_cast<uint8_t>(i * 11);
    }
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, blkio->Write(data, 100, sizeof(data), &actual));
    EXPECT_EQ(sizeof(data), actual);

    uint8_t readback[1500] = {};
    ASSERT_EQ(Error::kOk, blkio->Read(readback, 100, sizeof(readback), &actual));
    EXPECT_EQ(sizeof(readback), actual);
    EXPECT_EQ(0, memcmp(data, readback, sizeof(data)));
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
  EXPECT_GT(disk->reads_completed() + disk->writes_completed(), 4u);
}

TEST_F(DriverTest, FilesystemRunsOnTheIdeDriver) {
  // §4.2.2's dynamic binding, end to end: mkfs + mount the filesystem
  // component on the encapsulated IDE driver's BlkIo.
  machine_->AddDisk(16 * 1024 * 1024 / 512);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);

  sim_.Spawn("fs", [&] {
    ASSERT_EQ(Error::kOk, fs::Mkfs(blkio.get()));
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, fs::Offs::Mount(blkio.get(), &raw));
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));
    ComPtr<File> f;
    ASSERT_EQ(Error::kOk, root->Create("on-disk", 0644, f.Receive()));
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, f->Write("through the driver", 0, 18, &actual));
    f.Reset();
    root.Reset();
    ASSERT_EQ(Error::kOk, fs->Unmount());
    fs::FsckReport report = fs::Fsck(blkio.get());
    EXPECT_TRUE(report.consistent);
    EXPECT_TRUE(report.was_clean);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
}

TEST_F(DriverTest, IdeDriverFlushesThroughBlkIoBarrier) {
  // The §4.4.2 extension discovered the COM way: Query the IDE device for
  // BlkIoBarrier and drain the disk's volatile write cache through it.
  DiskHw* disk = machine_->AddDisk(2048);
  disk->EnableWriteCache(true);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ASSERT_TRUE(device);
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ComPtr<BlkIoBarrier> barrier = ComPtr<BlkIoBarrier>::FromQuery(device.get());
  ASSERT_TRUE(blkio);
  ASSERT_TRUE(barrier);

  sim_.Spawn("flush", [&] {
    uint8_t data[512];
    for (size_t i = 0; i < sizeof(data); ++i) {
      data[i] = static_cast<uint8_t>(i);
    }
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, blkio->Write(data, 512, sizeof(data), &actual));
    EXPECT_GT(disk->cached_writes(), 0u);
    ASSERT_EQ(Error::kOk, barrier->Flush());
    EXPECT_EQ(0u, disk->cached_writes());
    EXPECT_EQ(1u, disk->flushes_completed());
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
}

TEST_F(DriverTest, BlockCacheSyncWritesBlocksInAscendingOrder) {
  // Regression pin for the crash campaign's reproducibility: Sync must
  // write back in ascending block order, never hash-map iteration order.
  // The disk's write log is the ground truth.
  DiskHw* disk = machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);

  sim_.Spawn("sync-order", [&] {
    fs::BlockCache cache(blkio, fs::kBlockSize, 64);
    std::vector<uint8_t> block(fs::kBlockSize, 0xcd);
    for (uint32_t b : {50u, 3u, 27u, 9u, 40u, 12u}) {
      ASSERT_EQ(Error::kOk, cache.WriteBlock(b, block.data()));
    }
    disk->ClearWriteLog();
    ASSERT_EQ(Error::kOk, cache.Sync());
    const auto& log = disk->write_log();
    ASSERT_GE(log.size(), 6u);
    for (size_t i = 1; i < log.size(); ++i) {
      EXPECT_LE(log[i - 1].lba, log[i].lba)
          << "write " << i << " went backwards";
    }
    // First and last writebacks belong to the lowest and highest blocks.
    EXPECT_EQ(3u * (fs::kBlockSize / 512), log.front().lba);
    EXPECT_EQ(50u * (fs::kBlockSize / 512),
              log.back().lba + log.back().sectors - fs::kBlockSize / 512);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
}

TEST_F(DriverTest, BsdTtyBlocksUntilInput) {
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            freebsddev::InitFreeBsdChar(fdev_, machine_.get(), &registry));
  auto console = registry.LookupByName("console");
  ComPtr<CharStream> tty = ComPtr<CharStream>::FromQuery(console.get());
  ASSERT_TRUE(tty);

  std::string received;
  sim_.Spawn("reader", [&] {
    char buf[32];
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, tty->Read(buf, sizeof(buf), &actual));
    received.assign(buf, actual);
  });
  // Input arrives later; the reader must be blocked until then.
  sim_.clock().ScheduleAfter(kNsPerMs, [&] {
    machine_->console_uart().InjectRx("typed", 5);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_EQ("typed", received);

  // Output goes straight to the UART.
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, tty->Write("echo", 4, &actual));
  EXPECT_EQ("echo", machine_->console_uart().TakeOutput());
}

TEST_F(DriverTest, ClistQueuesArbitraryBytes) {
  freebsddev::Clist clist(fdev_);
  EXPECT_EQ(-1, clist.Getc());
  for (int i = 0; i < 300; ++i) {  // spans multiple cblocks
    ASSERT_TRUE(clist.Putc(static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(300u, clist.count());
  EXPECT_GE(clist.cblocks_allocated(), 4u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(i & 0xff, clist.Getc());
  }
  EXPECT_EQ(-1, clist.Getc());
}

}  // namespace
}  // namespace oskit
