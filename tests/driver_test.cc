// Encapsulated-driver tests (§3.6, §4.7): the Linux-idiom Ethernet driver
// and its glue (zero-copy vs copy transmit paths), the Linux-idiom IDE
// driver behind BlkIo (sleep/wakeup through the osenv), the FreeBSD-idiom
// tty with clists, skbuff primitives, and the fdev registry where drivers
// from both donor systems coexist.

#include <gtest/gtest.h>

#include <cstring>

#include "src/com/memblkio.h"
#include "src/dev/freebsd/freebsd_char.h"
#include "src/dev/linux/linux_glue.h"
#include "src/dev/linux/linux_ide.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/net/mbuf_bufio.h"

namespace oskit {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wire_ = std::make_unique<EthernetWire>(&sim_.clock(), EthernetWire::Config{});
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{});
    machine_->cpu().EnableInterrupts();
    fdev_ = DefaultFdevEnv(kernel_.get());
  }

  Simulation sim_;
  std::unique_ptr<EthernetWire> wire_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
  FdevEnv fdev_;
};

// ---- skbuff primitives ----

TEST_F(DriverTest, SkbuffCursorDiscipline) {
  linuxdev::LinuxKernelEnv kenv;
  kenv.kmalloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<KernelEnv*>(ctx)->MemAlloc(size);
  };
  kenv.kfree = +[](void* ctx, void* p, size_t size) {
    static_cast<KernelEnv*>(ctx)->MemFree(p, size);
  };
  kenv.ctx = kernel_.get();

  linuxdev::sk_buff* skb = linuxdev::dev_alloc_skb(kenv, 100);
  ASSERT_NE(nullptr, skb);
  linuxdev::skb_reserve(skb, 16);
  uint8_t* put = linuxdev::skb_put(skb, 20);
  memset(put, 0xaa, 20);
  EXPECT_EQ(20u, skb->len);
  uint8_t* pushed = linuxdev::skb_push(skb, 4);
  EXPECT_EQ(24u, skb->len);
  EXPECT_EQ(put - 4, pushed);
  linuxdev::skb_pull(skb, 10);
  EXPECT_EQ(14u, skb->len);
  linuxdev::kfree_skb(kenv, skb);
}

// ---- Linux Ethernet driver + glue ----

// A recording NetIo standing in for a protocol stack.
class RecorderNetIo final : public NetIo, public RefCounted<RecorderNetIo> {
 public:
  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == NetIo::kIid) {
      AddRef();
      *out = static_cast<NetIo*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Push(BufIo* packet, size_t size) override {
    std::vector<uint8_t> data(size);
    size_t actual = 0;
    packet->Read(data.data(), 0, size, &actual);
    frames.push_back(std::move(data));
    // Zero-copy evidence: a received skbuff always maps.
    void* addr = nullptr;
    mapped_ok = Ok(packet->Map(&addr, 0, size));
    return Error::kOk;
  }

  std::vector<std::vector<uint8_t>> frames;
  bool mapped_ok = false;

 private:
  friend class RefCounted<RecorderNetIo>;
  ~RecorderNetIo() = default;
};

TEST_F(DriverTest, LinuxEtherRoundTripAndXmitPaths) {
  NicHw* nic_a = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 1}}, 11);
  NicHw* nic_b = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 2}}, 12);
  (void)nic_a;
  (void)nic_b;

  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            linuxdev::InitLinuxEthernet(fdev_, machine_.get(), &registry));
  EXPECT_EQ(2u, registry.count());

  auto devices = registry.LookupByInterface(EtherDev::kIid);
  ASSERT_EQ(2u, devices.size());
  auto* dev_a = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());
  

  ComPtr<RecorderNetIo> rx_a(new RecorderNetIo());
  ComPtr<RecorderNetIo> rx_b(new RecorderNetIo());
  NetIo* tx_a = nullptr;
  NetIo* tx_b = nullptr;
  ComPtr<EtherDev> ea = ComPtr<EtherDev>::FromQuery(devices[0].get());
  ComPtr<EtherDev> eb = ComPtr<EtherDev>::FromQuery(devices[1].get());
  ASSERT_EQ(Error::kOk, ea->Open(rx_a.get(), &tx_a));
  ASSERT_EQ(Error::kOk, eb->Open(rx_b.get(), &tx_b));
  ComPtr<NetIo> tx_a_owned(tx_a);
  ComPtr<NetIo> tx_b_owned(tx_b);

  EtherAddr addr_a;
  ea->GetAddr(&addr_a);
  EXPECT_EQ(1, addr_a.bytes[5]);

  // Contiguous packet (a MemBlkIo maps): the glue manufactures a fake
  // skbuff — no copy.
  uint8_t frame[64] = {2, 0, 0, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0x08, 0x00};
  for (size_t i = 14; i < sizeof(frame); ++i) {
    frame[i] = static_cast<uint8_t>(i);
  }
  auto contiguous = MemBlkIo::CreateFrom(frame, sizeof(frame));
  ASSERT_EQ(Error::kOk, tx_a_owned->Push(contiguous.get(), sizeof(frame)));
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_EQ(1u, rx_b->frames.size());
  EXPECT_EQ(0, memcmp(rx_b->frames[0].data(), frame, sizeof(frame)));
  EXPECT_TRUE(rx_b->mapped_ok) << "received skbuff should be mappable";
  EXPECT_EQ(1u, dev_a->counters().fake_skbuff);
  EXPECT_EQ(0u, dev_a->counters().copied);

  // Discontiguous packet (a 3-mbuf chain: header + two payload pieces, the
  // shape a TCP segment takes when its payload straddles a cluster
  // boundary): the wrapper speaks BufIoVec, so the glue gathers all three
  // segments through the driver's DMA — the flatten counters must not move.
  net::MbufPool pool;
  {
    net::MBuf* chain = pool.GetHeaderAligned(14);
    memcpy(chain->data, frame, 14);
    net::MBuf* body1 = pool.FromData(frame + 14, 25);
    net::MBuf* body2 = pool.FromData(frame + 39, sizeof(frame) - 39);
    chain->next = body1;
    body1->next = body2;
    body1->pkt_len = 0;
    body2->pkt_len = 0;
    chain->pkt_len = sizeof(frame);
    auto io = net::MbufBufIo::Wrap(&pool, chain);
    ASSERT_EQ(Error::kOk, tx_a_owned->Push(io.get(), sizeof(frame)));
  }
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_EQ(2u, rx_b->frames.size());
  EXPECT_EQ(0, memcmp(rx_b->frames[1].data(), frame, sizeof(frame)));
  EXPECT_EQ(1u, dev_a->counters().sg_frames);
  EXPECT_EQ(3u, dev_a->counters().sg_segments);
  EXPECT_EQ(0u, dev_a->counters().copied);
  EXPECT_EQ(0u, dev_a->counters().copied_bytes);

  // The same chain wrapped with scatter-gather withheld (the pre-BufIoVec
  // wrapper): the glue falls back to its Read() copy path (§4.7.3).
  {
    net::MBuf* chain = pool.GetHeaderAligned(14);
    memcpy(chain->data, frame, 14);
    net::MBuf* body = pool.FromData(frame + 14, sizeof(frame) - 14);
    chain->next = body;
    chain->pkt_len = sizeof(frame);
    auto io = net::MbufBufIo::Wrap(&pool, chain, /*expose_sg=*/false);
    ASSERT_EQ(Error::kOk, tx_a_owned->Push(io.get(), sizeof(frame)));
  }
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_EQ(3u, rx_b->frames.size());
  EXPECT_EQ(0, memcmp(rx_b->frames[2].data(), frame, sizeof(frame)));
  EXPECT_EQ(1u, dev_a->counters().copied);
  EXPECT_EQ(sizeof(frame), dev_a->counters().copied_bytes);

  ASSERT_EQ(Error::kOk, ea->Close());
  ASSERT_EQ(Error::kOk, eb->Close());
}

TEST_F(DriverTest, DeviceRegistryFindsByNameAndInterface) {
  machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 1}}, 11);
  machine_->AddDisk(256);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            linuxdev::InitLinuxEthernet(fdev_, machine_.get(), &registry));
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  ASSERT_EQ(Error::kOk,
            freebsddev::InitFreeBsdChar(fdev_, machine_.get(), &registry));
  EXPECT_EQ(4u, registry.count());  // eth0, hda, console, sio0

  EXPECT_EQ(1u, registry.LookupByInterface(EtherDev::kIid).size());
  EXPECT_EQ(1u, registry.LookupByInterface(BlkIo::kIid).size());
  EXPECT_EQ(2u, registry.LookupByInterface(CharStream::kIid).size());

  auto hda = registry.LookupByName("hda");
  ASSERT_TRUE(hda);
  DeviceInfo info;
  ASSERT_EQ(Error::kOk, hda->GetInfo(&info));
  EXPECT_STREQ("linux", info.vendor);
  auto console = registry.LookupByName("console");
  ASSERT_TRUE(console);
  ASSERT_EQ(Error::kOk, console->GetInfo(&info));
  EXPECT_STREQ("freebsd", info.vendor);  // both donors coexist (§3.6)
}

TEST_F(DriverTest, IdeDriverReadsAndWritesThroughBlkIo) {
  DiskHw* disk = machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ASSERT_TRUE(device);
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);
  EXPECT_EQ(512u, blkio->GetBlockSize());
  off_t64 size = 0;
  ASSERT_EQ(Error::kOk, blkio->GetSize(&size));
  EXPECT_EQ(2048u * 512, size);

  bool done = false;
  sim_.Spawn("io", [&] {
    // Unaligned write crossing sectors (exercises read-modify-write).
    uint8_t data[1500];
    for (size_t i = 0; i < sizeof(data); ++i) {
      data[i] = static_cast<uint8_t>(i * 11);
    }
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, blkio->Write(data, 100, sizeof(data), &actual));
    EXPECT_EQ(sizeof(data), actual);

    uint8_t readback[1500] = {};
    ASSERT_EQ(Error::kOk, blkio->Read(readback, 100, sizeof(readback), &actual));
    EXPECT_EQ(sizeof(readback), actual);
    EXPECT_EQ(0, memcmp(data, readback, sizeof(data)));
    done = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(done);
  EXPECT_GT(disk->reads_completed() + disk->writes_completed(), 4u);
}

TEST_F(DriverTest, FilesystemRunsOnTheIdeDriver) {
  // §4.2.2's dynamic binding, end to end: mkfs + mount the filesystem
  // component on the encapsulated IDE driver's BlkIo.
  machine_->AddDisk(16 * 1024 * 1024 / 512);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);

  sim_.Spawn("fs", [&] {
    ASSERT_EQ(Error::kOk, fs::Mkfs(blkio.get()));
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, fs::Offs::Mount(blkio.get(), &raw));
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));
    ComPtr<File> f;
    ASSERT_EQ(Error::kOk, root->Create("on-disk", 0644, f.Receive()));
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, f->Write("through the driver", 0, 18, &actual));
    f.Reset();
    root.Reset();
    ASSERT_EQ(Error::kOk, fs->Unmount());
    fs::FsckReport report = fs::Fsck(blkio.get());
    EXPECT_TRUE(report.consistent);
    EXPECT_TRUE(report.was_clean);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
}

TEST_F(DriverTest, IdeDriverFlushesThroughBlkIoBarrier) {
  // The §4.4.2 extension discovered the COM way: Query the IDE device for
  // BlkIoBarrier and drain the disk's volatile write cache through it.
  DiskHw* disk = machine_->AddDisk(2048);
  disk->EnableWriteCache(true);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ASSERT_TRUE(device);
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ComPtr<BlkIoBarrier> barrier = ComPtr<BlkIoBarrier>::FromQuery(device.get());
  ASSERT_TRUE(blkio);
  ASSERT_TRUE(barrier);

  sim_.Spawn("flush", [&] {
    uint8_t data[512];
    for (size_t i = 0; i < sizeof(data); ++i) {
      data[i] = static_cast<uint8_t>(i);
    }
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, blkio->Write(data, 512, sizeof(data), &actual));
    EXPECT_GT(disk->cached_writes(), 0u);
    ASSERT_EQ(Error::kOk, barrier->Flush());
    EXPECT_EQ(0u, disk->cached_writes());
    EXPECT_EQ(1u, disk->flushes_completed());
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
}

TEST_F(DriverTest, BlockCacheSyncWritesBlocksInAscendingOrder) {
  // Regression pin for the crash campaign's reproducibility: Sync must
  // write back in ascending block order, never hash-map iteration order.
  // The disk's write log is the ground truth.
  DiskHw* disk = machine_->AddDisk(2048);
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  ASSERT_TRUE(blkio);

  sim_.Spawn("sync-order", [&] {
    fs::BlockCache cache(blkio, fs::kBlockSize, 64);
    std::vector<uint8_t> block(fs::kBlockSize, 0xcd);
    for (uint32_t b : {50u, 3u, 27u, 9u, 40u, 12u}) {
      ASSERT_EQ(Error::kOk, cache.WriteBlock(b, block.data()));
    }
    disk->ClearWriteLog();
    ASSERT_EQ(Error::kOk, cache.Sync());
    const auto& log = disk->write_log();
    ASSERT_GE(log.size(), 6u);
    for (size_t i = 1; i < log.size(); ++i) {
      EXPECT_LE(log[i - 1].lba, log[i].lba)
          << "write " << i << " went backwards";
    }
    // First and last writebacks belong to the lowest and highest blocks.
    EXPECT_EQ(3u * (fs::kBlockSize / 512), log.front().lba);
    EXPECT_EQ(50u * (fs::kBlockSize / 512),
              log.back().lba + log.back().sectors - fs::kBlockSize / 512);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
}

TEST_F(DriverTest, BsdTtyBlocksUntilInput) {
  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            freebsddev::InitFreeBsdChar(fdev_, machine_.get(), &registry));
  auto console = registry.LookupByName("console");
  ComPtr<CharStream> tty = ComPtr<CharStream>::FromQuery(console.get());
  ASSERT_TRUE(tty);

  std::string received;
  sim_.Spawn("reader", [&] {
    char buf[32];
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, tty->Read(buf, sizeof(buf), &actual));
    received.assign(buf, actual);
  });
  // Input arrives later; the reader must be blocked until then.
  sim_.clock().ScheduleAfter(kNsPerMs, [&] {
    machine_->console_uart().InjectRx("typed", 5);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_EQ("typed", received);

  // Output goes straight to the UART.
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, tty->Write("echo", 4, &actual));
  EXPECT_EQ("echo", machine_->console_uart().TakeOutput());
}

// ---- Buffer-I/O bounds: the unsigned-off_t64 abuse suite ----
//
// off_t64 is unsigned, so a "negative" offset arrives as a huge value and
// the historical `offset + amount > len` checks wrapped right back into
// range, letting a COM client drive memcpy out of bounds.  These tests poke
// the COM BufIo surface directly with the abusive values; against the
// pre-fix code the SkBuffIo cases die under ASan (wild memcpy), and they
// pin the overflow-safe checks for all three implementations.

TEST_F(DriverTest, SkBuffIoBoundsRejectNegativeOffsetAndWrappingAmount) {
  linuxdev::LinuxKernelEnv kenv;
  kenv.kmalloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<KernelEnv*>(ctx)->MemAlloc(size);
  };
  kenv.kfree = +[](void* ctx, void* p, size_t size) {
    static_cast<KernelEnv*>(ctx)->MemFree(p, size);
  };
  kenv.ctx = kernel_.get();

  constexpr size_t kLen = 96;
  linuxdev::sk_buff* skb = linuxdev::dev_alloc_skb(kenv, kLen + 16);
  ASSERT_NE(nullptr, skb);
  uint8_t* put = linuxdev::skb_put(skb, kLen);
  for (size_t i = 0; i < kLen; ++i) {
    put[i] = static_cast<uint8_t>(i ^ 0x5c);
  }
  ComPtr<linuxdev::SkBuffIo> impl(new linuxdev::SkBuffIo(kenv, skb));
  ComPtr<BufIo> io = ComPtr<BufIo>::FromQuery(impl.get());
  ASSERT_TRUE(io);

  uint8_t buf[kLen] = {};
  size_t actual = 99;

  // Read at offset -8: pre-fix, `offset + amount` wrapped to 8 and the
  // memcpy sourced from skb->data - 8 rows of someone else's heap.
  EXPECT_EQ(Error::kOutOfRange,
            io->Read(buf, static_cast<off_t64>(-8), 16, &actual));
  EXPECT_EQ(0u, actual);

  // Amount that wraps: offset in range, offset + amount == 4 (mod 2^64).
  actual = 99;
  EXPECT_EQ(Error::kOutOfRange,
            io->Write(buf, 8, static_cast<size_t>(-4), &actual));
  EXPECT_EQ(0u, actual);
  void* addr = nullptr;
  EXPECT_EQ(Error::kOutOfRange, io->Map(&addr, 8, static_cast<size_t>(-4)));
  EXPECT_EQ(Error::kOutOfRange,
            io->Map(&addr, static_cast<off_t64>(-8), 4));

  // Read clamps to the tail (BlkIo partial-read semantics), Write/Map do
  // not run past it.
  ASSERT_EQ(Error::kOk, io->Read(buf, kLen - 4, SIZE_MAX, &actual));
  EXPECT_EQ(4u, actual);
  EXPECT_EQ(Error::kOutOfRange, io->Write(buf, kLen - 4, 8, &actual));
  EXPECT_EQ(Error::kOutOfRange, io->Map(&addr, kLen - 4, 8));

  // The valid surface still works exactly.
  ASSERT_EQ(Error::kOk, io->Read(buf, 0, kLen, &actual));
  ASSERT_EQ(kLen, actual);
  EXPECT_EQ(0, memcmp(buf, put, kLen));
  ASSERT_EQ(Error::kOk, io->Map(&addr, kLen - 4, 4));
  EXPECT_EQ(put + kLen - 4, addr);
}

TEST_F(DriverTest, BufIoBoundsAbuseSuiteAcrossImplementations) {
  // One parameterized sweep over every BufIo the boundary glue hands out:
  // SkBuffIo (received skbuff), MemBlkIo (memory object), MbufBufIo (mbuf
  // chain).  Each backs 64 identical pattern bytes.
  linuxdev::LinuxKernelEnv kenv;
  kenv.kmalloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<KernelEnv*>(ctx)->MemAlloc(size);
  };
  kenv.kfree = +[](void* ctx, void* p, size_t size) {
    static_cast<KernelEnv*>(ctx)->MemFree(p, size);
  };
  kenv.ctx = kernel_.get();

  constexpr size_t kLen = 64;
  uint8_t pattern[kLen];
  for (size_t i = 0; i < kLen; ++i) {
    pattern[i] = static_cast<uint8_t>(i * 3 + 1);
  }

  net::MbufPool pool;
  struct Target {
    const char* name;
    ComPtr<BufIo> io;
  };
  std::vector<Target> targets;

  targets.push_back(
      {"MemBlkIo",
       ComPtr<BufIo>::FromQuery(MemBlkIo::CreateFrom(pattern, kLen).get())});

  linuxdev::sk_buff* skb = linuxdev::dev_alloc_skb(kenv, kLen + 16);
  ASSERT_NE(nullptr, skb);
  memcpy(linuxdev::skb_put(skb, kLen), pattern, kLen);
  ComPtr<linuxdev::SkBuffIo> skio(new linuxdev::SkBuffIo(kenv, skb));
  targets.push_back({"SkBuffIo", ComPtr<BufIo>::FromQuery(skio.get())});

  {
    // A 3-mbuf chain (header + two payload pieces) so the offset walk and
    // per-mbuf Map contiguity limits are exercised too.
    net::MBuf* chain = pool.GetHeaderAligned(14);
    memcpy(chain->data, pattern, 14);
    net::MBuf* body1 = pool.FromData(pattern + 14, 25);
    net::MBuf* body2 = pool.FromData(pattern + 39, kLen - 39);
    chain->next = body1;
    body1->next = body2;
    body1->pkt_len = 0;
    body2->pkt_len = 0;
    chain->pkt_len = kLen;
    targets.push_back(
        {"MbufBufIo",
         ComPtr<BufIo>::FromQuery(net::MbufBufIo::Wrap(&pool, chain).get())});
  }

  const off_t64 kHugeOffsets[] = {
      static_cast<off_t64>(-1), static_cast<off_t64>(-8),
      static_cast<off_t64>(-static_cast<int64_t>(kLen)), kLen + 1,
      static_cast<off_t64>(1) << 62};

  for (Target& t : targets) {
    SCOPED_TRACE(t.name);
    BufIo* io = t.io.get();
    off_t64 size = 0;
    ASSERT_EQ(Error::kOk, io->GetSize(&size));
    ASSERT_EQ(kLen, size);

    uint8_t buf[kLen + 32];
    size_t actual = 0;

    // Baseline round trip.
    ASSERT_EQ(Error::kOk, io->Read(buf, 0, kLen, &actual));
    ASSERT_EQ(kLen, actual);
    EXPECT_EQ(0, memcmp(buf, pattern, kLen));

    // Every huge/"negative" offset is rejected outright, for every verb.
    for (off_t64 off : kHugeOffsets) {
      SCOPED_TRACE(static_cast<long long>(off));
      actual = 99;
      EXPECT_NE(Error::kOk, io->Read(buf, off, 8, &actual));
      EXPECT_EQ(0u, actual);
      actual = 99;
      EXPECT_NE(Error::kOk, io->Write(pattern, off, 8, &actual));
      EXPECT_EQ(0u, actual);
      void* addr = nullptr;
      EXPECT_NE(Error::kOk, io->Map(&addr, off, 8));
    }

    // Wrapping amounts at in-range offsets: Read may clamp to the tail
    // (partial-read semantics) but must never run past it; Write either
    // errors, clamps, or is unimplemented; Map must refuse.
    memset(buf, 0xee, sizeof(buf));
    actual = 0;
    Error err = io->Read(buf, kLen - 4, SIZE_MAX, &actual);
    if (Ok(err)) {
      EXPECT_LE(actual, 4u);
      for (size_t i = 4; i < sizeof(buf); ++i) {
        ASSERT_EQ(0xee, buf[i]) << "Read spilled past the clamped tail";
      }
    } else {
      EXPECT_EQ(0u, actual);
    }
    actual = 0;
    err = io->Write(pattern, kLen - 4, static_cast<size_t>(-4), &actual);
    if (Ok(err)) {
      EXPECT_LE(actual, 4u);
    } else {
      EXPECT_EQ(0u, actual);
    }
    void* addr = nullptr;
    EXPECT_NE(Error::kOk, io->Map(&addr, 8, static_cast<size_t>(-4)));
    EXPECT_NE(Error::kOk, io->Map(&addr, kLen - 4, 8));

    // The empty tail is addressable; one past it is not.
    EXPECT_EQ(Error::kOk, io->Read(buf, kLen, 8, &actual));
    EXPECT_EQ(0u, actual);
    EXPECT_NE(Error::kOk, io->Read(buf, kLen + 1, 1, &actual));

    // A small in-range Map still works and sees the right bytes.
    ASSERT_EQ(Error::kOk, io->Map(&addr, 2, 4));
    EXPECT_EQ(0, memcmp(addr, pattern + 2, 4));
    EXPECT_EQ(Error::kOk, io->Unmap(addr, 2, 4));
  }
}

// ---- Polled RX (NAPI-style): budgeted drain and the re-enable race ----

TEST_F(DriverTest, PolledRxDrainsBurstBeyondBudget) {
  // A burst larger than the poll budget must be delivered completely by
  // chained poll dispatches (budget-exhausted reschedules), with exactly
  // one coalesced IRQ and no watchdog help.
  NicHw* nic_a = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 1}}, 11);
  NicHw* nic_b = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 2}}, 12);

  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            linuxdev::InitLinuxEthernet(fdev_, machine_.get(), &registry));
  auto devices = registry.LookupByInterface(EtherDev::kIid);
  ASSERT_EQ(2u, devices.size());
  auto* dev_a = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());

  NicHw::RxMitigation mit;
  mit.frame_threshold = 4;
  nic_a->SetRxMitigation(mit);
  linuxdev::LinuxEtherDev::RxPollConfig poll;
  poll.enabled = true;
  poll.budget = 4;
  dev_a->SetRxPoll(poll);

  ComPtr<RecorderNetIo> rx_a(new RecorderNetIo());
  NetIo* tx_a = nullptr;
  ComPtr<EtherDev> ea = ComPtr<EtherDev>::FromQuery(devices[0].get());
  ASSERT_EQ(Error::kOk, ea->Open(rx_a.get(), &tx_a));
  ComPtr<NetIo> tx_a_owned(tx_a);

  uint8_t frame[60] = {2, 0, 0, 0, 0, 1, 2, 0, 0, 0, 0, 2};
  constexpr int kBurst = 19;  // 4 full budgets + a 3-frame remainder
  for (int i = 0; i < kBurst; ++i) {
    frame[12] = static_cast<uint8_t>(i);  // distinguishable payloads
    nic_b->TxStart(frame, sizeof(frame));
  }
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);

  ASSERT_EQ(static_cast<size_t>(kBurst), rx_a->frames.size());
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(static_cast<uint8_t>(i), rx_a->frames[i][12]) << "frame order";
  }
  const auto& c = dev_a->counters();
  EXPECT_EQ(5u, static_cast<uint64_t>(c.rx_polls));
  EXPECT_EQ(static_cast<uint64_t>(kBurst),
            static_cast<uint64_t>(c.rx_poll_frames));
  EXPECT_EQ(4u, static_cast<uint64_t>(c.rx_poll_budget_exhausted));
  EXPECT_EQ(0u, static_cast<uint64_t>(c.rx_watchdog_recoveries))
      << "the poll chain, not the watchdog, must deliver the burst";
  EXPECT_EQ(1u, static_cast<uint64_t>(nic_a->rx_coalesce_irqs_counter()))
      << "one coalesced announcement for the whole burst";
  ASSERT_EQ(Error::kOk, ea->Close());
}

TEST_F(DriverTest, PolledRxRechecksRingAfterReenable) {
  // The classic NAPI race: a frame lands after the poll drained the ring
  // but before the RX interrupt is re-enabled.  The hardware does not
  // replay it, so the driver's post-re-enable re-check is the only thing
  // standing between that frame and a 10 ms watchdog stall.
  NicHw* nic_a = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 1}}, 11);
  NicHw* nic_b = machine_->AddNic(wire_.get(), EtherAddr{{2, 0, 0, 0, 0, 2}}, 12);

  DeviceRegistry registry;
  ASSERT_EQ(Error::kOk,
            linuxdev::InitLinuxEthernet(fdev_, machine_.get(), &registry));
  auto devices = registry.LookupByInterface(EtherDev::kIid);
  ASSERT_EQ(2u, devices.size());
  auto* dev_a = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());

  // Wide, explicit windows so the arrival timing below is unambiguous:
  // IRQ at t, poll at t+10us, re-enable at t+110us.
  linuxdev::LinuxEtherDev::RxPollConfig poll;
  poll.enabled = true;
  poll.softirq_delay_ns = 10 * kNsPerUs;
  poll.reenable_delay_ns = 100 * kNsPerUs;
  dev_a->SetRxPoll(poll);

  ComPtr<RecorderNetIo> rx_a(new RecorderNetIo());
  NetIo* tx_a = nullptr;
  ComPtr<EtherDev> ea = ComPtr<EtherDev>::FromQuery(devices[0].get());
  ASSERT_EQ(Error::kOk, ea->Open(rx_a.get(), &tx_a));
  ComPtr<NetIo> tx_a_owned(tx_a);

  uint8_t frame[60] = {2, 0, 0, 0, 0, 1, 2, 0, 0, 0, 0, 2};
  frame[12] = 1;
  nic_b->TxStart(frame, sizeof(frame));
  // Lands at t+50us: after the poll dispatch drained frame 1, before the
  // re-enable at t+110us — squarely in the race window, raising no IRQ.
  sim_.clock().ScheduleAfter(50 * kNsPerUs, [&] {
    frame[12] = 2;
    nic_b->TxStart(frame, sizeof(frame));
  });
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);

  ASSERT_EQ(2u, rx_a->frames.size()) << "the race-window frame was stranded";
  EXPECT_EQ(1, rx_a->frames[0][12]);
  EXPECT_EQ(2, rx_a->frames[1][12]);
  const auto& c = dev_a->counters();
  EXPECT_EQ(1u, static_cast<uint64_t>(c.rx_poll_reenable_races))
      << "the re-check, not an IRQ, must have found the frame";
  EXPECT_EQ(2u, static_cast<uint64_t>(c.rx_polls));
  EXPECT_EQ(0u, static_cast<uint64_t>(c.rx_watchdog_recoveries));
  EXPECT_EQ(1u, static_cast<uint64_t>(nic_a->rx_coalesce_irqs_counter()))
      << "the hardware never announced the race-window frame";
  ASSERT_EQ(Error::kOk, ea->Close());
}

TEST_F(DriverTest, ClistQueuesArbitraryBytes) {
  freebsddev::Clist clist(fdev_);
  EXPECT_EQ(-1, clist.Getc());
  for (int i = 0; i < 300; ++i) {  // spans multiple cblocks
    ASSERT_TRUE(clist.Putc(static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(300u, clist.count());
  EXPECT_GE(clist.cblocks_allocated(), 4u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(i & 0xff, clist.Getc());
  }
  EXPECT_EQ(-1, clist.Getc());
}

}  // namespace
}  // namespace oskit
