// Program-loading tests: SXF build/parse/load round trips and corrupt-image
// rejection.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/exec/sxf.h"

namespace oskit::exec {
namespace {

std::vector<uint8_t> Bytes(const char* s) {
  return std::vector<uint8_t>(s, s + strlen(s));
}

TEST(SxfTest, BuildParseLoadRoundTrip) {
  std::vector<BuildSegment> segments;
  segments.push_back({SegmentType::kCode, /*mem_offset=*/0, /*mem_size=*/0,
                      Bytes("CODECODE")});
  segments.push_back({SegmentType::kData, /*mem_offset=*/0x100, /*mem_size=*/0x20,
                      Bytes("data")});
  segments.push_back({SegmentType::kBss, /*mem_offset=*/0x200, /*mem_size=*/0x80, {}});
  std::vector<uint8_t> image = Build(/*entry=*/4, segments);

  ImageInfo info;
  ASSERT_EQ(Error::kOk, Parse(image.data(), image.size(), &info));
  EXPECT_EQ(4u, info.entry);
  EXPECT_EQ(0x280u, info.mem_size);
  ASSERT_EQ(3u, info.segments.size());
  EXPECT_EQ(SegmentType::kCode, info.segments[0].type);
  EXPECT_EQ(8u, info.segments[0].file_size);

  std::vector<uint8_t> memory(info.mem_size, 0xff);
  ASSERT_EQ(Error::kOk, Load(image.data(), image.size(), memory.data(),
                             memory.size(), &info));
  EXPECT_EQ(0, memcmp(memory.data(), "CODECODE", 8));
  EXPECT_EQ(0, memcmp(memory.data() + 0x100, "data", 4));
  // The data tail and the whole bss are zeroed.
  for (size_t i = 0x104; i < 0x120; ++i) {
    EXPECT_EQ(0, memory[i]);
  }
  for (size_t i = 0x200; i < 0x280; ++i) {
    EXPECT_EQ(0, memory[i]);
  }
}

TEST(SxfTest, ChecksumCatchesBitFlips) {
  std::vector<uint8_t> image = Build(0, {{SegmentType::kCode, 0, 0, Bytes("abcd")}});
  ImageInfo info;
  ASSERT_EQ(Error::kOk, Parse(image.data(), image.size(), &info));
  // Flip one payload bit.
  image.back() ^= 0x01;
  EXPECT_EQ(Error::kCorrupt, Parse(image.data(), image.size(), &info));
}

TEST(SxfTest, RejectsBadMagicAndTruncation) {
  std::vector<uint8_t> image = Build(0, {{SegmentType::kCode, 0, 0, Bytes("abcd")}});
  ImageInfo info;
  std::vector<uint8_t> bad = image;
  bad[0] ^= 0xff;
  EXPECT_EQ(Error::kCorrupt, Parse(bad.data(), bad.size(), &info));
  EXPECT_EQ(Error::kCorrupt, Parse(image.data(), 10, &info));
  EXPECT_EQ(Error::kCorrupt, Parse(image.data(), image.size() - 2, &info));
}

TEST(SxfTest, RejectsOverlappingSegments) {
  std::vector<BuildSegment> segments;
  segments.push_back({SegmentType::kData, 0x00, 0x100, Bytes("one")});
  segments.push_back({SegmentType::kData, 0x80, 0x100, Bytes("two")});  // overlaps
  std::vector<uint8_t> image = Build(0, segments);
  ImageInfo info;
  EXPECT_EQ(Error::kCorrupt, Parse(image.data(), image.size(), &info));
}

TEST(SxfTest, RejectsEntryOutsideImage) {
  std::vector<uint8_t> image = Build(0x9999, {{SegmentType::kCode, 0, 0, Bytes("x")}});
  ImageInfo info;
  EXPECT_EQ(Error::kCorrupt, Parse(image.data(), image.size(), &info));
}

TEST(SxfTest, LoadRefusesSmallMemory) {
  std::vector<uint8_t> image =
      Build(0, {{SegmentType::kBss, 0, 4096, {}}});
  ImageInfo info;
  uint8_t tiny[64];
  EXPECT_EQ(Error::kNoMem, Load(image.data(), image.size(), tiny, sizeof(tiny), &info));
}

}  // namespace
}  // namespace oskit::exec
