// Fault-injection environment and recovery-path tests: the deterministic
// FaultEnv itself, the SimClock cancel semantics watchdogs depend on, the
// IDE driver's retry/backoff/watchdog-reset ladder, AMM error surfacing,
// PIT skew compensation, and the kmon `fault` command.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/amm/amm.h"
#include "src/dev/linux/linux_ide.h"
#include "src/fault/fault.h"
#include "src/kern/kmon.h"
#include "src/testbed/testbed.h"

namespace oskit {
namespace {

// ---------------------------------------------------------------------------
// FaultEnv
// ---------------------------------------------------------------------------

TEST(FaultEnvTest, SameSeedSameFirePattern) {
  fault::FaultEnv a(42);
  fault::FaultEnv b(42);
  fault::FaultSpec spec;
  spec.probability_percent = 30;
  a.Arm("x", spec);
  b.Arm("x", spec);
  std::vector<bool> pa;
  std::vector<bool> pb;
  for (int i = 0; i < 500; ++i) {
    pa.push_back(a.ShouldFail("x"));
    pb.push_back(b.ShouldFail("x"));
  }
  EXPECT_EQ(pa, pb);
  EXPECT_GT(a.fires("x"), 0u);
  EXPECT_LT(a.fires("x"), 500u);
}

TEST(FaultEnvTest, NthCallFiresExactlyOnce) {
  fault::FaultEnv env(1);
  fault::FaultSpec spec;
  spec.nth_call = 3;
  env.Arm("x", spec);
  int fires = 0;
  for (int i = 1; i <= 10; ++i) {
    if (env.ShouldFail("x")) {
      EXPECT_EQ(3, i);
      ++fires;
    }
  }
  EXPECT_EQ(1, fires);
  EXPECT_EQ(10u, env.calls("x"));
}

TEST(FaultEnvTest, MaxFiresCapsInjection) {
  fault::FaultEnv env(1);
  fault::FaultSpec spec;
  spec.probability_percent = 100;
  spec.max_fires = 3;
  env.Arm("x", spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    fires += env.ShouldFail("x") ? 1 : 0;
  }
  EXPECT_EQ(3, fires);
}

TEST(FaultEnvTest, DisarmedSitesNeverFire) {
  fault::FaultEnv env(1);
  fault::FaultSpec spec;
  spec.probability_percent = 100;
  env.Arm("x", spec);
  EXPECT_TRUE(env.armed("x"));
  EXPECT_TRUE(env.ShouldFail("x"));
  env.Disarm("x");
  EXPECT_FALSE(env.armed("x"));
  EXPECT_FALSE(env.ShouldFail("x"));
  env.Arm("y", spec);
  env.DisarmAll();
  EXPECT_FALSE(env.ShouldFail("x"));
  EXPECT_FALSE(env.ShouldFail("y"));
  // A site nobody armed is the production fast path.
  EXPECT_FALSE(env.ShouldFail("never.armed"));
}

TEST(FaultEnvTest, ReseedResetsCountsKeepsArming) {
  fault::FaultEnv env(9);
  fault::FaultSpec spec;
  spec.probability_percent = 100;
  env.Arm("x", spec);
  (void)env.ShouldFail("x");
  EXPECT_EQ(1u, env.calls("x"));
  env.Reseed(10);
  EXPECT_EQ(10u, env.seed());
  EXPECT_EQ(0u, env.calls("x"));
  EXPECT_EQ(0u, env.fires("x"));
  EXPECT_EQ(0u, env.total_fires());
  EXPECT_TRUE(env.armed("x"));
}

TEST(FaultEnvTest, BindTraceExportsFireCounters) {
  trace::TraceEnv tenv;
  fault::FaultEnv env(1);
  env.BindTrace(&tenv);
  fault::FaultSpec spec;
  spec.probability_percent = 100;
  env.Arm("disk.stuck", spec);
  EXPECT_TRUE(env.ShouldFail("disk.stuck"));
  EXPECT_EQ(1u, tenv.registry.Value("fault.disk.stuck"));
  // Unbinding removes the counters so the registry can outlive the env.
  env.BindTrace(nullptr);
  EXPECT_EQ(0u, tenv.registry.Value("fault.disk.stuck"));
}

// ---------------------------------------------------------------------------
// SimClock cancel semantics (the watchdog contract)
// ---------------------------------------------------------------------------

TEST(SimClockFaultTest, CancelFailsOnceAnEventHasRun) {
  SimClock clock;
  int ran = 0;
  SimClock::EventId a = clock.ScheduleAfter(10, [&] { ++ran; });
  SimClock::EventId b = clock.ScheduleAfter(20, [&] { ++ran; });
  EXPECT_TRUE(clock.RunOne());
  EXPECT_EQ(1, ran);
  // `a` already ran: a watchdog user must see the cancel FAIL, that is how
  // it learns the timeout fired first.
  EXPECT_FALSE(clock.Cancel(a));
  // `b` is still pending: cancel succeeds exactly once and the event never
  // runs.
  EXPECT_TRUE(clock.Cancel(b));
  EXPECT_FALSE(clock.Cancel(b));
  EXPECT_FALSE(clock.RunOne());
  EXPECT_EQ(1, ran);
  EXPECT_FALSE(clock.HasPending());
}

// ---------------------------------------------------------------------------
// IDE retry / watchdog recovery
// ---------------------------------------------------------------------------

class IdeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    // The disk must exist before the kernel boots so the kernel wires the
    // fault env into it.
    machine_->AddDisk(2048);
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{},
                                          KernelEnv::SleepMode::kFiber,
                                          &tenv_, &fenv_);
    machine_->cpu().EnableInterrupts();
    fdev_ = DefaultFdevEnv(kernel_.get());
    EXPECT_EQ(Error::kOk,
              linuxdev::InitLinuxIde(fdev_, machine_.get(), &registry_));
    auto device = registry_.LookupByName("hda");
    blkio_ = ComPtr<BlkIo>::FromQuery(device.get());
    ASSERT_TRUE(blkio_);
  }

  trace::TraceEnv tenv_;
  fault::FaultEnv fenv_{7};
  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
  FdevEnv fdev_;
  DeviceRegistry registry_;
  ComPtr<BlkIo> blkio_;
};

TEST_F(IdeFaultTest, TransientReadErrorIsRetried) {
  fault::FaultSpec spec;
  spec.nth_call = 1;
  fenv_.Arm("disk.read.error", spec);
  sim_.Spawn("io", [&] {
    uint8_t buf[512];
    size_t actual = 0;
    EXPECT_EQ(Error::kOk, blkio_->Read(buf, 0, sizeof(buf), &actual));
    EXPECT_EQ(sizeof(buf), actual);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_EQ(1u, fenv_.fires("disk.read.error"));
  EXPECT_GE(tenv_.registry.Value("glue.ide.retries"), 1u);
  EXPECT_EQ(0u, tenv_.registry.Value("glue.ide.errors_surfaced"));
}

TEST_F(IdeFaultTest, StuckControllerIsWatchdogReset) {
  fault::FaultSpec spec;
  spec.nth_call = 1;
  spec.max_fires = 1;
  fenv_.Arm("disk.stuck", spec);
  sim_.Spawn("io", [&] {
    uint8_t buf[512] = {0x5a};
    size_t actual = 0;
    EXPECT_EQ(Error::kOk, blkio_->Write(buf, 0, sizeof(buf), &actual));
    EXPECT_EQ(Error::kOk, blkio_->Read(buf, 0, sizeof(buf), &actual));
    EXPECT_EQ(0x5a, buf[0]);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_EQ(1u, fenv_.fires("disk.stuck"));
  EXPECT_GE(tenv_.registry.Value("glue.ide.watchdog_resets"), 1u);
  // The watchdog waited out the 50 ms timeout before resetting.
  EXPECT_GE(sim_.clock().Now(), static_cast<SimTime>(50 * kNsPerMs));
  EXPECT_EQ(0u, tenv_.registry.Value("glue.ide.errors_surfaced"));
}

TEST_F(IdeFaultTest, PersistentErrorSurfacesAfterRetries) {
  fault::FaultSpec spec;
  spec.probability_percent = 100;
  fenv_.Arm("disk.write.error", spec);
  sim_.Spawn("io", [&] {
    uint8_t buf[512] = {};
    size_t actual = 0;
    // Every attempt fails: after the retry budget the error must surface as
    // a return value, never a panic.
    EXPECT_EQ(Error::kIo, blkio_->Write(buf, 0, sizeof(buf), &actual));
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_GE(tenv_.registry.Value("glue.ide.retries"), 4u);
  EXPECT_EQ(1u, tenv_.registry.Value("glue.ide.errors_surfaced"));
}

// ---------------------------------------------------------------------------
// AMM error surfacing
// ---------------------------------------------------------------------------

TEST(AmmFaultTest, InjectedOomSurfacesAndRetrySucceeds) {
  fault::FaultEnv fenv(3);
  Amm amm(0, 1 << 20);
  amm.SetFaultEnv(&fenv);
  fault::FaultSpec spec;
  spec.nth_call = 1;
  fenv.Arm("amm.alloc", spec);
  uint64_t addr = 0;
  EXPECT_EQ(Error::kNoSpace, amm.Allocate(&addr, 4096, Amm::kAllocated));
  EXPECT_EQ(Error::kOk, amm.Allocate(&addr, 4096, Amm::kAllocated));
}

// ---------------------------------------------------------------------------
// PIT skew compensation
// ---------------------------------------------------------------------------

TEST(PitFaultTest, SkewedTickTrainIsSteeredBack) {
  trace::TraceEnv tenv;
  fault::FaultEnv fenv(5);
  Simulation sim;
  Machine machine(&sim, Machine::Config{});
  KernelEnv kernel(&machine, MultiBootInfo{}, KernelEnv::SleepMode::kFiber,
                   &tenv, &fenv);
  machine.cpu().EnableInterrupts();

  fault::FaultSpec spec;
  spec.nth_call = 2;  // the second tick lands early/late by 20%
  spec.arg = 20;
  fenv.Arm("pit.skew", spec);

  uint64_t ticks = 0;
  kernel.SetTimer(100, [&ticks] { ++ticks; });
  sim.Spawn("wait", [&] { sim.SleepFor(100 * kNsPerMs); });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  kernel.StopTimer();

  EXPECT_GE(ticks, 8u);
  EXPECT_EQ(1u, tenv.registry.Value("machine.pit.skew_events"));
  // The tick after the skew steers back toward the nominal train.
  EXPECT_GE(tenv.registry.Value("machine.pit.skew_compensations"), 1u);
}

// ---------------------------------------------------------------------------
// kmon `fault` command
// ---------------------------------------------------------------------------

TEST(KmonFaultTest, ArmsListsAndReseedsSites) {
  Simulation sim;
  Machine machine(&sim, Machine::Config{});
  fault::FaultEnv fenv(1);
  KernelEnv kernel(&machine, MultiBootInfo{}, KernelEnv::SleepMode::kFiber,
                   nullptr, &fenv);
  KernelMonitor kmon(&kernel, &kernel.console());

  auto type = [&](const std::string& line) {
    machine.console_uart().InjectRx(line.data(), line.size());
    machine.console_uart().InjectRx("\r", 1);
  };
  type("fault");
  type("fault arm disk.stuck 0 3");
  type("fault");
  type("fault arm bad.site 200");
  type("fault disarm disk.stuck");
  type("fault seed 7");
  type("c");

  sim.Spawn("kmon", [&] {
    TrapFrame frame;
    frame.trapno = kTrapBreakpoint;
    kmon.Enter(frame);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim.Run());

  std::string out = machine.console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("no fault sites touched yet"));
  EXPECT_NE(std::string::npos, out.find("armed disk.stuck"));
  EXPECT_NE(std::string::npos, out.find("nth=3"));
  EXPECT_NE(std::string::npos, out.find("usage: fault arm"));
  EXPECT_NE(std::string::npos, out.find("reseeded to 7"));
  EXPECT_FALSE(fenv.armed("disk.stuck"));
  EXPECT_EQ(7u, fenv.seed());
}

}  // namespace
}  // namespace oskit
