// Filesystem tests (§3.8): mkfs/mount, file and directory operations, large
// files through double indirection, fsck after everything, the security
// wrapper, and a randomized property test against an in-memory model.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/base/random.h"
#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/fs/secure.h"
#include "tests/bounds_abuse.h"

namespace oskit::fs {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = MemBlkIo::Create(16 * 1024 * 1024, 512);
    ASSERT_EQ(Error::kOk, Mkfs(disk_.get()));
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, Offs::Mount(disk_.get(), &raw));
    fs_ = ComPtr<FileSystem>(raw);
    ASSERT_EQ(Error::kOk, fs_->GetRoot(root_.Receive()));
  }

  void Remount() {
    root_.Reset();
    ASSERT_EQ(Error::kOk, fs_->Unmount());
    fs_.Reset();
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, Offs::Mount(disk_.get(), &raw));
    fs_ = ComPtr<FileSystem>(raw);
    ASSERT_EQ(Error::kOk, fs_->GetRoot(root_.Receive()));
  }

  void ExpectFsckClean() {
    root_.Reset();
    ASSERT_EQ(Error::kOk, fs_->Unmount());
    FsckReport report = Fsck(disk_.get());
    EXPECT_TRUE(report.superblock_valid);
    EXPECT_TRUE(report.was_clean);
    for (const std::string& p : report.problems) {
      ADD_FAILURE() << "fsck: " << p;
    }
    fs_.Reset();
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, Offs::Mount(disk_.get(), &raw));
    fs_ = ComPtr<FileSystem>(raw);
    ASSERT_EQ(Error::kOk, fs_->GetRoot(root_.Receive()));
  }

  ComPtr<MemBlkIo> disk_;
  ComPtr<FileSystem> fs_;
  ComPtr<Dir> root_;
};

TEST(BlockCacheTest, InvalidateRefusesDirtyButDropDirtyDiscards) {
  auto disk = MemBlkIo::Create(1024 * 1024, 512);
  BlockCache cache(ComPtr<BlkIo>::Retain(disk.get()), kBlockSize, 8);

  std::vector<uint8_t> data(kBlockSize, 0xab);
  ASSERT_EQ(Error::kOk, cache.WriteBlock(5, data.data()));
  ASSERT_TRUE(cache.IsDirty(5));

  // A dirty block holds a pending write: Invalidate must refuse to lose it.
  EXPECT_EQ(Error::kBusy, cache.Invalidate(5));
  EXPECT_TRUE(cache.IsDirty(5));

  // DropDirty is the deliberate spelling — the write never reaches the
  // device, so a re-read sees the old (zero) contents.
  cache.DropDirty(5);
  EXPECT_FALSE(cache.IsDirty(5));
  std::vector<uint8_t> readback(kBlockSize, 0xff);
  ASSERT_EQ(Error::kOk, cache.ReadBlock(5, readback.data()));
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 0), readback);

  // Clean and absent blocks invalidate without complaint.
  EXPECT_EQ(Error::kOk, cache.Invalidate(5));
  EXPECT_EQ(Error::kOk, cache.Invalidate(123));

  // After a writeback the block is clean again and evictable.
  ASSERT_EQ(Error::kOk, cache.WriteBlock(6, data.data()));
  ASSERT_EQ(Error::kOk, cache.Sync());
  EXPECT_FALSE(cache.IsDirty(6));
  EXPECT_EQ(Error::kOk, cache.Invalidate(6));
}

TEST(BlockCacheTest, EvictionPinKeepsDirtyBlocksCached) {
  auto disk = MemBlkIo::Create(1024 * 1024, 512);
  BlockCache cache(ComPtr<BlkIo>::Retain(disk.get()), kBlockSize, 8);
  cache.SetEvictionPin([](uint32_t block) { return block < 4; });

  std::vector<uint8_t> data(kBlockSize, 0x5a);
  for (uint32_t b = 0; b < 4; ++b) {
    ASSERT_EQ(Error::kOk, cache.WriteBlock(b, data.data()));
  }
  // Stream enough unpinned blocks through to force evictions: the LRU
  // victims must be the clean read blocks, never the pinned dirty ones.
  std::vector<uint8_t> buf(kBlockSize);
  for (uint32_t b = 100; b < 110; ++b) {
    ASSERT_EQ(Error::kOk, cache.ReadBlock(b, buf.data()));
  }
  for (uint32_t b = 0; b < 4; ++b) {
    EXPECT_TRUE(cache.IsDirty(b)) << "pinned block " << b << " was evicted";
  }
  // With every slot pinned dirty and no clean block to evict, a miss
  // surfaces kBusy instead of writing a pinned block home.
  BlockCache tight(ComPtr<BlkIo>::Retain(disk.get()), kBlockSize, 8);
  tight.SetEvictionPin([](uint32_t) { return true; });
  for (uint32_t b = 0; b < 8; ++b) {
    ASSERT_EQ(Error::kOk, tight.WriteBlock(b, data.data()));
  }
  EXPECT_EQ(Error::kBusy, tight.ReadBlock(50, buf.data()));
}

TEST_F(FsTest, FreshFilesystemPassesFsck) { ExpectFsckClean(); }

TEST_F(FsTest, FileBoundsAbuse) {
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("abused", 0644, f.Receive()));
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, f->Write("xx", 0, 2, &actual));
  // File-style surface: reads past EOF are kOk with 0 bytes, but a wrapped
  // range is kInval — never an attempt to allocate to "offset + amount".
  oskit::testing::AbuseReadBounds(f.get(), 2, oskit::testing::PastEnd::kEofOk);
  oskit::testing::AbuseWriteBounds(f.get(), 2, oskit::testing::PastEnd::kEofOk);
  f.Reset();
  ExpectFsckClean();
}

TEST_F(FsTest, CreateWriteReadPersistsAcrossRemount) {
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("hello.txt", 0644, f.Receive()));
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, f->Write("persistent data", 0, 15, &actual));
  EXPECT_EQ(15u, actual);
  f.Reset();
  Remount();
  ASSERT_EQ(Error::kOk, root_->Lookup("hello.txt", f.Receive()));
  char buf[32] = {};
  ASSERT_EQ(Error::kOk, f->Read(buf, 0, sizeof(buf), &actual));
  EXPECT_EQ(15u, actual);
  EXPECT_STREQ("persistent data", buf);
  f.Reset();
  ExpectFsckClean();
}

TEST_F(FsTest, LargeFileThroughDoubleIndirection) {
  // Past 10 direct (40 KB) and 1024 single-indirect blocks (4 MB): write
  // ~4.5 MB so the double-indirect path runs.
  constexpr size_t kSize = 4608 * 1024 + 12345;
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("big", 0644, f.Receive()));
  std::vector<uint8_t> chunk(64 * 1024);
  size_t written = 0;
  uint32_t x = 1;
  while (written < kSize) {
    size_t n = chunk.size() < kSize - written ? chunk.size() : kSize - written;
    for (size_t i = 0; i < n; ++i) {
      x = x * 1664525 + 1013904223;
      chunk[i] = static_cast<uint8_t>(x >> 24);
    }
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, f->Write(chunk.data(), written, n, &actual));
    ASSERT_EQ(n, actual);
    written += n;
  }
  FileStat st;
  f->GetStat(&st);
  EXPECT_EQ(kSize, st.size);

  // Verify the whole stream.
  x = 1;
  std::vector<uint8_t> readback(64 * 1024);
  size_t offset = 0;
  while (offset < kSize) {
    size_t n = readback.size() < kSize - offset ? readback.size() : kSize - offset;
    size_t actual = 0;
    ASSERT_EQ(Error::kOk, f->Read(readback.data(), offset, n, &actual));
    ASSERT_EQ(n, actual);
    for (size_t i = 0; i < n; ++i) {
      x = x * 1664525 + 1013904223;
      ASSERT_EQ(static_cast<uint8_t>(x >> 24), readback[i])
          << "at offset " << offset + i;
    }
    offset += n;
  }
  f.Reset();
  ExpectFsckClean();
}

TEST_F(FsTest, TruncateReleasesBlocks) {
  FsStat before;
  fs_->StatFs(&before);
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("trunc", 0644, f.Receive()));
  std::vector<uint8_t> data(1024 * 1024, 0xcd);
  size_t actual;
  ASSERT_EQ(Error::kOk, f->Write(data.data(), 0, data.size(), &actual));
  FsStat mid;
  fs_->StatFs(&mid);
  EXPECT_LT(mid.free_blocks, before.free_blocks);
  ASSERT_EQ(Error::kOk, f->SetSize(100));
  FsStat after;
  fs_->StatFs(&after);
  EXPECT_GT(after.free_blocks, mid.free_blocks);
  // Shrink-then-grow reads zeros in the regrown region.
  ASSERT_EQ(Error::kOk, f->SetSize(8192));
  uint8_t buf[200];
  ASSERT_EQ(Error::kOk, f->Read(buf, 50, 200, &actual));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(0xcd, buf[i]);  // first 100 bytes survive
  }
  for (int i = 50; i < 200; ++i) {
    EXPECT_EQ(0, buf[i]) << "stale data after truncate at " << i;
  }
  f.Reset();
  ExpectFsckClean();
}

TEST_F(FsTest, DirectoryTreeAndRename) {
  ASSERT_EQ(Error::kOk, root_->Mkdir("a", 0755));
  ComPtr<File> af;
  ASSERT_EQ(Error::kOk, root_->Lookup("a", af.Receive()));
  ComPtr<Dir> a = ComPtr<Dir>::FromQuery(af.get());
  ASSERT_EQ(Error::kOk, a->Mkdir("b", 0755));
  ComPtr<File> bf;
  ASSERT_EQ(Error::kOk, a->Lookup("b", bf.Receive()));
  ComPtr<Dir> b = ComPtr<Dir>::FromQuery(bf.get());

  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, b->Create("deep", 0644, f.Receive()));
  size_t actual;
  f->Write("abc", 0, 3, &actual);

  // Move the whole "b" subtree up to the root.
  ASSERT_EQ(Error::kOk, a->Rename("b", root_.get(), "b-moved"));
  EXPECT_EQ(Error::kNoEnt, a->Lookup("b", f.Receive()));
  ComPtr<File> moved;
  ASSERT_EQ(Error::kOk, root_->Lookup("b-moved", moved.Receive()));
  ComPtr<Dir> moved_dir = ComPtr<Dir>::FromQuery(moved.get());
  ASSERT_EQ(Error::kOk, moved_dir->Lookup("deep", f.Receive()));

  // ".." inside the moved directory points at the new parent (the root).
  ComPtr<File> dotdot;
  ASSERT_EQ(Error::kOk, moved_dir->Lookup("..", dotdot.Receive()));
  FileStat dd_stat;
  FileStat root_stat;
  dotdot->GetStat(&dd_stat);
  root_->GetStat(&root_stat);
  EXPECT_EQ(root_stat.ino, dd_stat.ino);

  a.Reset();
  af.Reset();
  b.Reset();
  bf.Reset();
  f.Reset();
  moved.Reset();
  moved_dir.Reset();
  dotdot.Reset();
  ExpectFsckClean();
}

TEST_F(FsTest, UnlinkReleasesInodeAndBlocks) {
  FsStat before;
  fs_->StatFs(&before);
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("victim", 0644, f.Receive()));
  std::vector<uint8_t> data(100 * 1024, 1);
  size_t actual;
  f->Write(data.data(), 0, data.size(), &actual);
  f.Reset();
  ASSERT_EQ(Error::kOk, root_->Unlink("victim"));
  FsStat after;
  fs_->StatFs(&after);
  EXPECT_EQ(before.free_blocks, after.free_blocks);
  EXPECT_EQ(before.free_inodes, after.free_inodes);
  ExpectFsckClean();
}

TEST_F(FsTest, CrashWithoutSyncIsDetectedByFsck) {
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("dirty", 0644, f.Receive()));
  size_t actual;
  f->Write("unsynced", 0, 8, &actual);
  // "Crash": drop everything without Unmount/Sync.  The on-disk clean flag
  // was cleared at mount time, so fsck must notice.
  f.Reset();
  root_.Reset();
  fs_.Reset();
  FsckReport report = Fsck(disk_.get());
  EXPECT_TRUE(report.superblock_valid);
  EXPECT_FALSE(report.was_clean);
}

TEST_F(FsTest, SyncMakesCrashConsistent) {
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("synced", 0644, f.Receive()));
  size_t actual;
  f->Write("durable", 0, 7, &actual);
  ASSERT_EQ(Error::kOk, fs_->Sync());
  // Crash after sync: data must be intact on remount even though the clean
  // flag says "was mounted".
  f.Reset();
  root_.Reset();
  fs_.Reset();
  FsckReport report = Fsck(disk_.get());
  EXPECT_FALSE(report.was_clean);
  EXPECT_TRUE(report.consistent) << (report.problems.empty()
                                         ? ""
                                         : report.problems[0]);
  FileSystem* raw = nullptr;
  ASSERT_EQ(Error::kOk, Offs::Mount(disk_.get(), &raw));
  ComPtr<FileSystem> fs2(raw);
  ComPtr<Dir> root2;
  ASSERT_EQ(Error::kOk, fs2->GetRoot(root2.Receive()));
  ASSERT_EQ(Error::kOk, root2->Lookup("synced", f.Receive()));
  char buf[8] = {};
  ASSERT_EQ(Error::kOk, f->Read(buf, 0, 7, &actual));
  EXPECT_STREQ("durable", buf);
}

TEST_F(FsTest, OutOfSpaceIsReportedNotCorrupting) {
  // Fill the disk, expect kNoSpace, then verify consistency.
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root_->Create("filler", 0644, f.Receive()));
  std::vector<uint8_t> chunk(256 * 1024, 0xaa);
  uint64_t offset = 0;
  Error err = Error::kOk;
  for (int i = 0; i < 200; ++i) {
    size_t actual = 0;
    err = f->Write(chunk.data(), offset, chunk.size(), &actual);
    offset += actual;
    if (!Ok(err)) {
      break;
    }
  }
  EXPECT_EQ(Error::kNoSpace, err);
  f.Reset();
  ASSERT_EQ(Error::kOk, root_->Unlink("filler"));
  ExpectFsckClean();
}

// The secure fileserver experiment (§3.8): per-component permission checks.
TEST_F(FsTest, SecurityWrapperEnforcesPermissions) {
  // Root creates a world-readable file and a private one.
  ComPtr<File> pub;
  ASSERT_EQ(Error::kOk, root_->Create("public", 0644, pub.Receive()));
  size_t actual;
  pub->Write("open", 0, 4, &actual);
  ComPtr<File> priv;
  ASSERT_EQ(Error::kOk, root_->Create("private", 0600, priv.Receive()));
  priv->Write("secret", 0, 6, &actual);

  UnixFsPolicy policy;
  Credentials alice{.uid = 1000, .gid = 1000};
  ComPtr<Dir> secure_root = MakeSecureDir(root_, &policy, alice);

  // Readable file: lookup + read succeed.
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, secure_root->Lookup("public", f.Receive()));
  char buf[8] = {};
  ASSERT_EQ(Error::kOk, f->Read(buf, 0, 4, &actual));
  EXPECT_STREQ("open", buf);
  // But writing 0644-owned-by-root is denied for alice.
  EXPECT_EQ(Error::kAccess, f->Write("x", 0, 1, &actual));

  // Private file: lookup succeeds (directory is 0755) but reading is denied.
  ComPtr<File> s;
  ASSERT_EQ(Error::kOk, secure_root->Lookup("private", s.Receive()));
  EXPECT_EQ(Error::kAccess, s->Read(buf, 0, 6, &actual));

  // Creating in the root (0755, owned by uid 0) is denied too.
  ComPtr<File> nf;
  EXPECT_EQ(Error::kAccess, secure_root->Create("mine", 0644, nf.Receive()));

  // The superuser passes everything.
  Credentials su{.superuser = true};
  ComPtr<Dir> su_root = MakeSecureDir(root_, &policy, su);
  ASSERT_EQ(Error::kOk, su_root->Create("made-by-su", 0644, nf.Receive()));
  EXPECT_GT(policy.checks_performed(), 4u);
  EXPECT_GT(policy.denials(), 2u);
}

TEST_F(FsTest, RenameIntoOwnSubtreeIsRefused) {
  // "mv a a/b/a" must fail with EINVAL, not detach a cycle from the tree.
  ASSERT_EQ(Error::kOk, root_->Mkdir("a", 0755));
  ComPtr<File> af;
  ASSERT_EQ(Error::kOk, root_->Lookup("a", af.Receive()));
  ComPtr<Dir> a = ComPtr<Dir>::FromQuery(af.get());
  ASSERT_EQ(Error::kOk, a->Mkdir("b", 0755));
  ComPtr<File> bf;
  ASSERT_EQ(Error::kOk, a->Lookup("b", bf.Receive()));
  ComPtr<Dir> b = ComPtr<Dir>::FromQuery(bf.get());

  EXPECT_EQ(Error::kInval, root_->Rename("a", b.get(), "a"));
  EXPECT_EQ(Error::kInval, root_->Rename("a", a.get(), "self"));
  // Everything still reachable and consistent.
  ComPtr<File> check;
  ASSERT_EQ(Error::kOk, root_->Lookup("a", check.Receive()));
  a.Reset();
  af.Reset();
  b.Reset();
  bf.Reset();
  check.Reset();
  ExpectFsckClean();
}

TEST_F(FsTest, ReadDirEnumeratesEntries) {
  ASSERT_EQ(Error::kOk, root_->Mkdir("sub", 0755));
  for (char c = 'p'; c <= 't'; ++c) {
    char name[8] = {'f', '_', c, 0};
    ComPtr<File> f;
    ASSERT_EQ(Error::kOk, root_->Create(name, 0644, f.Receive()));
  }
  uint64_t offset = 0;
  DirEntry entries[3];
  size_t total = 0;
  bool saw_dot = false;
  bool saw_sub = false;
  for (;;) {
    size_t count = 0;
    ASSERT_EQ(Error::kOk, root_->ReadDir(&offset, entries, 3, &count));
    if (count == 0) {
      break;
    }
    for (size_t i = 0; i < count; ++i) {
      ++total;
      saw_dot |= strcmp(entries[i].name, ".") == 0;
      if (strcmp(entries[i].name, "sub") == 0) {
        saw_sub = true;
        EXPECT_EQ(FileType::kDirectory, entries[i].type);
      }
    }
  }
  // ".", "..", "sub", f_p..f_t = 8 entries.
  EXPECT_EQ(8u, total);
  EXPECT_TRUE(saw_dot);
  EXPECT_TRUE(saw_sub);
}

// Randomized ops cross-checked against an in-memory model, fsck at the end.
class FsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsPropertyTest, RandomOpsMatchModelAndFsck) {
  auto disk = MemBlkIo::Create(8 * 1024 * 1024, 512);
  ASSERT_EQ(Error::kOk, Mkfs(disk.get()));
  FileSystem* raw = nullptr;
  ASSERT_EQ(Error::kOk, Offs::Mount(disk.get(), &raw));
  ComPtr<FileSystem> fs(raw);
  ComPtr<Dir> root;
  ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));

  Rng rng(GetParam());
  std::map<std::string, std::vector<uint8_t>> model;  // name -> contents

  for (int step = 0; step < 300; ++step) {
    int op = static_cast<int>(rng.Below(10));
    char name[16];
    snprintf(name, sizeof(name), "f%02d", static_cast<int>(rng.Below(20)));
    if (op < 4) {
      // Write (create if needed) at a random offset.
      ComPtr<File> f;
      Error err = root->Lookup(name, f.Receive());
      if (err == Error::kNoEnt) {
        ASSERT_EQ(Error::kOk, root->Create(name, 0644, f.Receive()));
        model[name] = {};
      } else {
        ASSERT_EQ(Error::kOk, err);
      }
      size_t offset = rng.Below(8 * 1024);
      size_t len = rng.Range(1, 4096);
      std::vector<uint8_t> data(len);
      for (auto& byte : data) {
        byte = static_cast<uint8_t>(rng.Next());
      }
      size_t actual = 0;
      ASSERT_EQ(Error::kOk, f->Write(data.data(), offset, len, &actual));
      ASSERT_EQ(len, actual);
      auto& contents = model[name];
      if (contents.size() < offset + len) {
        contents.resize(offset + len, 0);
      }
      memcpy(contents.data() + offset, data.data(), len);
    } else if (op < 7) {
      // Read back a random range and compare with the model.
      auto it = model.begin();
      if (model.empty()) {
        continue;
      }
      std::advance(it, rng.Below(model.size()));
      ComPtr<File> f;
      ASSERT_EQ(Error::kOk, root->Lookup(it->first.c_str(), f.Receive()));
      FileStat st;
      ASSERT_EQ(Error::kOk, f->GetStat(&st));
      ASSERT_EQ(it->second.size(), st.size);
      if (st.size == 0) {
        continue;
      }
      size_t offset = rng.Below(st.size);
      size_t len = rng.Range(1, 2048);
      std::vector<uint8_t> buf(len);
      size_t actual = 0;
      ASSERT_EQ(Error::kOk, f->Read(buf.data(), offset, len, &actual));
      size_t expect = st.size - offset < len ? st.size - offset : len;
      ASSERT_EQ(expect, actual);
      ASSERT_EQ(0, memcmp(buf.data(), it->second.data() + offset, actual))
          << "content divergence in " << it->first;
    } else if (op < 8) {
      // Truncate.
      if (model.empty()) {
        continue;
      }
      auto it = model.begin();
      std::advance(it, rng.Below(model.size()));
      ComPtr<File> f;
      ASSERT_EQ(Error::kOk, root->Lookup(it->first.c_str(), f.Receive()));
      size_t new_size = rng.Below(16 * 1024);
      ASSERT_EQ(Error::kOk, f->SetSize(new_size));
      it->second.resize(new_size, 0);
    } else if (op < 9) {
      // Unlink.
      if (model.empty()) {
        continue;
      }
      auto it = model.begin();
      std::advance(it, rng.Below(model.size()));
      ASSERT_EQ(Error::kOk, root->Unlink(it->first.c_str()));
      model.erase(it);
    } else {
      // Sync (durability checkpoints mid-run).
      ASSERT_EQ(Error::kOk, fs->Sync());
    }
  }

  // Full verification of every file, then fsck.
  for (const auto& [name, contents] : model) {
    ComPtr<File> f;
    ASSERT_EQ(Error::kOk, root->Lookup(name.c_str(), f.Receive()));
    std::vector<uint8_t> buf(contents.size());
    size_t actual = 0;
    if (!contents.empty()) {
      ASSERT_EQ(Error::kOk, f->Read(buf.data(), 0, buf.size(), &actual));
      ASSERT_EQ(contents.size(), actual);
      ASSERT_EQ(0, memcmp(buf.data(), contents.data(), contents.size()));
    }
  }
  root.Reset();
  ASSERT_EQ(Error::kOk, fs->Unmount());
  FsckReport report = Fsck(disk.get());
  EXPECT_TRUE(report.consistent) << (report.problems.empty() ? ""
                                                             : report.problems[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace oskit::fs
