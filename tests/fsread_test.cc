// fsread tests: the independent boot-time reader must agree with the full
// filesystem component on the same on-disk image (format cross-check).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/fsread/fsread.h"

namespace oskit {
namespace {

class FsReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = MemBlkIo::Create(8 * 1024 * 1024, 512);
    ASSERT_EQ(Error::kOk, fs::Mkfs(disk_.get()));
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk_.get(), &raw));
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));

    // Populate: /kernel, /boot/modules/init.kvm, /boot/readme.
    ComPtr<File> f;
    ASSERT_EQ(Error::kOk, root->Create("kernel", 0755, f.Receive()));
    kernel_data_.resize(300 * 1024);
    for (size_t i = 0; i < kernel_data_.size(); ++i) {
      kernel_data_[i] = static_cast<uint8_t>(i * 13 + (i >> 8));
    }
    size_t actual = 0;
    ASSERT_EQ(Error::kOk,
              f->Write(kernel_data_.data(), 0, kernel_data_.size(), &actual));

    ASSERT_EQ(Error::kOk, root->Mkdir("boot", 0755));
    ComPtr<File> bootf;
    ASSERT_EQ(Error::kOk, root->Lookup("boot", bootf.Receive()));
    ComPtr<Dir> boot = ComPtr<Dir>::FromQuery(bootf.get());
    ASSERT_EQ(Error::kOk, boot->Mkdir("modules", 0755));
    ComPtr<File> modf;
    ASSERT_EQ(Error::kOk, boot->Lookup("modules", modf.Receive()));
    ComPtr<Dir> modules = ComPtr<Dir>::FromQuery(modf.get());
    ComPtr<File> init;
    ASSERT_EQ(Error::kOk, modules->Create("init.kvm", 0644, init.Receive()));
    ASSERT_EQ(Error::kOk, init->Write("bytecode!", 0, 9, &actual));
    ComPtr<File> readme;
    ASSERT_EQ(Error::kOk, boot->Create("readme", 0644, readme.Receive()));
    ASSERT_EQ(Error::kOk, readme->Write("docs", 0, 4, &actual));

    f.Reset();
    init.Reset();
    readme.Reset();
    modules.Reset();
    modf.Reset();
    boot.Reset();
    bootf.Reset();
    root.Reset();
    ASSERT_EQ(Error::kOk, fs->Unmount());
  }

  ComPtr<MemBlkIo> disk_;
  std::vector<uint8_t> kernel_data_;
};

TEST_F(FsReadTest, ReadsLargeFileExactly) {
  std::vector<uint8_t> data;
  ASSERT_EQ(Error::kOk, fsread::ReadFile(disk_.get(), "/kernel", &data));
  ASSERT_EQ(kernel_data_.size(), data.size());
  EXPECT_EQ(0, memcmp(kernel_data_.data(), data.data(), data.size()));
}

TEST_F(FsReadTest, WalksNestedPaths) {
  std::vector<uint8_t> data;
  ASSERT_EQ(Error::kOk,
            fsread::ReadFile(disk_.get(), "/boot/modules/init.kvm", &data));
  EXPECT_EQ("bytecode!", std::string(data.begin(), data.end()));
  // Leading/duplicate slashes are tolerated.
  ASSERT_EQ(Error::kOk, fsread::ReadFile(disk_.get(), "//boot//readme", &data));
  EXPECT_EQ("docs", std::string(data.begin(), data.end()));
}

TEST_F(FsReadTest, StatAndErrors) {
  uint64_t ino = 0;
  uint64_t size = 0;
  bool is_dir = false;
  ASSERT_EQ(Error::kOk, fsread::StatPath(disk_.get(), "/boot", &ino, &size, &is_dir));
  EXPECT_TRUE(is_dir);
  ASSERT_EQ(Error::kOk,
            fsread::StatPath(disk_.get(), "/kernel", &ino, &size, &is_dir));
  EXPECT_FALSE(is_dir);
  EXPECT_EQ(kernel_data_.size(), size);

  std::vector<uint8_t> data;
  EXPECT_EQ(Error::kNoEnt, fsread::ReadFile(disk_.get(), "/absent", &data));
  EXPECT_EQ(Error::kIsDir, fsread::ReadFile(disk_.get(), "/boot", &data));
  EXPECT_EQ(Error::kNotDir,
            fsread::ReadFile(disk_.get(), "/kernel/inside", &data));
}

TEST_F(FsReadTest, ListsDirectory) {
  std::vector<std::string> names;
  ASSERT_EQ(Error::kOk, fsread::ListDir(disk_.get(), "/boot", &names));
  // ".", "..", "modules", "readme"
  EXPECT_EQ(4u, names.size());
  bool saw_modules = false;
  bool saw_readme = false;
  for (const std::string& n : names) {
    saw_modules |= n == "modules";
    saw_readme |= n == "readme";
  }
  EXPECT_TRUE(saw_modules);
  EXPECT_TRUE(saw_readme);
}

TEST_F(FsReadTest, RejectsGarbageDisk) {
  auto blank = MemBlkIo::Create(1024 * 1024, 512);
  std::vector<uint8_t> data;
  EXPECT_EQ(Error::kCorrupt, fsread::ReadFile(blank.get(), "/x", &data));
}

}  // namespace
}  // namespace oskit
