// Tests for the paper's future-work items implemented in this reproduction:
// the high-level allocator (§6.2.10) and the local kernel monitor (§3.5),
// plus the AMM+paging composition (§3.3's "management of processes' address
// spaces" use case) and the Linux-idiom baseline stack under packet loss.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "src/amm/amm.h"
#include "src/kern/kmon.h"
#include "src/libc/quickalloc.h"
#include "src/libc/string.h"
#include "src/testbed/testbed.h"

namespace oskit {
namespace {

// ---------------------------------------------------------------------------
// QuickAlloc (§6.2.10 deficiency 2, implemented)
// ---------------------------------------------------------------------------

TEST(QuickAllocTest, SmallBlocksComeFromSlabs) {
  libc::QuickAlloc quick(libc::HostMemEnv());
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) {
    void* p = quick.Alloc(64);
    ASSERT_NE(nullptr, p);
    memset(p, 0xcc, 64);
    blocks.push_back(p);
  }
  EXPECT_EQ(1000u, quick.fast_hits());
  // 32 KB slabs of 64-byte blocks: ~2 refills for 1000 blocks.
  EXPECT_LE(quick.slab_refills(), 3u);
  for (void* p : blocks) {
    quick.Free(p, 64);
  }
  // Freed blocks are recycled without new slabs.
  uint64_t refills = quick.slab_refills();
  for (int i = 0; i < 1000; ++i) {
    blocks[i] = quick.Alloc(64);
  }
  EXPECT_EQ(refills, quick.slab_refills());
  for (void* p : blocks) {
    quick.Free(p, 64);
  }
}

TEST(QuickAllocTest, NoOverlapAcrossClasses) {
  libc::QuickAlloc quick(libc::HostMemEnv());
  struct Block {
    uint8_t* p;
    size_t size;
  };
  std::vector<Block> live;
  const size_t sizes[] = {16, 48, 100, 200, 500, 1000, 2000};
  for (int i = 0; i < 500; ++i) {
    size_t size = sizes[i % 7];
    auto* p = static_cast<uint8_t*>(quick.Alloc(size));
    ASSERT_NE(nullptr, p);
    for (const Block& other : live) {
      ASSERT_TRUE(p + size <= other.p || other.p + other.size <= p)
          << "overlapping allocation";
    }
    memset(p, i & 0xff, size);
    live.push_back({p, size});
  }
  for (const Block& block : live) {
    quick.Free(block.p, block.size);
  }
}

TEST(QuickAllocTest, LargeBlocksPassThrough) {
  libc::QuickAlloc quick(libc::HostMemEnv());
  void* big = quick.Alloc(100000);
  ASSERT_NE(nullptr, big);
  EXPECT_EQ(1u, quick.large_passthrough());
  quick.Free(big, 100000);
}

TEST(QuickAllocTest, LayersUnderMallocArena) {
  // The §6.2.10 suggestion verbatim: the conventional allocator layered on
  // the low-level one, underneath the C library's malloc.
  libc::QuickAlloc quick(libc::HostMemEnv());
  libc::MallocArena arena(quick.AsMemEnv());
  auto* s = static_cast<char*>(arena.Malloc(32));
  libc::Strcpy(s, "layered");
  auto* grown = static_cast<char*>(arena.Realloc(s, 512));
  EXPECT_STREQ("layered", grown);
  arena.Free(grown);
  EXPECT_EQ(0u, arena.blocks_in_use());
  EXPECT_GT(quick.fast_hits(), 0u);
}

// ---------------------------------------------------------------------------
// kmon (§3.5 future work, implemented)
// ---------------------------------------------------------------------------

class KmonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{});
  }

  // Types a command line into the console as if an operator did.
  void Type(const std::string& line) {
    machine_->console_uart().InjectRx(line.data(), line.size());
    machine_->console_uart().InjectRx("\r", 1);
  }

  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
};

TEST_F(KmonTest, InspectsRegistersAndMemory) {
  KernelMonitor kmon(kernel_.get(), &kernel_->console());
  auto* mem = static_cast<uint8_t*>(machine_->phys().PtrAt(0x2000));
  mem[0] = 0xab;
  mem[1] = 0xcd;

  Type("r");
  Type("m 0x2000 2");
  Type("w 0x2000 0x7f");
  Type("bogus");
  Type("c");

  bool returned = false;
  sim_.Spawn("kmon", [&] {
    TrapFrame frame;
    frame.trapno = kTrapBreakpoint;
    frame.pc = 0x1234;
    frame.gprs[0] = 0xfeed;
    kmon.Enter(frame);
    returned = true;
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(returned);
  std::string out = machine_->console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("pc=0x1234"));
  EXPECT_NE(std::string::npos, out.find("r0=0xfeed"));
  EXPECT_NE(std::string::npos, out.find("ab cd"));
  EXPECT_NE(std::string::npos, out.find("unknown command 'bogus'"));
  EXPECT_EQ(0x7f, mem[0]);  // the poke landed
  EXPECT_EQ(5u, kmon.commands_handled());
  EXPECT_FALSE(kmon.halted());
}

TEST_F(KmonTest, CatchesTrapsWhenAttached) {
  KernelMonitor kmon(kernel_.get(), &kernel_->console());
  kmon.AttachDefaultTraps();
  Type("r");
  Type("s");
  bool resumed = false;
  sim_.Spawn("faulting-kernel", [&] {
    machine_->cpu().RaiseTrap(kTrapDivide);
    resumed = true;  // the monitor continued us
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(resumed);
  EXPECT_TRUE(kmon.step_requested());
  std::string out = machine_->console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("stopped at trap 0"));
}

TEST_F(KmonTest, TranslatesThroughPageDirectory) {
  KernelMonitor kmon(kernel_.get(), &kernel_->console());
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk, pd.MapPage(0x00400000, 0x00123000, kPteWritable));
  kmon.SetPageDirectory(&pd);
  Type("t 0x400010");
  Type("t 0x999000");
  Type("c");
  sim_.Spawn("kmon", [&] {
    TrapFrame frame;
    kmon.Enter(frame);
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  std::string out = machine_->console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("pa 0x123010 rw"));
  EXPECT_NE(std::string::npos, out.find("not mapped"));
}

// ---------------------------------------------------------------------------
// AMM + paging composition: a process address space (§3.3's use case)
// ---------------------------------------------------------------------------

TEST(AddressSpaceTest, AmmPlansAndPagingRealizes) {
  Simulation sim;
  Machine machine(&sim, Machine::Config{});
  KernelEnv kernel(&machine, MultiBootInfo{});

  // The AMM manages the process's virtual layout; the LMM provides frames;
  // the page directory realizes the mapping.
  Amm aspace(0x00100000, 0x40000000);  // 1 MB .. 1 GB user range
  PageDirectory pd(&kernel);

  auto map_region = [&](uint64_t size, uint32_t amm_flags, uint64_t* out_va) {
    uint64_t va = 0x00100000;
    ASSERT_EQ(Error::kOk, aspace.Allocate(&va, size, amm_flags, /*align=*/12));
    for (uint64_t off = 0; off < size; off += kPageSize) {
      void* frame = kernel.lmm().AllocPage(0);
      ASSERT_NE(nullptr, frame);
      uint32_t pa = static_cast<uint32_t>(machine.phys().AddrOf(frame));
      ASSERT_EQ(Error::kOk, pd.MapPage(static_cast<uint32_t>(va + off), pa,
                                       kPteWritable | kPteUser));
    }
    *out_va = va;
  };

  uint64_t text_va = 0;
  uint64_t heap_va = 0;
  map_region(16 * kPageSize, 1 /*text*/, &text_va);
  map_region(64 * kPageSize, 2 /*heap*/, &heap_va);
  EXPECT_NE(text_va, heap_va);
  aspace.AuditOrDie();

  // Both the plan and the realization agree, and distinct virtual pages hit
  // distinct physical frames.
  std::set<uint32_t> frames;
  for (uint64_t off = 0; off < 64 * kPageSize; off += kPageSize) {
    uint32_t pa = 0;
    uint32_t flags = 0;
    ASSERT_EQ(Error::kOk,
              pd.Translate(static_cast<uint32_t>(heap_va + off), &pa, &flags));
    EXPECT_TRUE(frames.insert(pa & ~(kPageSize - 1)).second);
  }
  // Unmapped gap between regions faults.
  uint64_t start = 0;
  uint64_t size = 0;
  uint32_t flags32 = 0;
  ASSERT_EQ(Error::kOk, aspace.Lookup(heap_va, &start, &size, &flags32));
  EXPECT_EQ(2u, flags32);
}

// ---------------------------------------------------------------------------
// Baseline Linux-idiom stack: go-back-N recovery under loss
// ---------------------------------------------------------------------------

TEST(LinuxStackFaultTest, RecoversFromLossViaRetransmission) {
  EthernetWire::Config wire;
  wire.loss_percent = 10;
  wire.fault_seed = 5;
  testbed::World world(wire);
  world.AddHost("rx", testbed::NetConfig::kNativeLinux);
  world.AddHost("tx", testbed::NetConfig::kNativeLinux);

  constexpr size_t kTotal = 96 * 1024;
  size_t received = 0;
  uint64_t checksum = 0;
  world.sim().Spawn("rx", [&] {
    ComPtr<Socket> listener = world.host(0).MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, 5001}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    std::vector<uint8_t> buf(8192);
    size_t n = 0;
    while (Ok(conn->Recv(buf.data(), buf.size(), &n)) && n > 0) {
      for (size_t i = 0; i < n; ++i) {
        checksum = checksum * 131 + buf[i];
      }
      received += n;
    }
  });
  uint64_t expect_checksum = 0;
  world.sim().Spawn("tx", [&] {
    ComPtr<Socket> conn = world.host(1).MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{world.host(0).addr, 5001}));
    std::vector<uint8_t> buf(4096);
    size_t sent = 0;
    uint8_t v = 0;
    while (sent < kTotal) {
      for (auto& byte : buf) {
        byte = v++;
        expect_checksum = expect_checksum * 131 + byte;
      }
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Send(buf.data(), buf.size(), &n));
      sent += n;
    }
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world.RunToCompletion();
  EXPECT_EQ(kTotal, received);
  EXPECT_EQ(expect_checksum, checksum);
  EXPECT_GT(world.host(1).linux_stack->counters().tcp_retransmits, 0u);
}

}  // namespace
}  // namespace oskit
