// HTTP component tests: the incremental RequestParser/ResponseParser unit
// behavior (framing, keep-alive rules, Transfer-Encoding rejection, limits),
// a seeded property harness proving parsing is segmentation-independent —
// every random request stream parses byte-identically whether it arrives in
// one segment, one byte at a time, or torn at random TCP boundaries — and an
// in-world integration run of the selector-driven http::Server (static FFS
// content, a dynamic route, pipelining, 404s, clean quit-path drain).
//
// Seeds: the property suite runs over five fixed seeds.  Setting
// PROPERTY_SEED=<n> narrows the run to that seed, so a CI failure line
// ("rerun: PROPERTY_SEED=...") reproduces directly.

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/http/http.h"
#include "src/http/server.h"
#include "src/testbed/testbed.h"

namespace oskit::http {
namespace {

using oskit::Rng;
using oskit::VirtualSwitch;
using oskit::testbed::Host;
using oskit::testbed::NetConfig;
using oskit::testbed::World;

// ---------------------------------------------------------------------------
// RequestParser units
// ---------------------------------------------------------------------------

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  const char wire[] =
      "GET /index.html?q=1 HTTP/1.1\r\n"
      "Host: www\r\n"
      "X-Trace: abc\r\n"
      "\r\n";
  EXPECT_EQ(ParseStatus::kRequest, parser.Feed(wire, sizeof(wire) - 1));
  ASSERT_TRUE(parser.HasRequest());
  Request req = parser.TakeRequest();
  EXPECT_EQ("GET", req.method);
  EXPECT_EQ("/index.html?q=1", req.target);
  EXPECT_EQ(1, req.version_major);
  EXPECT_EQ(1, req.version_minor);
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
  ASSERT_EQ(2u, req.headers.size());
  // Header lookup is case-insensitive.
  ASSERT_NE(nullptr, req.Header("host"));
  EXPECT_EQ("www", *req.Header("HOST"));
  EXPECT_EQ(nullptr, req.Header("cookie"));
  EXPECT_EQ(0u, parser.pending_bytes());
  EXPECT_EQ(ParseStatus::kNeedMore, parser.status());
}

TEST(RequestParserTest, ContentLengthFramesTheBody) {
  RequestParser parser;
  // The body is opaque octets: embedded CRLFs must not confuse framing.
  std::string body = "a=1\r\n\r\nb=2\0c";
  body.push_back('\0');
  std::string wire = "POST /submit HTTP/1.1\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;
  // Body still in flight: no request yet.
  EXPECT_EQ(ParseStatus::kNeedMore,
            parser.Feed(wire.data(), wire.size() - 3));
  EXPECT_EQ(ParseStatus::kRequest,
            parser.Feed(wire.data() + wire.size() - 3, 3));
  Request req = parser.TakeRequest();
  EXPECT_EQ("POST", req.method);
  EXPECT_EQ(body, req.body);
}

TEST(RequestParserTest, PipelinedRequestsPopInArrivalOrder) {
  RequestParser parser;
  const char wire[] =
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(ParseStatus::kRequest, parser.Feed(wire, sizeof(wire) - 1));
  EXPECT_EQ("/a", parser.TakeRequest().target);
  EXPECT_EQ("/b", parser.TakeRequest().target);
  Request last = parser.TakeRequest();
  EXPECT_EQ("/c", last.target);
  EXPECT_FALSE(last.keep_alive);
  EXPECT_FALSE(parser.HasRequest());
}

TEST(RequestParserTest, KeepAliveRulesPerVersion) {
  struct Case {
    const char* wire;
    bool keep_alive;
  } cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.wire);
    RequestParser parser;
    ASSERT_EQ(ParseStatus::kRequest, parser.Feed(c.wire, std::strlen(c.wire)));
    EXPECT_EQ(c.keep_alive, parser.TakeRequest().keep_alive);
  }
}

TEST(RequestParserTest, MalformedStreamsErrorAndStick) {
  struct Case {
    const char* wire;
    const char* error;
  } cases[] = {
      {"no-spaces-here\r\n\r\n", "malformed request line"},
      {"GET /a b HTTP/1.1\r\n\r\n", "malformed request line"},
      {"G<>T / HTTP/1.1\r\n\r\n", "malformed method"},
      {"GET / HTTPX/1.1\r\n\r\n", "malformed HTTP version"},
      {"GET / HTTP/2.0\r\n\r\n", "unsupported HTTP major version"},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       "Transfer-Encoding not supported"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.wire);
    RequestParser parser;
    EXPECT_EQ(ParseStatus::kError, parser.Feed(c.wire, std::strlen(c.wire)));
    EXPECT_STREQ(c.error, parser.error());
    // The error is sticky: a malformed stream has no recoverable framing.
    EXPECT_EQ(ParseStatus::kError, parser.Feed("GET / HTTP/1.1\r\n\r\n", 18));
    EXPECT_FALSE(parser.HasRequest());
    // Reset recovers the parser for a fresh connection.
    parser.Reset();
    EXPECT_EQ(ParseStatus::kRequest, parser.Feed("GET / HTTP/1.1\r\n\r\n", 18));
  }
}

TEST(RequestParserTest, LimitsAreEnforced) {
  RequestParser::Limits limits;
  limits.max_request_line = 64;
  limits.max_header_bytes = 256;
  limits.max_headers = 4;
  limits.max_body = 128;

  {
    // Request-line overflow is reportable before the CRLF even arrives.
    RequestParser parser(limits);
    std::string line = "GET /" + std::string(100, 'a');
    EXPECT_EQ(ParseStatus::kError, parser.Feed(line.data(), line.size()));
    EXPECT_STREQ("request line too long", parser.error());
  }
  {
    RequestParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 6; ++i) {
      wire += "X-H" + std::to_string(i) + ": v\r\n";
    }
    wire += "\r\n";
    EXPECT_EQ(ParseStatus::kError, parser.Feed(wire.data(), wire.size()));
    EXPECT_STREQ("too many headers", parser.error());
  }
  {
    RequestParser parser(limits);
    std::string wire = "GET / HTTP/1.1\r\nX-Pad: " + std::string(300, 'p') +
                       "\r\n\r\n";
    EXPECT_EQ(ParseStatus::kError, parser.Feed(wire.data(), wire.size()));
    EXPECT_STREQ("header block too large", parser.error());
  }
  {
    // An oversized Content-Length claim is refused without buffering the
    // body.
    RequestParser parser(limits);
    const char wire[] = "POST / HTTP/1.1\r\nContent-Length: 129\r\n\r\n";
    EXPECT_EQ(ParseStatus::kError, parser.Feed(wire, sizeof(wire) - 1));
    EXPECT_STREQ("body too large", parser.error());
  }
}

// ---------------------------------------------------------------------------
// ResponseParser + head formatting
// ---------------------------------------------------------------------------

TEST(ResponseParserTest, ParsesPipelinedResponses) {
  std::string wire = FormatResponseHead(200, "OK", 5, "text/plain", true) +
                     "hello" +
                     FormatResponseHead(404, StatusReason(404), 3,
                                        "text/plain", false) +
                     "gon";
  ResponseParser parser;
  EXPECT_EQ(ParseStatus::kRequest, parser.Feed(wire.data(), wire.size()));
  Response first = parser.TakeResponse();
  EXPECT_EQ(200, first.status);
  EXPECT_EQ("hello", first.body);
  EXPECT_TRUE(first.keep_alive);
  ASSERT_NE(nullptr, first.Header("content-length"));
  EXPECT_EQ("5", *first.Header("Content-Length"));
  Response second = parser.TakeResponse();
  EXPECT_EQ(404, second.status);
  EXPECT_EQ("Not Found", second.reason);
  EXPECT_EQ("gon", second.body);
  EXPECT_FALSE(second.keep_alive);
}

TEST(ResponseParserTest, MalformedStatusLineErrors) {
  ResponseParser parser;
  const char wire[] = "HTTP/1.1 2xx Weird\r\n\r\n";
  EXPECT_EQ(ParseStatus::kError, parser.Feed(wire, sizeof(wire) - 1));
  EXPECT_STREQ("malformed status code", parser.error());
}

// ---------------------------------------------------------------------------
// Property: parsing is segmentation-independent
// ---------------------------------------------------------------------------

// What a parser extracted from one complete stream: every completed request
// plus the terminal state.
struct ParseOutcome {
  std::vector<Request> requests;
  ParseStatus final_status = ParseStatus::kNeedMore;
  std::string error;
  size_t pending = 0;
};

bool SameRequest(const Request& a, const Request& b) {
  return a.method == b.method && a.target == b.target &&
         a.version_major == b.version_major &&
         a.version_minor == b.version_minor && a.headers == b.headers &&
         a.body == b.body && a.keep_alive == b.keep_alive;
}

// Feeds `wire` in segments whose sizes come from `next_len`, draining
// completed requests as they appear (as the server does).
ParseOutcome ParseSegmented(const std::string& wire,
                            const std::function<size_t(size_t remaining)>&
                                next_len) {
  RequestParser parser;
  ParseOutcome out;
  size_t off = 0;
  while (off < wire.size()) {
    size_t n = next_len(wire.size() - off);
    parser.Feed(wire.data() + off, n);
    off += n;
    while (parser.HasRequest()) {
      out.requests.push_back(parser.TakeRequest());
    }
  }
  out.final_status = parser.status();
  out.error = parser.error();
  out.pending = parser.pending_bytes();
  return out;
}

// A random well-formed request appended to `wire`; bodies are arbitrary
// octets (embedded CRLFs included) framed by Content-Length.
void AppendRandomRequest(Rng& rng, std::string* wire) {
  static const char* const kMethods[] = {"GET", "HEAD", "POST", "PUT"};
  const char* method = kMethods[rng.Below(4)];
  std::string target = "/r";
  size_t target_len = rng.Range(1, 40);
  for (size_t i = 0; i < target_len; ++i) {
    target += static_cast<char>('a' + rng.Below(26));
  }
  if (rng.Percent(30)) {
    target += "?k=" + std::to_string(rng.Below(1000));
  }
  *wire += std::string(method) + " " + target + " HTTP/1." +
           (rng.Percent(20) ? "0" : "1") + "\r\n";
  size_t header_count = rng.Below(5);
  for (size_t i = 0; i < header_count; ++i) {
    std::string value;
    size_t value_len = rng.Below(30);
    for (size_t j = 0; j < value_len; ++j) {
      value += static_cast<char>(' ' + rng.Below(94));  // printable
    }
    *wire += "X-R" + std::to_string(i) + ": " + value + "\r\n";
  }
  if (rng.Percent(15)) {
    *wire += "Connection: close\r\n";
  }
  if (std::strcmp(method, "POST") == 0 || std::strcmp(method, "PUT") == 0) {
    std::string body;
    size_t body_len = rng.Below(2000);
    for (size_t i = 0; i < body_len; ++i) {
      body += static_cast<char>(rng.Next());  // any octet, CR/LF included
    }
    *wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    *wire += body;
  } else {
    *wire += "\r\n";
  }
}

// A stream-terminating flaw: the parser must end in the same state no
// matter how the bytes were segmented.
void AppendMalformedTail(Rng& rng, std::string* wire) {
  switch (rng.Below(4)) {
    case 0:
      *wire += "no-spaces-here\r\n\r\n";
      break;
    case 1:
      *wire += "GET /x HTTP/3.0\r\n\r\n";
      break;
    case 2:
      *wire += "POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
      break;
    default: {
      // Truncated request: ends mid-header, final state stays kNeedMore.
      std::string full;
      AppendRandomRequest(rng, &full);
      *wire += full.substr(0, full.size() - rng.Range(1, full.size()));
      break;
    }
  }
}

class HttpPropTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HttpPropTest, TornFeedsMatchFlatReference) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr size_t kCases = 300;

  for (size_t case_i = 0; case_i < kCases; ++case_i) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << case_i << " (rerun: PROPERTY_SEED=" << seed
                 << " ./http_test)");

    std::string wire;
    size_t request_count = rng.Range(1, 6);
    for (size_t i = 0; i < request_count; ++i) {
      AppendRandomRequest(rng, &wire);
    }
    bool malformed = rng.Percent(30);
    if (malformed) {
      AppendMalformedTail(rng, &wire);
    }

    // Reference: the whole stream in one segment.
    ParseOutcome flat =
        ParseSegmented(wire, [](size_t remaining) { return remaining; });
    if (!malformed) {
      ASSERT_EQ(request_count, flat.requests.size());
      ASSERT_EQ(ParseStatus::kNeedMore, flat.final_status);
    }

    // Torn at every byte, and torn at random TCP-segment boundaries: both
    // must extract byte-identical requests and land in the same final state.
    ParseOutcome torn = ParseSegmented(wire, [](size_t) { return size_t{1}; });
    ParseOutcome random_seg = ParseSegmented(wire, [&rng](size_t remaining) {
      return std::min(remaining, size_t{1} + rng.Below(1460));
    });

    for (const ParseOutcome* out : {&torn, &random_seg}) {
      ASSERT_EQ(flat.requests.size(), out->requests.size());
      for (size_t i = 0; i < flat.requests.size(); ++i) {
        ASSERT_TRUE(SameRequest(flat.requests[i], out->requests[i]))
            << "request " << i << " differs";
      }
      ASSERT_EQ(flat.final_status, out->final_status);
      ASSERT_EQ(flat.error, out->error);
      ASSERT_EQ(flat.pending, out->pending);
    }
    if (::testing::Test::HasFailure()) {
      break;
    }
  }
}

// PROPERTY_SEED=<n> narrows the sweep to one reproducing seed.
std::vector<uint64_t> PropertySeeds() {
  if (const char* env = std::getenv("PROPERTY_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  return {0x477b0001, 0x477b0002, 0x477b0003, 0x477b0004, 0x477b0005};
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpPropTest,
                         ::testing::ValuesIn(PropertySeeds()));

// ---------------------------------------------------------------------------
// In-world server integration
// ---------------------------------------------------------------------------

constexpr uint16_t kPort = 8080;

// Blocking request/response helper: sends `wire`, reads until `expected`
// further responses have parsed and appended to `out`.
bool Exchange(const ComPtr<Socket>& sock, const std::string& wire,
              size_t expected, std::vector<Response>* out) {
  size_t sent = 0;
  if (!Ok(sock->Send(wire.data(), wire.size(), &sent)) ||
      sent != wire.size()) {
    return false;
  }
  const size_t target = out->size() + expected;
  ResponseParser parser;
  char buf[4096];
  while (out->size() < target) {
    size_t got = 0;
    Error err = sock->Recv(buf, sizeof(buf), &got);
    if (!Ok(err) || got == 0) {
      return false;
    }
    if (parser.Feed(buf, got) == ParseStatus::kError) {
      return false;
    }
    while (parser.HasResponse()) {
      out->push_back(parser.TakeResponse());
    }
  }
  return true;
}

TEST(HttpServerWorldTest, ServesStaticDynamicAndDrainsOnQuit) {
  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 100ull * 1000 * 1000;
  sw.port.propagation_ns = 5000;
  World world(sw);
  Host& server = world.AddHost("www", NetConfig::kOskit);
  Host& client = world.AddHost("client", NetConfig::kNativeBsd);

  const std::string hello(1000, 'h');
  bool listening = false;
  bool client_done = false;
  std::unique_ptr<Server> httpd;

  world.sim().Spawn("www/httpd", [&] {
    auto disk = MemBlkIo::Create(2 * 1024 * 1024, 512);
    ASSERT_TRUE(Ok(fs::Mkfs(disk.get())));
    fs::MountOptions mo;
    mo.trace = &server.trace;
    ComPtr<FileSystem> ffs;
    ASSERT_TRUE(Ok(fs::Offs::Mount(disk.get(), mo, ffs.Receive())));
    ComPtr<Dir> root;
    ASSERT_TRUE(Ok(ffs->GetRoot(root.Receive())));
    ComPtr<File> f;
    ASSERT_TRUE(Ok(root->Create("hello.txt", 0644, f.Receive())));
    size_t n = 0;
    ASSERT_TRUE(Ok(f->Write(hello.data(), 0, hello.size(), &n)));

    Server::Config cfg;
    cfg.bind = SockAddr{kInetAny, kPort};
    cfg.trace = &server.trace;
    cfg.now = [&world] { return world.sim().clock().Now(); };
    httpd = std::make_unique<Server>(server.socket_factory,
                                     server.stack->CreateSelector(), root, cfg);
    httpd->AddDynRoute("/echo", [](const Request& req, std::string* body,
                                   std::string* content_type) {
      *body = req.method + " " + req.target;
      *content_type = "text/plain";
      return 200;
    });
    ASSERT_TRUE(Ok(httpd->Start()));
    listening = true;
    httpd->Run();
  });

  world.sim().Spawn("client", [&] {
    world.sim().PollWait([&] { return listening; });
    SimTime rtt = 0;
    client.stack->Ping(server.addr, kNsPerSec, &rtt);

    ComPtr<Socket> sock = client.MakeSocket(SockType::kStream);
    ASSERT_TRUE(Ok(sock->Connect(SockAddr{server.addr, kPort})));

    // Keep-alive static GETs on one connection.
    std::vector<Response> responses;
    ASSERT_TRUE(Exchange(sock, "GET /hello.txt HTTP/1.1\r\n\r\n", 1,
                         &responses));
    // A pipelined burst in one segment: static miss + dyn route.
    ASSERT_TRUE(Exchange(sock,
                         "GET /missing HTTP/1.1\r\n\r\n"
                         "GET /echo?x=7 HTTP/1.1\r\n\r\n",
                         2, &responses));
    ASSERT_EQ(3u, responses.size());
    EXPECT_EQ(200, responses[0].status);
    EXPECT_EQ(hello, responses[0].body);
    EXPECT_EQ(404, responses[1].status);
    EXPECT_EQ(200, responses[2].status);
    EXPECT_EQ("GET /echo?x=7", responses[2].body);

    // HEAD on its own close-delimited connection: the head must announce
    // the full Content-Length with zero body bytes after the blank line.
    ComPtr<Socket> head = client.MakeSocket(SockType::kStream);
    ASSERT_TRUE(Ok(head->Connect(SockAddr{server.addr, kPort})));
    size_t sent = 0;
    const char head_wire[] =
        "HEAD /hello.txt HTTP/1.1\r\nConnection: close\r\n\r\n";
    ASSERT_TRUE(Ok(head->Send(head_wire, sizeof(head_wire) - 1, &sent)));
    std::string head_raw;
    char raw[1024];
    for (;;) {
      size_t got = 0;
      if (!Ok(head->Recv(raw, sizeof(raw), &got)) || got == 0) {
        break;  // EOF: close-delimited
      }
      head_raw.append(raw, got);
    }
    head.Reset();
    EXPECT_EQ(0u, head_raw.find("HTTP/1.1 200"));
    EXPECT_NE(std::string::npos,
              head_raw.find("Content-Length: " +
                            std::to_string(hello.size())));
    // Nothing after the header block.
    size_t blank = head_raw.find("\r\n\r\n");
    ASSERT_NE(std::string::npos, blank);
    EXPECT_EQ(head_raw.size(), blank + 4);

    // A malformed request gets answered and the connection closed.
    ComPtr<Socket> bad = client.MakeSocket(SockType::kStream);
    ASSERT_TRUE(Ok(bad->Connect(SockAddr{server.addr, kPort})));
    std::vector<Response> bad_responses;
    ASSERT_TRUE(Exchange(bad, "no-spaces-here\r\n\r\n", 1, &bad_responses));
    EXPECT_EQ(400, bad_responses[0].status);
    bad.Reset();

    // Quit path: the server answers, stops accepting, drains, and Run
    // returns — RunToCompletion below is the no-hang proof.
    std::vector<Response> quit_responses;
    ASSERT_TRUE(Exchange(sock,
                         "GET /__quit HTTP/1.1\r\nConnection: close\r\n\r\n",
                         1, &quit_responses));
    EXPECT_EQ(200, quit_responses[0].status);
    sock.Reset();
    client_done = true;
  });

  world.RunToCompletion(60 * kNsPerSec);
  ASSERT_TRUE(client_done);

  // The malformed stream never parses into a request, but its 400 is a
  // response: 5 parsed requests, 6 responses.
  EXPECT_EQ(5u, httpd->requests());
  EXPECT_EQ(6u, httpd->responses());
  EXPECT_EQ(0u, httpd->open_conns());
  EXPECT_TRUE(httpd->stopping());

  // The attribution spans registered in the host's environment and closed
  // one request span per response; the pipelined burst was counted.
  EXPECT_EQ(6u, server.trace.registry.Value("http.span.request.count"));
  EXPECT_GE(server.trace.registry.Value("http.span.fs_read.count"), 2u);
  EXPECT_EQ(1u, server.trace.registry.Value("http.span.dyn.count"));
  EXPECT_GE(server.trace.registry.Value("http.requests.pipelined"), 1u);
  EXPECT_EQ(1u, server.trace.registry.Value("http.errors.bad_request"));
  EXPECT_EQ(1u, server.trace.registry.Value("http.errors.not_found"));

  // The static body went out zero-copy: the one full GET of /hello.txt was
  // staged as a sendfile chunk, every body byte was queued straight from the
  // file's cached blocks (net.tx.sendfile_bytes), and none of them fell back
  // to the copy path.
  EXPECT_EQ(1u, server.trace.registry.Value("http.sendfile_responses"));
  EXPECT_EQ(hello.size(),
            server.trace.registry.Value("net.tx.sendfile_bytes"));
  EXPECT_EQ(0u, server.trace.registry.Value("net.tx.sendfile_fallback_bytes"));
  httpd.reset();
}

}  // namespace
}  // namespace oskit::http
