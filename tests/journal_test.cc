// Write-ahead journal tests: on-disk format and replay edge cases against a
// RAM device (torn commits, idempotent redo, wraparound), then end-to-end
// crash recovery through the full stack — IDE driver, volatile disk write
// cache, seeded power cuts — including the ablation run that shows what the
// journal is for (an unjournaled volume corrupts under the same cuts).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/com/memblkio.h"
#include "src/dev/linux/linux_ide.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/fs/journal.h"

namespace oskit::fs {
namespace {

// Reads the on-disk superblock the way fsread does: straight off block 0.
SuperBlock ReadSuper(BlkIo* device) {
  std::vector<uint8_t> block(kBlockSize);
  size_t actual = 0;
  EXPECT_EQ(Error::kOk, device->Read(block.data(), 0, kBlockSize, &actual));
  SuperBlock sb;
  std::memcpy(&sb, block.data(), sizeof(sb));
  return sb;
}

void WriteRawBlock(BlkIo* device, uint32_t block, const void* data) {
  size_t actual = 0;
  ASSERT_EQ(Error::kOk,
            device->Write(data, static_cast<off_t64>(block) * kBlockSize,
                          kBlockSize, &actual));
}

std::vector<uint8_t> ReadRawBlock(BlkIo* device, uint32_t block) {
  std::vector<uint8_t> data(kBlockSize);
  size_t actual = 0;
  EXPECT_EQ(Error::kOk,
            device->Read(data.data(), static_cast<off_t64>(block) * kBlockSize,
                         kBlockSize, &actual));
  return data;
}

TEST(JournalFormatTest, MkfsSizesJournalAutomatically) {
  auto disk = MemBlkIo::Create(4 * 1024 * 1024, 512);
  ASSERT_EQ(Error::kOk, Mkfs(disk.get()));
  SuperBlock sb = ReadSuper(disk.get());
  EXPECT_GE(sb.journal_blocks, kMinJournalBlocks);
  EXPECT_GE(sb.journal_start, sb.itable_start);
  EXPECT_LE(sb.journal_start + sb.journal_blocks, sb.data_start);

  // Explicit zero formats the ablation volume.
  MkfsOptions none;
  none.journal_blocks = 0;
  ASSERT_EQ(Error::kOk, Mkfs(disk.get(), none));
  EXPECT_EQ(0u, ReadSuper(disk.get()).journal_blocks);

  // A region too small to hold even one transaction is rejected.
  MkfsOptions tiny;
  tiny.journal_blocks = 2;
  EXPECT_EQ(Error::kInval, Mkfs(disk.get(), tiny));
}

// Fixture for the writer/replay format tests: a freshly journaled RAM volume
// plus a JournalWriter loaded onto it.
class JournalWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = MemBlkIo::Create(4 * 1024 * 1024, 512);
    Format(MkfsOptions{});
  }

  void Format(const MkfsOptions& options) {
    ASSERT_EQ(Error::kOk, Mkfs(disk_.get(), options));
    sb_ = ReadSuper(disk_.get());
    writer_ = std::make_unique<JournalWriter>(
        ComPtr<BlkIo>::Retain(disk_.get()), sb_.journal_start, sb_.journal_blocks);
    ASSERT_EQ(Error::kOk, writer_->Load());
  }

  // Commits one single-block transaction filling `target` with `fill`.
  void CommitFill(uint32_t target, uint8_t fill) {
    ASSERT_EQ(Error::kOk,
              writer_->Commit({target}, [fill](uint32_t, uint8_t* out) {
                std::memset(out, fill, kBlockSize);
                return Error::kOk;
              }));
  }

  ComPtr<MemBlkIo> disk_;
  SuperBlock sb_;
  std::unique_ptr<JournalWriter> writer_;
};

TEST_F(JournalWriterTest, CommitThenReplayAppliesImages) {
  uint32_t target = sb_.data_start + 3;
  CommitFill(target, 0x77);
  // The commit wrote only the journal; the home block is untouched.
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 0), ReadRawBlock(disk_.get(), target));

  JournalReplayStats stats;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &stats));
  EXPECT_TRUE(stats.journal_present);
  EXPECT_EQ(1u, stats.replayed_txns);
  EXPECT_EQ(1u, stats.replayed_blocks);
  EXPECT_EQ(0u, stats.discarded_txns);
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 0x77),
            ReadRawBlock(disk_.get(), target));

  // Replay advanced the checkpoint: a second pass finds nothing pending.
  JournalReplayStats again;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &again));
  EXPECT_EQ(0u, again.replayed_txns);
}

TEST_F(JournalWriterTest, TornCommitRecordIsDiscardedNotReplayed) {
  uint32_t target = sb_.data_start + 5;
  uint32_t pos = writer_->next_pos();
  CommitFill(target, 0x55);

  // Tear the transaction's commit record (header at pos, image at pos+1,
  // commit at pos+2): one flipped byte must invalidate the whole thing.
  uint32_t commit_block = sb_.journal_start + pos + 2;
  std::vector<uint8_t> raw = ReadRawBlock(disk_.get(), commit_block);
  raw[offsetof(TxnCommit, checksum)] ^= 0xff;
  WriteRawBlock(disk_.get(), commit_block, raw.data());

  JournalReplayStats stats;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &stats));
  EXPECT_EQ(0u, stats.replayed_txns);
  EXPECT_EQ(1u, stats.discarded_txns);
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 0), ReadRawBlock(disk_.get(), target));

  // fsck's read-only journal walk reports the same discard and the volume
  // itself stays consistent — the torn transaction never happened.
  FsckReport report = Fsck(disk_.get());
  EXPECT_TRUE(report.consistent);
  EXPECT_TRUE(report.journal_present);
  EXPECT_EQ(1u, report.journal_discarded_txns);
}

TEST_F(JournalWriterTest, TornImageInvalidatesPayloadChecksum) {
  uint32_t target = sb_.data_start + 6;
  uint32_t pos = writer_->next_pos();
  CommitFill(target, 0x66);

  // Corrupt one sector of the logged image (a dropped sector in the
  // journal region itself).
  uint32_t image_block = sb_.journal_start + pos + 1;
  std::vector<uint8_t> raw = ReadRawBlock(disk_.get(), image_block);
  std::memset(raw.data() + 512, 0, 512);
  WriteRawBlock(disk_.get(), image_block, raw.data());

  JournalReplayStats stats;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &stats));
  EXPECT_EQ(0u, stats.replayed_txns);
  EXPECT_EQ(1u, stats.discarded_txns);
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 0), ReadRawBlock(disk_.get(), target));
}

TEST_F(JournalWriterTest, ReplayIsIdempotent) {
  CommitFill(sb_.data_start + 1, 0x11);
  CommitFill(sb_.data_start + 2, 0x22);

  // Save the pre-replay checkpoint so the chain can be walked twice — the
  // double-crash scenario (power fails again mid-recovery).
  std::vector<uint8_t> jsb = ReadRawBlock(disk_.get(), sb_.journal_start);

  JournalReplayStats first;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &first));
  EXPECT_EQ(2u, first.replayed_txns);
  std::vector<uint8_t> after_first(disk_->data(), disk_->data() + disk_->size());

  WriteRawBlock(disk_.get(), sb_.journal_start, jsb.data());
  JournalReplayStats second;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &second));
  EXPECT_EQ(2u, second.replayed_txns);
  std::vector<uint8_t> after_second(disk_->data(), disk_->data() + disk_->size());
  EXPECT_EQ(after_first, after_second);
}

TEST_F(JournalWriterTest, WraparoundNeverReplaysAcrossTheBoundary) {
  // The smallest legal region wraps on every transaction after the first,
  // forcing the flushed pre-wrap checkpoint each time.
  MkfsOptions options;
  options.journal_blocks = 6;
  Format(options);
  uint32_t target = sb_.data_start + 9;
  for (uint8_t fill = 1; fill <= 5; ++fill) {
    CommitFill(target, fill);
  }
  // Only the post-checkpoint tail of the chain replays: the last commit.
  JournalReplayStats stats;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &stats));
  EXPECT_EQ(1u, stats.replayed_txns);
  EXPECT_EQ(0u, stats.discarded_txns);
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 5), ReadRawBlock(disk_.get(), target));

  // Overflowing the tiny region's capacity is refused, not wedged.
  std::vector<uint32_t> too_many;
  for (uint32_t i = 0; i < writer_->capacity() + 1; ++i) {
    too_many.push_back(sb_.data_start + i);
  }
  EXPECT_EQ(Error::kNoSpace,
            writer_->Commit(too_many, [](uint32_t, uint8_t* out) {
              std::memset(out, 0, kBlockSize);
              return Error::kOk;
            }));
}

TEST_F(JournalWriterTest, ExactFitTransactionParksCheckpointAtRegionEnd) {
  // A transaction whose commit record lands on the last region block leaves
  // next_pos == region_blocks: a legal "wrap pending" checkpoint that every
  // consumer (replay, fsck, a fresh writer) must accept, not flag as corrupt.
  MkfsOptions options;
  options.journal_blocks = 6;  // capacity 3: a 3-block txn fills pos 1..5
  Format(options);
  std::vector<uint32_t> targets = {sb_.data_start + 1, sb_.data_start + 2,
                                   sb_.data_start + 3};
  ASSERT_EQ(Error::kOk,
            writer_->Commit(targets, [](uint32_t target, uint8_t* out) {
              std::memset(out, static_cast<uint8_t>(target), kBlockSize);
              return Error::kOk;
            }));

  // Replay applies the exact-fit transaction and retires the checkpoint to
  // the region boundary.
  JournalReplayStats stats;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &stats));
  EXPECT_EQ(1u, stats.replayed_txns);
  EXPECT_EQ(3u, stats.replayed_blocks);
  for (uint32_t target : targets) {
    EXPECT_EQ(std::vector<uint8_t>(kBlockSize, static_cast<uint8_t>(target)),
              ReadRawBlock(disk_.get(), target));
  }

  // The boundary checkpoint loads cleanly and reads as an empty chain.
  JournalReplayStats again;
  ASSERT_EQ(Error::kOk, JournalReplay(disk_.get(), sb_, /*apply=*/true, &again));
  EXPECT_EQ(0u, again.replayed_txns);
  EXPECT_EQ(0u, again.discarded_txns);

  // A fresh writer accepts it too, and its next commit wraps back to pos 1.
  JournalWriter reopened(ComPtr<BlkIo>::Retain(disk_.get()), sb_.journal_start,
                         sb_.journal_blocks);
  ASSERT_EQ(Error::kOk, reopened.Load());
  uint32_t target = sb_.data_start + 7;
  ASSERT_EQ(Error::kOk, reopened.Commit({target}, [](uint32_t, uint8_t* out) {
    std::memset(out, 0x5a, kBlockSize);
    return Error::kOk;
  }));
  JournalReplayStats wrapped;
  ASSERT_EQ(Error::kOk,
            JournalReplay(disk_.get(), sb_, /*apply=*/true, &wrapped));
  EXPECT_EQ(1u, wrapped.replayed_txns);
  EXPECT_EQ(std::vector<uint8_t>(kBlockSize, 0x5a),
            ReadRawBlock(disk_.get(), target));
}

// ---------------------------------------------------------------------------
// End-to-end crash recovery through the IDE driver and the volatile write
// cache (the journal_test-sized slice of what bench/crash_campaign sweeps).
// ---------------------------------------------------------------------------

struct CrashRun {
  std::vector<uint8_t> image;                 // post-cut raw disk image
  std::map<std::string, std::string> acked;   // synced before the cut
  bool cut_fired = false;
};

// Mkfs + mount on the IDE driver with the write cache on, sync a base state,
// then arm a power cut and keep doing metadata work until it fires.
CrashRun RunCutWorkload(bool journaled, uint64_t arm_writes,
                        DiskHw::CutPolicy policy, uint64_t seed) {
  Simulation sim;
  Machine machine(&sim, {});
  KernelEnv kernel(&machine, MultiBootInfo{});
  machine.cpu().EnableInterrupts();
  FdevEnv fdev = DefaultFdevEnv(&kernel);
  DiskHw* disk = machine.AddDisk(4 * 1024 * 1024 / 512);
  DeviceRegistry registry;
  EXPECT_EQ(Error::kOk, linuxdev::InitLinuxIde(fdev, &machine, &registry));
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());
  CrashRun run;
  sim.Spawn("workload", [&] {
    MkfsOptions mkfs;
    mkfs.journal_blocks = journaled ? MkfsOptions::kAutoJournal : 0;
    ASSERT_EQ(Error::kOk, Mkfs(blkio.get(), mkfs));
    disk->EnableWriteCache(true);
    FileSystem* raw = nullptr;
    ASSERT_EQ(Error::kOk, Offs::Mount(blkio.get(), &raw));
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));

    for (int i = 0; i < 8; ++i) {
      std::string name = "f" + std::to_string(i);
      std::string content = "acked-" + std::to_string(i * 1013);
      ComPtr<File> f;
      ASSERT_EQ(Error::kOk, root->Create(name.c_str(), 0644, f.Receive()));
      size_t actual = 0;
      ASSERT_EQ(Error::kOk,
                f->Write(content.data(), 0, content.size(), &actual));
      run.acked[name] = content;
    }
    ASSERT_EQ(Error::kOk, fs->Sync());

    // Everything from here on is at risk and allowed to fail.
    disk->ArmPowerCut(arm_writes, policy, seed);
    for (int i = 0; i < 20; ++i) {
      std::string name = "g" + std::to_string(i);
      ComPtr<File> f;
      if (!Ok(root->Create(name.c_str(), 0644, f.Receive()))) {
        break;
      }
      size_t actual = 0;
      f->Write(name.data(), 0, name.size(), &actual);
    }
    fs->Sync();  // fails mid-way once the cut fires: that is the point
  });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  run.cut_fired = disk->powered_off();
  run.image.assign(disk->raw(), disk->raw() + disk->raw_size());
  return run;
}

TEST(CrashRecoveryTest, PowerCutThenReplayPreservesAckedData) {
  const DiskHw::CutPolicy policies[] = {
      DiskHw::CutPolicy::kDropAll, DiskHw::CutPolicy::kDropSubset,
      DiskHw::CutPolicy::kReorder, DiskHw::CutPolicy::kTear};
  int fired = 0;
  for (uint64_t arm : {1u, 3u, 7u, 12u}) {
    for (const DiskHw::CutPolicy policy : policies) {
      CrashRun run = RunCutWorkload(/*journaled=*/true, arm, policy,
                                    /*seed=*/arm * 31 + 7);
      if (!run.cut_fired) {
        continue;
      }
      ++fired;
      auto post = MemBlkIo::CreateFrom(run.image.data(), run.image.size(), 512);
      FsckOptions fsck_options;
      fsck_options.replay_journal = true;
      FsckReport report = Fsck(post.get(), fsck_options);
      EXPECT_TRUE(report.superblock_valid);
      for (const std::string& p : report.problems) {
        ADD_FAILURE() << "arm=" << arm << " policy=" << static_cast<int>(policy)
                      << " fsck: " << p;
      }
      // Every byte acknowledged by the pre-cut Sync must still be there.
      FileSystem* raw = nullptr;
      ASSERT_EQ(Error::kOk, Offs::Mount(post.get(), &raw));
      ComPtr<FileSystem> fs(raw);
      ComPtr<Dir> root;
      ASSERT_EQ(Error::kOk, fs->GetRoot(root.Receive()));
      for (const auto& [name, content] : run.acked) {
        ComPtr<File> f;
        ASSERT_EQ(Error::kOk, root->Lookup(name.c_str(), f.Receive()))
            << "synced file " << name << " lost";
        std::string readback(content.size(), '\0');
        size_t actual = 0;
        ASSERT_EQ(Error::kOk,
                  f->Read(readback.data(), 0, readback.size(), &actual));
        EXPECT_EQ(content, readback) << "synced file " << name << " corrupted";
      }
      root.Reset();
      ASSERT_EQ(Error::kOk, fs->Unmount());
    }
  }
  EXPECT_GT(fired, 0) << "no run ever reached its cut point";
}

TEST(CrashRecoveryTest, AblationUnjournaledVolumeCorruptsUnderTheSameCuts) {
  // The same cuts against a journal-free volume must corrupt it at least
  // once — otherwise the campaign's consistency assertions prove nothing.
  int inconsistent = 0;
  int fired = 0;
  for (uint64_t arm = 1; arm <= 10; ++arm) {
    CrashRun run = RunCutWorkload(/*journaled=*/false, arm,
                                  DiskHw::CutPolicy::kDropSubset,
                                  /*seed=*/arm * 17 + 1);
    if (!run.cut_fired) {
      continue;
    }
    ++fired;
    auto post = MemBlkIo::CreateFrom(run.image.data(), run.image.size(), 512);
    FsckReport report = Fsck(post.get());
    if (!report.consistent) {
      ++inconsistent;
    }
  }
  EXPECT_GT(fired, 0);
  EXPECT_GT(inconsistent, 0)
      << "dropping random unflushed metadata never corrupted the volume; "
         "the detector (or the cut model) is broken";
}

}  // namespace
}  // namespace oskit::fs
