// Kernel support library tests (§3.2): bring-up, memory setup with
// reservations, IRQ routing, timers, console, argv parsing — and a
// protocol-level session against the GDB stub (§3.5).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/kern/gdb_stub.h"
#include "src/kern/kernel.h"
#include "src/kern/kmon.h"
#include "src/trace/trace.h"

namespace oskit {
namespace {

class KernTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
  }

  Simulation sim_;
  std::unique_ptr<Machine> machine_;
};

TEST_F(KernTest, BootCallsMainWithParsedArgs) {
  BootLoader loader(&machine_->phys());
  MultiBootInfo info = loader.Load("  --flag  value  ");
  KernelEnv kernel(machine_.get(), info);
  std::vector<std::string> seen;
  kernel.Boot([&](int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      seen.emplace_back(argv[i]);
    }
    return 42;
  });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
  EXPECT_TRUE(kernel.exited());
  EXPECT_EQ(42, kernel.exit_code());
  ASSERT_EQ(3u, seen.size());
  EXPECT_EQ("pc0", seen[0]);  // argv[0] is the machine name
  EXPECT_EQ("--flag", seen[1]);
  EXPECT_EQ("value", seen[2]);
  EXPECT_TRUE(machine_->cpu().interrupts_enabled());
}

TEST_F(KernTest, MemorySetupReservesBootModules) {
  BootLoader loader(&machine_->phys());
  std::string module(64 * 1024, 'm');
  loader.AddModule("payload", module.data(), module.size());
  MultiBootInfo info = loader.Load("");
  KernelEnv kernel(machine_.get(), info);

  const BootModule& mod = info.modules[0];
  uint8_t* mod_ptr = static_cast<uint8_t*>(machine_->phys().PtrAt(mod.start));

  // Exhaust the allocator; nothing handed out may intersect the module.
  size_t total = 0;
  for (;;) {
    void* p = kernel.MemAlloc(64 * 1024);
    if (p == nullptr) {
      break;
    }
    auto* q = static_cast<uint8_t*>(p);
    EXPECT_TRUE(q + 64 * 1024 <= mod_ptr || q >= mod_ptr + module.size());
    total += 64 * 1024;
  }
  // Most of the 32 MB machine should still have been allocatable.
  EXPECT_GT(total, 24u * 1024 * 1024);
  // And the module contents survived the onslaught.
  EXPECT_EQ(0, memcmp(mod_ptr, module.data(), module.size()));
  kernel.lmm().AuditOrDie();
}

TEST_F(KernTest, DmaAllocationsComeFromLowMemory) {
  KernelEnv kernel(machine_.get(), MultiBootInfo{});
  void* dma = kernel.MemAlloc(4096, kLmmFlag16Mb);
  ASSERT_NE(nullptr, dma);
  EXPECT_TRUE(machine_->phys().IsDmaReachable(dma, 4096));
  // Generic allocations prefer high memory (§3.3 priority policy).
  void* generic = kernel.MemAlloc(4096);
  ASSERT_NE(nullptr, generic);
  EXPECT_FALSE(machine_->phys().IsDmaReachable(generic, 4096));
  kernel.MemFree(dma, 4096);
  kernel.MemFree(generic, 4096);
}

TEST_F(KernTest, IrqRegistrationRoutesAndUnmasks) {
  KernelEnv kernel(machine_.get(), MultiBootInfo{});
  machine_->cpu().EnableInterrupts();
  int fired = 0;
  kernel.IrqRegister(9, [&] { ++fired; });
  machine_->pic().RaiseIrq(9);
  EXPECT_EQ(1, fired);
  kernel.IrqUnregister(9);
  machine_->pic().RaiseIrq(9);  // masked again: latched but not delivered
  EXPECT_EQ(1, fired);
}

TEST_F(KernTest, TimerDeliversTicks) {
  KernelEnv kernel(machine_.get(), MultiBootInfo{});
  machine_->cpu().EnableInterrupts();
  int ticks = 0;
  kernel.SetTimer(1000, [&] { ++ticks; });
  sim_.clock().RunUntil(10500 * kNsPerUs);
  EXPECT_EQ(10, ticks);
  kernel.StopTimer();
}

TEST_F(KernTest, ConsoleWritesReachTheUart) {
  KernelEnv kernel(machine_.get(), MultiBootInfo{});
  kernel.console().Puts("hello");
  EXPECT_EQ("hello\r\n", machine_->console_uart().TakeOutput());
}

TEST_F(KernTest, CustomTrapHandlerFallsBackToDefault) {
  // §6.2.4: Java/PC installs its own trap handlers "which can still fall
  // back to the default handler for traps that are of no interest."
  KernelEnv kernel(machine_.get(), MultiBootInfo{});
  int caught = 0;
  kernel.SetTrapHandler(kTrapBreakpoint, [&](TrapFrame& frame) {
    ++caught;
    return true;
  });
  machine_->cpu().RaiseTrap(kTrapBreakpoint);
  EXPECT_EQ(1, caught);

  // An unhandled trap must reach the panicking default.
  PanicHandler old = SetPanicHandler(+[](const char*) { throw 42; });
  EXPECT_THROW(machine_->cpu().RaiseTrap(kTrapInvalidOpcode), int);
  SetPanicHandler(old);
}

// ---- GDB remote serial protocol (§3.5) ----

// A tiny protocol-level debugger: frames packets, checks checksums.
class MockGdb {
 public:
  explicit MockGdb(Uart* link) : link_(link) {}

  void Send(const std::string& payload) {
    uint8_t sum = 0;
    for (char c : payload) {
      sum = static_cast<uint8_t>(sum + static_cast<uint8_t>(c));
    }
    char trailer[4];
    snprintf(trailer, sizeof(trailer), "#%02x", sum);
    std::string packet = "$" + payload + trailer;
    link_->InjectRx(packet.data(), packet.size());
  }

  // Pulls one reply packet out of the captured stub output.
  std::string NextReply() {
    buffer_ += link_->TakeOutput();
    size_t dollar = buffer_.find('$');
    if (dollar == std::string::npos) {
      return "";
    }
    size_t hash = buffer_.find('#', dollar);
    if (hash == std::string::npos || hash + 2 >= buffer_.size()) {
      return "";
    }
    std::string payload = buffer_.substr(dollar + 1, hash - dollar - 1);
    buffer_.erase(0, hash + 3);
    return payload;
  }

 private:
  Uart* link_;
  std::string buffer_;
};

TEST_F(KernTest, GdbStubSpeaksTheRemoteProtocol) {
  GdbStub stub(machine_.get(), &machine_->debug_uart());
  MockGdb gdb(&machine_->debug_uart());

  // Seed some memory the debugger will inspect.
  auto* mem = static_cast<uint8_t*>(machine_->phys().PtrAt(0x1000));
  mem[0] = 0xde;
  mem[1] = 0xad;

  // Queue a whole session before the "trap" (the stub drains the RX FIFO):
  gdb.Send("qSupported");
  gdb.Send("g");
  gdb.Send("m1000,2");
  gdb.Send("M1000,2:beef");
  gdb.Send("P8=0011000000000000");  // write pc (reg 8) = 0x1100 (LE)
  gdb.Send("p8");
  gdb.Send("c");

  TrapFrame frame;
  frame.pc = 0x4000;
  frame.gprs[0] = 0x1122334455667788;
  stub.HandleException(5, frame);

  // Stop reply first.
  EXPECT_EQ("T05", gdb.NextReply());
  EXPECT_EQ("PacketSize=4096", gdb.NextReply());
  std::string regs = gdb.NextReply();
  ASSERT_EQ(11u * 16, regs.size());
  EXPECT_EQ("8877665544332211", regs.substr(0, 16));  // gpr0, little endian
  EXPECT_EQ("dead", gdb.NextReply());          // m1000,2
  EXPECT_EQ("OK", gdb.NextReply());            // M write
  EXPECT_EQ("OK", gdb.NextReply());            // P write
  EXPECT_EQ("0011000000000000", gdb.NextReply());  // p8 readback
  // The register write is visible to the interrupted context.
  EXPECT_EQ(0x1100u, frame.pc);
  // The memory write landed.
  EXPECT_EQ(0xbe, mem[0]);
  EXPECT_EQ(0xef, mem[1]);
  EXPECT_GE(stub.packets_handled(), 7u);
}

TEST_F(KernTest, GdbStubStepAndKill) {
  GdbStub stub(machine_.get(), &machine_->debug_uart());
  MockGdb gdb(&machine_->debug_uart());
  gdb.Send("s");
  TrapFrame frame;
  stub.HandleException(5, frame);
  EXPECT_TRUE(stub.step_requested());
  EXPECT_FALSE(stub.killed());
  EXPECT_EQ("T05", gdb.NextReply());

  gdb.Send("k");
  stub.HandleException(5, frame);
  EXPECT_TRUE(stub.killed());
}

TEST_F(KernTest, GdbStubDetachAndBadMemory) {
  GdbStub stub(machine_.get(), &machine_->debug_uart());
  MockGdb gdb(&machine_->debug_uart());
  gdb.Send("mffffffffff,4");  // far beyond physical memory
  gdb.Send("p99");            // register index out of range
  gdb.Send("D");              // detach
  TrapFrame frame;
  stub.HandleException(11, frame);
  EXPECT_EQ("T0b", gdb.NextReply());  // stop reply for SIGSEGV
  EXPECT_EQ("E02", gdb.NextReply());
  EXPECT_EQ("E01", gdb.NextReply());
  EXPECT_EQ("OK", gdb.NextReply());   // detach ack
}

TEST_F(KernTest, GdbStubRejectsBadChecksum) {
  GdbStub stub(machine_.get(), &machine_->debug_uart());
  // A damaged packet, then a good one.
  std::string bad = "$g#00";
  machine_->debug_uart().InjectRx(bad.data(), bad.size());
  MockGdb gdb(&machine_->debug_uart());
  gdb.Send("c");
  TrapFrame frame;
  stub.HandleException(5, frame);
  std::string out = machine_->debug_uart().TakeOutput();
  // The stub NAKed the corrupt packet.
  EXPECT_NE(std::string::npos, out.find('-'));
}

// ---------------------------------------------------------------------------
// kmon trace commands (the src/trace component through the monitor)
// ---------------------------------------------------------------------------

class KmonTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    // A private trace environment so other tests' counters can't leak in.
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{},
                                          KernelEnv::SleepMode::kFiber, &trace_);
  }

  // Types a command line into the console as if an operator did.
  void Type(const std::string& line) {
    machine_->console_uart().InjectRx(line.data(), line.size());
    machine_->console_uart().InjectRx("\r", 1);
  }

  // Runs one scripted monitor session and returns the console transcript.
  std::string RunSession() {
    KernelMonitor kmon(kernel_.get(), &kernel_->console());
    sim_.Spawn("kmon", [&] {
      TrapFrame frame;
      kmon.Enter(frame);
    });
    EXPECT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
    return machine_->console_uart().TakeOutput();
  }

  trace::TraceEnv trace_;
  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
};

TEST_F(KmonTraceTest, CountersCommandDumpsTheRegistry) {
  kernel_->lmm().Alloc(4096, 0);
  machine_->cpu().EnableInterrupts();
  machine_->cpu().RaiseInterrupt(kIrqBaseVector + 0);

  Type("counters");
  Type("counters lmm.");
  Type("counters no.such.prefix");
  Type("c");
  std::string out = RunSession();

  // Full dump shows every bound subsystem with live values.
  EXPECT_NE(std::string::npos, out.find("lmm.alloc_calls"));
  EXPECT_NE(std::string::npos, out.find("machine.irq.dispatched"));
  // Prefix filtering and the empty-match message both work.
  size_t lmm_section = out.find("counters lmm.");
  ASSERT_NE(std::string::npos, lmm_section);
  EXPECT_NE(std::string::npos, out.find("lmm.free_calls", lmm_section));
  EXPECT_NE(std::string::npos, out.find("no counters match that prefix"));
}

TEST_F(KmonTraceTest, TraceDumpAndClearCommands) {
  machine_->cpu().EnableInterrupts();
  machine_->cpu().RaiseInterrupt(kIrqBaseVector + 0);  // irq-enter / irq-exit

  Type("trace dump");
  Type("trace clear");
  Type("trace dump");
  Type("trace bogus");
  Type("c");
  std::string out = RunSession();

  size_t first_dump = out.find("trace:");
  ASSERT_NE(std::string::npos, first_dump);
  EXPECT_NE(std::string::npos, out.find("irq-enter", first_dump));
  EXPECT_NE(std::string::npos, out.find("irq-exit", first_dump));
  EXPECT_NE(std::string::npos, out.find("trace ring cleared"));
  EXPECT_NE(std::string::npos, out.find("trace ring empty"));
  EXPECT_NE(std::string::npos, out.find("usage: trace dump | trace clear"));
}

TEST_F(KmonTraceTest, HelpListsTraceCommands) {
  Type("help");
  Type("c");
  std::string out = RunSession();
  EXPECT_NE(std::string::npos, out.find("counters [prefix]"));
  EXPECT_NE(std::string::npos, out.find("trace dump|clear"));
  EXPECT_NE(std::string::npos, out.find("hot"));
}

TEST_F(KmonTraceTest, HotCommandDumpsSpanAttribution) {
  // Closed spans show in the self-time-sorted table; a span still open at
  // the prompt (the operator broke in mid-request) is listed separately.
  trace::SpanSite serve(&trace_, "kmon.test.serve");
  trace::SpanSite stuck(&trace_, "kmon.test.stuck");
  serve.AddSample(640);
  trace_.spans.Begin(&stuck);

  Type("hot");
  Type("c");
  std::string out = RunSession();
  trace_.spans.End(&stuck);

  size_t header = out.find("self%");
  ASSERT_NE(std::string::npos, header);
  EXPECT_NE(std::string::npos, out.find("kmon.test.serve", header));
  EXPECT_NE(std::string::npos, out.find("100.0%", header));
  size_t open = out.find("open spans");
  ASSERT_NE(std::string::npos, open);
  EXPECT_NE(std::string::npos, out.find("OPEN kmon.test.stuck", open));

  // The span counters are visible through the counters command path too.
  EXPECT_EQ(640u, trace_.registry.Value("kmon.test.serve.self_ns"));
}

}  // namespace
}  // namespace oskit
