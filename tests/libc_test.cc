// Minimal C library tests (§3.4): string routines, the printf core, the
// putchar-override chain (§4.3.1), malloc, and the POSIX fd layer.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/boot/memfs.h"
#include "src/libc/format.h"
#include "src/libc/malloc.h"
#include "src/libc/posix.h"
#include "src/libc/stdio.h"
#include "src/libc/string.h"

namespace oskit::libc {
namespace {

TEST(StringTest, BasicOps) {
  EXPECT_EQ(5u, Strlen("hello"));
  EXPECT_EQ(0u, Strlen(""));
  EXPECT_EQ(3u, Strnlen("hello", 3));

  char buf[16];
  Strcpy(buf, "abc");
  EXPECT_STREQ("abc", buf);
  Strcat(buf, "def");
  EXPECT_STREQ("abcdef", buf);

  EXPECT_EQ(0, Strcmp("same", "same"));
  EXPECT_LT(Strcmp("abc", "abd"), 0);
  EXPECT_GT(Strcmp("b", "a"), 0);
  EXPECT_EQ(0, Strncmp("abcdef", "abcxyz", 3));
  EXPECT_EQ(0, Strcasecmp("MiXeD", "mIxEd"));

  EXPECT_STREQ("llo", Strchr("hello", 'l'));
  EXPECT_EQ(nullptr, Strchr("hello", 'z'));
  EXPECT_EQ(Strrchr("hello", 'l'), Strchr("hello", 'l') + 1);
  EXPECT_STREQ("world", Strstr("hello world", "world"));
  EXPECT_EQ(nullptr, Strstr("hello", "xyz"));
}

TEST(StringTest, StrlcpyTruncates) {
  char buf[4];
  size_t n = Strlcpy(buf, "truncate-me", sizeof(buf));
  EXPECT_EQ(11u, n);  // reports the full source length
  EXPECT_STREQ("tru", buf);
}

TEST(StringTest, MemOps) {
  uint8_t a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  uint8_t b[8] = {};
  Memcpy(b, a, 8);
  EXPECT_EQ(0, Memcmp(a, b, 8));
  // Overlapping Memmove, both directions.
  Memmove(a + 2, a, 4);
  EXPECT_EQ(1, a[2]);
  EXPECT_EQ(4, a[5]);
  uint8_t c[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  Memmove(c, c + 2, 4);
  EXPECT_EQ(3, c[0]);
  EXPECT_EQ(6, c[3]);
  Memset(b, 0xee, 8);
  EXPECT_EQ(0xee, b[7]);
  b[3] = 0x42;
  EXPECT_EQ(b + 3, Memchr(b, 0x42, 8));
  EXPECT_EQ(nullptr, Memchr(b, 0x11, 8));
}

TEST(StringTest, Strtol) {
  const char* end = nullptr;
  EXPECT_EQ(42, Strtol("42", &end, 10));
  EXPECT_EQ('\0', *end);
  EXPECT_EQ(-17, Strtol("  -17zz", &end, 10));
  EXPECT_STREQ("zz", end);
  EXPECT_EQ(255, Strtol("0xff", nullptr, 0));
  EXPECT_EQ(8, Strtol("010", nullptr, 0));
  EXPECT_EQ(10, Strtol("010", nullptr, 10));
  EXPECT_EQ(0, Strtol("junk", &end, 10));
  EXPECT_EQ(123, Atoi("123"));
}

// The printf core, checked against the host's snprintf for a matrix of
// format strings.
class FormatTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FormatTest, MatchesHostPrintf) {
  const char* format = GetParam();
  char ours[256];
  char host[256];
  Snprintf(ours, sizeof(ours), format, 12345);
  snprintf(host, sizeof(host), format, 12345);
  EXPECT_STREQ(host, ours) << "format: " << format;
}

INSTANTIATE_TEST_SUITE_P(IntFormats, FormatTest,
                         ::testing::Values("%d", "%i", "%u", "%x", "%X", "%o", "%8d",
                                           "%-8d|", "%08d", "%+d", "% d", "%#x",
                                           "%#o", "%.8d", "%12.6d", "%-12.6d|"));

TEST(FormatTest, Strings) {
  char buf[64];
  Snprintf(buf, sizeof(buf), "[%s]", "text");
  EXPECT_STREQ("[text]", buf);
  Snprintf(buf, sizeof(buf), "[%8s]", "text");
  EXPECT_STREQ("[    text]", buf);
  Snprintf(buf, sizeof(buf), "[%-8s]", "text");
  EXPECT_STREQ("[text    ]", buf);
  Snprintf(buf, sizeof(buf), "[%.2s]", "text");
  EXPECT_STREQ("[te]", buf);
  const char* volatile null_str = nullptr;  // launder past -Wformat checks
  Snprintf(buf, sizeof(buf), "[%s]", null_str);
  EXPECT_STREQ("[(null)]", buf);
}

TEST(FormatTest, CharsAndPercent) {
  char buf[64];
  Snprintf(buf, sizeof(buf), "%c%c%c %d%%", 'a', 'b', 'c', 50);
  EXPECT_STREQ("abc 50%", buf);
}

TEST(FormatTest, LongModifiers) {
  char buf[64];
  Snprintf(buf, sizeof(buf), "%ld %lld %zu", 123456789L, -9876543210LL,
           static_cast<size_t>(42));
  EXPECT_STREQ("123456789 -9876543210 42", buf);
}

TEST(FormatTest, ReturnsFullLengthOnTruncation) {
  char buf[8];
  int n = Snprintf(buf, sizeof(buf), "0123456789");
  EXPECT_EQ(10, n);
  EXPECT_STREQ("0123456", buf);  // NUL-terminated at capacity
}

TEST(FormatTest, WidthByStar) {
  char buf[32];
  Snprintf(buf, sizeof(buf), "%*d", 6, 42);
  EXPECT_STREQ("    42", buf);
  Snprintf(buf, sizeof(buf), "%-*d|", 6, 42);
  EXPECT_STREQ("42    |", buf);
}

// §4.3.1: "the client OS can obtain basic formatted console output simply by
// providing a putchar function and nothing else."
TEST(ConsoleOutTest, PrintfGoesThroughPutcharOverride) {
  ConsoleOut out;
  static std::string sink;
  sink.clear();
  out.SetPutchar(
      +[](void*, int c) -> int {
        sink.push_back(static_cast<char>(c));
        return c;
      },
      nullptr);
  out.Printf("n=%d s=%s", 7, "ok");
  EXPECT_EQ("n=7 s=ok", sink);
  out.Puts("line");
  EXPECT_EQ("n=7 s=okline\n", sink);  // default puts rides on putchar
}

TEST(ConsoleOutTest, DefaultCapturesOutput) {
  ConsoleOut out;
  out.Printf("hello %d", 1);
  EXPECT_EQ("hello 1", out.TakeCaptured());
  EXPECT_EQ("", out.TakeCaptured());
}

TEST(ConsoleOutTest, PutsOverrideTakesPriority) {
  ConsoleOut out;
  static int puts_calls;
  puts_calls = 0;
  out.SetPuts(
      +[](void*, const char*) -> int {
        ++puts_calls;
        return 0;
      },
      nullptr);
  out.Puts("x");
  EXPECT_EQ(1, puts_calls);
  EXPECT_EQ("", out.TakeCaptured());
}

TEST(MallocTest, BasicLifecycle) {
  MallocArena arena(HostMemEnv());
  void* p = arena.Malloc(100);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(100u, arena.UsableSize(p));
  EXPECT_EQ(100u, arena.bytes_in_use());
  EXPECT_EQ(1u, arena.blocks_in_use());
  memset(p, 0xab, 100);
  arena.Free(p);
  EXPECT_EQ(0u, arena.bytes_in_use());
  EXPECT_EQ(0u, arena.blocks_in_use());
}

TEST(MallocTest, CallocZeroesAndChecksOverflow) {
  MallocArena arena(HostMemEnv());
  auto* p = static_cast<uint8_t*>(arena.Calloc(10, 10));
  ASSERT_NE(nullptr, p);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(0, p[i]);
  }
  arena.Free(p);
  EXPECT_EQ(nullptr, arena.Calloc(static_cast<size_t>(-1), 16));
}

TEST(MallocTest, ReallocPreservesContents) {
  MallocArena arena(HostMemEnv());
  auto* p = static_cast<char*>(arena.Malloc(8));
  memcpy(p, "1234567", 8);
  auto* q = static_cast<char*>(arena.Realloc(p, 64));
  ASSERT_NE(nullptr, q);
  EXPECT_STREQ("1234567", q);
  arena.Free(q);
}

TEST(MallocTest, MemalignAligns) {
  MallocArena arena(HostMemEnv());
  for (size_t align = 16; align <= 4096; align *= 2) {
    void* p = arena.Memalign(align, 100);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % align);
    arena.Free(p);
  }
  EXPECT_EQ(0u, arena.blocks_in_use());
}

// POSIX layer over the boot-module (RAM) filesystem — §6.2.1's environment.
class PosixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = MemFs::Create();
    ComPtr<Dir> root;
    ASSERT_EQ(Error::kOk, fs_->GetRoot(root.Receive()));
    posix_.SetRoot(std::move(root));
  }

  ComPtr<MemFs> fs_;
  PosixIo posix_;
};

TEST_F(PosixTest, OpenReadWriteClose) {
  int fd = posix_.Open("/notes.txt", kOWrOnly | kOCreat);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(5, posix_.Write(fd, "hello", 5));
  EXPECT_EQ(0, posix_.Close(fd));

  fd = posix_.Open("/notes.txt", kORdOnly);
  ASSERT_GE(fd, 0);
  char buf[16] = {};
  EXPECT_EQ(5, posix_.Read(fd, buf, sizeof(buf)));
  EXPECT_STREQ("hello", buf);
  EXPECT_EQ(0, posix_.Read(fd, buf, sizeof(buf)));  // EOF
  EXPECT_EQ(0, posix_.Close(fd));
  EXPECT_EQ(0, posix_.OpenCount());
}

TEST_F(PosixTest, NestedPathsAndMkdir) {
  ASSERT_EQ(0, posix_.Mkdir("/a"));
  ASSERT_EQ(0, posix_.Mkdir("/a/b"));
  int fd = posix_.Open("/a/b/file", kOWrOnly | kOCreat);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(3, posix_.Write(fd, "xyz", 3));
  posix_.Close(fd);

  FileStat st;
  ASSERT_EQ(0, posix_.Stat("/a/b/file", &st));
  EXPECT_EQ(3u, st.size);
  EXPECT_EQ(FileType::kRegular, st.type);
  ASSERT_EQ(0, posix_.Stat("/a/b", &st));
  EXPECT_EQ(FileType::kDirectory, st.type);
}

TEST_F(PosixTest, LseekWhences) {
  int fd = posix_.Open("/f", kORdWr | kOCreat);
  ASSERT_GE(fd, 0);
  posix_.Write(fd, "0123456789", 10);
  EXPECT_EQ(2, posix_.Lseek(fd, 2, kSeekSet));
  char c;
  posix_.Read(fd, &c, 1);
  EXPECT_EQ('2', c);
  EXPECT_EQ(5, posix_.Lseek(fd, 2, kSeekCur));
  EXPECT_EQ(8, posix_.Lseek(fd, -2, kSeekEnd));
  EXPECT_LT(posix_.Lseek(fd, -100, kSeekCur), 0);
  posix_.Close(fd);
}

TEST_F(PosixTest, AppendMode) {
  int fd = posix_.Open("/log", kOWrOnly | kOCreat | kOAppend);
  ASSERT_GE(fd, 0);
  posix_.Write(fd, "aa", 2);
  posix_.Lseek(fd, 0, kSeekSet);
  posix_.Write(fd, "bb", 2);  // append mode ignores the seek
  posix_.Close(fd);
  FileStat st;
  ASSERT_EQ(0, posix_.Stat("/log", &st));
  EXPECT_EQ(4u, st.size);
}

TEST_F(PosixTest, ErrorsAreNegatedCodes) {
  EXPECT_EQ(-static_cast<int>(Error::kNoEnt), posix_.Open("/missing", kORdOnly));
  EXPECT_EQ(-static_cast<int>(Error::kBadF), posix_.Close(17));
  EXPECT_EQ(-static_cast<long>(Error::kBadF), posix_.Read(17, nullptr, 0));
  ASSERT_EQ(0, posix_.Mkdir("/d"));
  EXPECT_EQ(-static_cast<int>(Error::kExist), posix_.Mkdir("/d"));
  EXPECT_EQ(-static_cast<int>(Error::kProtoNoSupport),
            posix_.Socket(SockDomain::kInet, SockType::kStream));
}

TEST_F(PosixTest, UnlinkAndRmdir) {
  ASSERT_EQ(0, posix_.Mkdir("/dir"));
  int fd = posix_.Open("/dir/f", kOWrOnly | kOCreat);
  posix_.Close(fd);
  EXPECT_EQ(-static_cast<int>(Error::kNotEmpty), posix_.Rmdir("/dir"));
  EXPECT_EQ(0, posix_.Unlink("/dir/f"));
  EXPECT_EQ(0, posix_.Rmdir("/dir"));
  EXPECT_EQ(-static_cast<int>(Error::kNoEnt), posix_.Stat("/dir", nullptr));
}

TEST_F(PosixTest, FdsAreRecycled) {
  for (int round = 0; round < 3; ++round) {
    std::vector<int> fds;
    for (int i = 0; i < PosixIo::kMaxFds - 3; ++i) {
      int fd = posix_.Open("/spam", kOWrOnly | kOCreat);
      ASSERT_GE(fd, 0) << "i=" << i;
      fds.push_back(fd);
    }
    EXPECT_EQ(-static_cast<int>(Error::kMFile), posix_.Open("/spam", kORdOnly));
    for (int fd : fds) {
      posix_.Close(fd);
    }
  }
}

}  // namespace
}  // namespace oskit::libc
