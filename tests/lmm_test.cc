// LMM unit and property tests (§3.3).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/random.h"
#include "src/lmm/lmm.h"

namespace oskit {
namespace {

class LmmTest : public ::testing::Test {
 protected:
  static constexpr size_t kArena = 1 << 20;

  void SetUp() override {
    arena_.resize(kArena);
    base_ = arena_.data();
    lmm_.AddRegion(&region_, base_, kArena, /*flags=*/0, /*priority=*/0);
    lmm_.AddFree(base_, kArena);
  }

  std::vector<uint8_t> arena_;
  uint8_t* base_ = nullptr;
  Lmm lmm_;
  LmmRegion region_;
};

TEST_F(LmmTest, AllocatesAndFreesEverything) {
  size_t initial = lmm_.Avail(0);
  EXPECT_EQ(kArena, initial);
  void* a = lmm_.Alloc(1000, 0);
  void* b = lmm_.Alloc(2000, 0);
  ASSERT_NE(nullptr, a);
  ASSERT_NE(nullptr, b);
  EXPECT_NE(a, b);
  lmm_.Free(a, 1000);
  lmm_.Free(b, 2000);
  EXPECT_EQ(initial, lmm_.Avail(0));
  lmm_.AuditOrDie();
}

TEST_F(LmmTest, CoalescesAdjacentFrees) {
  void* a = lmm_.Alloc(4096, 0);
  void* b = lmm_.Alloc(4096, 0);
  void* c = lmm_.Alloc(4096, 0);
  ASSERT_NE(nullptr, c);
  lmm_.Free(a, 4096);
  lmm_.Free(c, 4096);
  lmm_.Free(b, 4096);  // middle free must merge all three
  lmm_.AuditOrDie();
  // After full free the arena is one block again: a max-size alloc works.
  void* all = lmm_.Alloc(kArena, 0);
  EXPECT_NE(nullptr, all);
  lmm_.Free(all, kArena);
}

TEST_F(LmmTest, AlignmentIsHonoured) {
  for (unsigned bits = 4; bits <= 16; ++bits) {
    void* p = lmm_.AllocAligned(100, 0, bits, 0);
    ASSERT_NE(nullptr, p);
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) & ((uintptr_t{1} << bits) - 1))
        << "bits=" << bits;
  }
  lmm_.AuditOrDie();
}

TEST_F(LmmTest, AllocPageIsPageAligned) {
  void* p = lmm_.AllocPage(0);
  ASSERT_NE(nullptr, p);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) % kLmmPageSize);
}

TEST_F(LmmTest, AllocGenRespectsBounds) {
  uintptr_t lo = reinterpret_cast<uintptr_t>(base_) + 64 * 1024;
  void* p = lmm_.AllocGen(512, 0, 0, 0, lo, 8 * 1024);
  ASSERT_NE(nullptr, p);
  uintptr_t addr = reinterpret_cast<uintptr_t>(p);
  EXPECT_GE(addr, lo);
  EXPECT_LE(addr + 512, lo + 8 * 1024);
}

TEST_F(LmmTest, FailsWhenExhausted) {
  void* big = lmm_.Alloc(kArena, 0);
  ASSERT_NE(nullptr, big);
  EXPECT_EQ(nullptr, lmm_.Alloc(16, 0));
  lmm_.Free(big, kArena);
}

TEST_F(LmmTest, RemoveFreeReservesRange) {
  uint8_t* target = base_ + 128 * 1024;
  lmm_.RemoveFree(target, 4096);
  lmm_.AuditOrDie();
  // Nothing allocated may intersect the reserved range.
  for (int i = 0; i < 300; ++i) {
    void* p = lmm_.Alloc(1024, 0);
    if (p == nullptr) {
      break;
    }
    auto* q = static_cast<uint8_t*>(p);
    EXPECT_TRUE(q + 1024 <= target || q >= target + 4096);
  }
  // Give it back; full-size alloc becomes possible again after freeing all.
  lmm_.AddFree(target, 4096);
  lmm_.AuditOrDie();
}

TEST_F(LmmTest, FindFreeWalksBlocks) {
  void* a = lmm_.Alloc(4096, 0);
  (void)a;
  uintptr_t cursor = 0;
  size_t size = 0;
  uint32_t flags = 0xdead;
  ASSERT_TRUE(lmm_.FindFree(&cursor, &size, &flags));
  EXPECT_GT(size, 0u);
  EXPECT_EQ(0u, flags);
  // Advancing past the block finds nothing more (single region, one block).
  uintptr_t next = cursor + size;
  EXPECT_FALSE(lmm_.FindFree(&next, &size, &flags));
}

// Typed regions: DMA-flagged requests must come from DMA regions, and
// generic requests prefer the higher-priority region.
TEST(LmmRegionsTest, FlagsAndPriorities) {
  std::vector<uint8_t> arena(1 << 20);
  Lmm lmm;
  LmmRegion dma_region;
  LmmRegion high_region;
  uint8_t* dma_base = arena.data();
  uint8_t* high_base = arena.data() + (1 << 19);
  lmm.AddRegion(&dma_region, dma_base, 1 << 19, kLmmFlag16Mb, /*priority=*/10);
  lmm.AddRegion(&high_region, high_base, 1 << 19, 0, /*priority=*/20);
  lmm.AddFree(arena.data(), arena.size());

  // Generic allocation comes from the high-priority (non-DMA) region.
  void* generic = lmm.Alloc(4096, 0);
  ASSERT_NE(nullptr, generic);
  EXPECT_GE(static_cast<uint8_t*>(generic), high_base);

  // DMA-constrained allocation only fits the DMA region.
  void* dma = lmm.Alloc(4096, kLmmFlag16Mb);
  ASSERT_NE(nullptr, dma);
  EXPECT_LT(static_cast<uint8_t*>(dma), high_base);

  EXPECT_EQ(lmm.Avail(kLmmFlag16Mb), (1u << 19) - 4096);
  lmm.Free(generic, 4096);
  lmm.Free(dma, 4096);
  lmm.AuditOrDie();
}

TEST(LmmRegionsTest, AddFreeSplitsAcrossRegions) {
  // One AddFree spanning two regions must land in both (the kernel support
  // library hands the LMM all of physical memory in one call, §3.2).
  std::vector<uint8_t> arena(64 * 1024);
  Lmm lmm;
  LmmRegion r1;
  LmmRegion r2;
  lmm.AddRegion(&r1, arena.data(), 32 * 1024, 1, 0);
  lmm.AddRegion(&r2, arena.data() + 32 * 1024, 32 * 1024, 2, 0);
  lmm.AddFree(arena.data(), arena.size());
  EXPECT_EQ(32u * 1024, lmm.Avail(1));
  EXPECT_EQ(32u * 1024, lmm.Avail(2));
  lmm.AuditOrDie();
}

// Property test: random alloc/free interleaving against a shadow model.
// Invariants (checked continuously): no allocation overlaps another, Avail
// conservation, and AuditOrDie's internal structure checks.
class LmmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LmmPropertyTest, RandomOpsPreserveInvariants) {
  constexpr size_t kArena = 1 << 20;
  std::vector<uint8_t> arena(kArena);
  Lmm lmm;
  LmmRegion region;
  lmm.AddRegion(&region, arena.data(), kArena, 0, 0);
  lmm.AddFree(arena.data(), kArena);

  Rng rng(GetParam());
  struct Block {
    uint8_t* ptr;
    size_t size;
    uint8_t pattern;
  };
  std::vector<Block> live;
  size_t outstanding = 0;

  for (int step = 0; step < 2000; ++step) {
    bool do_alloc = live.empty() || rng.Percent(55);
    if (do_alloc) {
      size_t size = rng.Range(1, 8192);
      unsigned align_bits = static_cast<unsigned>(rng.Below(9));  // up to 256
      void* p = align_bits == 0 ? lmm.Alloc(size, 0)
                                : lmm.AllocAligned(size, 0, align_bits, 0);
      if (p == nullptr) {
        EXPECT_LT(lmm.Avail(0), kArena) << "alloc failed with full arena";
        continue;
      }
      auto* bytes = static_cast<uint8_t*>(p);
      ASSERT_GE(bytes, arena.data());
      ASSERT_LE(bytes + size, arena.data() + kArena);
      EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(p) &
                        ((uintptr_t{1} << align_bits) - 1));
      // Overlap check against every live block.
      for (const Block& other : live) {
        ASSERT_TRUE(bytes + size <= other.ptr || other.ptr + other.size <= bytes)
            << "overlapping allocation";
      }
      uint8_t pattern = static_cast<uint8_t>(rng.Next());
      memset(bytes, pattern, size);
      live.push_back(Block{bytes, size, pattern});
      outstanding += size;
    } else {
      size_t victim = rng.Below(live.size());
      Block block = live[victim];
      // Contents must be untouched by unrelated alloc/free activity.
      for (size_t i = 0; i < block.size; ++i) {
        ASSERT_EQ(block.pattern, block.ptr[i]) << "allocation clobbered";
      }
      lmm.Free(block.ptr, block.size);
      outstanding -= block.size;
      live[victim] = live.back();
      live.pop_back();
    }
    if (step % 64 == 0) {
      lmm.AuditOrDie();
    }
  }
  for (const Block& block : live) {
    lmm.Free(block.ptr, block.size);
  }
  lmm.AuditOrDie();
  EXPECT_EQ(kArena, lmm.Avail(0)) << "memory leaked through the LMM";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LmmPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace oskit
