// Simulated-platform tests: clock, fibers, CPU trap/interrupt model, PIC,
// PIT, UART, Ethernet wire (with fault injection), and the disk.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/machine/machine.h"

namespace oskit {
namespace {

TEST(ClockTest, EventsRunInTimeThenFifoOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(100, [&] { order.push_back(2); });
  clock.ScheduleAt(50, [&] { order.push_back(1); });
  clock.ScheduleAt(100, [&] { order.push_back(3); });  // same time: FIFO
  while (clock.RunOne()) {
  }
  EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
  EXPECT_EQ(100u, clock.Now());
}

TEST(ClockTest, CancelPreventsExecution) {
  SimClock clock;
  int fired = 0;
  auto id = clock.ScheduleAfter(10, [&] { ++fired; });
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));  // already cancelled
  while (clock.RunOne()) {
  }
  EXPECT_EQ(0, fired);
}

TEST(ClockTest, RunUntilAdvancesToDeadline) {
  SimClock clock;
  int fired = 0;
  clock.ScheduleAt(500, [&] { ++fired; });
  clock.ScheduleAt(1500, [&] { ++fired; });
  clock.RunUntil(1000);
  EXPECT_EQ(1, fired);
  EXPECT_EQ(1000u, clock.Now());
  EXPECT_TRUE(clock.HasPending());
}

TEST(ClockTest, EventsScheduledInsideEventsRun) {
  SimClock clock;
  int depth = 0;
  clock.ScheduleAfter(1, [&] {
    clock.ScheduleAfter(1, [&] { depth = 2; });
    depth = 1;
  });
  while (clock.RunOne()) {
  }
  EXPECT_EQ(2, depth);
}

TEST(FiberTest, SpawnRunsToCompletion) {
  Simulation sim;
  bool ran = false;
  sim.Spawn("t", [&] { ran = true; });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_TRUE(ran);
}

TEST(FiberTest, SleepForAdvancesSimTime) {
  Simulation sim;
  SimTime woke_at = 0;
  sim.Spawn("sleeper", [&] {
    sim.SleepFor(250);
    woke_at = sim.clock().Now();
  });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_EQ(250u, woke_at);
}

TEST(FiberTest, ManyFibersInterleaveDeterministically) {
  Simulation sim;
  std::string trace;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn("f", [&, i] {
      for (int k = 0; k < 3; ++k) {
        trace.push_back(static_cast<char>('a' + i));
        sim.scheduler().YieldCurrent();
      }
    });
  }
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_EQ("abcabcabc", trace);
}

TEST(FiberTest, DeadlockIsDetected) {
  Simulation sim;
  sim.Spawn("stuck", [&] { sim.scheduler().BlockCurrent(); });
  EXPECT_EQ(Simulation::RunResult::kDeadlock, sim.Run());
}

TEST(FiberTest, BlockAndUnblockFromEvent) {
  Simulation sim;
  bool resumed = false;
  Fiber* fiber = sim.Spawn("blocked", [&] {
    sim.scheduler().BlockCurrent();
    resumed = true;
  });
  sim.clock().ScheduleAfter(100, [&] { sim.scheduler().Unblock(fiber); });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_TRUE(resumed);
}

TEST(CpuTest, TrapDispatchesToHandlerWithFallbackChain) {
  Cpu cpu;
  int custom = 0;
  int fallback = 0;
  cpu.SetFallback(kTrapPageFault, [&](TrapFrame&) {
    ++fallback;
    return true;
  });
  // §6.2.4: a custom handler that declines traps it doesn't care about.
  cpu.SetVector(kTrapPageFault, [&](TrapFrame& frame) {
    if (frame.error_code == 0x42) {
      ++custom;
      return true;
    }
    return false;
  });
  cpu.RaiseTrap(kTrapPageFault, 0x42);
  EXPECT_EQ(1, custom);
  EXPECT_EQ(0, fallback);
  cpu.RaiseTrap(kTrapPageFault, 0x1);
  EXPECT_EQ(1, custom);
  EXPECT_EQ(1, fallback);
  EXPECT_EQ(2u, cpu.traps_dispatched());
}

TEST(CpuTest, InterruptsPendWhileDisabled) {
  Cpu cpu;
  int delivered = 0;
  cpu.SetVector(kIrqBaseVector, [&](TrapFrame&) {
    ++delivered;
    return true;
  });
  cpu.RaiseInterrupt(kIrqBaseVector);
  EXPECT_EQ(0, delivered);  // interrupts start disabled
  cpu.EnableInterrupts();
  EXPECT_EQ(1, delivered);
  cpu.RaiseInterrupt(kIrqBaseVector);
  EXPECT_EQ(2, delivered);
}

TEST(CpuTest, NoNestedInterrupts) {
  Cpu cpu;
  std::vector<int> order;
  cpu.SetVector(kIrqBaseVector, [&](TrapFrame&) {
    order.push_back(1);
    // Raising another IRQ inside the handler must defer it.
    cpu.RaiseInterrupt(kIrqBaseVector + 1);
    order.push_back(2);
    return true;
  });
  cpu.SetVector(kIrqBaseVector + 1, [&](TrapFrame&) {
    order.push_back(3);
    return true;
  });
  cpu.EnableInterrupts();
  cpu.RaiseInterrupt(kIrqBaseVector);
  EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
}

TEST(PicTest, MaskingLatchesAndUnmaskDelivers) {
  Cpu cpu;
  cpu.EnableInterrupts();
  int delivered = 0;
  cpu.SetVector(kIrqBaseVector + 5, [&](TrapFrame&) {
    ++delivered;
    return true;
  });
  Pic pic(&cpu);
  pic.RaiseIrq(5);  // masked at reset: latched
  EXPECT_EQ(0, delivered);
  pic.Unmask(5);
  EXPECT_EQ(1, delivered);  // pending edge delivered on unmask
  pic.RaiseIrq(5);
  EXPECT_EQ(2, delivered);
  EXPECT_EQ(2u, pic.raised_count(5));
}

TEST(PitTest, PeriodicTicks) {
  Simulation sim;
  Machine::Config config;
  Machine machine(&sim, config);
  machine.cpu().EnableInterrupts();
  int ticks = 0;
  machine.cpu().SetVector(kIrqBaseVector + Pit::kIrq, [&](TrapFrame&) {
    ++ticks;
    return true;
  });
  machine.pic().Unmask(Pit::kIrq);
  machine.pit().Start(100);  // 10 ms period
  sim.clock().RunUntil(105 * kNsPerMs);
  EXPECT_EQ(10, ticks);
  machine.pit().Stop();
  sim.clock().RunUntil(200 * kNsPerMs);
  EXPECT_EQ(10, ticks);
}

TEST(UartTest, LoopbackBetweenPeers) {
  Simulation sim;
  Cpu cpu;
  Pic pic(&cpu);
  Uart a(&sim.clock(), &pic, 4);
  Uart b(&sim.clock(), &pic, 3);
  a.ConnectPeer(&b);
  a.WriteByte('h');
  a.WriteByte('i');
  ASSERT_TRUE(b.RxReady());
  EXPECT_EQ('h', b.ReadByte());
  EXPECT_EQ('i', b.ReadByte());
  EXPECT_FALSE(b.RxReady());
  b.WriteByte('!');
  EXPECT_EQ('!', a.ReadByte());
}

TEST(UartTest, UnconnectedCapturesOutput) {
  Simulation sim;
  Cpu cpu;
  Pic pic(&cpu);
  Uart uart(&sim.clock(), &pic);
  uart.WriteByte('o');
  uart.WriteByte('k');
  EXPECT_EQ("ok", uart.TakeOutput());
  EXPECT_EQ("", uart.TakeOutput());
}

TEST(UartTest, RxInterruptFires) {
  Simulation sim;
  Cpu cpu;
  cpu.EnableInterrupts();
  Pic pic(&cpu);
  pic.Unmask(4);
  int irqs = 0;
  cpu.SetVector(kIrqBaseVector + 4, [&](TrapFrame&) {
    ++irqs;
    return true;
  });
  Uart uart(&sim.clock(), &pic, 4);
  uart.EnableRxInterrupt(true);
  uart.InjectRx("ab", 2);
  EXPECT_EQ(2, irqs);
}

class WireFixture : public ::testing::Test {
 protected:
  struct Sink : WireEndpoint {
    std::vector<std::vector<uint8_t>> frames;
    void FrameArrived(const uint8_t* frame, size_t len) override {
      frames.emplace_back(frame, frame + len);
    }
  };
};

TEST_F(WireFixture, DeliversToAllOtherEndpoints) {
  SimClock clock;
  EthernetWire wire(&clock, {});
  Sink a;
  Sink b;
  Sink c;
  wire.Attach(&a);
  wire.Attach(&b);
  wire.Attach(&c);
  uint8_t frame[64] = {1, 2, 3};
  wire.Transmit(&a, frame, sizeof(frame));
  while (clock.RunOne()) {
  }
  EXPECT_EQ(0u, a.frames.size());  // no self-delivery
  ASSERT_EQ(1u, b.frames.size());
  ASSERT_EQ(1u, c.frames.size());
  EXPECT_EQ(64u, b.frames[0].size());
}

TEST_F(WireFixture, BandwidthSerializesFrames) {
  SimClock clock;
  EthernetWire::Config config;
  config.bits_per_second = 100 * 1000 * 1000;  // 100 Mbps
  EthernetWire wire(&clock, config);
  Sink rx;
  Sink tx;
  wire.Attach(&tx);
  wire.Attach(&rx);
  uint8_t frame[1250];  // 10000 bits -> 100 us at 100 Mbps
  wire.Transmit(&tx, frame, sizeof(frame));
  wire.Transmit(&tx, frame, sizeof(frame));
  clock.RunUntil(150 * kNsPerUs);
  EXPECT_EQ(1u, rx.frames.size());  // second still serializing
  clock.RunUntil(250 * kNsPerUs);
  EXPECT_EQ(2u, rx.frames.size());
}

TEST_F(WireFixture, LossDropsDeterministically) {
  SimClock clock;
  EthernetWire::Config config;
  config.loss_percent = 50;
  config.fault_seed = 99;
  EthernetWire wire(&clock, config);
  Sink tx;
  Sink rx;
  wire.Attach(&tx);
  wire.Attach(&rx);
  uint8_t frame[64] = {};
  for (int i = 0; i < 100; ++i) {
    wire.Transmit(&tx, frame, sizeof(frame));
  }
  while (clock.RunOne()) {
  }
  EXPECT_GT(rx.frames.size(), 25u);
  EXPECT_LT(rx.frames.size(), 75u);
  EXPECT_EQ(100u - rx.frames.size(), wire.frames_dropped());
}

TEST(NicTest, FiltersByDestinationMac) {
  SimClock clock;
  Simulation sim;
  EthernetWire wire(&sim.clock(), {});
  Cpu cpu;
  Pic pic(&cpu);
  EtherAddr mac_a{{2, 0, 0, 0, 0, 1}};
  EtherAddr mac_b{{2, 0, 0, 0, 0, 2}};
  NicHw nic_a(&wire, &pic, &sim.clock(), mac_a);
  NicHw nic_b(&wire, &pic, &sim.clock(), mac_b);

  uint8_t frame[60] = {};
  memcpy(frame, mac_b.bytes, 6);  // dst = B
  nic_a.TxStart(frame, sizeof(frame));
  while (sim.clock().RunOne()) {
  }
  EXPECT_TRUE(nic_b.RxPending());
  EXPECT_EQ(0u, nic_a.rx_frames());

  // Broadcast reaches B too.
  memset(frame, 0xff, 6);
  nic_a.TxStart(frame, sizeof(frame));
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(2u, nic_b.rx_frames());

  // Frame for someone else is ignored.
  frame[5] = 0x77;
  frame[0] = 2;
  nic_a.TxStart(frame, sizeof(frame));
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(2u, nic_b.rx_frames());
}

TEST(NicTest, RxMitigationThresholdHoldoffAndRingFallback) {
  Simulation sim;
  EthernetWire wire(&sim.clock(), {});
  Cpu cpu;
  Pic pic(&cpu);
  EtherAddr mac_a{{2, 0, 0, 0, 0, 1}};
  EtherAddr mac_b{{2, 0, 0, 0, 0, 2}};
  NicHw tx(&wire, &pic, &sim.clock(), mac_a);
  NicHw rx(&wire, &pic, &sim.clock(), mac_b);
  rx.EnableRxInterrupt(true);

  uint8_t frame[60] = {};
  memcpy(frame, mac_b.bytes, 6);
  memcpy(frame + 6, mac_a.bytes, 6);
  auto send = [&](int n) {
    for (int i = 0; i < n; ++i) {
      tx.TxStart(frame, sizeof(frame));
    }
  };
  auto drain = [&] {
    uint8_t buf[kEtherMaxFrame];
    while (rx.RxPending()) {
      rx.RxDequeue(buf);
    }
  };
  auto irqs = [&] { return static_cast<uint64_t>(rx.rx_coalesce_irqs_counter()); };

  // Threshold: the IRQ fires on the Nth unannounced frame, not before.
  NicHw::RxMitigation mit;
  mit.frame_threshold = 3;
  rx.SetRxMitigation(mit);
  send(2);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(0u, irqs());
  EXPECT_TRUE(rx.RxPending());
  send(1);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(1u, irqs());
  EXPECT_EQ(1u, static_cast<uint64_t>(rx.rx_coalesce_threshold_counter()));
  drain();

  // Holdoff: below-threshold frames are announced when the timer armed by
  // the first of them expires.
  mit.frame_threshold = 100;
  mit.holdoff_ns = 1 * kNsPerMs;
  rx.SetRxMitigation(mit);
  send(2);
  sim.clock().RunUntil(sim.clock().Now() + 100 * kNsPerUs);
  EXPECT_EQ(1u, irqs()) << "no IRQ before the holdoff expires";
  sim.clock().RunUntil(sim.clock().Now() + 2 * kNsPerMs);
  EXPECT_EQ(2u, irqs());
  EXPECT_EQ(1u, static_cast<uint64_t>(rx.rx_coalesce_holdoff_counter()));
  drain();

  // Ring-occupancy fallback: with a huge threshold and no holdoff, the
  // safety net announces when the ring fills to the configured mark.
  mit.frame_threshold = 1000;
  mit.holdoff_ns = 0;
  mit.ring_fallback = 5;
  rx.SetRxMitigation(mit);
  send(4);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(2u, irqs());
  send(1);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(3u, irqs());
  EXPECT_EQ(1u, static_cast<uint64_t>(rx.rx_coalesce_ring_counter()));
  drain();

  // Masked RX: frames land silently, and re-enabling does NOT retroactively
  // announce them — the classic race a polled driver must re-check for.
  rx.EnableRxInterrupt(false);
  send(3);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(3u, irqs());
  EXPECT_TRUE(rx.RxPending());
  rx.EnableRxInterrupt(true);
  EXPECT_EQ(3u, irqs()) << "re-enable must not replay the pending frames";
  mit = NicHw::RxMitigation{};  // back to per-frame power-on defaults
  rx.SetRxMitigation(mit);
  send(1);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(4u, irqs());
  // Every accepted frame was counted even while masked/coalescing.
  EXPECT_EQ(static_cast<uint64_t>(rx.rx_coalesce_frames_counter()),
            rx.rx_frames());
}

TEST(NicTest, GatherTransmitMatchesFlat) {
  SimClock clock;
  Simulation sim;
  EthernetWire wire(&sim.clock(), {});
  Cpu cpu;
  Pic pic(&cpu);
  NicHw tx(&wire, &pic, &sim.clock(), EtherAddr{{2, 0, 0, 0, 0, 1}});
  NicHw rx(&wire, &pic, &sim.clock(), EtherAddr{{2, 0, 0, 0, 0, 2}});
  rx.SetPromiscuous(true);

  uint8_t part1[14] = {2, 0, 0, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0x08, 0x00};
  uint8_t part2[46];
  for (size_t i = 0; i < sizeof(part2); ++i) {
    part2[i] = static_cast<uint8_t>(i);
  }
  const uint8_t* chunks[] = {part1, part2};
  size_t lens[] = {sizeof(part1), sizeof(part2)};
  tx.TxStartVec(chunks, lens, 2);
  while (sim.clock().RunOne()) {
  }
  ASSERT_TRUE(rx.RxPending());
  uint8_t buf[kEtherMaxFrame];
  size_t n = rx.RxDequeue(buf);
  ASSERT_EQ(60u, n);
  EXPECT_EQ(0, memcmp(buf, part1, sizeof(part1)));
  EXPECT_EQ(0, memcmp(buf + 14, part2, sizeof(part2)));
}

TEST(DiskTest, ReadWriteWithCompletionIrq) {
  Simulation sim;
  Machine::Config config;
  Machine machine(&sim, config);
  machine.cpu().EnableInterrupts();
  DiskHw* disk = machine.AddDisk(128);
  int completions = 0;
  machine.cpu().SetVector(kIrqBaseVector + disk->irq(), [&](TrapFrame&) {
    ++completions;
    return true;
  });
  machine.pic().Unmask(disk->irq());

  uint8_t write_buf[512];
  for (size_t i = 0; i < sizeof(write_buf); ++i) {
    write_buf[i] = static_cast<uint8_t>(i * 7);
  }
  disk->SubmitWrite(5, 1, write_buf);
  EXPECT_TRUE(disk->Busy());
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(1, completions);
  EXPECT_TRUE(disk->RequestDone());
  EXPECT_EQ(Error::kOk, disk->RequestStatus());
  disk->AckCompletion();

  uint8_t read_buf[512] = {};
  disk->SubmitRead(5, 1, read_buf);
  while (sim.clock().RunOne()) {
  }
  EXPECT_EQ(0, memcmp(write_buf, read_buf, 512));
  EXPECT_EQ(2, completions);
}

TEST(DiskTest, OutOfRangeRequestFails) {
  Simulation sim;
  Machine machine(&sim, {});
  machine.cpu().EnableInterrupts();
  DiskHw* disk = machine.AddDisk(16);
  machine.cpu().SetVector(kIrqBaseVector + disk->irq(),
                          [](TrapFrame&) { return true; });
  machine.pic().Unmask(disk->irq());
  uint8_t buf[512];
  disk->SubmitRead(100, 1, buf);
  while (sim.clock().RunOne()) {
  }
  EXPECT_TRUE(disk->RequestDone());
  EXPECT_EQ(Error::kOutOfRange, disk->RequestStatus());
}

// Shared setup for the disk durability tests: machine, one disk, IRQ wired.
struct DiskRig {
  Simulation sim;
  Machine machine{&sim, {}};
  DiskHw* disk = nullptr;

  explicit DiskRig(uint64_t sectors) {
    machine.cpu().EnableInterrupts();
    disk = machine.AddDisk(sectors);
    machine.cpu().SetVector(kIrqBaseVector + disk->irq(),
                            [](TrapFrame&) { return true; });
    machine.pic().Unmask(disk->irq());
  }

  // Runs the simulation until the outstanding request completes and returns
  // its status.
  Error Run() {
    while (sim.clock().RunOne()) {
    }
    EXPECT_TRUE(disk->RequestDone());
    Error status = disk->RequestStatus();
    disk->AckCompletion();
    return status;
  }

  Error Write(uint64_t lba, uint32_t sectors, const uint8_t* buf) {
    disk->SubmitWrite(lba, sectors, buf);
    return Run();
  }

  Error Flush() {
    disk->SubmitFlush();
    return Run();
  }
};

void FillSector(uint8_t* buf, uint8_t tag) {
  for (size_t i = 0; i < DiskHw::kSectorSize; ++i) {
    buf[i] = static_cast<uint8_t>(tag + i);
  }
}

TEST(DiskTest, WriteCacheVolatileUntilFlush) {
  uint8_t sector[DiskHw::kSectorSize];
  FillSector(sector, 3);

  // Unflushed write: visible immediately, gone after the cut.
  {
    DiskRig rig(64);
    rig.disk->EnableWriteCache(true);
    EXPECT_EQ(Error::kOk, rig.Write(7, 1, sector));
    EXPECT_EQ(0, memcmp(rig.disk->raw() + 7 * DiskHw::kSectorSize, sector,
                        sizeof(sector)));
    EXPECT_EQ(1u, rig.disk->cached_writes());
    rig.disk->PowerCut(DiskHw::CutPolicy::kDropAll, 1);
    EXPECT_TRUE(rig.disk->powered_off());
    uint8_t zero[DiskHw::kSectorSize] = {};
    EXPECT_EQ(0, memcmp(rig.disk->raw() + 7 * DiskHw::kSectorSize, zero,
                        sizeof(zero)));
    EXPECT_EQ(1u, rig.disk->wcache_dropped_counter().value());
    // A dead controller fails every request.
    rig.disk->SubmitWrite(7, 1, sector);
    EXPECT_EQ(Error::kIo, rig.Run());
  }

  // Flushed write: survives the same cut.
  {
    DiskRig rig(64);
    rig.disk->EnableWriteCache(true);
    EXPECT_EQ(Error::kOk, rig.Write(7, 1, sector));
    EXPECT_EQ(Error::kOk, rig.Flush());
    EXPECT_EQ(0u, rig.disk->cached_writes());
    EXPECT_EQ(1u, rig.disk->flushes_completed());
    rig.disk->PowerCut(DiskHw::CutPolicy::kDropAll, 1);
    EXPECT_EQ(0, memcmp(rig.disk->raw() + 7 * DiskHw::kSectorSize, sector,
                        sizeof(sector)));
    EXPECT_EQ(0u, rig.disk->wcache_dropped_counter().value());
  }
}

TEST(DiskTest, WriteLogRecordsCompletionOrder) {
  DiskRig rig(64);
  uint8_t sector[DiskHw::kSectorSize];
  FillSector(sector, 9);
  EXPECT_EQ(Error::kOk, rig.Write(11, 1, sector));
  EXPECT_EQ(Error::kOk, rig.Write(3, 1, sector));
  ASSERT_EQ(2u, rig.disk->write_log().size());
  EXPECT_EQ(11u, rig.disk->write_log()[0].lba);
  EXPECT_EQ(3u, rig.disk->write_log()[1].lba);
  rig.disk->ClearWriteLog();
  EXPECT_TRUE(rig.disk->write_log().empty());
}

TEST(DiskTest, PowerCutPoliciesDeterministicPerSeed) {
  // For each lossy policy: the same seed must yield the same post-crash
  // image (the crash campaign replays runs by seed), and a different seed a
  // generally different one.
  for (DiskHw::CutPolicy policy :
       {DiskHw::CutPolicy::kDropSubset, DiskHw::CutPolicy::kReorder,
        DiskHw::CutPolicy::kTear}) {
    auto run = [&](uint64_t seed) {
      DiskRig rig(64);
      rig.disk->EnableWriteCache(true);
      uint8_t sector[4 * DiskHw::kSectorSize];
      for (uint8_t tag = 0; tag < 8; ++tag) {
        FillSector(sector, tag);
        FillSector(sector + DiskHw::kSectorSize, tag + 100);
        FillSector(sector + 2 * DiskHw::kSectorSize, tag + 200);
        FillSector(sector + 3 * DiskHw::kSectorSize, tag + 23);
        // Overlapping runs so reordering is observable.
        EXPECT_EQ(Error::kOk, rig.Write(tag * 2, 4, sector));
      }
      rig.disk->PowerCut(policy, seed);
      return std::vector<uint8_t>(rig.disk->raw(),
                                  rig.disk->raw() + rig.disk->raw_size());
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
  }
}

TEST(DiskTest, TearPolicyKeepsSectorPrefixOfLastWrite) {
  DiskRig rig(64);
  rig.disk->EnableWriteCache(true);
  uint8_t a[DiskHw::kSectorSize];
  uint8_t b[4 * DiskHw::kSectorSize];
  FillSector(a, 1);
  for (int s = 0; s < 4; ++s) {
    FillSector(b + s * DiskHw::kSectorSize, static_cast<uint8_t>(50 + s));
  }
  EXPECT_EQ(Error::kOk, rig.Write(2, 1, a));
  EXPECT_EQ(Error::kOk, rig.Write(10, 4, b));
  rig.disk->PowerCut(DiskHw::CutPolicy::kTear, 7);
  // The earlier write always survives a tear of the last one.
  EXPECT_EQ(0, memcmp(rig.disk->raw() + 2 * DiskHw::kSectorSize, a, sizeof(a)));
  EXPECT_EQ(1u, rig.disk->wcache_torn_counter().value());
  // The torn write landed some whole-sector prefix: each of its sectors is
  // entirely old (zero) or entirely new, and never new-after-old.
  bool seen_old = false;
  for (int s = 0; s < 4; ++s) {
    const uint8_t* sec = rig.disk->raw() + (10 + s) * DiskHw::kSectorSize;
    uint8_t zero[DiskHw::kSectorSize] = {};
    bool is_new = memcmp(sec, b + s * DiskHw::kSectorSize,
                         DiskHw::kSectorSize) == 0;
    bool is_old = memcmp(sec, zero, DiskHw::kSectorSize) == 0;
    EXPECT_TRUE(is_new || is_old) << "sector " << s << " is torn mid-sector";
    if (is_old) {
      seen_old = true;
    }
    if (seen_old) {
      EXPECT_TRUE(is_old) << "sector " << s << " written after a gap";
    }
  }
}

TEST(DiskTest, ArmedPowerCutFailsAtRiskWrite) {
  DiskRig rig(64);
  rig.disk->EnableWriteCache(true);
  uint8_t sector[DiskHw::kSectorSize];
  FillSector(sector, 5);
  rig.disk->ArmPowerCut(2, DiskHw::CutPolicy::kDropAll, 99);
  EXPECT_EQ(Error::kOk, rig.Write(1, 1, sector));
  // The second write is the dying gasp: power fails as it completes.
  EXPECT_EQ(Error::kIo, rig.Write(2, 1, sector));
  EXPECT_TRUE(rig.disk->powered_off());
  uint8_t zero[DiskHw::kSectorSize] = {};
  EXPECT_EQ(0, memcmp(rig.disk->raw() + 1 * DiskHw::kSectorSize, zero,
                      sizeof(zero)));
  EXPECT_EQ(0, memcmp(rig.disk->raw() + 2 * DiskHw::kSectorSize, zero,
                      sizeof(zero)));
}

TEST(DiskTest, ResetDuringInFlightWriteLeavesDurableStorageUntouched) {
  DiskRig rig(64);
  rig.disk->EnableWriteCache(true);
  uint8_t a[DiskHw::kSectorSize];
  uint8_t b[DiskHw::kSectorSize];
  FillSector(a, 1);
  FillSector(b, 2);
  EXPECT_EQ(Error::kOk, rig.Write(4, 1, a));
  EXPECT_EQ(Error::kOk, rig.Flush());

  // Reset the controller while the next write is still in flight: its
  // completion must never arrive and no partial transfer may reach the
  // cache or the store.
  rig.disk->SubmitWrite(5, 1, b);
  EXPECT_TRUE(rig.disk->Busy());
  rig.disk->Reset();
  while (rig.sim.clock().RunOne()) {
  }
  EXPECT_FALSE(rig.disk->RequestDone());
  EXPECT_EQ(1u, rig.disk->resets());
  EXPECT_EQ(1u, rig.disk->writes_completed());
  EXPECT_EQ(0u, rig.disk->cached_writes());
  uint8_t zero[DiskHw::kSectorSize] = {};
  EXPECT_EQ(0, memcmp(rig.disk->raw() + 5 * DiskHw::kSectorSize, zero,
                      sizeof(zero)));
  // The flushed write is still durable across a subsequent power cut.
  rig.disk->PowerCut(DiskHw::CutPolicy::kDropAll, 3);
  EXPECT_EQ(0, memcmp(rig.disk->raw() + 4 * DiskHw::kSectorSize, a, sizeof(a)));

  // And the controller works again after the reset (before the cut this
  // retry would have succeeded — verify via a second rig).
  DiskRig retry(64);
  retry.disk->SubmitWrite(5, 1, b);
  retry.disk->Reset();
  while (retry.sim.clock().RunOne()) {
  }
  EXPECT_EQ(Error::kOk, retry.Write(5, 1, b));
  EXPECT_EQ(0, memcmp(retry.disk->raw() + 5 * DiskHw::kSectorSize, b,
                      sizeof(b)));
}

TEST(DiskTest, FlushErrorFaultLeavesCacheVolatile) {
  DiskRig rig(64);
  fault::FaultEnv faults(1);
  fault::FaultSpec spec;
  spec.probability_percent = 100;
  spec.max_fires = 1;
  faults.Arm("disk.flush.error", spec);
  rig.disk->SetFaultEnv(&faults);
  rig.disk->EnableWriteCache(true);
  uint8_t sector[DiskHw::kSectorSize];
  FillSector(sector, 8);
  EXPECT_EQ(Error::kOk, rig.Write(6, 1, sector));
  // First flush fails; the cache must stay volatile.
  EXPECT_EQ(Error::kIo, rig.Flush());
  EXPECT_EQ(1u, rig.disk->cached_writes());
  EXPECT_EQ(0u, rig.disk->flushes_completed());
  // The retry drains it.
  EXPECT_EQ(Error::kOk, rig.Flush());
  EXPECT_EQ(0u, rig.disk->cached_writes());
  rig.disk->PowerCut(DiskHw::CutPolicy::kDropAll, 4);
  EXPECT_EQ(0, memcmp(rig.disk->raw() + 6 * DiskHw::kSectorSize, sector,
                      sizeof(sector)));
}

TEST(PhysMemTest, DmaReachability) {
  PhysMem phys(32 * 1024 * 1024);
  void* low = phys.PtrAt(1024 * 1024);
  void* high = phys.PtrAt(20 * 1024 * 1024);
  EXPECT_TRUE(phys.IsDmaReachable(low, 4096));
  EXPECT_FALSE(phys.IsDmaReachable(high, 4096));
  // Straddling the 16 MB boundary is not reachable.
  void* edge = phys.PtrAt(16 * 1024 * 1024 - 100);
  EXPECT_FALSE(phys.IsDmaReachable(edge, 4096));
  EXPECT_EQ(20u * 1024 * 1024, phys.AddrOf(high));
}

}  // namespace
}  // namespace oskit
