// Property-test harness for mbuf chain operations (§4.4.3, §4.7.3).
//
// Thousands of random chain-op sequences (append, append-chain, split,
// pullup, trim, copy, coalesce, prepend) are applied to an mbuf chain and,
// in lockstep, to a flat std::vector<uint8_t> reference.  After every
// operation the chain must agree with the reference byte for byte, its
// pkt_len must match the recomputed chain length, and every external
// storage descriptor must hold a positive refcount.  Source buffers come
// from a memdebug arena so fence overruns by the chain ops are caught, and
// the pool's live counters must return to zero after every case.
//
// Seeds: the suite runs over five fixed seeds (10k cases total).  Setting
// PROPERTY_SEED=<n> in the environment narrows the run to that single seed,
// so a CI failure line ("rerun: PROPERTY_SEED=...") reproduces directly.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/random.h"
#include "src/libc/malloc.h"
#include "src/memdebug/memdebug.h"
#include "src/net/mbuf.h"

namespace {

using oskit::MemDebug;
using oskit::Rng;
using oskit::net::MBuf;
using oskit::net::MbufPool;

// Verifies the chain against the flat reference and the structural
// invariants every public chain op must preserve.
void CheckChain(MbufPool& pool, const MBuf* m,
                const std::vector<uint8_t>& shadow) {
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(shadow.size(), static_cast<size_t>(m->pkt_len));
  ASSERT_EQ(shadow.size(), MbufPool::ChainLength(m));
  for (const MBuf* c = m; c != nullptr; c = c->next) {
    if (c->ext != nullptr) {
      ASSERT_GE(c->ext->refs, 1u);
    }
    ASSERT_LE(c->leading_space() + c->len, c->buf_size());
  }
  if (!shadow.empty()) {
    std::vector<uint8_t> flat(shadow.size());
    pool.CopyData(m, 0, flat.size(), flat.data());
    ASSERT_EQ(shadow, flat);
  }
}

// A random payload in the memdebug arena (fence-checked), at least 1 byte
// of storage so zero-length payloads still get a distinct allocation.
uint8_t* RandomPayload(MemDebug& md, Rng& rng, size_t len, const char* tag) {
  auto* buf = static_cast<uint8_t*>(md.Alloc(len > 0 ? len : 1, tag));
  for (size_t i = 0; i < len; ++i) {
    buf[i] = static_cast<uint8_t>(rng.Next());
  }
  return buf;
}

class MbufPropTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MbufPropTest, RandomChainOpsMatchFlatReference) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  MemDebug md(oskit::libc::HostMemEnv());
  MbufPool pool;
  constexpr size_t kCases = 2000;

  for (size_t case_i = 0; case_i < kCases; ++case_i) {
    SCOPED_TRACE(::testing::Message()
                 << "case " << case_i << " (rerun: PROPERTY_SEED=" << seed
                 << " ./mbuf_prop_test)");

    size_t init_len = rng.Below(5000);
    uint8_t* src = RandomPayload(md, rng, init_len, "prop.init");
    std::vector<uint8_t> shadow(src, src + init_len);
    MBuf* m = pool.FromData(src, init_len);
    md.Free(src);
    CheckChain(pool, m, shadow);

    const size_t op_count = rng.Range(3, 8);
    for (size_t op_i = 0; op_i < op_count && !::testing::Test::HasFailure();
         ++op_i) {
      switch (rng.Below(9)) {
        case 0: {  // Append raw bytes (tailroom fill + fresh mbufs).
          size_t n = rng.Below(3000);
          uint8_t* buf = RandomPayload(md, rng, n, "prop.append");
          pool.Append(m, buf, n);
          shadow.insert(shadow.end(), buf, buf + n);
          md.Free(buf);
          break;
        }
        case 1: {  // AppendChain: concatenate a freshly built packet.
          size_t n = rng.Below(3000);
          uint8_t* buf = RandomPayload(md, rng, n, "prop.cat");
          shadow.insert(shadow.end(), buf, buf + n);
          MBuf* b = pool.FromData(buf, n);
          md.Free(buf);
          m = pool.AppendChain(m, b);
          break;
        }
        case 2: {  // Split, verify both halves, then keep head/tail/both.
          size_t off = rng.Below(shadow.size() + 1);
          MBuf* tail = pool.Split(m, off);
          if (off >= shadow.size()) {
            // Out-of-range split must refuse and leave the chain untouched.
            EXPECT_EQ(nullptr, tail);
            break;
          }
          ASSERT_NE(nullptr, tail);
          std::vector<uint8_t> head_ref(shadow.begin(), shadow.begin() + off);
          std::vector<uint8_t> tail_ref(shadow.begin() + off, shadow.end());
          CheckChain(pool, m, head_ref);
          CheckChain(pool, tail, tail_ref);
          uint64_t keep = rng.Below(3);
          if (keep == 0) {  // splice back together: a no-op overall
            m = pool.AppendChain(m, tail);
          } else if (keep == 1) {  // keep the head
            pool.FreeChain(tail);
            shadow = head_ref;
          } else {  // keep the tail
            pool.FreeChain(m);
            m = tail;
            shadow = tail_ref;
          }
          break;
        }
        case 3: {  // Pullup: leading bytes become contiguous.
          if (shadow.empty()) {
            break;
          }
          size_t cap = std::min(shadow.size(), MBuf::kDataSpace);
          size_t n = rng.Range(1, cap);
          m = pool.Pullup(m, n);
          ASSERT_NE(nullptr, m);
          EXPECT_GE(m->len, n);
          break;
        }
        case 4: {  // TrimFront (m_adj positive).
          size_t n = rng.Below(shadow.size() + 1);
          m = pool.TrimFront(m, n);
          shadow.erase(shadow.begin(),
                       shadow.begin() + static_cast<ptrdiff_t>(n));
          break;
        }
        case 5: {  // TrimTo (m_adj negative).
          size_t n = rng.Below(shadow.size() + 1);
          pool.TrimTo(m, n);
          shadow.resize(n);
          break;
        }
        case 6: {  // CopyChain sub-range: verify the copy, sometimes swap.
          size_t off = rng.Below(shadow.size() + 1);
          size_t n = rng.Below(shadow.size() - off + 1);
          MBuf* copy = pool.CopyChain(m, off, n);
          std::vector<uint8_t> ref(shadow.begin() + static_cast<ptrdiff_t>(off),
                                   shadow.begin() +
                                       static_cast<ptrdiff_t>(off + n));
          CheckChain(pool, copy, ref);
          if (rng.Percent(25)) {
            // Adopt the copy (which may share cluster storage with the
            // original — exercises copy-on-shared paths in later ops).
            pool.FreeChain(m);
            m = copy;
            shadow = ref;
          } else {
            pool.FreeChain(copy);
          }
          break;
        }
        case 7: {  // Coalesce: content must be invariant.
          size_t max_count = rng.Range(1, 12);
          m = pool.Coalesce(m, max_count);
          break;
        }
        default: {  // Prepend space and fill it.
          size_t n = rng.Range(1, MBuf::kDataSpace);
          m = pool.Prepend(m, n);
          for (size_t i = 0; i < n; ++i) {
            m->data[i] = static_cast<uint8_t>(rng.Next());
          }
          shadow.insert(shadow.begin(), m->data, m->data + n);
          break;
        }
      }
      CheckChain(pool, m, shadow);
    }

    pool.FreeChain(m);
    ASSERT_EQ(0u, pool.mbufs_out());
    ASSERT_EQ(0u, pool.clusters_out());
    if (::testing::Test::HasFailure()) {
      break;
    }
  }

  // The workload buffers lived in the memdebug arena: no fence damage, no
  // leaks, no faults of any kind.
  EXPECT_EQ(0u, md.CheckAll());
  EXPECT_EQ(0u, md.DumpLeaks());
  EXPECT_EQ(0u, md.faults_detected());
}

// PROPERTY_SEED=<n> narrows the sweep to one reproducing seed; otherwise
// five fixed seeds give 10k cases total.
std::vector<uint64_t> PropertySeeds() {
  if (const char* env = std::getenv("PROPERTY_SEED")) {
    return {std::strtoull(env, nullptr, 0)};
  }
  return {0x5eed0001, 0x5eed0002, 0x5eed0003, 0x5eed0004, 0x5eed0005};
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbufPropTest,
                         ::testing::ValuesIn(PropertySeeds()));

}  // namespace
