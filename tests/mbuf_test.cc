// mbuf chain tests (§4.4.3, §4.7.3): allocation, chain operations, external
// storage sharing, and the BufIo glue's map-vs-copy behaviour.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/random.h"
#include "src/com/memblkio.h"
#include "src/net/mbuf.h"
#include "src/net/mbuf_bufio.h"

namespace oskit::net {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return v;
}

std::vector<uint8_t> Flatten(MbufPool& pool, const MBuf* m) {
  std::vector<uint8_t> out(MbufPool::ChainLength(m));
  pool.CopyData(m, 0, out.size(), out.data());
  return out;
}

TEST(MbufTest, FromDataSplitsAcrossClusters) {
  MbufPool pool;
  auto data = Pattern(5000);
  MBuf* m = pool.FromData(data.data(), data.size());
  EXPECT_EQ(5000u, m->pkt_len);
  EXPECT_GE(MbufPool::ChainCount(m), 3u);  // needs multiple clusters
  EXPECT_EQ(data, Flatten(pool, m));
  pool.FreeChain(m);
  EXPECT_EQ(0u, pool.mbufs_out());
  EXPECT_EQ(0u, pool.clusters_out());
}

TEST(MbufTest, PrependUsesHeadroomThenAllocates) {
  MbufPool pool;
  MBuf* m = pool.GetHeaderAligned(20);
  size_t before = MbufPool::ChainCount(m);
  m = pool.Prepend(m, 14);  // fits in the aligned head's leading space
  EXPECT_EQ(before, MbufPool::ChainCount(m));
  EXPECT_EQ(34u, m->pkt_len);

  // A head with no room forces a new mbuf.
  MBuf* tight = pool.Get();
  tight->len = 10;
  tight->pkt_len = 10;
  MBuf* grown = pool.Prepend(tight, 14);
  EXPECT_EQ(2u, MbufPool::ChainCount(grown));
  pool.FreeChain(m);
  pool.FreeChain(grown);
}

TEST(MbufTest, AppendFillsTailThenChains) {
  MbufPool pool;
  auto first = Pattern(100, 1);
  MBuf* m = pool.FromData(first.data(), first.size());
  auto second = Pattern(3000, 9);
  pool.Append(m, second.data(), second.size());
  EXPECT_EQ(3100u, m->pkt_len);
  auto flat = Flatten(pool, m);
  EXPECT_EQ(0, memcmp(flat.data(), first.data(), first.size()));
  EXPECT_EQ(0, memcmp(flat.data() + 100, second.data(), second.size()));
  pool.FreeChain(m);
}

TEST(MbufTest, PullupMakesHeaderContiguous) {
  MbufPool pool;
  // Build a chain whose first mbuf holds only 4 bytes.
  auto part1 = Pattern(4, 1);
  auto part2 = Pattern(60, 50);
  MBuf* head = pool.FromData(part1.data(), part1.size());
  MBuf* tail = pool.FromData(part2.data(), part2.size());
  head->next = tail;
  head->pkt_len = 64;

  MBuf* pulled = pool.Pullup(head, 20);
  ASSERT_NE(nullptr, pulled);
  EXPECT_GE(pulled->len, 20u);
  auto flat = Flatten(pool, pulled);
  EXPECT_EQ(0, memcmp(flat.data(), part1.data(), 4));
  EXPECT_EQ(0, memcmp(flat.data() + 4, part2.data(), 60));
  EXPECT_EQ(64u, flat.size());

  // Pullup beyond the packet frees the chain and fails.
  EXPECT_EQ(nullptr, pool.Pullup(pulled, 1000));
  EXPECT_EQ(0u, pool.mbufs_out());
}

TEST(MbufTest, TrimFrontAndTrimTo) {
  MbufPool pool;
  auto data = Pattern(1000);
  MBuf* m = pool.FromData(data.data(), data.size());
  m = pool.TrimFront(m, 300);
  EXPECT_EQ(700u, m->pkt_len);
  auto flat = Flatten(pool, m);
  EXPECT_EQ(0, memcmp(flat.data(), data.data() + 300, 700));
  pool.TrimTo(m, 100);
  EXPECT_EQ(100u, m->pkt_len);
  flat = Flatten(pool, m);
  EXPECT_EQ(0, memcmp(flat.data(), data.data() + 300, 100));
  pool.FreeChain(m);
  EXPECT_EQ(0u, pool.mbufs_out());
}

TEST(MbufTest, CopyChainSharesExternalStorage) {
  MbufPool pool;
  auto data = Pattern(4000);
  MBuf* m = pool.FromData(data.data(), data.size());
  uint64_t clusters_before = pool.clusters_out();
  MBuf* copy = pool.CopyChain(m, 100, 3000);
  // No new clusters: the copy references the same external storage (this is
  // why BSD transmit chains share the socket buffer's data, §5).
  EXPECT_EQ(clusters_before, pool.clusters_out());
  auto flat = Flatten(pool, copy);
  ASSERT_EQ(3000u, flat.size());
  EXPECT_EQ(0, memcmp(flat.data(), data.data() + 100, 3000));
  pool.FreeChain(m);
  // The shared clusters survive until the copy dies too.
  flat = Flatten(pool, copy);
  EXPECT_EQ(0, memcmp(flat.data(), data.data() + 100, 3000));
  pool.FreeChain(copy);
  EXPECT_EQ(0u, pool.clusters_out());
}

TEST(MbufBufIoTest, MapRequiresPhysicallyContiguousStorage) {
  MbufPool pool;
  auto data = Pattern(3000);
  MBuf* chain = pool.FromData(data.data(), data.size());
  ASSERT_GE(MbufPool::ChainCount(chain), 2u);
  size_t first_len = chain->len;
  auto io = MbufBufIo::Wrap(&pool, chain);

  void* addr = nullptr;
  // Within the first mbuf: map succeeds.
  ASSERT_EQ(Error::kOk, io->Map(&addr, 0, first_len));
  EXPECT_EQ(0, memcmp(addr, data.data(), first_len));
  ASSERT_EQ(Error::kOk, io->Unmap(addr, 0, first_len));
  // Spanning into a separately allocated cluster: the windows are not
  // adjacent in memory, so map fails and Read still works (§4.7.3).
  EXPECT_EQ(Error::kNotImpl, io->Map(&addr, 0, first_len + 10));
  std::vector<uint8_t> buf(first_len + 10);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk, io->Read(buf.data(), 0, buf.size(), &actual));
  EXPECT_EQ(buf.size(), actual);
  EXPECT_EQ(0, memcmp(buf.data(), data.data(), buf.size()));
}

TEST(MbufBufIoTest, MapSpansAdjacentSplitWindows) {
  MbufPool pool;
  // Regression for the documented multi-mbuf Map limitation: a mid-cluster
  // Split leaves two mbufs whose windows abut inside one shared cluster, and
  // a range crossing that boundary IS contiguous local memory.
  auto data = Pattern(1000);
  MBuf* head = pool.FromData(data.data(), data.size());
  ASSERT_EQ(1u, MbufPool::ChainCount(head));
  ASSERT_NE(nullptr, head->ext);
  MBuf* tail = pool.Split(head, 400);
  ASSERT_NE(nullptr, tail);
  ASSERT_EQ(tail->data, head->data + head->len);  // abutting windows
  head->next = tail;  // re-link into one packet
  head->pkt_len = static_cast<uint32_t>(data.size());
  auto io = MbufBufIo::Wrap(&pool, head);

  void* addr = nullptr;
  ASSERT_EQ(Error::kOk, io->Map(&addr, 300, 500));  // crosses the boundary
  EXPECT_EQ(0, memcmp(addr, data.data() + 300, 500));
  ASSERT_EQ(Error::kOk, io->Unmap(addr, 300, 500));
}

TEST(MbufBufIoTest, WriteSpansChainSegments) {
  MbufPool pool;
  // Regression: Write used to be kNotImpl outright; it now lands anywhere
  // in the chain, including ranges spanning segment boundaries.
  auto data = Pattern(3000);
  MBuf* chain = pool.FromData(data.data(), data.size());
  ASSERT_GE(MbufPool::ChainCount(chain), 2u);
  size_t first_len = chain->len;
  auto io = MbufBufIo::Wrap(&pool, chain);

  std::vector<uint8_t> patch(100, 0xEE);
  size_t actual = 0;
  ASSERT_EQ(Error::kOk,
            io->Write(patch.data(), first_len - 50, patch.size(), &actual));
  EXPECT_EQ(patch.size(), actual);

  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(Error::kOk, io->Read(back.data(), 0, back.size(), &actual));
  auto expect = data;
  memcpy(expect.data() + first_len - 50, patch.data(), patch.size());
  EXPECT_EQ(expect, back);
}

TEST(MbufBufIoTest, WriteRefusesSharedStorage) {
  MbufPool pool;
  auto data = Pattern(3000);
  MBuf* chain = pool.FromData(data.data(), data.size());
  MBuf* alias = pool.CopyChain(chain, 0, data.size());  // shares the clusters
  auto io = MbufBufIo::Wrap(&pool, chain);

  // The chain invariant forbids scribbling on aliased storage: refused
  // whole, nothing written.
  uint8_t b = 0xAB;
  size_t actual = 99;
  EXPECT_EQ(Error::kBusy, io->Write(&b, 10, 1, &actual));
  EXPECT_EQ(0u, actual);
  pool.FreeChain(alias);
  ASSERT_EQ(Error::kOk, io->Write(&b, 10, 1, &actual));  // sole owner again
  EXPECT_EQ(1u, actual);
}

TEST(MbufBufIoTest, ImportMapsContiguousForeignBuffers) {
  MbufPool pool;
  // A contiguous foreign packet (like an skbuff): zero-copy import.
  auto data = Pattern(1200);
  auto foreign = MemBlkIo::CreateFrom(data.data(), data.size());
  MBuf* imported = MbufFromBufIo(&pool, foreign.get(), data.size());
  ASSERT_NE(nullptr, imported);
  EXPECT_EQ(1u, MbufPool::ChainCount(imported));
  EXPECT_EQ(0u, pool.clusters_out());  // external reference, not a copy
  EXPECT_EQ(2u, foreign->ref_count()); // the chain holds the foreign object
  auto flat = Flatten(pool, imported);
  EXPECT_EQ(data, flat);
  pool.FreeChain(imported);
  EXPECT_EQ(1u, foreign->ref_count());
}

TEST(MbufBufIoTest, ImportCopiesDiscontiguousForeignBuffers) {
  MbufPool pool;
  // A foreign packet that is itself an mbuf chain cannot be mapped whole,
  // so the import copies (the reverse of the Table 1 transmit copy).
  auto data = Pattern(3000);
  MBuf* chain = pool.FromData(data.data(), data.size());
  auto io = MbufBufIo::Wrap(&pool, chain);
  MBuf* imported = MbufFromBufIo(&pool, io.get(), 3000);
  ASSERT_NE(nullptr, imported);
  auto flat = Flatten(pool, imported);
  EXPECT_EQ(data, flat);
  pool.FreeChain(imported);
}

// Property test: random chain-operation sequences preserve content
// equivalence with a flat shadow vector.
class MbufPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MbufPropertyTest, ChainOpsMatchShadow) {
  MbufPool pool;
  Rng rng(GetParam());
  auto initial = Pattern(rng.Range(200, 2000));
  std::vector<uint8_t> shadow = initial;
  MBuf* m = pool.FromData(initial.data(), initial.size());

  for (int step = 0; step < 100; ++step) {
    switch (rng.Below(4)) {
      case 0: {  // append
        auto extra = Pattern(rng.Range(1, 500), static_cast<uint8_t>(rng.Next()));
        pool.Append(m, extra.data(), extra.size());
        shadow.insert(shadow.end(), extra.begin(), extra.end());
        break;
      }
      case 1: {  // trim front
        if (shadow.size() < 2) {
          break;
        }
        size_t n = rng.Range(1, shadow.size() / 2);
        m = pool.TrimFront(m, n);
        shadow.erase(shadow.begin(), shadow.begin() + n);
        break;
      }
      case 2: {  // trim to
        size_t n = rng.Below(shadow.size() + 1);
        pool.TrimTo(m, n);
        shadow.resize(n);
        if (shadow.empty()) {
          // Re-seed so the test keeps going.
          auto fresh = Pattern(64, static_cast<uint8_t>(step));
          pool.Append(m, fresh.data(), fresh.size());
          shadow.insert(shadow.end(), fresh.begin(), fresh.end());
        }
        break;
      }
      case 3: {  // pullup a prefix
        size_t n = rng.Range(1, shadow.size() < MBuf::kDataSpace
                                    ? shadow.size()
                                    : MBuf::kDataSpace);
        MBuf* pulled = pool.Pullup(m, n);
        ASSERT_NE(nullptr, pulled);
        m = pulled;
        break;
      }
    }
    ASSERT_EQ(shadow.size(), MbufPool::ChainLength(m));
    ASSERT_EQ(shadow, Flatten(pool, m)) << "divergence at step " << step;
  }
  pool.FreeChain(m);
  EXPECT_EQ(0u, pool.mbufs_out());
  EXPECT_EQ(0u, pool.clusters_out());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbufPropertyTest, ::testing::Values(3, 17, 99, 123));

}  // namespace
}  // namespace oskit::net
