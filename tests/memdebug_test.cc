// Memory-debugging library tests (§3.5): seeded faults must be detected.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/memdebug/memdebug.h"

namespace oskit {
namespace {

class MemDebugTest : public ::testing::Test {
 protected:
  void SetUp() override {
    debug_ = std::make_unique<MemDebug>(libc::HostMemEnv());
    faults_.clear();
    debug_->SetReporter(
        +[](void* ctx, MemDebug::Fault fault, const char*, void*) {
          static_cast<MemDebugTest*>(ctx)->faults_.push_back(fault);
        },
        this);
  }

  bool Saw(MemDebug::Fault fault) const {
    for (MemDebug::Fault f : faults_) {
      if (f == fault) {
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<MemDebug> debug_;
  std::vector<MemDebug::Fault> faults_;
};

TEST_F(MemDebugTest, CleanUsageReportsNothing) {
  for (int i = 0; i < 100; ++i) {
    void* p = debug_->Alloc(i * 7 + 1, "clean");
    memset(p, 0x5a, i * 7 + 1);
    debug_->Free(p);
  }
  EXPECT_EQ(0u, debug_->CheckAll());
  EXPECT_EQ(0u, debug_->faults_detected());
  EXPECT_EQ(0u, debug_->live_blocks());
}

TEST_F(MemDebugTest, DetectsBufferOverrun) {
  auto* p = static_cast<uint8_t*>(debug_->Alloc(32, "overrun"));
  p[32] = 0xff;  // one past the end
  debug_->Free(p);
  EXPECT_TRUE(Saw(MemDebug::Fault::kOverrun));
}

TEST_F(MemDebugTest, DetectsBufferUnderrun) {
  auto* p = static_cast<uint8_t*>(debug_->Alloc(32, "underrun"));
  p[-1] = 0xff;
  debug_->Free(p);
  EXPECT_TRUE(Saw(MemDebug::Fault::kUnderrun));
}

TEST_F(MemDebugTest, DetectsDoubleFree) {
  void* p = debug_->Alloc(16, "double");
  debug_->Free(p);
  debug_->Free(p);
  EXPECT_TRUE(Saw(MemDebug::Fault::kDoubleFree));
  EXPECT_EQ(1u, debug_->faults_detected());
}

TEST_F(MemDebugTest, DetectsWriteAfterFree) {
  auto* p = static_cast<uint8_t*>(debug_->Alloc(64, "uaf"));
  debug_->Free(p);
  p[10] = 0x00;  // block is quarantined, not recycled
  EXPECT_GT(debug_->CheckAll(), 0u);
  EXPECT_TRUE(Saw(MemDebug::Fault::kWriteAfterFree));
}

TEST_F(MemDebugTest, CheckAllFindsLiveCorruption) {
  auto* p = static_cast<uint8_t*>(debug_->Alloc(8, "live"));
  EXPECT_EQ(0u, debug_->CheckAll());
  p[8] = 0x01;
  EXPECT_EQ(1u, debug_->CheckAll());
  // Repair so Free doesn't double-report in teardown accounting.
  p[8] = MemDebug::kFencePattern;
  debug_->Free(p);
}

TEST_F(MemDebugTest, DumpLeaksReportsLiveBlocks) {
  void* a = debug_->Alloc(10, "leak-a");
  void* b = debug_->Alloc(20, "leak-b");
  EXPECT_EQ(2u, debug_->DumpLeaks());
  EXPECT_TRUE(Saw(MemDebug::Fault::kLeak));
  EXPECT_EQ(2u, debug_->live_blocks());
  EXPECT_EQ(30u, debug_->live_bytes());
  debug_->Free(a);
  debug_->Free(b);
  EXPECT_EQ(0u, debug_->DumpLeaks());
}

TEST_F(MemDebugTest, AllocPoisonIsVisible) {
  auto* p = static_cast<uint8_t*>(debug_->Alloc(16, "poison"));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(MemDebug::kAllocPoison, p[i]);
  }
  debug_->Free(p);
}

TEST_F(MemDebugTest, QuarantineEventuallyReleases) {
  // More frees than the quarantine holds: old blocks get released to the
  // real allocator, and their final checks still pass.
  for (size_t i = 0; i < MemDebug::kQuarantineBlocks * 3; ++i) {
    void* p = debug_->Alloc(24, "churn");
    debug_->Free(p);
  }
  EXPECT_EQ(0u, debug_->faults_detected());
}

}  // namespace
}  // namespace oskit
