// Nested-kernel memory monitor: the protection lattice, the privileged
// gate, violation recovery through the trap vectors, DMA policy, domain
// containment wired into the secure wrappers, the scribble injector's
// determinism, and the kmon `mon` command.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "src/fault/scribble.h"
#include "src/kern/kmon.h"
#include "src/kern/paging.h"
#include "src/secure/wrap.h"

namespace oskit {
namespace {

using fault::FaultEnv;
using fault::FaultSpec;
using fault::ScribbleInjector;
using secure::Budget;
using secure::Principal;
using secure::PrincipalRegistry;
using secure::Resource;
using secure::SecureLmm;

class MemMonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{},
                                          KernelEnv::SleepMode::kFiber,
                                          &trace_);
  }

  // A page of kernel state with a known physical address.
  PhysAddr KernelPage() {
    void* p = kernel_->MemAllocAligned(kPageSize, 0, /*align_bits=*/12);
    EXPECT_NE(nullptr, p);
    return machine_->phys().AddrOf(p);
  }

  uint64_t Caught() { return trace_.registry.Value("mon.violation.caught"); }

  trace::TraceEnv trace_;
  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
};

// ---------------------------------------------------------------------------
// The open 1997 world: no monitor, stores land, bounds still checked
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, UncheckedWorldStoresLandWithWrapSafeBounds) {
  PhysMem& phys = machine_->phys();
  PhysAddr page = KernelPage();
  uint32_t word = 0xdeadbeef;
  ASSERT_EQ(Error::kOk, phys.Store(page, &word, sizeof(word)));
  EXPECT_EQ(0, std::memcmp(phys.PtrAt(page), &word, sizeof(word)));
  // Wrap-safe bounds: addr + len overflowing must be kFault, not a wrap.
  EXPECT_EQ(Error::kFault, phys.Store(phys.size() - 2, &word, sizeof(word)));
  EXPECT_EQ(Error::kFault, phys.Store(~PhysAddr{0} - 1, &word, sizeof(word)));
  EXPECT_EQ(Error::kOk, phys.Store(page, &word, 0));  // empty store is a no-op
}

// ---------------------------------------------------------------------------
// Enable: the map protects itself
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, EnableProtectsItsOwnMapAndDefaultsToKernelWritable) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  EXPECT_EQ(Error::kExist, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  ASSERT_NE(nullptr, mon);
  EXPECT_TRUE(mon->enabled());
  EXPECT_TRUE(mon->enforcing());

  // 32 MB arena / 4 KB pages = 8192 pages = 8192 map bytes = 2 map pages,
  // and those are the only monitor-private pages right after Enable.
  size_t pages = machine_->phys().size() / kPageSize;
  EXPECT_EQ(pages, mon->map_bytes_needed());
  EXPECT_EQ(2u, mon->PageCount(PageProt::kMonitorPrivate));
  EXPECT_EQ(pages - 2, mon->PageCount(PageProt::kKernelWritable));
  EXPECT_EQ(0u, mon->PageCount(PageProt::kComponentWritable));

  // A kernel-level store into the map is a PTE/map-flip violation: the
  // map is protected by the mechanism it implements.
  size_t map_page = 0;
  for (; map_page < pages; ++map_page) {
    if (mon->ProtOf(map_page * kPageSize) == PageProt::kMonitorPrivate) {
      break;
    }
  }
  ASSERT_LT(map_page, pages);
  uint8_t evil = static_cast<uint8_t>(PageProt::kComponentWritable);
  EXPECT_EQ(Error::kAccess,
            machine_->phys().Store(map_page * kPageSize, &evil, 1));
  EXPECT_EQ(1u, mon->counters().pte_violations.value());
  EXPECT_EQ(1u, Caught());
  EXPECT_EQ(PageProt::kMonitorPrivate, mon->ProtOf(map_page * kPageSize));
}

// ---------------------------------------------------------------------------
// The lattice, violation recovery, and domain containment
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, LatticeEnforcementKillsTheScribblerNotTheWorld) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PhysMem& phys = machine_->phys();
  PhysAddr kpage = KernelPage();
  uint8_t before = 0x5a;
  ASSERT_EQ(Error::kOk, phys.Store(kpage, &before, 1));

  // A hostile component scribbles on kernel state: denied, counted,
  // recovered (the trap handler returns true — no panic), domain killed.
  MemDomain hostile(mon, /*domain=*/7);
  uint8_t evil = 0xff;
  EXPECT_EQ(Error::kAccess, hostile.Store(kpage, &evil, 1));
  EXPECT_EQ(before, *static_cast<uint8_t*>(phys.PtrAt(kpage)));
  EXPECT_EQ(1u, mon->counters().store_violations.value());
  EXPECT_EQ(1u, mon->counters().raised.value());
  EXPECT_EQ(1u, Caught());
  EXPECT_TRUE(hostile.killed());
  EXPECT_EQ(1u, mon->counters().domains_killed.value());

  // The violation ring attributes it.
  const MemMonitor::Violation* v = mon->last_violation();
  ASSERT_NE(nullptr, v);
  EXPECT_EQ(7u, v->domain);
  EXPECT_EQ(kpage, v->addr);
  EXPECT_EQ(MemAccess::kComponentStore, v->access);

  // A killed domain loses the memory system entirely — even pages it
  // could otherwise write.  Every further access is still counted, so the
  // campaign's caught == injected equality holds after the kill.
  PhysAddr cpage = KernelPage();
  ASSERT_EQ(Error::kOk,
            mon->MonitorCall(cpage, kPageSize, PageProt::kComponentWritable));
  EXPECT_EQ(Error::kAccess, hostile.Store(cpage, &evil, 1));
  uint8_t out = 0;
  EXPECT_EQ(Error::kAccess, hostile.Load(cpage, &out, 1));
  EXPECT_EQ(3u, mon->counters().raised.value());
  EXPECT_EQ(3u, Caught());
  EXPECT_EQ(1u, mon->counters().domains_killed.value());  // idempotent

  // A live domain uses its granted page freely; the kill did not leak.
  MemDomain victim(mon, /*domain=*/8);
  EXPECT_EQ(Error::kOk, victim.Store(cpage, &before, 1));
  EXPECT_EQ(Error::kOk, victim.Load(cpage, &out, 1));
  EXPECT_EQ(before, out);
  // Components may read kernel state (kernel-writable), not write it —
  // and writing it is a violation that kills, same as any other.
  EXPECT_EQ(Error::kOk, victim.Load(kpage, &out, 1));
  EXPECT_EQ(Error::kAccess, victim.Store(kpage, &evil, 1));
  EXPECT_TRUE(victim.killed());
  EXPECT_EQ(4u, mon->counters().raised.value());
  EXPECT_EQ(4u, Caught());
  EXPECT_EQ(2u, mon->counters().domains_killed.value());
}

// ---------------------------------------------------------------------------
// The privileged gate is the only way to flip protections
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, GateValidatesSpansAndCountsCalls) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PhysAddr page = KernelPage();

  // Misaligned, empty, out-of-range, and wrapping spans are kInval — and
  // none of them count as a gate call.
  EXPECT_EQ(Error::kInval,
            mon->MonitorCall(page + 1, kPageSize, PageProt::kComponentWritable));
  EXPECT_EQ(Error::kInval,
            mon->MonitorCall(page, kPageSize / 2, PageProt::kComponentWritable));
  EXPECT_EQ(Error::kInval, mon->MonitorCall(page, 0, PageProt::kComponentWritable));
  EXPECT_EQ(Error::kInval,
            mon->MonitorCall(machine_->phys().size(), kPageSize,
                             PageProt::kComponentWritable));
  EXPECT_EQ(Error::kInval,
            mon->MonitorCall(~PhysAddr{0} & ~PhysAddr{kPageSize - 1},
                             2 * kPageSize, PageProt::kComponentWritable));
  EXPECT_EQ(0u, mon->counters().calls_protect.value());

  ASSERT_EQ(Error::kOk,
            mon->MonitorCall(page, kPageSize, PageProt::kComponentWritable));
  EXPECT_EQ(1u, mon->counters().calls_protect.value());
  EXPECT_EQ(PageProt::kComponentWritable, mon->ProtOf(page));
  EXPECT_EQ(PageProt::kComponentWritable, mon->ProtOf(page + kPageSize - 1));

  // MonitorStore is bounds-checked too (kFault, not a violation).
  uint32_t word = 1;
  EXPECT_EQ(Error::kFault,
            mon->MonitorStore(machine_->phys().size() - 2, &word, 4));
  EXPECT_EQ(0u, mon->counters().raised.value());
}

// ---------------------------------------------------------------------------
// Page tables are monitor-private: the PTE flip is a caught page fault
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, PteFlipRaisesPageFaultAndPagingStillWorks) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PageDirectory pd(kernel_.get());

  // The directory page was born monitor-private.
  EXPECT_EQ(PageProt::kMonitorPrivate, mon->ProtOf(pd.dir_phys()));

  // The kernel's own paging code still maps/translates — it goes through
  // the MonitorStore gate.
  ASSERT_EQ(Error::kOk, pd.MapPage(0x00400000, 0x00123000, kPteWritable));
  uint32_t pa = 0;
  uint32_t flags = 0;
  ASSERT_EQ(Error::kOk, pd.Translate(0x00400abc, &pa, &flags));
  EXPECT_EQ(0x00123abcu, pa);
  EXPECT_GT(mon->counters().calls_store.value(), 0u);

  // A component aiming at the directory: page fault vector, pte counter,
  // recovered, domain killed — and the PDE did not change.
  uint32_t* dir = pd.raw_dir();
  uint32_t pde_before = dir[0x00400000 >> 22];
  uint64_t traps_before = machine_->cpu().counters().traps_dispatched.value();
  MemDomain hostile(mon, /*domain=*/9);
  uint32_t evil_pde = 0x00666000 | kPtePresent | kPteWritable | kPteUser;
  EXPECT_EQ(Error::kAccess, hostile.Store(pd.dir_phys(), &evil_pde, 4));
  EXPECT_EQ(1u, mon->counters().pte_violations.value());
  EXPECT_EQ(1u, Caught());
  EXPECT_TRUE(hostile.killed());
  EXPECT_EQ(pde_before, dir[0x00400000 >> 22]);
  EXPECT_EQ(traps_before + 1,
            machine_->cpu().counters().traps_dispatched.value());

  // Even a KERNEL-level store cannot flip a PTE — only the gate can.
  EXPECT_EQ(Error::kAccess,
            machine_->phys().Store(pd.dir_phys(), &evil_pde, 4));
  EXPECT_EQ(2u, mon->counters().pte_violations.value());
  ASSERT_EQ(Error::kOk, pd.Translate(0x00400abc, &pa, &flags));  // unharmed
}

// ---------------------------------------------------------------------------
// DMA policy: devices reach component pages only (the IOMMU view)
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, DmaIsDeniedIntoKernelStateAndDiskReadsAreFenced) {
  DiskHw* disk = machine_->AddDisk(/*sector_count=*/64);
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PhysMem& phys = machine_->phys();

  PhysAddr kpage = KernelPage();
  uint8_t junk[16] = {1, 2, 3};
  EXPECT_EQ(Error::kAccess, phys.Dma(kpage, junk, sizeof(junk)));
  EXPECT_EQ(1u, mon->counters().dma_violations.value());
  EXPECT_EQ(1u, Caught());

  PhysAddr cpage = KernelPage();
  ASSERT_EQ(Error::kOk,
            mon->MonitorCall(cpage, kPageSize, PageProt::kComponentWritable));
  EXPECT_EQ(Error::kOk, phys.Dma(cpage, junk, sizeof(junk)));
  EXPECT_EQ(0, std::memcmp(phys.PtrAt(cpage), junk, sizeof(junk)));

  // The IDE model's completion path goes through the same fence: a read
  // into a kernel-writable buffer fails with kIo and counts dma_rejected
  // (the misprogrammed-DMA case); into a component buffer it lands.
  disk->SubmitRead(0, 1, static_cast<uint8_t*>(phys.PtrAt(kpage)));
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_TRUE(disk->RequestDone());
  EXPECT_EQ(Error::kIo, disk->RequestStatus());
  EXPECT_EQ(1u, disk->dma_rejected());
  EXPECT_EQ(2u, mon->counters().dma_violations.value());

  disk->SubmitRead(0, 1, static_cast<uint8_t*>(phys.PtrAt(cpage)));
  sim_.clock().RunUntil(sim_.clock().Now() + kNsPerMs);
  ASSERT_TRUE(disk->RequestDone());
  EXPECT_EQ(Error::kOk, disk->RequestStatus());
  EXPECT_EQ(1u, disk->dma_rejected());
}

// ---------------------------------------------------------------------------
// The ablation: enforcement off, stores land silently
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, AblationLandsScribblesSilently) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PhysMem& phys = machine_->phys();
  PhysAddr kpage = KernelPage();

  mon->SetEnforcement(false);
  MemDomain hostile(mon, /*domain=*/5);
  uint8_t evil = 0xee;
  // The store LANDS — kernel state is corrupt and nothing was counted.
  // This is the failure mode the monitor exists to kill, and what
  // bench/monitor_campaign's ablation leg measures.
  EXPECT_EQ(Error::kOk, hostile.Store(kpage, &evil, 1));
  EXPECT_EQ(0xee, *static_cast<uint8_t*>(phys.PtrAt(kpage)));
  EXPECT_EQ(0u, mon->counters().raised.value());
  EXPECT_EQ(0u, Caught());
  EXPECT_FALSE(hostile.killed());

  // Flipping enforcement back on restores the wall.
  mon->SetEnforcement(true);
  EXPECT_EQ(Error::kAccess, hostile.Store(kpage, &evil, 1));
  EXPECT_EQ(1u, mon->counters().raised.value());
}

// ---------------------------------------------------------------------------
// SecureLmm: tenant allocations are demoted, frees promote back
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, SecureLmmGrantsAndRevokesComponentPages) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PhysMem& phys = machine_->phys();

  PrincipalRegistry principals(&trace_);
  secure::AttachMonitor(&principals, mon);
  Principal* tenant = principals.Create(
      "tenant", Budget{}.Set(Resource::kMemBytes, 64 * kPageSize));
  SecureLmm slmm(&kernel_->lmm(), tenant, mon, &phys);

  void* block = slmm.AllocAligned(2 * kPageSize, 0, /*align_bits=*/12, 0);
  ASSERT_NE(nullptr, block);
  PhysAddr addr = phys.AddrOf(block);
  EXPECT_EQ(PageProt::kComponentWritable, mon->ProtOf(addr));
  EXPECT_EQ(PageProt::kComponentWritable, mon->ProtOf(addr + kPageSize));

  // The tenant's own view writes its granted pages.
  MemDomain view = secure::DomainView(mon, tenant);
  EXPECT_EQ(tenant->id(), view.id());
  uint8_t data = 0x42;
  EXPECT_EQ(Error::kOk, view.Store(addr, &data, 1));

  // Free promotes the pages back to kernel-writable: a stale component
  // store into recycled memory is a counted violation, not a landing.
  slmm.Free(block, 2 * kPageSize);
  EXPECT_EQ(PageProt::kKernelWritable, mon->ProtOf(addr));
  EXPECT_EQ(Error::kAccess, view.Store(addr, &data, 1));
  EXPECT_EQ(1u, mon->counters().store_violations.value());

  // The kill hook marked the principal: the COM wrapper surface denies
  // too — one choke point deprivileges every wrapper.
  EXPECT_TRUE(tenant->killed());
  EXPECT_EQ(Error::kAccess, tenant->Charge(Resource::kMemBytes, 1));
}

// ---------------------------------------------------------------------------
// Scribble injector: deterministic per seed, accounting exact
// ---------------------------------------------------------------------------

TEST_F(MemMonTest, ScribbleScheduleIsDeterministicAndFullyAccounted) {
  ScribbleInjector::Stats runs[2];
  for (int run = 0; run < 2; ++run) {
    trace::TraceEnv trace;
    Simulation sim;
    Machine machine(&sim, Machine::Config{});
    KernelEnv kernel(&machine, MultiBootInfo{}, KernelEnv::SleepMode::kFiber,
                     &trace);
    ASSERT_EQ(Error::kOk, kernel.EnableMemoryMonitor());
    MemMonitor* mon = kernel.memmon();

    void* kstate = kernel.MemAllocAligned(4 * kPageSize, 0, 12);
    ASSERT_NE(nullptr, kstate);
    PhysAddr kaddr = machine.phys().AddrOf(kstate);
    PageDirectory pd(&kernel);

    FaultEnv env(/*seed=*/42);
    env.Arm(fault::kScribbleRandomSite, FaultSpec{.probability_percent = 50});
    env.Arm(fault::kScribbleTargetedSite, FaultSpec{.probability_percent = 30});
    env.Arm(fault::kScribblePteSite, FaultSpec{.probability_percent = 20});
    env.Arm(fault::kScribbleDmaSite, FaultSpec{.probability_percent = 25});

    MemDomain hostile(mon, /*domain=*/3);
    ScribbleInjector inj(&env, &machine.phys(), &hostile);
    inj.AddKernelTarget(kaddr, 4 * kPageSize);
    inj.AddPteTarget(pd.dir_phys(), kPageSize);
    for (int i = 0; i < 200; ++i) {
      inj.Tick();
    }

    const ScribbleInjector::Stats& s = inj.stats();
    EXPECT_GT(s.attempted, 0u);
    // Guarded: every attempt was denied, counted, raised, and caught —
    // the exact equality the campaign's acceptance bar pins.
    EXPECT_EQ(s.attempted, s.denied);
    EXPECT_EQ(0u, s.landed);
    EXPECT_EQ(s.attempted, mon->counters().raised.value());
    EXPECT_EQ(s.attempted, trace.registry.Value("mon.violation.caught"));
    EXPECT_EQ(s.attempted, s.random + s.targeted + s.pte + s.dma);
    runs[run] = s;
  }
  // Same seed, same world: the exact same scribble schedule.
  EXPECT_EQ(runs[0].attempted, runs[1].attempted);
  EXPECT_EQ(runs[0].random, runs[1].random);
  EXPECT_EQ(runs[0].targeted, runs[1].targeted);
  EXPECT_EQ(runs[0].pte, runs[1].pte);
  EXPECT_EQ(runs[0].dma, runs[1].dma);
}

// ---------------------------------------------------------------------------
// kmon `mon`
// ---------------------------------------------------------------------------

class KmonMonTest : public MemMonTest {
 protected:
  void Type(const std::string& line) {
    machine_->console_uart().InjectRx(line.data(), line.size());
    machine_->console_uart().InjectRx("\r", 1);
  }

  std::string RunSession() {
    KernelMonitor kmon(kernel_.get(), &kernel_->console());
    sim_.Spawn("kmon", [&] {
      TrapFrame frame;
      kmon.Enter(frame);
    });
    EXPECT_EQ(Simulation::RunResult::kAllDone, sim_.Run());
    return machine_->console_uart().TakeOutput();
  }
};

TEST_F(KmonMonTest, MonCommandReportsDisabledWithoutMonitor) {
  Type("mon");
  Type("c");
  EXPECT_NE(std::string::npos, RunSession().find("memory monitor not enabled"));
}

TEST_F(KmonMonTest, MonCommandDumpsMapCountersAndViolationRing) {
  ASSERT_EQ(Error::kOk, kernel_->EnableMemoryMonitor());
  MemMonitor* mon = kernel_->memmon();
  PhysAddr kpage = KernelPage();
  MemDomain hostile(mon, /*domain=*/6);
  uint8_t evil = 1;
  EXPECT_EQ(Error::kAccess, hostile.Store(kpage, &evil, 1));

  Type("mon");
  Type("c");
  std::string out = RunSession();
  EXPECT_NE(std::string::npos, out.find("mon: enabled enforce=on"));
  EXPECT_NE(std::string::npos, out.find("monitor=2"));
  EXPECT_NE(std::string::npos, out.find("violations: raised=1 caught=1"));
  EXPECT_NE(std::string::npos, out.find("domains_killed=1"));
  EXPECT_NE(std::string::npos, out.find("#1 domain=6"));
  EXPECT_NE(std::string::npos, out.find("access=store prot=kernel"));

  // The ablation announces itself in the summary line.
  mon->SetEnforcement(false);
  Type("mon");
  Type("c");
  EXPECT_NE(std::string::npos, RunSession().find("enforce=OFF (ablation)"));
}

}  // namespace
}  // namespace oskit
