// End-to-end network integration tests: two simulated PCs on one Ethernet
// segment exchanging real TCP/IP, in each of the paper's §5 configurations
// and across stack implementations.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/testbed/testbed.h"

namespace oskit::testbed {
namespace {

constexpr uint16_t kPort = 5001;

// Streams `total_bytes` from host 1 to host 0 and verifies content integrity
// with a rolling pattern.
void RunStreamTransfer(World& world, size_t total_bytes, size_t chunk) {
  Host& receiver = world.host(0);
  Host& sender = world.host(1);

  size_t received_total = 0;
  uint64_t rx_checksum = 0;
  uint64_t tx_checksum = 0;

  world.sim().Spawn("receiver", [&] {
    ComPtr<Socket> listener = receiver.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(5));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    EXPECT_EQ(sender.addr.value, peer.addr.value);
    std::vector<uint8_t> buf(16 * 1024);
    for (;;) {
      size_t n = 0;
      Error err = conn->Recv(buf.data(), buf.size(), &n);
      ASSERT_EQ(Error::kOk, err);
      if (n == 0) {
        break;  // EOF
      }
      for (size_t i = 0; i < n; ++i) {
        rx_checksum = rx_checksum * 131 + buf[i];
      }
      received_total += n;
    }
  });

  world.sim().Spawn("sender", [&] {
    ComPtr<Socket> conn = sender.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{receiver.addr, kPort}));
    std::vector<uint8_t> buf(chunk);
    size_t sent = 0;
    uint8_t value = 0;
    while (sent < total_bytes) {
      size_t n = chunk < total_bytes - sent ? chunk : total_bytes - sent;
      for (size_t i = 0; i < n; ++i) {
        buf[i] = value++;
        tx_checksum = tx_checksum * 131 + buf[i];
      }
      size_t actual = 0;
      ASSERT_EQ(Error::kOk, conn->Send(buf.data(), n, &actual));
      ASSERT_EQ(n, actual);
      sent += n;
    }
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });

  world.RunToCompletion();
  EXPECT_EQ(total_bytes, received_total);
  EXPECT_EQ(tx_checksum, rx_checksum);
}

struct ConfigPair {
  NetConfig receiver;
  NetConfig sender;
  const char* name;
};

class NetTransferTest : public ::testing::TestWithParam<ConfigPair> {};

TEST_P(NetTransferTest, StreamsOneMegabyteIntact) {
  World world;
  world.AddHost("rx", GetParam().receiver);
  world.AddHost("tx", GetParam().sender);
  RunStreamTransfer(world, 1 << 20, 4096);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, NetTransferTest,
    ::testing::Values(
        ConfigPair{NetConfig::kOskit, NetConfig::kOskit, "oskit"},
        ConfigPair{NetConfig::kNativeBsd, NetConfig::kNativeBsd, "bsd"},
        ConfigPair{NetConfig::kNativeLinux, NetConfig::kNativeLinux, "linux"},
        // Cross-stack interop: the Linux-idiom engine must speak the same
        // TCP as the BSD-idiom engine.
        ConfigPair{NetConfig::kNativeBsd, NetConfig::kNativeLinux, "linux_to_bsd"},
        ConfigPair{NetConfig::kNativeLinux, NetConfig::kNativeBsd, "bsd_to_linux"},
        ConfigPair{NetConfig::kOskit, NetConfig::kNativeLinux, "linux_to_oskit"}),
    [](const ::testing::TestParamInfo<ConfigPair>& info) { return info.param.name; });

TEST(NetIntegrationTest, OskitNeitherPathCopiesWithScatterGather) {
  // The post-BufIoVec mechanism, asserted directly: receive still maps
  // (skbuff grafted into an mbuf) and transmit now gathers the multi-mbuf
  // segments straight into the NIC's DMA engine — no copy either way.
  World world;
  Host& rx = world.AddHost("rx", NetConfig::kOskit);
  Host& tx = world.AddHost("tx", NetConfig::kOskit);
  RunStreamTransfer(world, 256 * 1024, 4096);

  auto check = [](Host& host, bool sent_bulk) {
    auto devices = host.registry.LookupByInterface(EtherDev::kIid);
    ASSERT_EQ(1u, devices.size());
    DeviceInfo info;
    ASSERT_EQ(Error::kOk, devices[0]->GetInfo(&info));
    auto* dev = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());
    const auto& stats = dev->counters();
    // No flatten copies on either side, ever.
    EXPECT_EQ(stats.copied, 0u);
    EXPECT_EQ(stats.copied_bytes, 0u);
    if (sent_bulk) {
      // Bulk data segments are header+cluster chains: gathered, not copied.
      EXPECT_GT(stats.sg_frames, 100u);
      // Every gather frame has at least header + payload segments.
      EXPECT_GE(stats.sg_segments, 2 * stats.sg_frames);
    } else {
      // The receiver transmits only ACKs (single-mbuf segments, mappable).
      EXPECT_GT(stats.fake_skbuff, 10u);
    }
  };
  check(tx, /*sent_bulk=*/true);
  check(rx, /*sent_bulk=*/false);
}

TEST(NetIntegrationTest, OskitForcedFlattenReproducesTable1SendCopy) {
  // The historical Table 1 mechanism, still reachable via the ablation
  // toggle: with scatter-gather withheld, bulk transmit falls back to the
  // glue's Read() copy into a contiguous skbuff.
  World world;
  Host& rx = world.AddHost("rx", NetConfig::kOskit);
  Host& tx = world.AddHost("tx", NetConfig::kOskit);
  rx.stack->SetForceTxFlatten(true);
  tx.stack->SetForceTxFlatten(true);
  RunStreamTransfer(world, 256 * 1024, 4096);

  auto devices = tx.registry.LookupByInterface(EtherDev::kIid);
  ASSERT_EQ(1u, devices.size());
  auto* dev = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());
  const auto& stats = dev->counters();
  // Bulk data segments are header+cluster chains: unmappable, copied.
  EXPECT_GT(stats.copied, 100u);
  EXPECT_GT(stats.copied_bytes, 200u * 1024);
  EXPECT_EQ(stats.sg_frames, 0u);
}

TEST(NetIntegrationTest, PingMeasuresRoundTrip) {
  EthernetWire::Config wire;
  wire.propagation_ns = 50 * kNsPerUs;  // 50 us each way
  World world(wire);
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  world.sim().Spawn("pinger", [&] {
    SimTime rtt = 0;
    Error err = a.stack->Ping(b.addr, kNsPerSec, &rtt);
    ASSERT_EQ(Error::kOk, err);
    // Two propagation delays minimum (plus ARP happened first).
    EXPECT_GE(rtt, 100 * kNsPerUs);
    EXPECT_LT(rtt, 10 * kNsPerMs);
  });
  world.RunToCompletion();
}

TEST(NetIntegrationTest, UdpDatagramsRoundTrip) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  int echoed = 0;
  world.sim().Spawn("udp-echo", [&] {
    ComPtr<Socket> sock = b.MakeSocket(SockType::kDgram);
    ASSERT_EQ(Error::kOk, sock->Bind(SockAddr{kInetAny, 7}));
    for (int i = 0; i < 10; ++i) {
      char buf[2048];
      SockAddr from;
      size_t n = 0;
      ASSERT_EQ(Error::kOk, sock->RecvFrom(buf, sizeof(buf), &from, &n));
      size_t sent = 0;
      ASSERT_EQ(Error::kOk, sock->SendTo(buf, n, from, &sent));
    }
  });
  world.sim().Spawn("udp-client", [&] {
    ComPtr<Socket> sock = a.MakeSocket(SockType::kDgram);
    for (int i = 0; i < 10; ++i) {
      char msg[64];
      int len = snprintf(msg, sizeof(msg), "datagram %d", i);
      size_t sent = 0;
      ASSERT_EQ(Error::kOk, sock->SendTo(msg, len, SockAddr{b.addr, 7}, &sent));
      char reply[64];
      SockAddr from;
      size_t n = 0;
      ASSERT_EQ(Error::kOk, sock->RecvFrom(reply, sizeof(reply), &from, &n));
      ASSERT_EQ(static_cast<size_t>(len), n);
      EXPECT_EQ(0, memcmp(msg, reply, n));
      ++echoed;
    }
  });
  world.RunToCompletion();
  EXPECT_EQ(10, echoed);
}

TEST(NetIntegrationTest, UdpFragmentationReassembles) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  const size_t kBig = 9000;  // several fragments
  bool received = false;
  world.sim().Spawn("rx", [&] {
    ComPtr<Socket> sock = b.MakeSocket(SockType::kDgram);
    ASSERT_EQ(Error::kOk, sock->Bind(SockAddr{kInetAny, 9}));
    std::vector<uint8_t> buf(kBig + 16);
    SockAddr from;
    size_t n = 0;
    ASSERT_EQ(Error::kOk, sock->RecvFrom(buf.data(), buf.size(), &from, &n));
    ASSERT_EQ(kBig, n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(static_cast<uint8_t>(i * 7), buf[i]);
    }
    received = true;
  });
  world.sim().Spawn("tx", [&] {
    // The BSD ARP queue holds ONE pending packet, so an unresolved first
    // burst of fragments would lose all but the last fragment — and UDP
    // never retransmits.  Real BSD behaved identically; warm the cache.
    SimTime rtt = 0;
    ASSERT_EQ(Error::kOk, a.stack->Ping(b.addr, kNsPerSec, &rtt));
    ComPtr<Socket> sock = a.MakeSocket(SockType::kDgram);
    std::vector<uint8_t> buf(kBig);
    for (size_t i = 0; i < kBig; ++i) {
      buf[i] = static_cast<uint8_t>(i * 7);
    }
    size_t sent = 0;
    ASSERT_EQ(Error::kOk, sock->SendTo(buf.data(), buf.size(), SockAddr{b.addr, 9}, &sent));
  });
  world.RunToCompletion();
  EXPECT_TRUE(received);
  EXPECT_GT(a.stack->counters().ip_frag_out, 4u);
  EXPECT_EQ(b.stack->counters().ip_reassembled, 1u);
}

TEST(NetIntegrationTest, ConnectionRefusedGetsRst) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);
  (void)b;

  world.sim().Spawn("client", [&] {
    ComPtr<Socket> sock = a.MakeSocket(SockType::kStream);
    Error err = sock->Connect(SockAddr{world.host(1).addr, 4242});
    EXPECT_EQ(Error::kConnRefused, err);
  });
  world.RunToCompletion();
}

// TCP under adverse wire conditions: loss, duplication, reordering.  The
// BSD-idiom stack must deliver the byte stream intact via retransmission,
// reassembly and duplicate suppression.
struct FaultCase {
  uint32_t loss;
  uint32_t dup;
  SimTime jitter;
  uint64_t seed;
  const char* name;
};

class TcpFaultTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(TcpFaultTest, StreamSurvives) {
  const FaultCase& fc = GetParam();
  EthernetWire::Config wire;
  wire.loss_percent = fc.loss;
  wire.duplicate_percent = fc.dup;
  wire.reorder_jitter_ns = fc.jitter;
  wire.fault_seed = fc.seed;
  World world(wire);
  world.AddHost("rx", NetConfig::kNativeBsd);
  world.AddHost("tx", NetConfig::kNativeBsd);
  RunStreamTransfer(world, 128 * 1024, 3000);
}

INSTANTIATE_TEST_SUITE_P(
    Faults, TcpFaultTest,
    ::testing::Values(FaultCase{5, 0, 0, 11, "loss5"},
                      FaultCase{0, 10, 0, 12, "dup10"},
                      FaultCase{0, 0, 200 * kNsPerUs, 13, "reorder"},
                      FaultCase{3, 3, 100 * kNsPerUs, 14, "mixed"},
                      FaultCase{10, 5, 300 * kNsPerUs, 15, "harsh"}),
    [](const ::testing::TestParamInfo<FaultCase>& info) { return info.param.name; });

}  // namespace
}  // namespace oskit::testbed
