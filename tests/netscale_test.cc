// Scale-out networking: the learning virtual switch, the epoll-style
// NetSelector readiness interface, SYN-queue overflow accounting, ephemeral
// port exhaustion, the kmon netstat command, and the property test proving
// the O(1) TCP internals (4-tuple hash + timer wheel) behave byte-for-byte
// identically to the linear BSD baseline.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/kern/kmon.h"
#include "src/testbed/testbed.h"

namespace oskit::testbed {
namespace {

constexpr uint16_t kPort = 6100;

// ---------------------------------------------------------------------------
// Virtual switch
// ---------------------------------------------------------------------------

TEST(SwitchTest, LearnsMacsAndUnicastsAfterFlood) {
  VirtualSwitch::Config sw;
  World world(sw);
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);
  Host& c = world.AddHost("c", NetConfig::kNativeBsd);

  ASSERT_NE(nullptr, world.vswitch());
  EXPECT_EQ(3u, world.vswitch()->port_count());
  // Port index is attach order, which is AddHost order.
  EXPECT_EQ(0, world.vswitch()->PortOf(a.machine->nics()[0].get()));
  EXPECT_EQ(1, world.vswitch()->PortOf(b.machine->nics()[0].get()));
  EXPECT_EQ(2, world.vswitch()->PortOf(c.machine->nics()[0].get()));

  world.sim().Spawn("pings", [&] {
    SimTime rtt = 0;
    ASSERT_EQ(Error::kOk, a.stack->Ping(b.addr, kNsPerSec, &rtt));
    ASSERT_EQ(Error::kOk, a.stack->Ping(c.addr, kNsPerSec, &rtt));
    ASSERT_EQ(Error::kOk, b.stack->Ping(c.addr, kNsPerSec, &rtt));
  });
  world.RunToCompletion();

  VirtualSwitch* vs = world.vswitch();
  // ARP requests are broadcast -> flooded; everything after learning is
  // unicast to the learned port only.
  EXPECT_GT(vs->frames_flooded(), 0u);
  EXPECT_GT(vs->frames_unicast(), 0u);
  EXPECT_EQ(3u, vs->macs_learned());
  EXPECT_EQ(0u, vs->mac_moves());
  EXPECT_GT(vs->bytes_carried(), 0u);
}

TEST(SwitchTest, PerPortLossIsolatesOneUplinkAndHeals) {
  VirtualSwitch::Config sw;
  World world(sw);
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);
  Host& c = world.AddHost("c", NetConfig::kNativeBsd);
  (void)b;

  // Degrade only host c's uplink: frames egressing port 2 all drop.  The
  // rest of the fabric must be unaffected.
  VirtualSwitch::PortConfig broken;
  broken.loss_percent = 100;
  world.vswitch()->SetPortConfig(2, broken);

  world.sim().Spawn("pings", [&] {
    SimTime rtt = 0;
    ASSERT_EQ(Error::kOk, a.stack->Ping(b.addr, kNsPerSec, &rtt));
    EXPECT_FALSE(Ok(a.stack->Ping(c.addr, kNsPerSec, &rtt)));
    // Heal the port; the next ping re-runs ARP and succeeds.
    world.vswitch()->SetPortConfig(2, VirtualSwitch::PortConfig{});
    EXPECT_EQ(Error::kOk, a.stack->Ping(c.addr, 10 * kNsPerSec, &rtt));
  });
  world.RunToCompletion();
  EXPECT_GT(world.vswitch()->frames_dropped(), 0u);
}

// ---------------------------------------------------------------------------
// NetSelector semantics
// ---------------------------------------------------------------------------

TEST(SelectorTest, EdgeVersusLevelDeliverySemantics) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  world.sim().Spawn("driver", [&] {
    ComPtr<Socket> rx = a.MakeSocket(SockType::kDgram);
    ASSERT_EQ(Error::kOk, rx->Bind(SockAddr{kInetAny, 7000}));
    ComPtr<NetSelector> sel = a.stack->CreateSelector();

    // Edge-triggered readable registration on an empty socket: nothing to
    // harvest yet.
    ASSERT_EQ(Error::kOk, sel->Add(rx.get(), kNetReadable, /*edge=*/true,
                                   /*token=*/rx.get()));
    NetReadyEvent events[4];
    size_t n = 99;
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/false, &n));
    EXPECT_EQ(0u, n);

    // A datagram lands; the blocking Wait wakes with exactly one event.
    ComPtr<Socket> tx = b.MakeSocket(SockType::kDgram);
    size_t sent = 0;
    ASSERT_EQ(Error::kOk, tx->SendTo("ping", 4, SockAddr{a.addr, 7000}, &sent));
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/true, &n));
    ASSERT_EQ(1u, n);
    EXPECT_EQ(rx.get(), events[0].socket);
    EXPECT_EQ(rx.get(), events[0].token);
    EXPECT_EQ(kNetReadable, events[0].events & kNetReadable);

    // Edge semantics: the data is still unread, but no NEW readiness edge
    // occurred, so a second harvest is empty.
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/false, &n));
    EXPECT_EQ(0u, n);

    // Switch the registration to level-triggered: still-unread data is
    // reported again on every harvest until drained.
    ASSERT_EQ(Error::kOk, sel->Modify(rx.get(), kNetReadable, /*edge=*/false));
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/false, &n));
    ASSERT_EQ(1u, n);
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/false, &n));
    ASSERT_EQ(1u, n);

    char buf[16];
    size_t got = 0;
    ASSERT_EQ(Error::kOk, rx->Recv(buf, sizeof(buf), &got));
    EXPECT_EQ(4u, got);
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/false, &n));
    EXPECT_EQ(0u, n);
  });
  world.RunToCompletion();
  EXPECT_GT(a.trace.registry.Value("net.select.notifies"), 0u);
  EXPECT_GT(a.trace.registry.Value("net.select.harvested"), 0u);
  EXPECT_GT(a.trace.registry.Value("net.select.wakeups"), 0u);
}

TEST(SelectorTest, RegistrationLifecycleAndErrors) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  ComPtr<NetSelector> sel = a.stack->CreateSelector();
  ComPtr<NetSelector> sel2 = a.stack->CreateSelector();
  ComPtr<Socket> sock = a.MakeSocket(SockType::kDgram);
  ComPtr<Socket> foreign = b.MakeSocket(SockType::kDgram);

  EXPECT_EQ(Error::kInval, sel->Add(nullptr, kNetReadable, false, nullptr));
  // A socket from another host's stack is rejected.
  EXPECT_EQ(Error::kInval, sel->Add(foreign.get(), kNetReadable, false, nullptr));
  // Modify/Remove of a never-added socket fail cleanly.
  EXPECT_EQ(Error::kInval, sel->Modify(sock.get(), kNetReadable, false));
  EXPECT_EQ(Error::kInval, sel->Remove(sock.get()));

  ASSERT_EQ(Error::kOk, sel->Add(sock.get(), kNetWritable, false, nullptr));
  // One selector per socket: a second Add reports busy, whether it comes
  // from the same selector or a different one.
  EXPECT_EQ(Error::kBusy, sel->Add(sock.get(), kNetReadable, false, nullptr));
  EXPECT_EQ(Error::kBusy, sel2->Add(sock.get(), kNetReadable, false, nullptr));
  EXPECT_EQ(1u, a.trace.registry.Value("net.select.registered"));

  // Remove, then the other selector may claim it.
  ASSERT_EQ(Error::kOk, sel->Remove(sock.get()));
  ASSERT_EQ(Error::kOk, sel2->Add(sock.get(), kNetWritable, false, nullptr));
  EXPECT_EQ(1u, a.trace.registry.Value("net.select.registered"));

  // A registered socket that dies unregisters itself (weak registration).
  sock.Reset();
  EXPECT_EQ(0u, a.trace.registry.Value("net.select.registered"));
  NetReadyEvent events[2];
  size_t n = 99;
  ASSERT_EQ(Error::kOk, sel2->Wait(events, 2, /*block=*/false, &n));
  EXPECT_EQ(0u, n);
  EXPECT_GT(a.trace.registry.Value("net.select.removes"), 0u);

  // A dying selector detaches its sockets, so they can be re-registered.
  ComPtr<Socket> sock2 = a.MakeSocket(SockType::kDgram);
  ASSERT_EQ(Error::kOk, sel->Add(sock2.get(), kNetWritable, false, nullptr));
  sel.Reset();
  EXPECT_EQ(0u, a.trace.registry.Value("net.select.registered"));
  ASSERT_EQ(Error::kOk, sel2->Add(sock2.get(), kNetWritable, false, nullptr));
}

TEST(SelectorTest, NonblockingConnectCompletesThroughSelector) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[16];
    size_t n = 0;
    ASSERT_EQ(Error::kOk, conn->Recv(buf, sizeof(buf), &n));
    ASSERT_EQ(Error::kOk, conn->Send(buf, n, &n));
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world.sim().Spawn("client", [&] {
    ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
    void* extp = nullptr;
    ASSERT_EQ(Error::kOk, conn->Query(SocketExt::kIid, &extp));
    auto* ext = static_cast<SocketExt*>(extp);
    ASSERT_EQ(Error::kOk, ext->SetNonBlocking(true));

    // The handshake is in flight; completion is observed as writability.
    ASSERT_EQ(Error::kWouldBlock, conn->Connect(SockAddr{a.addr, kPort}));
    SockAddr peer;
    EXPECT_EQ(Error::kNotConn, conn->GetPeerName(&peer));

    ComPtr<NetSelector> sel = b.stack->CreateSelector();
    ASSERT_EQ(Error::kOk,
              sel->Add(conn.get(), kNetWritable, /*edge=*/true, nullptr));
    NetReadyEvent events[2];
    size_t n = 0;
    ASSERT_EQ(Error::kOk, sel->Wait(events, 2, /*block=*/true, &n));
    ASSERT_EQ(1u, n);
    EXPECT_EQ(kNetWritable, events[0].events & kNetWritable);
    ASSERT_EQ(Error::kOk, conn->GetPeerName(&peer));
    EXPECT_EQ(a.addr, peer.addr);

    // Back to blocking mode for the payload exchange.
    ASSERT_EQ(Error::kOk, ext->SetNonBlocking(false));
    ext->Release();
    ASSERT_EQ(Error::kOk, sel->Remove(conn.get()));
    size_t sent = 0;
    ASSERT_EQ(Error::kOk, conn->Send("hello", 5, &sent));
    char buf[16];
    std::string got;
    while (Ok(conn->Recv(buf, sizeof(buf), &sent)) && sent > 0) {
      got.append(buf, sent);
    }
    EXPECT_EQ("hello", got);
  });
  world.RunToCompletion();
}

TEST(SelectorTest, EchoServerServicesSixtyConnectionsOverSwitch) {
  // A miniature of the C10k flagship: one selector-driven server fiber
  // services every connection from three loadgen hosts — no
  // fiber-per-connection anywhere on the server.
  constexpr int kClientHosts = 3;
  constexpr int kPerHost = 20;
  constexpr int kTotal = kClientHosts * kPerHost;

  VirtualSwitch::Config sw;
  World world(sw);
  Host& server = world.AddHost("server", NetConfig::kNativeBsd);
  for (int h = 0; h < kClientHosts; ++h) {
    world.AddHost("load" + std::to_string(h), NetConfig::kNativeBsd);
  }

  bool listening = false;
  bool host_ready[kClientHosts] = {};
  int echoed_ok = 0;

  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener = server.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(64));
    ComPtr<NetSelector> sel = server.stack->CreateSelector();
    ASSERT_EQ(Error::kOk, sel->Add(listener.get(), kNetReadable,
                                   /*edge=*/false, /*token=*/nullptr));
    listening = true;

    int closed = 0;
    NetReadyEvent events[32];
    while (closed < kTotal) {
      size_t n = 0;
      ASSERT_EQ(Error::kOk, sel->Wait(events, 32, /*block=*/true, &n));
      for (size_t i = 0; i < n; ++i) {
        if (events[i].socket == listener.get()) {
          SockAddr peers[16];
          Socket* children[16];
          size_t accepted = 0;
          void* extp = nullptr;
          ASSERT_EQ(Error::kOk, listener->Query(SocketExt::kIid, &extp));
          auto* lext = static_cast<SocketExt*>(extp);
          ASSERT_EQ(Error::kOk,
                    lext->AcceptBatch(peers, children, 16, &accepted));
          lext->Release();
          for (size_t k = 0; k < accepted; ++k) {
            ASSERT_EQ(Error::kOk,
                      children[k]->Query(SocketExt::kIid, &extp));
            auto* ext = static_cast<SocketExt*>(extp);
            ASSERT_EQ(Error::kOk, ext->SetNonBlocking(true));
            ext->Release();
            ASSERT_EQ(Error::kOk, sel->Add(children[k], kNetReadable,
                                           /*edge=*/false, children[k]));
          }
          continue;
        }
        // Connection readable: drain and echo; EOF retires it.
        Socket* conn = events[i].socket;
        char buf[256];
        for (;;) {
          size_t got = 0;
          Error err = conn->Recv(buf, sizeof(buf), &got);
          if (err == Error::kWouldBlock) {
            break;
          }
          if (!Ok(err) || got == 0) {
            ASSERT_EQ(Error::kOk, sel->Remove(conn));
            conn->Release();
            ++closed;
            break;
          }
          size_t sent = 0;
          ASSERT_EQ(Error::kOk, conn->Send(buf, got, &sent));
          ASSERT_EQ(got, sent);
        }
      }
    }
    ASSERT_EQ(Error::kOk, sel->Remove(listener.get()));
    // Linger past the clients' TIME_WAIT expiry (8 slow ticks = 4 s) so the
    // wheel-driven 2MSL timers actually fire inside the simulation.
    world.sim().SleepFor(5 * kNsPerSec);
  });

  for (int h = 0; h < kClientHosts; ++h) {
    Host& lg = world.host(1 + h);
    // Warm the ARP cache before the storm: the one-deep ARP pending queue
    // would otherwise swallow most of a simultaneous SYN burst.
    world.sim().Spawn("prewarm", [&, h] {
      world.sim().PollWait([&] { return listening; });
      SimTime rtt = 0;
      ASSERT_EQ(Error::kOk, lg.stack->Ping(server.addr, kNsPerSec, &rtt));
      host_ready[h] = true;
    });
    for (int c = 0; c < kPerHost; ++c) {
      world.sim().Spawn("client", [&, h, c] {
        world.sim().PollWait([&] { return host_ready[h]; });
        ComPtr<Socket> conn = lg.MakeSocket(SockType::kStream);
        ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{server.addr, kPort}));
        char msg[16];
        snprintf(msg, sizeof(msg), "h%02dc%04d", h, c);
        size_t n = 0;
        ASSERT_EQ(Error::kOk, conn->Send(msg, sizeof(msg), &n));
        std::string got;
        char buf[32];
        while (got.size() < sizeof(msg) &&
               Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
          got.append(buf, n);
        }
        EXPECT_EQ(std::string(msg, sizeof(msg)), got);
        if (got == std::string(msg, sizeof(msg))) {
          ++echoed_ok;
        }
      });
    }
  }
  world.RunToCompletion();
  EXPECT_EQ(kTotal, echoed_ok);

  // The scalable internals really carried the load: demux by hash, no
  // linear PCB scans, timers through the wheel, one registration per
  // connection plus the listener.
  const auto& sc = server.stack->counters();
  EXPECT_EQ(0u, sc.pcb_scan_full.value());
  EXPECT_GT(sc.pcb_hash_hits.value(), 0u);
  EXPECT_EQ(static_cast<uint64_t>(kTotal) + 1, sc.select_adds.value());
  EXPECT_EQ(0u, sc.select_registered.value());
  EXPECT_GT(server.stack->timer_wheel().now(), 0u);  // ticking in lockstep
  // The clients all active-closed, so their TIME_WAIT timers fired through
  // their stacks' wheels during the server's linger.
  uint64_t client_fired = 0;
  for (int h = 0; h < kClientHosts; ++h) {
    client_fired += world.host(1 + h).stack->timer_wheel().fired();
  }
  EXPECT_GT(client_fired, 0u);
  EXPECT_GE(world.vswitch()->port_count(), 4u);
  EXPECT_GT(world.vswitch()->frames_unicast(), 0u);
}

// ---------------------------------------------------------------------------
// Listen-queue overflow accounting
// ---------------------------------------------------------------------------

TEST(TcpListenTest, SynOverflowIsCountedAndServiceRecovers) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  constexpr int kClients = 6;
  int served = 0;
  bool listening = false;
  world.sim().Spawn("server", [&] {
    SimTime rtt = 0;
    ASSERT_EQ(Error::kOk, a.stack->Ping(b.addr, kNsPerSec, &rtt));
    ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));  // capacity 2 in queue terms
    listening = true;
    for (int i = 0; i < kClients; ++i) {
      SockAddr peer;
      ComPtr<Socket> conn;
      ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
      ++served;
      world.sim().SleepFor(200 * kNsPerMs);  // let the queue back up
    }
  });
  for (int c = 0; c < kClients; ++c) {
    world.sim().Spawn("client", [&] {
      world.sim().PollWait([&] { return listening; });
      ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
      ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a.addr, kPort}));
    });
  }
  world.RunToCompletion();
  EXPECT_EQ(kClients, served);
  // Six simultaneous SYNs against queue capacity 2: the overflow was real,
  // was counted on the listener's stack, and the dropped SYNs' retransmits
  // eventually got everyone served.
  EXPECT_GT(a.stack->counters().tcp_listen_overflows.value(), 0u);
  EXPECT_EQ(a.trace.registry.Value("net.tcp.listen_overflows"),
            a.stack->counters().tcp_listen_overflows.value());
  EXPECT_GT(b.stack->counters().tcp_retransmits.value(), 0u);
}

// ---------------------------------------------------------------------------
// Ephemeral-port exhaustion
// ---------------------------------------------------------------------------

TEST(TcpPortTest, EphemeralExhaustionSurfacesAndRecovers) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  // Occupy the entire ephemeral range [49152, 65535] with bound sockets.
  std::vector<ComPtr<Socket>> squatters;
  squatters.reserve(16384);
  for (uint32_t port = 49152; port <= 65535; ++port) {
    ComPtr<Socket> s = a.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, s->Bind(SockAddr{kInetAny, static_cast<uint16_t>(port)}));
    squatters.push_back(std::move(s));
  }

  // With no port left, connect fails with EADDRNOTAVAIL (distinguishable
  // from mbuf kNoBufs and quota kQuotaExceeded) before any packet is built,
  // and the exhaustion is counted.
  ComPtr<Socket> conn = a.MakeSocket(SockType::kStream);
  EXPECT_EQ(Error::kAddrNotAvail, conn->Connect(SockAddr{HostAddr(1), kPort}));
  EXPECT_EQ(1u, a.stack->counters().port_exhausted.value());
  EXPECT_EQ(1u, a.trace.registry.Value("net.port.exhausted"));

  // Free one port; the allocator's rotating probe finds it and the stack
  // recovers without intervention.  The probe connects non-blocking so the
  // allocation outcome is visible without waiting on the (nonexistent)
  // peer's handshake.
  squatters[123].Reset();
  ComPtr<Socket> probe = a.MakeSocket(SockType::kStream);
  void* extp = nullptr;
  ASSERT_EQ(Error::kOk, probe->Query(SocketExt::kIid, &extp));
  auto* ext = static_cast<SocketExt*>(extp);
  ASSERT_EQ(Error::kOk, ext->SetNonBlocking(true));
  ext->Release();
  EXPECT_EQ(Error::kWouldBlock, probe->Connect(SockAddr{HostAddr(1), kPort}));
  SockAddr self;
  ASSERT_EQ(Error::kOk, probe->GetSockName(&self));
  EXPECT_EQ(49152u + 123u, self.port);
  EXPECT_EQ(1u, a.stack->counters().port_exhausted.value());
}

// ---------------------------------------------------------------------------
// Hash+wheel vs linear internals: behavioural equivalence
// ---------------------------------------------------------------------------

// One bulk transfer host(1) -> host(0) of `total` patterned bytes over a
// lossy wire; returns the received byte stream.
std::string LossyPatternedTransfer(World& world, size_t total) {
  Host& rx = world.host(0);
  Host& tx = world.host(1);
  auto pattern = [](size_t i) { return static_cast<uint8_t>(i * 37 + 11); };
  std::string got;
  got.reserve(total);
  world.sim().Spawn("eq-server", [&] {
    ComPtr<Socket> listener = rx.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[4096];
    size_t n = 0;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      got.append(buf, n);
    }
  });
  world.sim().Spawn("eq-client", [&] {
    ComPtr<Socket> conn = tx.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{rx.addr, kPort}));
    uint8_t buf[8192];
    size_t done = 0;
    while (done < total) {
      size_t chunk = std::min(sizeof(buf), total - done);
      for (size_t i = 0; i < chunk; ++i) {
        buf[i] = pattern(done + i);
      }
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Send(buf, chunk, &n));
      done += n;
    }
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world.RunToCompletion();
  return got;
}

TEST(TcpInternalsEquivalenceTest, HashWheelMatchesLinearByteForByte) {
  // The O(1) internals are a pure implementation change: for every fault
  // seed, the identical lossy-wire transfer under the 4-tuple hash + timer
  // wheel must produce the exact byte stream AND the exact segment counts of
  // the linear-scan + fast/slow-sweep baseline.  Any divergence in demux
  // order or timer firing shows up as a different retransmit schedule, which
  // this sweep would catch via the wire's deterministic fault RNG.
  constexpr size_t kTotal = 64 * 1024;
  const uint64_t seeds[] = {1, 7, 99, 1234, 31337};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    std::string streams[2];
    uint64_t tcp_out[2];
    uint64_t rexmt[2];
    for (int linear = 0; linear < 2; ++linear) {
      SCOPED_TRACE(linear ? "linear baseline" : "hash+wheel");
      EthernetWire::Config wc;
      wc.loss_percent = 2;
      wc.duplicate_percent = 1;
      wc.reorder_jitter_ns = 200 * kNsPerUs;
      wc.fault_seed = seed;
      World world(wc);
      world.AddHost("rx", NetConfig::kNativeBsd);
      world.AddHost("tx", NetConfig::kNativeBsd);
      world.host(0).stack->SetLinearTcpInternals(linear != 0);
      world.host(1).stack->SetLinearTcpInternals(linear != 0);

      streams[linear] = LossyPatternedTransfer(world, kTotal);
      ASSERT_EQ(kTotal, streams[linear].size());
      const auto& c0 = world.host(0).stack->counters();
      const auto& c1 = world.host(1).stack->counters();
      tcp_out[linear] = c0.tcp_out.value() + c1.tcp_out.value();
      rexmt[linear] = c0.tcp_retransmits.value() + c1.tcp_retransmits.value();
      if (linear) {
        // The baseline really ran the old machinery...
        EXPECT_GT(c0.pcb_scan_full.value() + c1.pcb_scan_full.value(), 0u);
        EXPECT_EQ(0u, c0.pcb_hash_hits.value() + c1.pcb_hash_hits.value());
      } else {
        // ...and the default really ran the new one.
        EXPECT_EQ(0u, c0.pcb_scan_full.value() + c1.pcb_scan_full.value());
        EXPECT_GT(c0.pcb_hash_hits.value() + c1.pcb_hash_hits.value(), 0u);
      }
    }
    EXPECT_EQ(streams[0], streams[1]) << "internals changed delivered bytes";
    EXPECT_EQ(tcp_out[0], tcp_out[1]) << "internals changed segment schedule";
    EXPECT_EQ(rexmt[0], rexmt[1]) << "internals changed retransmit schedule";
    for (size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(static_cast<uint8_t>(i * 37 + 11),
                static_cast<uint8_t>(streams[0][i]))
          << "payload corrupt at offset " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// kmon netstat
// ---------------------------------------------------------------------------

TEST(KmonNetstatTest, DumpsPcbsWheelAndSelectors) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  // Populate every table the command walks: a listener, a UDP binding, and
  // a live selector registration.
  ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
  ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
  ASSERT_EQ(Error::kOk, listener->Listen(4));
  ComPtr<Socket> dgram = a.MakeSocket(SockType::kDgram);
  ASSERT_EQ(Error::kOk, dgram->Bind(SockAddr{kInetAny, 7777}));
  ComPtr<NetSelector> sel = a.stack->CreateSelector();
  ASSERT_EQ(Error::kOk,
            sel->Add(listener.get(), kNetReadable, /*edge=*/false, nullptr));

  KernelMonitor kmon(a.kernel.get(), &a.kernel->console());
  kmon.SetNetstatSource([&](const std::function<void(const char*)>& emit) {
    a.stack->Netstat(emit);
  });

  auto type = [&](const std::string& line) {
    a.machine->console_uart().InjectRx(line.data(), line.size());
    a.machine->console_uart().InjectRx("\r", 1);
  };
  type("netstat");
  type("c");
  world.sim().Spawn("kmon", [&] {
    TrapFrame frame;
    kmon.Enter(frame);
  });
  world.RunToCompletion();

  std::string out = a.machine->console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("mode="));
  EXPECT_NE(std::string::npos, out.find("LISTEN"));
  EXPECT_NE(std::string::npos, out.find("backlog="));
  EXPECT_NE(std::string::npos, out.find("wheel now="));
  EXPECT_NE(std::string::npos, out.find("selector regs=1"));
  EXPECT_NE(std::string::npos, out.find("listen_overflows="));
}

}  // namespace
}  // namespace oskit::testbed
