// x86 page-table and segment-descriptor tests (§3.2).

#include <gtest/gtest.h>

#include "src/kern/paging.h"

namespace oskit {
namespace {

class PagingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>(&sim_, Machine::Config{});
    kernel_ = std::make_unique<KernelEnv>(machine_.get(), MultiBootInfo{});
  }

  Simulation sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<KernelEnv> kernel_;
};

TEST_F(PagingTest, DirectoryIsPageAlignedAndEmpty) {
  PageDirectory pd(kernel_.get());
  EXPECT_EQ(0u, pd.dir_phys() % kPageSize);
  uint32_t pa = 0;
  uint32_t flags = 0;
  EXPECT_EQ(Error::kFault, pd.Translate(0x1000, &pa, &flags));
  EXPECT_EQ(0u, pd.table_pages());
}

TEST_F(PagingTest, MapTranslateUnmap) {
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk, pd.MapPage(0x00400000, 0x00123000, kPteWritable));
  EXPECT_EQ(1u, pd.table_pages());

  uint32_t pa = 0;
  uint32_t flags = 0;
  ASSERT_EQ(Error::kOk, pd.Translate(0x00400abc, &pa, &flags));
  EXPECT_EQ(0x00123abcu, pa);  // offset preserved within the page
  EXPECT_EQ(kPteWritable, flags & kPteWritable);
  EXPECT_EQ(0u, flags & kPteUser);

  // Neighbouring page is not mapped.
  EXPECT_EQ(Error::kFault, pd.Translate(0x00401000, &pa, &flags));

  ASSERT_EQ(Error::kOk, pd.UnmapPage(0x00400000));
  EXPECT_EQ(Error::kFault, pd.Translate(0x00400000, &pa, &flags));
  // The now-empty page table was reclaimed.
  EXPECT_EQ(0u, pd.table_pages());
}

TEST_F(PagingTest, DoubleMapIsRefused) {
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk, pd.MapPage(0x1000, 0x2000, 0));
  EXPECT_EQ(Error::kExist, pd.MapPage(0x1000, 0x3000, 0));
  EXPECT_EQ(Error::kInval, pd.MapPage(0x1234, 0x2000, 0));  // unaligned
}

TEST_F(PagingTest, HardwareBitLayoutIsExact) {
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk,
            pd.MapPage(0x08048000, 0x00200000, kPteWritable | kPteUser));
  // Inspect the raw structures like the MMU would (§4.6 open impl).
  uint32_t* dir = pd.raw_dir();
  uint32_t pde = dir[0x08048000 >> 22];
  ASSERT_TRUE(pde & kPtePresent);
  auto* table = static_cast<uint32_t*>(
      kernel_->machine().phys().PtrAt(pde & 0xfffff000));
  uint32_t pte = table[(0x08048000 >> 12) & 0x3ff];
  EXPECT_EQ(0x00200000u | kPtePresent | kPteWritable | kPteUser, pte);
}

TEST_F(PagingTest, LargePagesTranslate) {
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk, pd.MapLargePage(0x00C00000, 0x01000000, kPteWritable));
  uint32_t pa = 0;
  uint32_t flags = 0;
  ASSERT_EQ(Error::kOk, pd.Translate(0x00C12345, &pa, &flags));
  EXPECT_EQ(0x01012345u, pa);
  // A 4 KB map into the same 4 MB slot is "already mapped", not OOM.
  EXPECT_EQ(Error::kExist, pd.MapPage(0x00C01000, 0x5000, 0));
  // Misaligned large page refused.
  EXPECT_EQ(Error::kInval, pd.MapLargePage(0x00C01000, 0, 0));
}

TEST_F(PagingTest, LargePageFlagCombinations) {
  PageDirectory pd(kernel_.get());
  // Writable + user, writable-only, and read-only large pages: Translate
  // must report exactly the flags that were set.
  ASSERT_EQ(Error::kOk,
            pd.MapLargePage(0x00C00000, 0x01000000, kPteWritable | kPteUser));
  ASSERT_EQ(Error::kOk, pd.MapLargePage(0x01000000, 0x01400000, kPteWritable));
  ASSERT_EQ(Error::kOk, pd.MapLargePage(0x01400000, 0x01800000, 0));
  uint32_t pa = 0;
  uint32_t flags = 0;
  ASSERT_EQ(Error::kOk, pd.Translate(0x00C55aa5, &pa, &flags));
  EXPECT_EQ(0x01055aa5u, pa);
  EXPECT_EQ(kPteWritable | kPteUser, flags);
  ASSERT_EQ(Error::kOk, pd.Translate(0x01000000, &pa, &flags));
  EXPECT_EQ(0x01400000u, pa);
  EXPECT_EQ(kPteWritable, flags);
  ASSERT_EQ(Error::kOk, pd.Translate(0x017fffff, &pa, &flags));
  EXPECT_EQ(0x01bfffffu, pa);
  EXPECT_EQ(0u, flags);
  // Large pages live in the directory: no page tables were allocated.
  EXPECT_EQ(0u, pd.table_pages());
}

TEST_F(PagingTest, UnmapLastPteFreesTable) {
  PageDirectory pd(kernel_.get());
  // Two PTEs in the same table: unmapping one keeps the table, unmapping
  // the last frees it and clears the directory slot.
  ASSERT_EQ(Error::kOk, pd.MapPage(0x00400000, 0x00123000, kPteWritable));
  ASSERT_EQ(Error::kOk, pd.MapPage(0x00401000, 0x00124000, kPteWritable));
  EXPECT_EQ(1u, pd.table_pages());
  ASSERT_EQ(Error::kOk, pd.UnmapPage(0x00400000));
  EXPECT_EQ(1u, pd.table_pages());
  EXPECT_TRUE(pd.raw_dir()[0x00400000 >> 22] & kPtePresent);
  ASSERT_EQ(Error::kOk, pd.UnmapPage(0x00401000));
  EXPECT_EQ(0u, pd.table_pages());
  EXPECT_EQ(0u, pd.raw_dir()[0x00400000 >> 22]);
  // Unmapping again faults: the table is gone.
  EXPECT_EQ(Error::kFault, pd.UnmapPage(0x00401000));
}

TEST_F(PagingTest, DoubleMapAcrossPageSizes) {
  PageDirectory pd(kernel_.get());
  // 4 KB map first, then a 4 MB map over the same slot: kExist.
  ASSERT_EQ(Error::kOk, pd.MapPage(0x00C00000, 0x5000, 0));
  EXPECT_EQ(Error::kExist, pd.MapLargePage(0x00C00000, 0x01000000, 0));
  // Large page first, then 4 KB maps anywhere inside the 4 MB slot: kExist.
  ASSERT_EQ(Error::kOk, pd.MapLargePage(0x01000000, 0x01400000, 0));
  EXPECT_EQ(Error::kExist, pd.MapPage(0x01000000, 0x6000, 0));
  EXPECT_EQ(Error::kExist, pd.MapPage(0x013ff000, 0x7000, 0));
  // And doubly-mapped large pages are refused too.
  EXPECT_EQ(Error::kExist, pd.MapLargePage(0x01000000, 0x01800000, 0));
}

TEST_F(PagingTest, MapRangeRejectsAddressWrap) {
  PageDirectory pd(kernel_.get());
  // `va + size` wrapping past 2^32 must be kInval, not a silent wrap that
  // maps low memory.
  EXPECT_EQ(Error::kInval, pd.MapRange(0xfffff000, 0, 0x2000, 0));
  EXPECT_EQ(Error::kInval, pd.MapRange(0x80000000, 0, 0x80001000, 0));
  // Same for the physical side.
  EXPECT_EQ(Error::kInval, pd.MapRange(0x10000000, 0xfffff000, 0x2000, 0));
  uint32_t pa = 0;
  uint32_t flags = 0;
  EXPECT_EQ(Error::kFault, pd.Translate(0x0, &pa, &flags));  // nothing mapped
  // A range ending exactly at 4 GB is still valid.
  EXPECT_EQ(Error::kOk, pd.MapRange(0xfffff000, 0x00200000, 0x1000, 0));
  ASSERT_EQ(Error::kOk, pd.Translate(0xfffff123, &pa, &flags));
  EXPECT_EQ(0x00200123u, pa);
}

TEST_F(PagingTest, MapRangeCoversEveryPage) {
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk, pd.MapRange(0x10000000, 0x00300000, 64 * kPageSize, 0));
  for (uint32_t i = 0; i < 64; ++i) {
    uint32_t pa = 0;
    uint32_t flags = 0;
    ASSERT_EQ(Error::kOk, pd.Translate(0x10000000 + i * kPageSize, &pa, &flags));
    ASSERT_EQ(0x00300000 + i * kPageSize, pa);
  }
}

TEST_F(PagingTest, IdentityMapThenTouchThroughTranslation) {
  // End-to-end: identity-map low memory, write through translated
  // addresses, observe in physical memory.
  PageDirectory pd(kernel_.get());
  ASSERT_EQ(Error::kOk, pd.MapRange(0, 0, 1 << 20, kPteWritable));
  uint32_t pa = 0;
  uint32_t flags = 0;
  ASSERT_EQ(Error::kOk, pd.Translate(0x7c00, &pa, &flags));
  ASSERT_EQ(0x7c00u, pa);
  auto* p = static_cast<uint8_t*>(kernel_->machine().phys().PtrAt(pa));
  *p = 0x55;
  EXPECT_EQ(0x55, *static_cast<uint8_t*>(kernel_->machine().phys().PtrAt(0x7c00)));
}

TEST(SegmentTest, EncodeDecodeRoundTrip) {
  const SegmentDescriptor cases[] = {
      {.base = 0, .limit = 0xffffffff, .code = true, .writable = true, .dpl = 0},
      {.base = 0, .limit = 0xffffffff, .code = false, .writable = true, .dpl = 3},
      {.base = 0x00400000, .limit = 0xfffff, .code = true, .writable = false,
       .dpl = 1},
      {.base = 0x12345678, .limit = 0x9abc, .code = false, .writable = false,
       .dpl = 2, .present = false},
  };
  for (const SegmentDescriptor& seg : cases) {
    uint64_t raw = EncodeSegment(seg);
    SegmentDescriptor back = DecodeSegment(raw);
    EXPECT_EQ(seg.base, back.base);
    EXPECT_EQ(seg.code, back.code);
    EXPECT_EQ(seg.writable, back.writable);
    EXPECT_EQ(seg.dpl, back.dpl);
    EXPECT_EQ(seg.present, back.present);
    EXPECT_EQ(seg.is_32bit, back.is_32bit);
    // Page-granular limits round up to the 4K boundary, like hardware.
    if (seg.limit > 0xfffff) {
      EXPECT_EQ(seg.limit | 0xfff, back.limit);
    } else {
      EXPECT_EQ(seg.limit, back.limit);
    }
  }
}

TEST(SegmentTest, FlatCodeSegmentMatchesKnownEncoding) {
  // The classic flat 32-bit ring-0 code segment: 0x00CF9A000000FFFF.
  SegmentDescriptor seg;
  seg.base = 0;
  seg.limit = 0xffffffff;
  seg.code = true;
  seg.writable = true;  // readable
  seg.dpl = 0;
  EXPECT_EQ(0x00CF9A000000FFFFull, EncodeSegment(seg));
  // And the flat data segment: 0x00CF92000000FFFF.
  seg.code = false;
  EXPECT_EQ(0x00CF92000000FFFFull, EncodeSegment(seg));
}

}  // namespace
}  // namespace oskit
