// The §5 POSIX path end to end: "the C library's socket call uses a
// client-provided socket factory interface to create new sockets", so ttcp
// compiled against the POSIX API runs unchanged on any stack that provides
// the socket and socket-factory interfaces.  These tests drive the network
// entirely through PosixIo — the same calls the paper's ttcp made.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "src/libc/posix.h"
#include "src/testbed/testbed.h"

namespace oskit::testbed {
namespace {

constexpr uint16_t kPort = 7000;

class PosixNetTest : public ::testing::TestWithParam<NetConfig> {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>();
    world_->AddHost("a", GetParam());
    world_->AddHost("b", GetParam());
  }

  std::unique_ptr<World> world_;
};

TEST_P(PosixNetTest, TtcpStyleTransferThroughPosixCalls) {
  constexpr size_t kBlocks = 64;
  constexpr size_t kBlockSize = 4096;
  size_t received = 0;

  world_->sim().Spawn("posix-server", [&] {
    // posix_set_socketcreator (§5): register the stack's factory.
    libc::PosixIo posix;
    posix.SetSocketCreator(world_->host(0).socket_factory);
    int listener = posix.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_GE(listener, 0);
    ASSERT_EQ(0, posix.Bind(listener, SockAddr{kInetAny, kPort}));
    ASSERT_EQ(0, posix.Listen(listener, 2));
    SockAddr peer;
    int conn = posix.Accept(listener, &peer);
    ASSERT_GE(conn, 0);
    char buf[8192];
    long n;
    while ((n = posix.Read(conn, buf, sizeof(buf))) > 0) {
      received += static_cast<size_t>(n);
    }
    EXPECT_EQ(0, n);  // orderly EOF
    EXPECT_EQ(0, posix.Close(conn));
    EXPECT_EQ(0, posix.Close(listener));
  });

  world_->sim().Spawn("posix-client", [&] {
    libc::PosixIo posix;
    posix.SetSocketCreator(world_->host(1).socket_factory);
    int fd = posix.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(0, posix.Connect(fd, SockAddr{world_->host(0).addr, kPort}));
    char block[kBlockSize];
    memset(block, 'T', sizeof(block));
    for (size_t i = 0; i < kBlocks; ++i) {
      ASSERT_EQ(static_cast<long>(kBlockSize), posix.Write(fd, block, kBlockSize));
    }
    ASSERT_EQ(0, posix.Shutdown(fd, SockShutdown::kWrite));
    EXPECT_EQ(0, posix.Close(fd));
  });

  world_->RunToCompletion();
  EXPECT_EQ(kBlocks * kBlockSize, received);
}

INSTANTIATE_TEST_SUITE_P(Stacks, PosixNetTest,
                         ::testing::Values(NetConfig::kOskit, NetConfig::kNativeBsd,
                                           NetConfig::kNativeLinux),
                         [](const ::testing::TestParamInfo<NetConfig>& info) {
                           switch (info.param) {
                             case NetConfig::kOskit:
                               return "oskit";
                             case NetConfig::kNativeBsd:
                               return "bsd";
                             case NetConfig::kNativeLinux:
                               return "linux";
                           }
                           return "?";
                         });

TEST(PosixNetSingleTest, SignalAndSelectAreNullFunctions) {
  // §5: ttcp "uses signal and select ... they are only used to handle
  // exceptional conditions and can be implemented as null functions
  // without affecting the results."
  libc::PosixIo posix;
  EXPECT_EQ(0, posix.SignalStub(2));
  EXPECT_EQ(0, posix.SelectStub(4));
}

TEST(PosixNetSingleTest, SocketErrorsMapToNegatedCodes) {
  World world;
  world.AddHost("a", NetConfig::kNativeBsd);
  world.AddHost("b", NetConfig::kNativeBsd);
  world.sim().Spawn("t", [&] {
    libc::PosixIo posix;
    posix.SetSocketCreator(world.host(0).socket_factory);
    int fd = posix.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_GE(fd, 0);
    // Connecting to a port nobody listens on.
    EXPECT_EQ(-static_cast<int>(Error::kConnRefused),
              posix.Connect(fd, SockAddr{world.host(1).addr, 4321}));
    posix.Close(fd);
    // File calls on a socket fd.
    fd = posix.Socket(SockDomain::kInet, SockType::kDgram);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(-static_cast<long>(Error::kBadF), posix.Lseek(fd, 0, libc::kSeekSet));
    posix.Close(fd);
    // Socket calls on a bad fd.
    EXPECT_EQ(-static_cast<int>(Error::kBadF), posix.Listen(42, 1));
    EXPECT_EQ(-static_cast<int>(Error::kBadF), posix.Accept(42, nullptr));
  });
  world.RunToCompletion();
}

TEST(PosixNetSingleTest, UdpThroughPosix) {
  World world;
  world.AddHost("a", NetConfig::kNativeBsd);
  world.AddHost("b", NetConfig::kNativeBsd);
  std::string got;
  world.sim().Spawn("rx", [&] {
    libc::PosixIo posix;
    posix.SetSocketCreator(world.host(0).socket_factory);
    int fd = posix.Socket(SockDomain::kInet, SockType::kDgram);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(0, posix.Bind(fd, SockAddr{kInetAny, 99}));
    char buf[64];
    long n = posix.Recv(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    got.assign(buf, static_cast<size_t>(n));
  });
  world.sim().Spawn("tx", [&] {
    libc::PosixIo posix;
    posix.SetSocketCreator(world.host(1).socket_factory);
    int fd = posix.Socket(SockDomain::kInet, SockType::kDgram);
    ASSERT_GE(fd, 0);
    // Connected-UDP so plain Write works.
    ASSERT_EQ(0, posix.Connect(fd, SockAddr{world.host(0).addr, 99}));
    ASSERT_EQ(9, posix.Write(fd, "datagram!", 9));
  });
  world.RunToCompletion();
  EXPECT_EQ("datagram!", got);
}

}  // namespace
}  // namespace oskit::testbed
