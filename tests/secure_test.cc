// Multi-tenant isolation (§3.8): per-principal quotas and ACLs enforced by
// the src/secure COM wrappers and the in-stack/in-fs degradation hooks.
//
// Covers: distinguishable denial codes (kQuotaExceeded vs kAddrNotAvail vs
// listen overflow), socket/port/selector/open-file/disk-block budgets, RX
// mbuf charging with counted shed and retransmit recovery (per-principal
// flow control loses no data), journal-transaction admission, the allocator
// and raw-device wrappers, ACL refusals, the kmon `tenants` command, and a
// seeded charge/credit balance property test over mixed TCP+FS workloads —
// after teardown every sec.quota.charged.* gauge must read zero.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/random.h"
#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/kern/kmon.h"
#include "src/secure/wrap.h"
#include "src/testbed/testbed.h"

namespace oskit::testbed {
namespace {

using secure::Acl;
using secure::Budget;
using secure::NetGuard;
using secure::Principal;
using secure::PrincipalRegistry;
using secure::Resource;
using secure::ScopedPrincipal;
using secure::SecureAmm;
using secure::SecureLmm;

constexpr uint16_t kPort = 6200;

void ExpectAllBooksZero(PrincipalRegistry& principals) {
  for (size_t i = 0; i < principals.size(); ++i) {
    Principal* p = principals.at(i);
    for (size_t r = 0; r < secure::kResourceCount; ++r) {
      Resource res = static_cast<Resource>(r);
      EXPECT_EQ(0u, p->charged(res))
          << p->name() << " leaked " << secure::ResourceName(res);
    }
  }
}

// ---------------------------------------------------------------------------
// Distinguishable denial codes
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, QuotaDenialDistinctFromPortExhaustion) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kPorts, 2));
  NetGuard guard(&principals);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);

  // Two bound ports fit the budget; the third is a QUOTA denial: the error
  // and the counter are both distinct from genuine ephemeral exhaustion.
  std::vector<ComPtr<Socket>> socks;
  for (int i = 0; i < 3; ++i) {
    ComPtr<Socket> s;
    ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kDgram,
                                          s.Receive()));
    socks.push_back(std::move(s));
  }
  ASSERT_EQ(Error::kOk,
            socks[0]->Bind(SockAddr{kInetAny, 7001}));
  ASSERT_EQ(Error::kOk,
            socks[1]->Bind(SockAddr{kInetAny, 7002}));
  EXPECT_EQ(Error::kQuotaExceeded,
            socks[2]->Bind(SockAddr{kInetAny, 7003}));

  EXPECT_EQ(1u, tenant->denied(Resource::kPorts));
  EXPECT_EQ(1u, a.trace.registry.Value("sec.quota.denied.ports"));
  // No real port was consumed or counted exhausted by the denial.
  EXPECT_EQ(0u, a.stack->counters().port_exhausted.value());
  EXPECT_EQ(0u, a.trace.registry.Value("net.port.exhausted"));
  // The three codes the satellite pins apart, by name.
  EXPECT_STRNE(ErrorName(Error::kQuotaExceeded), ErrorName(Error::kAddrNotAvail));
  EXPECT_STRNE(ErrorName(Error::kQuotaExceeded), ErrorName(Error::kNoBufs));

  socks.clear();
  ExpectAllBooksZero(principals);
}

// ---------------------------------------------------------------------------
// Socket and accept budgets
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, SocketBudgetGatesCreateAndRecovers) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kSockets, 1));
  NetGuard guard(&principals);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);

  ComPtr<Socket> first;
  ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kStream,
                                        first.Receive()));
  ComPtr<Socket> second;
  EXPECT_EQ(Error::kQuotaExceeded,
            factory->Create(SockDomain::kInet, SockType::kStream,
                            second.Receive()));
  EXPECT_EQ(1u, tenant->denied(Resource::kSockets));
  EXPECT_EQ(1u, tenant->charged(Resource::kSockets));

  // Releasing the held socket credits the unit back; creation works again.
  first.Reset();
  EXPECT_EQ(0u, tenant->charged(Resource::kSockets));
  ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kStream,
                                        second.Receive()));
  second.Reset();
  ExpectAllBooksZero(principals);
}

TEST(SecureQuotaTest, AcceptChargesChildrenAndSynAdmissionSheds) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  // Budget: the listener plus two children.
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kSockets, 3));
  NetGuard guard(&principals);
  a.stack->SetAccounting(&guard);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);

  bool listening = false;
  int connected = 0;
  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener;
    ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kStream,
                                          listener.Receive()));
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(8));
    listening = true;

    // Accept two children: budget is now exactly full (listener + 2).
    ComPtr<Socket> kept[2];
    for (auto& child : kept) {
      SockAddr peer;
      ASSERT_EQ(Error::kOk, listener->Accept(&peer, child.Receive()));
    }
    EXPECT_EQ(3u, tenant->charged(Resource::kSockets));

    // A third connection attempt arrives at a full budget: the SYN is shed
    // at admission (counted on the stack AND on the principal), so the
    // attacker-side connect hangs on retransmits instead of ever consuming
    // tenant resources — and the non-blocking accept sees an empty queue.
    world.sim().PollWait([&] { return connected >= 2; }, kNsPerMs);
    world.sim().SleepFor(2 * kNsPerSec);  // let the third SYN arrive + retry
    EXPECT_GT(a.stack->counters().tcp_syn_admission_shed.value(), 0u);
    EXPECT_GT(tenant->denied(Resource::kSockets), 0u);
    SocketExt* lext = nullptr;
    ASSERT_EQ(Error::kOk, QueryFor(listener.get(), &lext));
    ASSERT_EQ(Error::kOk, lext->SetNonBlocking(true));
    SockAddr peer;
    ComPtr<Socket> extra;
    EXPECT_EQ(Error::kWouldBlock, listener->Accept(&peer, extra.Receive()));

    // Dropping one child frees headroom: the shed client's retransmitted
    // SYN is admitted and the connection completes after all.
    kept[0].Reset();
    ASSERT_EQ(Error::kOk, lext->SetNonBlocking(false));
    lext->Release();
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, extra.Receive()));
    world.sim().PollWait([&] { return connected >= 3; }, kNsPerMs);
  });

  for (int c = 0; c < 3; ++c) {
    world.sim().Spawn("client", [&, c] {
      world.sim().PollWait([&] { return listening; }, kNsPerMs);
      // Serialize the handshakes so exactly two land inside the budget.
      world.sim().SleepFor(static_cast<SimTime>(c) * 300 * kNsPerMs);
      ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
      ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a.addr, kPort}));
      ++connected;
      world.sim().SleepFor(4 * kNsPerSec);  // hold open until the test ends
    });
  }
  world.RunToCompletion();
  EXPECT_GE(a.trace.registry.Value("net.tcp.syn_admission_shed"), 1u);
  ExpectAllBooksZero(principals);
}

// ---------------------------------------------------------------------------
// RX mbuf charging: counted shed, no data loss, balanced books
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, TcpRxShedRecoversByRetransmitWithoutDataLoss) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  // 2 KB of parked RX bytes, against an 8 KB transfer: the stack must shed
  // over-quota segments unACKed and let retransmission pace the sender.
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kMbufBytes, 2048));
  NetGuard guard(&principals);
  a.stack->SetAccounting(&guard);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);

  constexpr size_t kTotal = 8192;
  bool listening = false;
  bool drained = false;
  std::string received;
  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener;
    ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kStream,
                                          listener.Receive()));
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    listening = true;
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[512];
    while (received.size() < kTotal) {
      size_t got = 0;
      ASSERT_EQ(Error::kOk, conn->Recv(buf, sizeof(buf), &got));
      if (got == 0) {
        break;  // premature EOF would fail the size check below
      }
      received.append(buf, got);
      // A slow consumer: quota pressure stays on while the sender pushes.
      world.sim().SleepFor(5 * kNsPerMs);
    }
    drained = true;
  });
  world.sim().Spawn("sender", [&] {
    world.sim().PollWait([&] { return listening; }, kNsPerMs);
    ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a.addr, kPort}));
    std::string payload(kTotal, '\0');
    for (size_t i = 0; i < kTotal; ++i) {
      payload[i] = static_cast<char>(i * 131 + 7);
    }
    size_t sent = 0;
    ASSERT_EQ(Error::kOk, conn->Send(payload.data(), payload.size(), &sent));
    ASSERT_EQ(kTotal, sent);
    // Hold the connection open until the receiver has drained everything:
    // closing with retransmissions still in flight would abort with a RST
    // and turn flow control into data loss.
    world.sim().PollWait([&] { return drained; }, kNsPerMs);
  });
  world.RunToCompletion();

  // Every byte arrived intact despite the shed: per-principal flow control,
  // not data loss.
  ASSERT_EQ(kTotal, received.size());
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(static_cast<char>(i * 131 + 7), received[i])
        << "corrupt at offset " << i;
  }
  EXPECT_GT(a.stack->counters().rx_quota_shed.value(), 0u);
  EXPECT_EQ(a.trace.registry.Value("net.rx.quota_shed"),
            a.stack->counters().rx_quota_shed.value());
  EXPECT_GT(b.stack->counters().tcp_retransmits.value(), 0u);
  ExpectAllBooksZero(principals);
}

TEST(SecureQuotaTest, UdpRxShedDropsOverBudgetDatagramsAndBalances) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kMbufBytes, 1024));
  NetGuard guard(&principals);
  a.stack->SetAccounting(&guard);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);

  ComPtr<Socket> rx;
  ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kDgram,
                                        rx.Receive()));
  ASSERT_EQ(Error::kOk, rx->Bind(SockAddr{kInetAny, 7100}));

  bool blast_done = false;
  world.sim().Spawn("blast", [&] {
    ComPtr<Socket> tx = b.MakeSocket(SockType::kDgram);
    char dgram[256] = {};
    for (int i = 0; i < 16; ++i) {  // 4 KB at the wire vs a 1 KB budget
      size_t sent = 0;
      ASSERT_EQ(Error::kOk,
                tx->SendTo(dgram, sizeof(dgram), SockAddr{a.addr, 7100}, &sent));
      world.sim().SleepFor(kNsPerMs);  // pace: one frame per wire slot
    }
    blast_done = true;
  });
  world.sim().Spawn("audit", [&] {
    world.sim().PollWait([&] { return blast_done; }, kNsPerMs);
    world.sim().SleepFor(50 * kNsPerMs);  // let the last datagram land

    // The books hold exactly the admitted datagrams; the rest were shed
    // with the counter as the audit trail (UDP drops are UDP drops).
    EXPECT_GT(a.stack->counters().rx_quota_shed.value(), 0u);
    EXPECT_LE(tenant->charged(Resource::kMbufBytes), 1024u);
    EXPECT_GT(tenant->charged(Resource::kMbufBytes), 0u);
    EXPECT_GT(tenant->denied(Resource::kMbufBytes), 0u);

    // Draining credits byte-for-byte.
    char buf[256];
    SockAddr from;
    size_t got = 0;
    ASSERT_EQ(Error::kOk, rx->RecvFrom(buf, sizeof(buf), &from, &got));
    EXPECT_EQ(256u, got);
  });
  world.RunToCompletion();

  // Teardown credits whatever was still parked.
  rx.Reset();
  ExpectAllBooksZero(principals);
}

// ---------------------------------------------------------------------------
// Filesystem budgets and journal admission
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, DiskFillerDeniedAtBlockBudgetAndUnlinkCredits) {
  PrincipalRegistry principals;
  // 64 st_blocks units = 32 KB of owned disk.
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kFsBlocks, 64));

  ComPtr<MemBlkIo> disk = MemBlkIo::Create(8 * 1024 * 1024, 512);
  ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
  ComPtr<FileSystem> inner;
  ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), inner.Receive()));
  ComPtr<FileSystem> tfs = secure::MakeSecureFs(inner, tenant, &principals);

  ComPtr<Dir> root;
  ASSERT_EQ(Error::kOk, tfs->GetRoot(root.Receive()));
  ComPtr<File> f;
  ASSERT_EQ(Error::kOk, root->Create("hog", 0644, f.Receive()));

  std::string chunk(8192, 'x');
  size_t n = 0;
  ASSERT_EQ(Error::kOk, f->Write(chunk.data(), 0, chunk.size(), &n));
  ASSERT_EQ(chunk.size(), n);
  uint64_t charged_after_first = tenant->charged(Resource::kFsBlocks);
  EXPECT_GE(charged_after_first, 8192u / 512u);

  // Growing past the budget is denied BEFORE the filesystem mutates: the
  // write fails whole, with the quota error and a counted denial.
  n = 0;
  EXPECT_EQ(Error::kQuotaExceeded,
            f->Write(chunk.data(), 64 * 512, chunk.size(), &n));
  EXPECT_EQ(0u, n);
  EXPECT_GT(tenant->denied(Resource::kFsBlocks), 0u);
  EXPECT_EQ(charged_after_first, tenant->charged(Resource::kFsBlocks));

  // Unlinking credits everything the tenant charged for the inode.
  f.Reset();
  ASSERT_EQ(Error::kOk, root->Unlink("hog"));
  EXPECT_EQ(0u, tenant->charged(Resource::kFsBlocks));

  root.Reset();
  ExpectAllBooksZero(principals);
  ASSERT_EQ(Error::kOk, tfs->Unmount());
}

TEST(SecureQuotaTest, JournalTxnAdmissionBillsCurrentPrincipal) {
  PrincipalRegistry principals;
  Principal* blocked =
      principals.Create("blocked", Budget{}.Set(Resource::kJournalTxns, 0));
  Principal* open = principals.Create("open");

  ComPtr<MemBlkIo> disk = MemBlkIo::Create(8 * 1024 * 1024, 512);
  ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
  ComPtr<FileSystem> inner;
  ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), inner.Receive()));
  auto* offs = static_cast<fs::Offs*>(inner.get());
  ASSERT_TRUE(offs->journaled());
  secure::InstallJournalAdmission(offs, &principals);

  ComPtr<FileSystem> blocked_fs =
      secure::MakeSecureFs(inner, blocked, &principals);
  ComPtr<FileSystem> open_fs = secure::MakeSecureFs(inner, open, &principals);

  // The zero-budget tenant's metadata op is refused at journal admission —
  // before any intent block joins the transaction.
  ComPtr<Dir> broot;
  ASSERT_EQ(Error::kOk, blocked_fs->GetRoot(broot.Receive()));
  ComPtr<File> bf;
  EXPECT_EQ(Error::kQuotaExceeded, broot->Create("nope", 0644, bf.Receive()));
  EXPECT_EQ(1u, blocked->denied(Resource::kJournalTxns));

  // The open tenant sails through, and the commit credits its charge.
  ComPtr<Dir> oroot;
  ASSERT_EQ(Error::kOk, open_fs->GetRoot(oroot.Receive()));
  ComPtr<File> of;
  ASSERT_EQ(Error::kOk, oroot->Create("yes", 0644, of.Receive()));
  ASSERT_EQ(Error::kOk, open_fs->Sync());
  EXPECT_EQ(0u, open->charged(Resource::kJournalTxns));
  of.Reset();
  ASSERT_EQ(Error::kOk, oroot->Unlink("yes"));  // credit the disk blocks
  ASSERT_EQ(Error::kOk, open_fs->Sync());

  // An unattributed caller (no ScopedPrincipal bracket) is never billed.
  ComPtr<Dir> raw_root;
  ASSERT_EQ(Error::kOk, inner->GetRoot(raw_root.Receive()));
  ComPtr<File> rf;
  ASSERT_EQ(Error::kOk, raw_root->Create("unbilled", 0644, rf.Receive()));

  bf.Reset();
  rf.Reset();
  oroot.Reset();
  broot.Reset();
  raw_root.Reset();
  ASSERT_EQ(Error::kOk, inner->Unmount());
  ExpectAllBooksZero(principals);
}

// ---------------------------------------------------------------------------
// Allocator and raw-device wrappers, ACLs
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, AllocatorWrappersChargeAndDeny) {
  PrincipalRegistry principals;
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kMemBytes, 4096));

  alignas(16) static uint8_t arena[64 * 1024];
  Lmm lmm;
  LmmRegion region;
  lmm.AddRegion(&region, arena, sizeof(arena), 0, 0);
  lmm.AddFree(arena, sizeof(arena));

  SecureLmm slmm(&lmm, tenant);
  void* block = slmm.Alloc(2048, 0);
  ASSERT_NE(nullptr, block);
  EXPECT_EQ(2048u, tenant->charged(Resource::kMemBytes));
  // Quota denial: nullptr like exhaustion, but counted — and nothing was
  // taken from the pool.
  size_t avail_before = lmm.Avail(0);
  EXPECT_EQ(nullptr, slmm.Alloc(4096, 0));
  EXPECT_EQ(avail_before, lmm.Avail(0));
  EXPECT_EQ(1u, tenant->denied(Resource::kMemBytes));
  slmm.Free(block, 2048);
  EXPECT_EQ(0u, tenant->charged(Resource::kMemBytes));

  Amm amm(0, 1 << 20);
  SecureAmm samm(&amm, tenant);
  uint64_t addr = 0;
  ASSERT_EQ(Error::kOk, samm.Allocate(&addr, 4096, Amm::kAllocated));
  EXPECT_EQ(4096u, tenant->charged(Resource::kMemBytes));
  uint64_t addr2 = 0;
  EXPECT_EQ(Error::kQuotaExceeded, samm.Allocate(&addr2, 4096, Amm::kAllocated));
  ASSERT_EQ(Error::kOk, samm.Deallocate(addr, 4096));
  ExpectAllBooksZero(principals);
}

TEST(SecureQuotaTest, BufIoWrapperGatesWritesAndChargesMappings) {
  PrincipalRegistry principals;
  Acl readonly;
  readonly.allow_blkio_write = false;
  Principal* reader = principals.Create(
      "reader", Budget{}.Set(Resource::kMemBytes, 1024), readonly);

  ComPtr<MemBlkIo> disk = MemBlkIo::Create(64 * 1024, 512);
  ComPtr<BlkIo> wrapped =
      secure::MakeSecureBufIo(ComPtr<BlkIo>::Retain(disk.get()), reader);

  char buf[512] = {};
  size_t n = 0;
  EXPECT_EQ(Error::kOk, wrapped->Read(buf, 0, sizeof(buf), &n));
  EXPECT_EQ(Error::kAccess, wrapped->Write(buf, 0, sizeof(buf), &n));
  EXPECT_GT(reader->denied_total(), 0u);

  BufIo* bufio = nullptr;
  ASSERT_EQ(Error::kOk, QueryFor(wrapped.get(), &bufio));
  void* mapped = nullptr;
  ASSERT_EQ(Error::kOk, bufio->Map(&mapped, 0, 512));
  EXPECT_EQ(512u, reader->charged(Resource::kMemBytes));
  void* mapped2 = nullptr;
  EXPECT_EQ(Error::kQuotaExceeded, bufio->Map(&mapped2, 0, 1024));
  ASSERT_EQ(Error::kOk, bufio->Unmap(mapped, 0, 512));
  EXPECT_EQ(0u, reader->charged(Resource::kMemBytes));
  bufio->Release();
  wrapped.Reset();
  ExpectAllBooksZero(principals);
}

TEST(SecureQuotaTest, AclRefusalsReturnAccessNotQuota) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Acl no_net;
  no_net.allow_net = false;
  Principal* walled = principals.Create("walled", Budget{}, no_net);
  NetGuard guard(&principals);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), walled, &guard);
  ComPtr<Socket> s;
  EXPECT_EQ(Error::kAccess,
            factory->Create(SockDomain::kInet, SockType::kStream, s.Receive()));
  EXPECT_EQ(0u, walled->charged(Resource::kSockets));
  EXPECT_GT(walled->denied(Resource::kSockets), 0u);

  Acl no_write;
  no_write.allow_fs_write = false;
  Principal* ro = principals.Create("readonly", Budget{}, no_write);
  ComPtr<MemBlkIo> disk = MemBlkIo::Create(4 * 1024 * 1024, 512);
  ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
  ComPtr<FileSystem> inner;
  ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), inner.Receive()));
  ComPtr<FileSystem> tfs = secure::MakeSecureFs(inner, ro, &principals);
  ComPtr<Dir> root;
  ASSERT_EQ(Error::kOk, tfs->GetRoot(root.Receive()));
  ComPtr<File> f;
  EXPECT_EQ(Error::kAccess, root->Create("nope", 0644, f.Receive()));
  EXPECT_EQ(Error::kAccess, root->Mkdir("nodir", 0755));
  EXPECT_EQ(Error::kAccess, root->Unlink("anything"));
  root.Reset();
  // Unmount is administrative: denied for the read-only tenant as well.
  EXPECT_EQ(Error::kAccess, tfs->Unmount());
  ExpectAllBooksZero(principals);
  ASSERT_EQ(Error::kOk, inner->Unmount());
}

// ---------------------------------------------------------------------------
// Selector registrations
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, SelectorRegistrationBudgetAndEventRewriting) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Principal* tenant =
      principals.Create("tenant", Budget{}.Set(Resource::kSelectorRegs, 1));
  NetGuard guard(&principals);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), tenant, &guard);

  world.sim().Spawn("driver", [&] {
    ComPtr<Socket> rx;
    ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kDgram,
                                          rx.Receive()));
    ASSERT_EQ(Error::kOk, rx->Bind(SockAddr{kInetAny, 7200}));
    ComPtr<Socket> rx2;
    ASSERT_EQ(Error::kOk, factory->Create(SockDomain::kInet, SockType::kDgram,
                                          rx2.Receive()));
    ASSERT_EQ(Error::kOk, rx2->Bind(SockAddr{kInetAny, 7201}));

    ComPtr<NetSelector> sel =
        secure::MakeSecureSelector(a.stack->CreateSelector(), tenant);
    ASSERT_EQ(Error::kOk,
              sel->Add(rx.get(), kNetReadable, /*edge=*/false, /*token=*/&rx));
    // Second registration: over the one-registration budget.
    EXPECT_EQ(Error::kQuotaExceeded,
              sel->Add(rx2.get(), kNetReadable, false, nullptr));
    EXPECT_EQ(1u, tenant->denied(Resource::kSelectorRegs));

    ComPtr<Socket> tx = b.MakeSocket(SockType::kDgram);
    size_t sent = 0;
    ASSERT_EQ(Error::kOk, tx->SendTo("hi", 2, SockAddr{a.addr, 7200}, &sent));

    // The harvested event references the WRAPPER the tenant registered,
    // never the inner socket.
    NetReadyEvent events[4];
    size_t n = 0;
    ASSERT_EQ(Error::kOk, sel->Wait(events, 4, /*block=*/true, &n));
    ASSERT_EQ(1u, n);
    EXPECT_EQ(rx.get(), events[0].socket);
    EXPECT_EQ(&rx, events[0].token);

    // Removing credits; the freed slot admits the second socket.
    ASSERT_EQ(Error::kOk, sel->Remove(rx.get()));
    EXPECT_EQ(0u, tenant->charged(Resource::kSelectorRegs));
    ASSERT_EQ(Error::kOk, sel->Add(rx2.get(), kNetReadable, false, nullptr));

    // A registered socket dying drops its registration and charge.
    rx2.Reset();
    EXPECT_EQ(0u, tenant->charged(Resource::kSelectorRegs));

    char buf[8];
    SockAddr from;
    size_t got = 0;
    ASSERT_EQ(Error::kOk, rx->RecvFrom(buf, sizeof(buf), &from, &got));
  });
  world.RunToCompletion();
  ExpectAllBooksZero(principals);
}

// ---------------------------------------------------------------------------
// kmon `tenants`
// ---------------------------------------------------------------------------

TEST(SecureQuotaTest, KmonTenantsCommandDumpsRegistry) {
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);

  PrincipalRegistry principals(&a.trace);
  Principal* noisy =
      principals.Create("noisy", Budget{}.Set(Resource::kSockets, 2));
  principals.Create("quiet");
  NetGuard guard(&principals);
  ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
      a.stack->CreateSocketFactory(), noisy, &guard);
  std::vector<ComPtr<Socket>> held;
  for (int i = 0; i < 3; ++i) {
    ComPtr<Socket> s;
    Error err =
        factory->Create(SockDomain::kInet, SockType::kStream, s.Receive());
    if (Ok(err)) {
      held.push_back(std::move(s));
    }
  }
  EXPECT_EQ(2u, noisy->charged(Resource::kSockets));
  EXPECT_EQ(1u, noisy->denied(Resource::kSockets));

  KernelMonitor kmon(a.kernel.get(), &a.kernel->console());
  kmon.SetTenantsSource([&](const std::function<void(const char*)>& emit) {
    principals.Tenants(emit);
  });

  auto type = [&](const std::string& line) {
    a.machine->console_uart().InjectRx(line.data(), line.size());
    a.machine->console_uart().InjectRx("\r", 1);
  };
  type("tenants");
  type("c");
  world.sim().Spawn("kmon", [&] {
    TrapFrame frame;
    kmon.Enter(frame);
  });
  world.RunToCompletion();

  std::string out = a.machine->console_uart().TakeOutput();
  EXPECT_NE(std::string::npos, out.find("tenants: 2 principal(s)"));
  EXPECT_NE(std::string::npos, out.find("noisy"));
  EXPECT_NE(std::string::npos, out.find("quiet"));
  EXPECT_NE(std::string::npos, out.find("sockets"));
  EXPECT_NE(std::string::npos, out.find("charged=2"));
  held.clear();
}

// ---------------------------------------------------------------------------
// Seeded charge/credit balance property test
// ---------------------------------------------------------------------------

// Mixed TCP + FS + selector + allocator workload under wrappers, randomized
// per seed: whatever the op mix does, after releasing every object the
// books must read zero — every charge found its credit.
TEST(SecureBalancePropertyTest, MixedWorkloadBooksDrainToZero) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 7919);

    World world;
    Host& a = world.AddHost("a", NetConfig::kNativeBsd);
    Host& b = world.AddHost("b", NetConfig::kNativeBsd);

    PrincipalRegistry principals(&a.trace);
    // Tight-ish budgets so denial paths get exercised too.
    Budget budget = Budget{}
                        .Set(Resource::kSockets, 4 + rng.Below(4))
                        .Set(Resource::kPorts, 4 + rng.Below(4))
                        .Set(Resource::kMbufBytes, 2048 + rng.Below(2048))
                        .Set(Resource::kFsBlocks, 64 + rng.Below(64))
                        .Set(Resource::kOpenFiles, 4 + rng.Below(4))
                        .Set(Resource::kSelectorRegs, 2 + rng.Below(2));
    Principal* tenant = principals.Create("tenant", budget);
    NetGuard guard(&principals);
    a.stack->SetAccounting(&guard);
    ComPtr<SocketFactory> factory = secure::MakeSecureSocketFactory(
        a.stack->CreateSocketFactory(), tenant, &guard);

    ComPtr<MemBlkIo> disk = MemBlkIo::Create(8 * 1024 * 1024, 512);
    ASSERT_EQ(Error::kOk, fs::Mkfs(disk.get()));
    ComPtr<FileSystem> inner_fs;
    ASSERT_EQ(Error::kOk, fs::Offs::Mount(disk.get(), inner_fs.Receive()));
    secure::InstallJournalAdmission(static_cast<fs::Offs*>(inner_fs.get()),
                                    &principals);
    ComPtr<FileSystem> tfs =
        secure::MakeSecureFs(inner_fs, tenant, &principals);

    world.sim().Spawn("workload", [&] {
      // --- network leg: an echo round trip plus a datagram burst ---
      ComPtr<Socket> listener;
      ASSERT_EQ(Error::kOk, factory->Create(
                                SockDomain::kInet, SockType::kStream,
                                listener.Receive()));
      ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
      ASSERT_EQ(Error::kOk, listener->Listen(4));

      ComPtr<NetSelector> sel =
          secure::MakeSecureSelector(a.stack->CreateSelector(), tenant);
      sel->Add(listener.get(), kNetReadable, false, nullptr);

      bool peer_done = false;
      world.sim().Spawn("peer", [&] {
        ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
        ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a.addr, kPort}));
        std::string msg(64 + rng.Below(512), 'm');
        size_t n = 0;
        ASSERT_EQ(Error::kOk, conn->Send(msg.data(), msg.size(), &n));
        char buf[1024];
        size_t got_total = 0;
        while (got_total < msg.size() &&
               Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
          got_total += n;
        }
        EXPECT_EQ(msg.size(), got_total);
        peer_done = true;
      });

      SockAddr peer;
      ComPtr<Socket> conn;
      ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
      char buf[1024];
      size_t got = 0;
      size_t echoed = 0;
      while (!peer_done) {
        Error err = conn->Recv(buf, sizeof(buf), &got);
        if (!Ok(err) || got == 0) {
          break;
        }
        size_t sent = 0;
        ASSERT_EQ(Error::kOk, conn->Send(buf, got, &sent));
        echoed += sent;
        if (rng.Percent(30)) {
          world.sim().SleepFor(rng.Below(10) * kNsPerMs);
        }
      }

      // --- fs leg: create/write/maybe-deny/unlink ---
      ComPtr<Dir> root;
      ASSERT_EQ(Error::kOk, tfs->GetRoot(root.Receive()));
      int files = static_cast<int>(1 + rng.Below(3));
      for (int i = 0; i < files; ++i) {
        std::string name = "f" + std::to_string(i);
        ComPtr<File> f;
        Error err = root->Create(name.c_str(), 0644, f.Receive());
        if (!Ok(err)) {
          continue;  // open-file or journal budget hit: still balanced
        }
        std::string data(rng.Below(32768), 'd');
        size_t n = 0;
        f->Write(data.data(), 0, data.size(), &n);  // may be quota-denied
        if (rng.Percent(50)) {
          f->SetSize(rng.Below(1024));
        }
        f.Reset();
        if (rng.Percent(70)) {
          root->Unlink(name.c_str());
        }
      }
      ASSERT_EQ(Error::kOk, tfs->Sync());
      root.Reset();

      sel.Reset();
      conn.Reset();
      listener.Reset();
    });
    world.RunToCompletion();

    // The single invariant that makes quotas trustworthy: teardown returns
    // every charge.  (Files left on disk were deliberately not unlinked in
    // ~30% of cases — credit those by unlinking now, through the wrapper.)
    ComPtr<Dir> root;
    ASSERT_EQ(Error::kOk, tfs->GetRoot(root.Receive()));
    for (int i = 0; i < 3; ++i) {
      root->Unlink(("f" + std::to_string(i)).c_str());
    }
    root.Reset();
    ASSERT_EQ(Error::kOk, tfs->Sync());  // settle journal-txn charges
    ExpectAllBooksZero(principals);
    EXPECT_EQ(0u, a.trace.registry.Value("sec.quota.charged.mbuf_bytes"));
    EXPECT_EQ(0u, a.trace.registry.Value("sec.quota.charged.sockets"));
    ASSERT_EQ(Error::kOk, tfs->Unmount());
  }
}

}  // namespace
}  // namespace oskit::testbed
