// Sleep-record tests (§4.7.6): one-waiter semantics, wakeup latching, and
// both stock client implementations (fiber parking and spinning).

#include <gtest/gtest.h>

#include "src/sleep/sleep_envs.h"

namespace oskit {
namespace {

TEST(SleepTest, WakeupBeforeSleepIsLatched) {
  Simulation sim;
  FiberSleepEnv env(&sim);
  SleepRecord record(&env);
  record.Wakeup();  // nobody waiting: latch
  bool returned = false;
  sim.Spawn("sleeper", [&] {
    record.Sleep();  // must return immediately
    returned = true;
  });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_TRUE(returned);
}

TEST(SleepTest, FiberEnvBlocksUntilWakeup) {
  Simulation sim;
  FiberSleepEnv env(&sim);
  SleepRecord record(&env);
  SimTime woke_at = 0;
  sim.Spawn("sleeper", [&] {
    record.Sleep();
    woke_at = sim.clock().Now();
  });
  sim.clock().ScheduleAfter(1000, [&] { record.Wakeup(); });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_EQ(1000u, woke_at);
}

TEST(SleepTest, SpinEnvAdvancesSimulatedTime) {
  // "In the OSKit's single-threaded example kernels, sleeping is implemented
  // simply as a busy loop that spins on a one-bit field" — the spin must
  // still let simulated hardware make progress.
  Simulation sim;
  SpinSleepEnv env(&sim);
  SleepRecord record(&env);
  bool woke = false;
  sim.Spawn("spinner", [&] {
    record.Sleep();
    woke = true;
  });
  sim.clock().ScheduleAfter(10 * kNsPerUs, [&] { record.Wakeup(); });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_TRUE(woke);
  EXPECT_GT(env.spins(), 0u);
}

TEST(SleepTest, RecordIsReusable) {
  Simulation sim;
  FiberSleepEnv env(&sim);
  SleepRecord record(&env);
  int wakeups_seen = 0;
  sim.Spawn("sleeper", [&] {
    for (int i = 0; i < 3; ++i) {
      record.Sleep();
      ++wakeups_seen;
    }
  });
  sim.clock().ScheduleAfter(100, [&] { record.Wakeup(); });
  sim.clock().ScheduleAfter(200, [&] { record.Wakeup(); });
  sim.clock().ScheduleAfter(300, [&] { record.Wakeup(); });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_EQ(3, wakeups_seen);
}

TEST(SleepTest, RedundantWakeupsCollapse) {
  Simulation sim;
  FiberSleepEnv env(&sim);
  SleepRecord record(&env);
  int resumed = 0;
  sim.Spawn("sleeper", [&] {
    record.Sleep();
    ++resumed;
    // A second Sleep must block again (the double wakeup collapsed).
    record.Sleep();
    ++resumed;
  });
  sim.clock().ScheduleAfter(100, [&] {
    record.Wakeup();
    record.Wakeup();  // collapses into the first
  });
  sim.clock().ScheduleAfter(200, [&] { record.Wakeup(); });
  EXPECT_EQ(Simulation::RunResult::kAllDone, sim.Run());
  EXPECT_EQ(2, resumed);
}

}  // namespace
}  // namespace oskit
