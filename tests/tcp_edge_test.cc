// TCP state-machine edge cases on the BSD-idiom stack: teardown variants,
// half-close semantics, zero-window persist probing, backlog limits, RST
// behaviour, and the §6.2.10 clean-exit fix.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/libc/posix.h"
#include "src/testbed/testbed.h"

namespace oskit::testbed {
namespace {

constexpr uint16_t kPort = 6000;

class TcpEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>();
    world_->AddHost("a", NetConfig::kNativeBsd);
    world_->AddHost("b", NetConfig::kNativeBsd);
  }

  Host& a() { return world_->host(0); }
  Host& b() { return world_->host(1); }

  std::unique_ptr<World> world_;
};

TEST_F(TcpEdgeTest, HalfCloseStillDeliversDataTheOtherWay) {
  // Client shuts down its write side, then continues READING: the server
  // must see EOF yet still be able to send its response.
  std::string client_got;
  world_->sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    // Drain to EOF first.
    char buf[64];
    size_t n = 0;
    std::string request;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      request.append(buf, n);
    }
    EXPECT_EQ("QUERY", request);
    // Now answer on the still-open other half.
    size_t sent = 0;
    ASSERT_EQ(Error::kOk, conn->Send("ANSWER", 6, &sent));
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world_->sim().Spawn("client", [&] {
    ComPtr<Socket> conn = b().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a().addr, kPort}));
    size_t n = 0;
    ASSERT_EQ(Error::kOk, conn->Send("QUERY", 5, &n));
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
    char buf[64];
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      client_got.append(buf, n);
    }
  });
  world_->RunToCompletion();
  EXPECT_EQ("ANSWER", client_got);
}

TEST_F(TcpEdgeTest, SendAfterShutdownIsEPIPE) {
  world_->sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[8];
    size_t n;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
    }
  });
  world_->sim().Spawn("client", [&] {
    ComPtr<Socket> conn = b().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a().addr, kPort}));
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
    size_t n = 0;
    EXPECT_EQ(Error::kPipe, conn->Send("x", 1, &n));
  });
  world_->RunToCompletion();
}

TEST_F(TcpEdgeTest, ZeroWindowPersistProbeRecovers) {
  // The receiver stops reading until its window closes; the sender must
  // stall, then resume via window updates / persist probing rather than
  // deadlock or lose data.
  constexpr size_t kTotal = 256 * 1024;  // far beyond the 32 KB window
  size_t received = 0;
  world_->sim().Spawn("lazy-receiver", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    // Let the sender fill our receive buffer completely.
    world_->sim().SleepFor(3 * kNsPerSec);
    std::vector<uint8_t> buf(8 * 1024);
    size_t n = 0;
    while (Ok(conn->Recv(buf.data(), buf.size(), &n)) && n > 0) {
      received += n;
      world_->sim().SleepFor(5 * kNsPerMs);  // keep draining slowly
    }
  });
  world_->sim().Spawn("sender", [&] {
    ComPtr<Socket> conn = b().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a().addr, kPort}));
    std::vector<uint8_t> buf(16 * 1024, 0x77);
    size_t sent = 0;
    while (sent < kTotal) {
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Send(buf.data(), buf.size(), &n));
      sent += n;
    }
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world_->RunToCompletion();
  EXPECT_EQ(kTotal, received);
}

TEST_F(TcpEdgeTest, BacklogOverflowDropsSynsButServiceRecovers) {
  // More simultaneous connectors than the listen backlog: the extras' SYNs
  // are dropped (and retried); everyone eventually gets served.
  constexpr int kClients = 6;
  int served = 0;
  bool listening = false;
  world_->sim().Spawn("server", [&] {
    // Warm the ARP caches first: otherwise the one-deep ARP pending queue
    // (faithful BSD behaviour, see the UDP fragmentation test) would eat
    // most of the simultaneous SYN burst before it reaches the wire and
    // this test would measure ARP, not the listen backlog.
    SimTime rtt = 0;
    ASSERT_EQ(Error::kOk, a().stack->Ping(b().addr, kNsPerSec, &rtt));
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));  // tiny backlog
    listening = true;
    for (int i = 0; i < kClients; ++i) {
      SockAddr peer;
      ComPtr<Socket> conn;
      ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Send("ok", 2, &n));
      ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
      ++served;
      // Accept slowly so the queue backs up.
      world_->sim().SleepFor(200 * kNsPerMs);
    }
  });
  for (int c = 0; c < kClients; ++c) {
    world_->sim().Spawn("client", [&, c] {
      world_->sim().PollWait([&] { return listening; });
      ComPtr<Socket> conn = b().MakeSocket(SockType::kStream);
      ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a().addr, kPort}));
      char buf[4];
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Recv(buf, sizeof(buf), &n));
      EXPECT_EQ(2u, n);
    });
  }
  world_->RunToCompletion();
  EXPECT_EQ(kClients, served);
  EXPECT_GT(b().stack->counters().tcp_retransmits, 0u);  // dropped SYNs retried
}

TEST_F(TcpEdgeTest, PeerResetSurfacesAsConnReset) {
  world_->sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    Socket* conn_raw = nullptr;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, &conn_raw));
    // Forge an abortive close: drop the connection state entirely, so the
    // client's next data hits a fresh stack with no pcb -> RST.
    // (Simplest honest way to provoke an RST with the public API: destroy
    // the socket without reading, then have the client send into the void
    // after TIME_WAIT-free teardown.)
    conn_raw->Release();
  });
  world_->sim().Spawn("client", [&] {
    ComPtr<Socket> conn = b().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a().addr, kPort}));
    // Keep sending until the teardown/RST surfaces as an error or EOF.
    std::vector<uint8_t> buf(1024, 1);
    Error err = Error::kOk;
    for (int i = 0; i < 200 && Ok(err); ++i) {
      size_t n = 0;
      err = conn->Send(buf.data(), buf.size(), &n);
      world_->sim().SleepFor(10 * kNsPerMs);
    }
    EXPECT_FALSE(Ok(err));  // kConnReset or kPipe depending on timing
  });
  world_->RunToCompletion();
}

TEST_F(TcpEdgeTest, CleanExitSendsFinNotSilence) {
  // The §6.2.10 fix: when a client "exits" (its PosixIo dies), its peers
  // see an orderly EOF instead of hanging.
  bool server_saw_eof = false;
  world_->sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[16];
    size_t n = 0;
    ASSERT_EQ(Error::kOk, conn->Recv(buf, sizeof(buf), &n));
    EXPECT_EQ(5u, n);
    // The client exits without closing; we must still reach EOF.
    ASSERT_EQ(Error::kOk, conn->Recv(buf, sizeof(buf), &n));
    EXPECT_EQ(0u, n);
    server_saw_eof = true;
  });
  world_->sim().Spawn("exiting-client", [&] {
    libc::PosixIo posix;
    posix.SetSocketCreator(b().socket_factory);
    int fd = posix.Socket(SockDomain::kInet, SockType::kStream);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(0, posix.Connect(fd, SockAddr{a().addr, kPort}));
    ASSERT_EQ(5, posix.Write(fd, "hello", 5));
    // "exit": PosixIo's destructor runs CloseAll -> orderly FIN.
  });
  world_->RunToCompletion();
  EXPECT_TRUE(server_saw_eof);
}

TEST_F(TcpEdgeTest, TwoConnectionsAreIndependent) {
  // Two sockets between the same pair of hosts, opposite directions of
  // dominant flow, must not interfere.
  std::string got1;
  std::string got2;
  world_->sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(2));
    for (int i = 0; i < 2; ++i) {
      SockAddr peer;
      ComPtr<Socket> conn;
      ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
      // Echo one message per connection, tagged.
      char buf[32];
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Recv(buf, sizeof(buf), &n));
      std::string reply = std::string(buf, n) + "-reply";
      size_t sent = 0;
      ASSERT_EQ(Error::kOk, conn->Send(reply.data(), reply.size(), &sent));
      ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
    }
  });
  auto client = [&](const char* tag, std::string* got) {
    ComPtr<Socket> conn = b().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a().addr, kPort}));
    size_t n = 0;
    ASSERT_EQ(Error::kOk, conn->Send(tag, strlen(tag), &n));
    char buf[32];
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      got->append(buf, n);
    }
  };
  world_->sim().Spawn("c1", [&] { client("one", &got1); });
  world_->sim().Spawn("c2", [&] { client("two", &got2); });
  world_->RunToCompletion();
  EXPECT_EQ("one-reply", got1);
  EXPECT_EQ("two-reply", got2);
}

TEST_F(TcpEdgeTest, MssOptionIsNegotiatedDown) {
  // A host configured with a smaller MSS must constrain the peer's
  // segments via the SYN option.
  world_->sim().Spawn("flow", [&] {
    ComPtr<Socket> listener = a().MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    ComPtr<Socket> client = b().MakeSocket(SockType::kStream);
    // Shrink the client pcb's MSS before connecting (open implementation:
    // the pcb is reachable through the component).
    auto* bsd = static_cast<net::BsdSocket*>(client.get());
    bsd->tcp()->mss = 536;
    ASSERT_EQ(Error::kOk, client->Connect(SockAddr{a().addr, kPort}));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    // Server -> client bulk; every segment must respect the learned MSS.
    std::vector<uint8_t> buf(20000, 9);
    size_t n = 0;
    ASSERT_EQ(Error::kOk, conn->Send(buf.data(), buf.size(), &n));
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
    size_t total = 0;
    while (Ok(client->Recv(buf.data(), buf.size(), &n)) && n > 0) {
      total += n;
    }
    EXPECT_EQ(20000u, total);
    auto* server_pcb = static_cast<net::BsdSocket*>(conn.get())->tcp();
    EXPECT_EQ(536u, server_pcb->mss);
  });
  world_->RunToCompletion();
}

TEST(TcpFaultTest, DeliversIntactUnderCombinedFaults) {
  // Wire loss/reorder plus injected NIC RX corruption and allocator OOM at
  // the mbuf import boundary: TCP must either deliver the payload intact or
  // surface an error — never silently corrupt or truncate.
  fault::FaultEnv fenv(1234);
  EthernetWire::Config wc;
  wc.loss_percent = 2;
  wc.reorder_jitter_ns = 200 * kNsPerUs;
  wc.fault_seed = 1234;
  World world(wc, &fenv);
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  fault::FaultSpec corrupt;
  corrupt.probability_percent = 2;
  fenv.Arm("nic.rx.corrupt", corrupt);
  fault::FaultSpec oom;
  oom.probability_percent = 2;
  fenv.Arm("mbuf.rx_alloc", oom);
  fault::FaultSpec lmm_oom;
  lmm_oom.probability_percent = 1;
  fenv.Arm("lmm.alloc", lmm_oom);

  constexpr size_t kTotal = 128 * 1024;
  auto pattern = [](size_t i) { return static_cast<uint8_t>(i * 37 + 11); };
  std::string got;
  got.reserve(kTotal);
  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[4096];
    size_t n = 0;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      got.append(buf, n);
    }
  });
  world.sim().Spawn("client", [&] {
    ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a.addr, kPort}));
    uint8_t buf[4096];
    size_t done = 0;
    while (done < kTotal) {
      size_t chunk = std::min(sizeof(buf), kTotal - done);
      for (size_t i = 0; i < chunk; ++i) {
        buf[i] = pattern(done + i);
      }
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Send(buf, chunk, &n));
      done += n;
    }
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world.RunToCompletion();
  fenv.DisarmAll();

  ASSERT_EQ(kTotal, got.size());
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(pattern(i), static_cast<uint8_t>(got[i])) << "at offset " << i;
  }
  // The faults really happened and the recovery machinery really acted.
  EXPECT_GT(fenv.fires("nic.rx.corrupt"), 0u);
  EXPECT_GT(fenv.fires("mbuf.rx_alloc"), 0u);
  EXPECT_GT(a.stack->counters().tcp_retransmits +
                b.stack->counters().tcp_retransmits,
            0u);
  EXPECT_GT(a.trace.registry.Value("net.rx.alloc_drops") +
                a.trace.registry.Value("bsd.rx.alloc_drops") +
                b.trace.registry.Value("bsd.rx.alloc_drops"),
            0u);
}

TEST(TcpFaultTest, AbortAnnouncesResetToPeer) {
  // BSD tcp_drop semantics: when one side gives up retransmitting, the abort
  // must be announced with a RST so the peer's blocked Recv returns
  // kConnReset instead of hanging on a half-dead connection forever.
  //
  // The failure is made asymmetric by muting only the server's transmitter:
  // the client's segments still arrive, but no ACK ever comes back, so the
  // client exhausts its retransmit budget and aborts — and its RST can still
  // cross the (healthy) wire.
  World world;
  Host& a = world.AddHost("a", NetConfig::kNativeBsd);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  fault::FaultEnv mute_env(1);
  a.machine->nics()[0]->SetFaultEnv(&mute_env);

  Error server_err = Error::kOk;
  Error client_err = Error::kOk;
  size_t server_got = 0;
  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[4096];
    size_t n = 0;
    while (Ok(server_err = conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      server_got += n;
    }
  });
  world.sim().Spawn("client", [&] {
    ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{a.addr, kPort}));
    uint8_t buf[4096] = {};
    size_t n = 0;
    ASSERT_EQ(Error::kOk, conn->Send(buf, sizeof(buf), &n));
    world.sim().PollWait([&] { return server_got >= sizeof(buf); });

    fault::FaultSpec mute;
    mute.probability_percent = 100;
    mute_env.Arm("nic.tx.drop", mute);
    ASSERT_EQ(Error::kOk, conn->Send(buf, sizeof(buf), &n));
    // Block until the abort: the retransmit give-up sets so_error and wakes
    // this sleeper.
    while (Ok(client_err = conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
    }
  });
  // The retransmit budget (RTO doubling from 6 s to the 64 s cap, twelve
  // times) takes ~660 simulated seconds to exhaust.
  world.RunToCompletion(1800 * kNsPerSec);
  mute_env.DisarmAll();

  EXPECT_EQ(Error::kTimedOut, client_err);   // the aborting side
  EXPECT_EQ(Error::kConnReset, server_err);  // the peer, told via RST
  EXPECT_GT(b.stack->counters().tcp_rst_out.value(), 0u);
  EXPECT_GT(mute_env.fires("nic.tx.drop"), 0u);
}

// ---- Scatter-gather delivery (§4.7.3, the BufIoVec send path) ----
//
// OSKit-configured hosts transmit TCP segments as multi-mbuf chains (header
// mbuf + cluster-backed payload pieces) straight through the glue's gather
// path.  These tests prove the zero-copy path delivers byte-identical data
// under adverse wire conditions, and that it never falls back to the
// flatten/copy path while doing so.

// One bulk transfer host(1) -> host(0) of `total` patterned bytes; returns
// the bytes the receiver saw, for byte-for-byte comparison.
std::string PatternedTransfer(World& world, size_t total) {
  Host& rx = world.host(0);
  Host& tx = world.host(1);
  auto pattern = [](size_t i) { return static_cast<uint8_t>(i * 37 + 11); };
  std::string got;
  got.reserve(total);
  world.sim().Spawn("sg-server", [&] {
    ComPtr<Socket> listener = rx.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, listener->Bind(SockAddr{kInetAny, kPort}));
    ASSERT_EQ(Error::kOk, listener->Listen(1));
    SockAddr peer;
    ComPtr<Socket> conn;
    ASSERT_EQ(Error::kOk, listener->Accept(&peer, conn.Receive()));
    char buf[4096];
    size_t n = 0;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      got.append(buf, n);
    }
  });
  world.sim().Spawn("sg-client", [&] {
    ComPtr<Socket> conn = tx.MakeSocket(SockType::kStream);
    ASSERT_EQ(Error::kOk, conn->Connect(SockAddr{rx.addr, kPort}));
    uint8_t buf[16384];
    size_t done = 0;
    while (done < total) {
      size_t chunk = std::min(sizeof(buf), total - done);
      for (size_t i = 0; i < chunk; ++i) {
        buf[i] = pattern(done + i);
      }
      size_t n = 0;
      ASSERT_EQ(Error::kOk, conn->Send(buf, chunk, &n));
      done += n;
    }
    ASSERT_EQ(Error::kOk, conn->Shutdown(SockShutdown::kWrite));
  });
  world.RunToCompletion();
  return got;
}

void ExpectPattern(const std::string& got, size_t total) {
  ASSERT_EQ(total, got.size());
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(static_cast<uint8_t>(i * 37 + 11), static_cast<uint8_t>(got[i]))
        << "payload corrupt at offset " << i;
  }
}

TEST(TcpScatterGatherTest, MultiMbufSegmentsSurviveLossyReorderingWire) {
  // Loss, duplication and reordering force retransmits and out-of-order
  // reassembly; every retransmitted segment is itself a fresh multi-mbuf
  // chain through the gather path.  The payload must arrive byte-identical
  // and the sender's glue must never have flattened.
  EthernetWire::Config wc;
  wc.loss_percent = 2;
  wc.duplicate_percent = 1;
  wc.reorder_jitter_ns = 200 * kNsPerUs;
  wc.fault_seed = 77;
  World world(wc);
  world.AddHost("rx", NetConfig::kOskit);
  world.AddHost("tx", NetConfig::kOskit);

  constexpr size_t kTotal = 192 * 1024;
  std::string got = PatternedTransfer(world, kTotal);
  ExpectPattern(got, kTotal);

  Host& tx = world.host(1);
  EXPECT_GT(tx.trace.registry.Value("glue.send.sg_frames"), 0u);
  EXPECT_EQ(0u, tx.trace.registry.Value("glue.send.copied"));
  EXPECT_EQ(0u, tx.trace.registry.Value("glue.send.copied_bytes"));
  EXPECT_GT(tx.stack->counters().tcp_retransmits, 0u);  // the wire really bit
}

TEST(TcpScatterGatherTest, ThreeMbufSegmentsTransmitWithZeroFlattens) {
  // Regression for the removed single-mbuf failure branch: bulk segments
  // whose cluster-backed payload straddles a cluster boundary form
  // header + two payload pieces = 3-mbuf chains.  They must ride the gather
  // path — the flatten counters must not move at all.
  World world;
  world.AddHost("rx", NetConfig::kOskit);
  world.AddHost("tx", NetConfig::kOskit);

  constexpr size_t kTotal = 256 * 1024;
  std::string got = PatternedTransfer(world, kTotal);
  ExpectPattern(got, kTotal);

  Host& tx = world.host(1);
  uint64_t frames = tx.trace.registry.Value("glue.send.sg_frames");
  uint64_t segments = tx.trace.registry.Value("glue.send.sg_segments");
  EXPECT_GT(frames, 100u);
  // Strictly more than two segments per gathered frame on average proves
  // 3-mbuf segments went through (header mbuf + a payload that straddles a
  // cluster boundary), not just header+single-cluster pairs.
  EXPECT_GT(segments, 2 * frames);
  // Zero flatten-counter increments: the copy path never ran.
  EXPECT_EQ(0u, tx.trace.registry.Value("glue.send.copied"));
  EXPECT_EQ(0u, tx.trace.registry.Value("glue.send.copied_bytes"));
}

TEST(TcpScatterGatherTest, FaultCampaignSeedSweepNoSilentCorruption) {
  // A seed sweep in the fault-campaign style: each seed arms NIC RX
  // corruption and mbuf-import OOM on a lossy wire, with OSKit hosts
  // sending multi-mbuf chains through the gather path.  Whatever the fault
  // timing, the delivered bytes must be exactly the sent bytes.
  constexpr size_t kTotal = 64 * 1024;
  const uint64_t seeds[] = {1, 7, 99, 1234, 31337};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    fault::FaultEnv fenv(seed);
    EthernetWire::Config wc;
    wc.loss_percent = 1;
    wc.reorder_jitter_ns = 100 * kNsPerUs;
    wc.fault_seed = seed;
    World world(wc, &fenv);
    world.AddHost("rx", NetConfig::kOskit);
    world.AddHost("tx", NetConfig::kOskit);

    fault::FaultSpec corrupt;
    corrupt.probability_percent = 2;
    fenv.Arm("nic.rx.corrupt", corrupt);
    fault::FaultSpec oom;
    oom.probability_percent = 1;
    fenv.Arm("mbuf.rx_alloc", oom);

    std::string got = PatternedTransfer(world, kTotal);
    fenv.DisarmAll();
    ExpectPattern(got, kTotal);

    Host& tx = world.host(1);
    EXPECT_GT(tx.trace.registry.Value("glue.send.sg_frames"), 0u);
    EXPECT_EQ(0u, tx.trace.registry.Value("glue.send.copied"));
  }
}

// ---- Interrupt-mitigation equivalence (the NAPI ablation's safety net) ----

TEST(TcpNapiEquivalenceTest, CoalescedAndPerFrameStreamsAreByteIdentical) {
  // Interrupt coalescing + budgeted polled RX change WHEN frames are
  // delivered and in what batch sizes — they must never change WHAT is
  // delivered.  For each fault seed, run the identical patterned transfer
  // under the 1997 per-frame configuration and under kOskitNapi on an
  // equally hostile wire (loss, reordering, lost IRQs, spurious IRQs, RX
  // corruption) and demand byte-identical received streams.
  constexpr size_t kTotal = 48 * 1024;
  const uint64_t seeds[] = {1, 7, 99, 1234, 31337};
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    std::string streams[2];
    for (int napi = 0; napi < 2; ++napi) {
      SCOPED_TRACE(napi ? "coalesced+polled" : "per-frame");
      fault::FaultEnv fenv(seed);
      EthernetWire::Config wc;
      wc.loss_percent = 1;
      wc.reorder_jitter_ns = 100 * kNsPerUs;
      wc.fault_seed = seed;
      World world(wc, &fenv);
      NetConfig config = napi ? NetConfig::kOskitNapi : NetConfig::kOskit;
      world.AddHost("rx", config);
      world.AddHost("tx", config);

      fault::FaultSpec miss_irq;
      miss_irq.probability_percent = 4;
      fenv.Arm("nic.rx.miss_irq", miss_irq);
      fault::FaultSpec spurious;
      spurious.probability_percent = 2;
      fenv.Arm("nic.irq.spurious", spurious);
      fault::FaultSpec corrupt;
      corrupt.probability_percent = 2;
      fenv.Arm("nic.rx.corrupt", corrupt);

      streams[napi] = PatternedTransfer(world, kTotal);
      fenv.DisarmAll();
      ExpectPattern(streams[napi], kTotal);
      if (napi) {
        // Prove the mitigated run actually exercised the poll machinery
        // (otherwise this test would vacuously compare per-frame to
        // per-frame).
        Host& rx = world.host(0);
        EXPECT_GT(rx.trace.registry.Value("glue.rx.poll.polls"), 0u);
        EXPECT_GT(rx.trace.registry.Value("nic.rx.coalesce.irqs"), 0u);
      }
    }
    EXPECT_EQ(streams[0], streams[1])
        << "mitigation changed the delivered bytes";
  }
}

}  // namespace
}  // namespace oskit::testbed
