// Hierarchical timing wheel unit tests: exact fire ticks, cascade
// boundaries at every level, cancel/restart semantics, callback-driven
// mutation of peers, and destruction with live timers.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/timer_wheel.h"

namespace oskit {
namespace {

// Ticks the wheel `n` times.
void Advance(TimerWheel& wheel, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    wheel.Tick();
  }
}

TEST(TimerWheelTest, FiresExactlyAtDeadline) {
  TimerWheel wheel;
  uint64_t fired_at = 0;
  WheelTimer t;
  wheel.Bind(&t, [&] { fired_at = wheel.now(); });
  wheel.Arm(&t, 37);
  EXPECT_TRUE(t.armed());
  Advance(wheel, 36);
  EXPECT_EQ(0u, fired_at);
  EXPECT_TRUE(t.armed());
  wheel.Tick();
  EXPECT_EQ(37u, fired_at);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(1u, wheel.fired());
}

TEST(TimerWheelTest, ZeroDelayClampsToNextTick) {
  // BSD timer semantics: a value of N means "between N-1 and N periods",
  // never "immediately in this tick".
  TimerWheel wheel;
  int fires = 0;
  WheelTimer t;
  wheel.Bind(&t, [&] { ++fires; });
  wheel.Arm(&t, 0);
  EXPECT_EQ(wheel.now() + 1, t.deadline());
  wheel.Tick();
  EXPECT_EQ(1, fires);
}

TEST(TimerWheelTest, EveryDelayAcrossCascadeBoundariesFiresOnTime) {
  // Delays straddling each level boundary (256, 16384, ...) and the odd
  // values around them must all fire at exactly now+delay, regardless of
  // how many cascades carry them down.
  const uint64_t delays[] = {1,   2,    255,  256,   257,   511,  512,
                             513, 4095, 4096, 16383, 16384, 16385, 100000};
  TimerWheel wheel;
  std::vector<WheelTimer> timers(std::size(delays));
  std::vector<uint64_t> fired_at(std::size(delays), 0);
  for (size_t i = 0; i < std::size(delays); ++i) {
    wheel.Bind(&timers[i], [&, i] { fired_at[i] = wheel.now(); });
    wheel.Arm(&timers[i], delays[i]);
  }
  Advance(wheel, 100001);
  for (size_t i = 0; i < std::size(delays); ++i) {
    EXPECT_EQ(delays[i], fired_at[i]) << "delay " << delays[i];
  }
  EXPECT_GT(wheel.cascades(), 0u);
  EXPECT_EQ(0u, wheel.armed_count());
}

TEST(TimerWheelTest, CascadePreservesOrderWithinOneTick) {
  // Two timers due the same tick, armed before and after a cascade
  // boundary: both must fire during that tick.
  TimerWheel wheel;
  int fires = 0;
  WheelTimer a;
  WheelTimer b;
  wheel.Bind(&a, [&] { ++fires; });
  wheel.Bind(&b, [&] { ++fires; });
  wheel.Arm(&a, 300);  // parked in level 1, cascades at tick 256
  Advance(wheel, 200);
  wheel.Arm(&b, 100);  // same absolute deadline (300), lands in L0 directly
  EXPECT_EQ(a.deadline(), b.deadline());
  Advance(wheel, 100);
  EXPECT_EQ(2, fires);
}

TEST(TimerWheelTest, CancelBeforeFireSuppresses) {
  TimerWheel wheel;
  int fires = 0;
  WheelTimer t;
  wheel.Bind(&t, [&] { ++fires; });
  wheel.Arm(&t, 5);
  wheel.Cancel(&t);
  EXPECT_FALSE(t.armed());
  Advance(wheel, 10);
  EXPECT_EQ(0, fires);
  EXPECT_EQ(0u, wheel.armed_count());
}

TEST(TimerWheelTest, CancelAfterFireIsHarmlessAndRearmWorks) {
  TimerWheel wheel;
  int fires = 0;
  WheelTimer t;
  wheel.Bind(&t, [&] { ++fires; });
  wheel.Arm(&t, 3);
  Advance(wheel, 3);
  EXPECT_EQ(1, fires);
  wheel.Cancel(&t);  // already fired: must be a no-op
  Advance(wheel, 3);
  EXPECT_EQ(1, fires);
  wheel.Arm(&t, 2);  // the handle is reusable after firing
  Advance(wheel, 2);
  EXPECT_EQ(2, fires);
}

TEST(TimerWheelTest, RearmMovesTheDeadline) {
  // Classic restart: re-arming an armed timer replaces the old deadline
  // entirely — it must not fire at the original time.
  TimerWheel wheel;
  std::vector<uint64_t> fires;
  WheelTimer t;
  wheel.Bind(&t, [&] { fires.push_back(wheel.now()); });
  wheel.Arm(&t, 4);
  wheel.Arm(&t, 20);
  Advance(wheel, 30);
  ASSERT_EQ(1u, fires.size());
  EXPECT_EQ(20u, fires[0]);
}

TEST(TimerWheelTest, CallbackMayRearmItself) {
  TimerWheel wheel;
  std::vector<uint64_t> fires;
  WheelTimer t;
  wheel.Bind(&t, [&] {
    fires.push_back(wheel.now());
    if (fires.size() < 3) {
      wheel.Arm(&t, 10);
    }
  });
  wheel.Arm(&t, 10);
  Advance(wheel, 100);
  ASSERT_EQ(3u, fires.size());
  EXPECT_EQ(10u, fires[0]);
  EXPECT_EQ(20u, fires[1]);
  EXPECT_EQ(30u, fires[2]);
}

TEST(TimerWheelTest, CallbackMayCancelAPeerDueThisTick) {
  // The fire loop walks head-by-head precisely so a callback can cancel a
  // peer that was due the same tick.
  TimerWheel wheel;
  int peer_fires = 0;
  WheelTimer killer;
  WheelTimer victim;
  wheel.Bind(&victim, [&] { ++peer_fires; });
  wheel.Bind(&killer, [&] { wheel.Cancel(&victim); });
  // Same slot, same tick; arm the killer second so it runs first (Place
  // pushes at the slot head, and the fire loop pops the head).
  wheel.Arm(&victim, 7);
  wheel.Arm(&killer, 7);
  Advance(wheel, 7);
  EXPECT_EQ(0, peer_fires);
  EXPECT_FALSE(victim.armed());
}

TEST(TimerWheelTest, FarFutureDeadlineIsClampedNotLost) {
  // A delay beyond the 4-level span must clamp to the maximum representable
  // deadline instead of wrapping into the near future (or being dropped).
  TimerWheel wheel;
  int fires = 0;
  WheelTimer t;
  wheel.Bind(&t, [&] { ++fires; });
  wheel.Arm(&t, ~uint64_t{0});
  EXPECT_TRUE(t.armed());
  Advance(wheel, 100000);  // far longer than any real test runs
  EXPECT_EQ(0, fires);
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(1u, wheel.armed_count());
}

TEST(TimerWheelTest, DestroyingArmedTimerUnlinksItself) {
  TimerWheel wheel;
  int fires = 0;
  {
    WheelTimer t;
    wheel.Bind(&t, [&] { ++fires; });
    wheel.Arm(&t, 5);
    EXPECT_EQ(1u, wheel.armed_count());
  }  // ~WheelTimer cancels
  EXPECT_EQ(0u, wheel.armed_count());
  Advance(wheel, 10);
  EXPECT_EQ(0, fires);
}

TEST(TimerWheelTest, ManyTimersStressCountsAreExact) {
  // 1000 timers with deterministic pseudo-random delays; every one fires
  // exactly once at its deadline and the counters reconcile.
  TimerWheel wheel;
  constexpr int kTimers = 1000;
  std::vector<WheelTimer> timers(kTimers);
  std::vector<uint64_t> want(kTimers);
  std::vector<uint64_t> got(kTimers, 0);
  uint64_t x = 0x9e3779b9;
  uint64_t max_delay = 0;
  for (int i = 0; i < kTimers; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t delay = 1 + (x >> 33) % 50000;
    want[i] = delay;
    if (delay > max_delay) {
      max_delay = delay;
    }
    wheel.Bind(&timers[i], [&, i] { got[i] = wheel.now(); });
    wheel.Arm(&timers[i], delay);
  }
  EXPECT_EQ(static_cast<uint64_t>(kTimers), wheel.armed_count());
  Advance(wheel, max_delay + 1);
  for (int i = 0; i < kTimers; ++i) {
    EXPECT_EQ(want[i], got[i]) << "timer " << i;
  }
  EXPECT_EQ(static_cast<uint64_t>(kTimers), wheel.fired());
  EXPECT_EQ(0u, wheel.armed_count());
}

}  // namespace
}  // namespace oskit
