// Trace component tests: counter registry snapshot/diff/reset, flight
// recorder ring wrap-around, event ordering under fiber preemption,
// dump-on-panic, and the COM CounterSet/TraceLog faces.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/panic.h"
#include "src/machine/machine.h"
#include "src/trace/trace.h"
#include "src/trace/trace_com.h"

namespace oskit::trace {
namespace {

// ---------------------------------------------------------------------------
// Counter registry
// ---------------------------------------------------------------------------

TEST(CounterRegistryTest, RegisterLookupUnregister) {
  CounterRegistry registry;
  Counter a;
  EXPECT_FALSE(registry.Has("net.tcp.out"));
  EXPECT_EQ(0u, registry.Value("net.tcp.out"));

  registry.Register("net.tcp.out", &a);
  ++a;
  a += 4;
  EXPECT_TRUE(registry.Has("net.tcp.out"));
  EXPECT_EQ(5u, registry.Value("net.tcp.out"));
  EXPECT_EQ(1u, registry.size());

  registry.Unregister("net.tcp.out", &a);
  EXPECT_FALSE(registry.Has("net.tcp.out"));
  EXPECT_EQ(0u, registry.size());
}

TEST(CounterRegistryTest, DuplicateNamesSumAcrossInstances) {
  // Two stacks sharing the default environment each register the same name;
  // the registry reports the aggregate.
  CounterRegistry registry;
  Counter first;
  Counter second;
  registry.Register("net.ip.in", &first);
  registry.Register("net.ip.in", &second);
  first += 3;
  second += 4;
  EXPECT_EQ(7u, registry.Value("net.ip.in"));
  EXPECT_EQ(1u, registry.size());  // one name, two instances

  registry.Unregister("net.ip.in", &first);
  EXPECT_EQ(4u, registry.Value("net.ip.in"));
}

TEST(CounterRegistryTest, SnapshotDiffAndReset) {
  CounterRegistry registry;
  Counter sent;
  Counter received;
  registry.Register("tx", &sent);
  registry.Register("rx", &received);
  sent += 10;

  CounterSnapshot before = registry.Snapshot();
  EXPECT_EQ(10u, before.at("tx"));
  EXPECT_EQ(0u, before.at("rx"));

  sent += 5;
  received += 2;
  CounterSnapshot after = registry.Snapshot();
  CounterSnapshot delta = DiffSnapshots(before, after);
  EXPECT_EQ(5u, delta.at("tx"));
  EXPECT_EQ(2u, delta.at("rx"));

  registry.ResetAll();
  EXPECT_EQ(0u, registry.Value("tx"));
  EXPECT_EQ(0u, static_cast<uint64_t>(sent));  // resets the owner's word
}

TEST(CounterRegistryTest, ForEachIsSortedAndPrefixFiltered) {
  CounterRegistry registry;
  Counter a;
  Counter b;
  Counter c;
  registry.Register("net.tcp.out", &a);
  registry.Register("glue.send.copied", &b);
  registry.Register("net.ip.in", &c);

  std::vector<std::string> names;
  registry.ForEach(
      [&](const char* name, uint64_t, bool) { names.emplace_back(name); });
  ASSERT_EQ(3u, names.size());
  EXPECT_EQ("glue.send.copied", names[0]);
  EXPECT_EQ("net.ip.in", names[1]);
  EXPECT_EQ("net.tcp.out", names[2]);

  names.clear();
  registry.ForEach(
      [&](const char* name, uint64_t, bool) { names.emplace_back(name); },
      "net.");
  ASSERT_EQ(2u, names.size());
  EXPECT_EQ("net.ip.in", names[0]);
  EXPECT_EQ("net.tcp.out", names[1]);
}

TEST(CounterRegistryTest, CounterBlockUnbindsOnDestruction) {
  CounterRegistry registry;
  Counter a;
  Counter b;
  {
    CounterBlock block;
    block.Bind(&registry, {{"one", &a}, {"two", &b, /*gauge=*/true}});
    EXPECT_TRUE(registry.Has("one"));
    EXPECT_TRUE(registry.Has("two"));
  }
  EXPECT_FALSE(registry.Has("one"));
  EXPECT_FALSE(registry.Has("two"));
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RecordsAndFormats) {
  FlightRecorder recorder(/*capacity=*/8);
  recorder.Record(EventType::kPacketRx, "ether", 0, 1514);
  ASSERT_EQ(1u, recorder.size());
  const TraceEvent& event = recorder.At(0);
  EXPECT_EQ(EventType::kPacketRx, event.type);
  EXPECT_EQ(1514u, event.arg1);
  EXPECT_EQ(1u, event.seq);

  char line[128];
  FlightRecorder::FormatEvent(event, line, sizeof(line));
  EXPECT_NE(nullptr, std::strstr(line, "packet-rx"));
  EXPECT_NE(nullptr, std::strstr(line, "ether"));
  EXPECT_NE(nullptr, std::strstr(line, "1514"));
}

TEST(FlightRecorderTest, WrapAroundKeepsNewestDropsOldest) {
  FlightRecorder recorder(/*capacity=*/4);
  for (uint64_t i = 1; i <= 6; ++i) {
    recorder.Record(EventType::kMark, "wrap", i);
  }
  EXPECT_EQ(4u, recorder.size());
  EXPECT_EQ(6u, recorder.total_recorded());
  EXPECT_EQ(2u, recorder.dropped());
  // Oldest surviving event is #3; order is preserved.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(i + 3, recorder.At(i).arg0);
    EXPECT_EQ(i + 3, recorder.At(i).seq);
  }

  recorder.Clear();
  EXPECT_EQ(0u, recorder.size());
  EXPECT_EQ(0u, recorder.total_recorded());
  // Sequence numbers are never reused after a clear.
  recorder.Record(EventType::kMark, "after");
  EXPECT_EQ(7u, recorder.At(0).seq);
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder recorder(/*capacity=*/4);
  recorder.SetEnabled(false);
  recorder.Record(EventType::kMark, "ignored");
  EXPECT_EQ(0u, recorder.size());
  recorder.SetEnabled(true);
  recorder.Record(EventType::kMark, "kept");
  EXPECT_EQ(1u, recorder.size());
}

TEST(FlightRecorderTest, OrderingUnderFiberPreemption) {
  // Two fibers interleave at sleep points while recording; the ring must
  // show one global order with monotonically increasing sequence numbers
  // and non-decreasing simulated timestamps.
  Simulation sim;
  FlightRecorder recorder(/*capacity=*/64);
  recorder.SetTimeSource([&sim] { return sim.clock().Now(); });

  auto worker = [&](const char* tag, uint64_t delay_ns) {
    return [&, tag, delay_ns] {
      for (int i = 0; i < 5; ++i) {
        recorder.Record(EventType::kMark, tag, static_cast<uint64_t>(i));
        sim.SleepFor(delay_ns);
      }
    };
  };
  sim.Spawn("a", worker("a", 30));
  sim.Spawn("b", worker("b", 70));
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim.Run());

  ASSERT_EQ(10u, recorder.size());
  for (size_t i = 1; i < recorder.size(); ++i) {
    EXPECT_LT(recorder.At(i - 1).seq, recorder.At(i).seq);
    EXPECT_LE(recorder.At(i - 1).time, recorder.At(i).time);
  }
  // Both fibers really interleaved: an "a" event lands between "b" events.
  std::string order;
  recorder.ForEach([&](const TraceEvent& event) { order += event.tag; });
  EXPECT_NE(std::string::npos, order.find("ab"));
  EXPECT_NE(std::string::npos, order.find("ba"));

  recorder.SetTimeSource(nullptr);
}

TEST(FlightRecorderTest, DumpOnPanicWritesBufferedEvents) {
  FlightRecorder recorder(/*capacity=*/8);
  recorder.Record(EventType::kIrqEnter, "cpu", 14);
  recorder.Record(EventType::kAlloc, "lmm", 0x1000, 64);

  static std::vector<std::string> lines;
  lines.clear();
  recorder.SetDumpSink(
      +[](void*, const char* line) { lines.emplace_back(line); }, nullptr);
  recorder.EnableDumpOnPanic("pc0 flight recorder");

  PanicHandler old = SetPanicHandler(+[](const char*) { throw 42; });
  EXPECT_THROW(Panic("trap 14: page fault"), int);
  SetPanicHandler(old);
  recorder.DisableDumpOnPanic();

  // Banner (with the panic message), buffer summary, then the events.
  ASSERT_EQ(4u, lines.size());
  EXPECT_NE(std::string::npos, lines[0].find("pc0 flight recorder"));
  EXPECT_NE(std::string::npos, lines[0].find("trap 14: page fault"));
  EXPECT_NE(std::string::npos, lines[1].find("2 recorded"));
  EXPECT_NE(std::string::npos, lines[2].find("irq-enter"));
  EXPECT_NE(std::string::npos, lines[3].find("alloc"));
}

// ---------------------------------------------------------------------------
// COM faces
// ---------------------------------------------------------------------------

TEST(TraceComTest, QueryMovesBetweenFaces) {
  TraceEnv env;
  ComPtr<TraceComponent> component(CreateTraceComponent(&env));

  void* raw = nullptr;
  ASSERT_EQ(Error::kOk, component->Query(CounterSet::kIid, &raw));
  ComPtr<CounterSet> counters;
  *counters.Receive() = static_cast<CounterSet*>(raw);

  ASSERT_EQ(Error::kOk, counters->Query(TraceLog::kIid, &raw));
  ComPtr<TraceLog> log;
  *log.Receive() = static_cast<TraceLog*>(raw);

  Guid bogus = MakeGuid(0xdeadbeef, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
  EXPECT_EQ(Error::kNoInterface, component->Query(bogus, &raw));
}

TEST(TraceComTest, CounterSetReadsTheRegistry) {
  TraceEnv env;
  Counter retransmits;
  Counter in_use;
  env.registry.Register("net.tcp.retransmits", &retransmits);
  env.registry.Register("lmm.blocks_in_use", &in_use, /*gauge=*/true);
  retransmits += 9;

  ComPtr<TraceComponent> component(CreateTraceComponent(&env));
  size_t count = 0;
  ASSERT_EQ(Error::kOk, component->GetCount(&count));
  EXPECT_EQ(2u, count);

  CounterInfo info;
  ASSERT_EQ(Error::kOk, component->GetCounter(0, &info));
  EXPECT_STREQ("lmm.blocks_in_use", info.name);  // name order
  EXPECT_TRUE(info.gauge);
  EXPECT_EQ(Error::kInval, component->GetCounter(2, &info));

  uint64_t value = 0;
  ASSERT_EQ(Error::kOk, component->Lookup("net.tcp.retransmits", &value));
  EXPECT_EQ(9u, value);
  EXPECT_EQ(Error::kNoEnt, component->Lookup("no.such.counter", &value));

  ASSERT_EQ(Error::kOk, component->Reset());
  EXPECT_EQ(0u, static_cast<uint64_t>(retransmits));

  env.registry.Unregister("net.tcp.retransmits", &retransmits);
  env.registry.Unregister("lmm.blocks_in_use", &in_use);
}

TEST(TraceComTest, TraceLogReadsTheRing) {
  TraceEnv env;
  env.recorder.Record(EventType::kPacketTx, "ether", 0, 60);
  env.recorder.Record(EventType::kSleep, "net", 0x77);

  ComPtr<TraceComponent> component(CreateTraceComponent(&env));
  size_t count = 0;
  ASSERT_EQ(Error::kOk, component->GetEventCount(&count));
  EXPECT_EQ(2u, count);

  TraceRecord record;
  ASSERT_EQ(Error::kOk, component->Read(0, &record));
  EXPECT_EQ(static_cast<uint32_t>(EventType::kPacketTx), record.type);
  EXPECT_STREQ("packet-tx", record.type_name);
  EXPECT_EQ(60u, record.arg1);
  EXPECT_EQ(Error::kInval, component->Read(2, &record));

  uint64_t total = 0;
  ASSERT_EQ(Error::kOk, component->GetTotalRecorded(&total));
  EXPECT_EQ(2u, total);

  ASSERT_EQ(Error::kOk, component->Clear());
  ASSERT_EQ(Error::kOk, component->GetEventCount(&count));
  EXPECT_EQ(0u, count);
}

// ---------------------------------------------------------------------------
// Span attribution
// ---------------------------------------------------------------------------

TEST(SpanTest, NestedPairingPartitionsSelfTime) {
  TraceEnv env;
  uint64_t now = 0;
  env.spans.SetTimeSource([&now] { return now; });

  SpanSite outer(&env, "t.outer");
  SpanSite inner(&env, "t.inner");
  EXPECT_EQ(2u, env.spans.site_count());

  env.spans.Begin(&outer);  // t=0
  now = 10;
  env.spans.Begin(&inner);  // t=10
  EXPECT_EQ(2u, env.spans.depth());
  now = 40;
  env.spans.End(&inner);    // inner inclusive = 30
  now = 45;
  env.spans.End(&outer);    // outer inclusive = 45, self = 45 - 30
  EXPECT_EQ(0u, env.spans.depth());

  EXPECT_EQ(1u, outer.count());
  EXPECT_EQ(45u, outer.total_ns());
  EXPECT_EQ(15u, outer.self_ns());
  EXPECT_EQ(1u, inner.count());
  EXPECT_EQ(30u, inner.total_ns());
  EXPECT_EQ(30u, inner.self_ns());

  // Self time partitions the instrumented window exactly once.
  EXPECT_EQ(outer.total_ns(), outer.self_ns() + inner.self_ns());

  // The three counters registered under the site name like any other
  // instrumentation.
  EXPECT_EQ(1u, env.registry.Value("t.outer.count"));
  EXPECT_EQ(45u, env.registry.Value("t.outer.ns"));
  EXPECT_EQ(15u, env.registry.Value("t.outer.self_ns"));
  EXPECT_EQ(30u, env.registry.Value("t.inner.self_ns"));

  // Begin/end events were mirrored into the environment's flight recorder.
  std::string tags;
  env.recorder.ForEach([&](const TraceEvent& event) {
    if (event.type == EventType::kSpanBegin ||
        event.type == EventType::kSpanEnd) {
      tags += event.tag;
      tags += ';';
    }
  });
  EXPECT_EQ("t.outer;t.inner;t.inner;t.outer;", tags);
}

TEST(SpanTest, AddSampleChargesMeasuredIntervals) {
  // Interval-style attribution for phases that cannot hold a stack
  // discipline (a flush spanning many selector harvests).
  TraceEnv env;
  SpanSite flush(&env, "t.flush");
  flush.AddSample(100);
  flush.AddSample(250);
  EXPECT_EQ(2u, flush.count());
  EXPECT_EQ(350u, flush.total_ns());
  EXPECT_EQ(350u, flush.self_ns());
  EXPECT_EQ(0u, env.spans.depth());  // no stack involvement
}

TEST(SpanTest, ScopedSpansUnderSimClockAreMonotone) {
  // A fiber that sleeps inside nested ScopedSpans: durations come out of
  // the simulated clock, so attribution is exact and deterministic.
  Simulation sim;
  TraceEnv env;
  env.spans.SetTimeSource([&sim] { return sim.clock().Now(); });

  SpanSite request(&env, "t.request");
  SpanSite disk(&env, "t.disk");
  sim.Spawn("worker", [&] {
    for (int i = 0; i < 3; ++i) {
      ScopedSpan outer(&request);
      sim.SleepFor(100);
      {
        ScopedSpan io(&disk);
        sim.SleepFor(400);
      }
      sim.SleepFor(50);
    }
  });
  ASSERT_EQ(Simulation::RunResult::kAllDone, sim.Run());

  EXPECT_EQ(3u, request.count());
  EXPECT_EQ(3u * 550u, request.total_ns());
  EXPECT_EQ(3u * 150u, request.self_ns());
  EXPECT_EQ(3u * 400u, disk.total_ns());
  EXPECT_EQ(3u * 400u, disk.self_ns());
  EXPECT_EQ(request.total_ns(), request.self_ns() + disk.self_ns());
}

TEST(SpanTest, MismatchedEndPanics) {
  TraceEnv env;
  SpanSite a(&env, "t.a");
  SpanSite b(&env, "t.b");
  env.spans.Begin(&a);
  env.spans.Begin(&b);

  PanicHandler old = SetPanicHandler(+[](const char*) { throw 42; });
  EXPECT_THROW(env.spans.End(&a), int);  // b is innermost
  SetPanicHandler(old);

  env.spans.End(&b);
  env.spans.End(&a);
}

TEST(SpanTest, DumpHotSortsBySelfTime) {
  TraceEnv env;
  SpanSite hot(&env, "t.hot");
  SpanSite warm(&env, "t.warm");
  SpanSite idle(&env, "t.idle");  // zero count: skipped
  hot.AddSample(900);
  warm.AddSample(100);

  std::vector<std::string> lines;
  env.spans.DumpHot([&](const char* line) { lines.emplace_back(line); });

  // Header + two live sites, self-time descending with percentages.
  ASSERT_EQ(3u, lines.size());
  EXPECT_NE(std::string::npos, lines[0].find("self%"));
  EXPECT_NE(std::string::npos, lines[1].find("t.hot"));
  EXPECT_NE(std::string::npos, lines[1].find("90.0%"));
  EXPECT_NE(std::string::npos, lines[2].find("t.warm"));
  EXPECT_NE(std::string::npos, lines[2].find("10.0%"));
  for (const std::string& line : lines) {
    EXPECT_EQ(std::string::npos, line.find("t.idle"));
  }
}

TEST(SpanTest, DumpOnPanicShowsTableAndOpenSpans) {
  // A crash mid-request must show which phase it died in: the attribution
  // table plus the still-open span stack, outermost first.
  TraceEnv env;
  uint64_t now = 0;
  env.spans.SetTimeSource([&now] { return now; });
  SpanSite accept(&env, "t.accept");
  SpanSite parse(&env, "t.parse");
  accept.AddSample(70);  // some history for the table

  env.spans.Begin(&accept);
  now = 20;
  env.spans.Begin(&parse);
  now = 35;

  static std::vector<std::string> lines;
  lines.clear();
  env.spans.SetDumpSink(
      +[](void*, const char* line) { lines.emplace_back(line); }, nullptr);
  env.spans.EnableDumpOnPanic("www span attribution");

  PanicHandler old = SetPanicHandler(+[](const char*) { throw 42; });
  EXPECT_THROW(Panic("trap 14 in request handler"), int);
  SetPanicHandler(old);
  env.spans.DisableDumpOnPanic();

  std::string all;
  for (const std::string& line : lines) {
    all += line;
    all += '\n';
  }
  // Banner carries the panic message; the table shows the closed history.
  EXPECT_NE(std::string::npos, all.find("www span attribution"));
  EXPECT_NE(std::string::npos, all.find("trap 14 in request handler"));
  EXPECT_NE(std::string::npos, all.find("t.accept"));
  // Both open spans dumped, outermost first, with live elapsed times.
  size_t open_accept = all.find("OPEN t.accept");
  size_t open_parse = all.find("OPEN t.parse");
  ASSERT_NE(std::string::npos, open_accept);
  ASSERT_NE(std::string::npos, open_parse);
  EXPECT_LT(open_accept, open_parse);
  EXPECT_NE(std::string::npos, all.find("elapsed=35", open_accept));
  EXPECT_NE(std::string::npos, all.find("elapsed=15", open_parse));

  env.spans.End(&parse);
  env.spans.End(&accept);
}

}  // namespace
}  // namespace oskit::trace
