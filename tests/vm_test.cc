// KVM bytecode machine tests (§6.1.4 substitute): assembler, arithmetic,
// control flow, calls, green threads, syscalls, the verifier, and fault
// containment.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/vm/kvm.h"

namespace oskit::vm {
namespace {

// Syscall handler recording prints and serving time.
class TestSys : public SysHandler {
 public:
  Error Syscall(uint16_t number, Vm& vm, int thread_id) override {
    switch (number) {
      case kSysPutChar:
        printed.push_back(static_cast<char>(vm.Pop(thread_id)));
        return Error::kOk;
      case kSysPutInt:
        ints.push_back(vm.Pop(thread_id));
        return Error::kOk;
      case kSysTimeNs:
        vm.Push(thread_id, now);
        return Error::kOk;
      default:
        return Error::kNotImpl;
    }
  }

  std::string printed;
  std::vector<int64_t> ints;
  int64_t now = 123456;
};

// Assembles, verifies, runs one thread at pc 0; returns the VM for
// inspection.
std::unique_ptr<Vm> RunProgram(const std::string& source, TestSys* sys,
                               Error expect = Error::kOk) {
  std::vector<uint8_t> code;
  std::string asm_error;
  EXPECT_EQ(Error::kOk, Assemble(source, &code, &asm_error)) << asm_error;
  auto vm = std::make_unique<Vm>(std::move(code), sys);
  std::string verify_error;
  EXPECT_EQ(Error::kOk, vm->Verify(&verify_error)) << verify_error;
  vm->SpawnThread(0);
  EXPECT_EQ(expect, vm->Run(1000000));
  return vm;
}

TEST(AssemblerTest, EncodesAndReportsErrors) {
  std::vector<uint8_t> code;
  std::string error;
  EXPECT_EQ(Error::kOk, Assemble("push 5\nhalt\n", &code, &error));
  EXPECT_EQ(10u, code.size());  // push(1+8) + halt(1)

  EXPECT_EQ(Error::kInval, Assemble("frobnicate\n", &code, &error));
  EXPECT_NE(std::string::npos, error.find("unknown mnemonic"));
  EXPECT_EQ(Error::kInval, Assemble("jmp nowhere\n", &code, &error));
  EXPECT_NE(std::string::npos, error.find("undefined label"));
  EXPECT_EQ(Error::kInval, Assemble("x:\nx:\nhalt\n", &code, &error));
  EXPECT_NE(std::string::npos, error.find("duplicate"));
  EXPECT_EQ(Error::kInval, Assemble("push\n", &code, &error));
}

TEST(VmTest, Arithmetic) {
  TestSys sys;
  RunProgram(
      "push 7\n"
      "push 3\n"
      "mul\n"       // 21
      "push 5\n"
      "sub\n"       // 16
      "push 3\n"
      "div\n"       // 5
      "sys 2\n"
      "push -8\n"
      "neg\n"       // 8
      "push 3\n"
      "mod\n"       // 2
      "sys 2\n"
      "halt\n",
      &sys);
  ASSERT_EQ(2u, sys.ints.size());
  EXPECT_EQ(5, sys.ints[0]);
  EXPECT_EQ(2, sys.ints[1]);
}

TEST(VmTest, LoopWithBranches) {
  TestSys sys;
  // Sum 1..10 into local 0.
  RunProgram(
      "push 10\n"
      "store 1\n"       // i = 10
      "loop:\n"
      "load 0\n"
      "load 1\n"
      "add\n"
      "store 0\n"       // acc += i
      "load 1\n"
      "push 1\n"
      "sub\n"
      "store 1\n"       // --i
      "load 1\n"
      "jnz loop\n"
      "load 0\n"
      "sys 2\n"
      "halt\n",
      &sys);
  ASSERT_EQ(1u, sys.ints.size());
  EXPECT_EQ(55, sys.ints[0]);
}

TEST(VmTest, CallAndReturn) {
  TestSys sys;
  RunProgram(
      "push 6\n"
      "call square\n"
      "sys 2\n"
      "halt\n"
      "square:\n"
      "dup\n"
      "mul\n"
      "ret\n",
      &sys);
  ASSERT_EQ(1u, sys.ints.size());
  EXPECT_EQ(36, sys.ints[0]);
}

TEST(VmTest, ComparisonsAndGlobals) {
  TestSys sys;
  auto vm = RunProgram(
      "push 3\n"
      "push 4\n"
      "lt\n"
      "gstore 0\n"
      "push 9\n"
      "push 9\n"
      "ge\n"
      "gstore 1\n"
      "push 1\n"
      "push 2\n"
      "eq\n"
      "gstore 2\n"
      "halt\n",
      &sys);
  EXPECT_EQ(1, vm->global(0));
  EXPECT_EQ(1, vm->global(1));
  EXPECT_EQ(0, vm->global(2));
}

TEST(VmTest, HostSpawnedThreadsBothRun) {
  TestSys sys;
  std::vector<uint8_t> code;
  std::string err;
  ASSERT_EQ(Error::kOk, Assemble(
      "a:\n"
      "gload 0\n"
      "push 1\n"
      "add\n"
      "gstore 0\n"
      "yield\n"
      "gload 0\n"
      "push 200\n"
      "lt\n"
      "jnz a\n"
      "halt\n",
      &code, &err)) << err;
  VmConfig config;
  config.quantum = 3;
  Vm vm(std::move(code), &sys, config);
  ASSERT_EQ(Error::kOk, vm.Verify());
  vm.SpawnThread(0);
  vm.SpawnThread(0);  // two green threads sharing global 0
  EXPECT_EQ(Error::kOk, vm.Run(1000000));
  EXPECT_GE(vm.global(0), 200);
  EXPECT_EQ(2u, vm.thread_count());
  EXPECT_GT(vm.thread(0).instructions, 0u);
  EXPECT_GT(vm.thread(1).instructions, 0u);
}

TEST(VmTest, SysSpawnCreatesThread) {
  TestSys sys;
  std::vector<uint8_t> code;
  std::string err;
  // Thread entry table: the child loop lives at a label whose numeric
  // address we can compute because the preamble has fixed size:
  // push(9) + sys(3) + pop(1) + halt(1) = 14.
  ASSERT_EQ(Error::kOk, Assemble(
      "push 14\n"
      "sys 4\n"   // spawn(entry=14)
      "pop\n"     // discard the thread id
      "halt\n"
      "child:\n"  // at byte 14
      "push 77\n"
      "gstore 5\n"
      "halt\n",
      &code, &err)) << err;
  Vm vm(std::move(code), &sys);
  ASSERT_EQ(Error::kOk, vm.Verify(&err)) << err;
  vm.SpawnThread(0);
  EXPECT_EQ(Error::kOk, vm.Run(10000));
  EXPECT_EQ(2u, vm.thread_count());
  EXPECT_EQ(77, vm.global(5));
}

TEST(VmTest, VerifierRejectsBadPrograms) {
  std::string err;
  // Invalid opcode.
  {
    Vm vm(std::vector<uint8_t>{0xff}, nullptr);
    EXPECT_EQ(Error::kInval, vm.Verify(&err));
  }
  // Truncated operand.
  {
    Vm vm(std::vector<uint8_t>{static_cast<uint8_t>(Op::kPush), 1, 2}, nullptr);
    EXPECT_EQ(Error::kInval, vm.Verify(&err));
  }
  // Jump into the middle of an instruction.
  {
    std::vector<uint8_t> code;
    ASSERT_EQ(Error::kOk, Assemble("jmp 2\nhalt\n", &code, &err));
    Vm vm(std::move(code), nullptr);
    EXPECT_EQ(Error::kInval, vm.Verify(&err));
    EXPECT_NE(std::string::npos, err.find("mid-instruction"));
  }
  // Local index out of range.
  {
    std::vector<uint8_t> code;
    ASSERT_EQ(Error::kOk, Assemble("load 9999\nhalt\n", &code, &err));
    Vm vm(std::move(code), nullptr);
    EXPECT_EQ(Error::kInval, vm.Verify(&err));
  }
}

TEST(VmTest, RuntimeFaultsAreContained) {
  TestSys sys;
  // Divide by zero faults the thread; Run reports it.
  RunProgram("push 1\npush 0\ndiv\nhalt\n", &sys, Error::kInval);
  // Stack underflow.
  RunProgram("add\nhalt\n", &sys, Error::kFault);
  // Unknown syscall.
  RunProgram("sys 999\nhalt\n", &sys, Error::kNotImpl);
}

TEST(VmTest, RunawayProgramHitsInstructionBudget) {
  TestSys sys;
  std::vector<uint8_t> code;
  std::string err;
  ASSERT_EQ(Error::kOk, Assemble("spin:\njmp spin\n", &code, &err));
  Vm vm(std::move(code), &sys);
  ASSERT_EQ(Error::kOk, vm.Verify());
  vm.SpawnThread(0);
  EXPECT_EQ(Error::kAborted, vm.Run(5000));
  EXPECT_GE(vm.instructions_executed(), 5000u);
}

TEST(VmTest, PutCharBuildsStrings) {
  TestSys sys;
  RunProgram(
      "push 104\nsys 1\n"  // h
      "push 105\nsys 1\n"  // i
      "halt\n",
      &sys);
  EXPECT_EQ("hi", sys.printed);
}

}  // namespace
}  // namespace oskit::vm
